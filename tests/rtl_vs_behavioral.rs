//! Cross-model equivalence: the word-level RTL switch and the cell-level
//! behavioral switch implement the *same* architecture, so under the same
//! arrival schedule they must produce the same departure schedule, cycle
//! for cycle — packet by packet, output by output.
//!
//! This is the license to run the statistical experiments (E3/E6/E15) on
//! the fast model and claim the results hold for the real datapath.

use telegraphos::simkernel::SplitMix64;
use telegraphos::switch_core::behavioral::BehavioralSwitch;
use telegraphos::switch_core::config::SwitchConfig;
use telegraphos::switch_core::rtl::{OutputCollector, PipelinedSwitch};
use telegraphos::traffic::{DestDist, PacketFeeder};

/// Departure record comparable across models: (output, head-word cycle,
/// tail-word cycle).
type Dep = (usize, u64, u64);

fn run_rtl(
    cfg: &SwitchConfig,
    load: f64,
    cycles: u64,
    seed: u64,
) -> (Vec<(u64, usize, usize)>, Vec<Dep>) {
    let s = cfg.stages();
    let n = cfg.n_in;
    let mut sw = PipelinedSwitch::new(cfg.clone());
    let mut feeders: Vec<PacketFeeder> = (0..n)
        .map(|i| PacketFeeder::random(i, s, load, DestDist::uniform(n), seed, n as u64))
        .collect();
    let mut col = OutputCollector::new(n, s);
    let mut wire = vec![None; n];
    for _ in 0..cycles {
        for (i, f) in feeders.iter_mut().enumerate() {
            wire[i] = f.tick(sw.now());
        }
        let now = sw.now();
        let out = sw.tick(&wire);
        col.observe(now, out);
    }
    for f in feeders.iter_mut() {
        f.halt();
    }
    let mut guard = 0;
    while !sw.is_quiescent() && guard < 20_000 {
        for (i, f) in feeders.iter_mut().enumerate() {
            wire[i] = f.tick(sw.now());
        }
        let now = sw.now();
        let out = sw.tick(&wire);
        col.observe(now, out);
        guard += 1;
    }
    assert!(sw.is_quiescent(), "RTL model failed to drain");
    // The arrival schedule actually offered (for replay into the
    // behavioral model): (cycle, input, dst).
    let mut schedule: Vec<(u64, usize, usize)> = Vec::new();
    for f in &feeders {
        for r in f.sent() {
            schedule.push((r.birth, f.port(), r.dst));
        }
    }
    schedule.sort_unstable();
    let mut deps: Vec<Dep> = col
        .take()
        .into_iter()
        .map(|d| (d.output.index(), d.first_cycle, d.last_cycle))
        .collect();
    deps.sort_unstable();
    (schedule, deps)
}

fn run_behavioral(cfg: &SwitchConfig, schedule: &[(u64, usize, usize)], horizon: u64) -> Vec<Dep> {
    let n = cfg.n_in;
    let mut sw = BehavioralSwitch::new(cfg.clone());
    let mut idx = 0;
    let mut arr = vec![None; n];
    for now in 0..horizon {
        arr.fill(None);
        while idx < schedule.len() && schedule[idx].0 == now {
            let (_, input, dst) = schedule[idx];
            arr[input] = Some(dst);
            idx += 1;
        }
        sw.tick(&arr);
    }
    assert!(sw.is_quiescent(), "behavioral model failed to drain");
    let mut deps: Vec<Dep> = sw
        .departures()
        .iter()
        .map(|d| (d.output, d.read_start + 1, d.done))
        .collect();
    deps.sort_unstable();
    deps
}

fn check_equivalence(n: usize, slots: usize, load: f64, cycles: u64, seed: u64) {
    let cfg = SwitchConfig::symmetric(n, slots);
    let (schedule, rtl_deps) = run_rtl(&cfg, load, cycles, seed);
    assert!(
        schedule.len() > 20,
        "workload too thin to be meaningful ({} packets)",
        schedule.len()
    );
    let horizon = cycles + 20_000;
    let bhv_deps = run_behavioral(&cfg, &schedule, horizon);
    assert_eq!(
        rtl_deps.len(),
        bhv_deps.len(),
        "models disagree on packet count (n={n}, load={load})"
    );
    for (r, b) in rtl_deps.iter().zip(&bhv_deps) {
        assert_eq!(
            r, b,
            "departure schedule diverged (n={n}, load={load}, seed={seed})"
        );
    }
}

#[test]
fn equivalence_2x2_light_load() {
    check_equivalence(2, 16, 0.3, 4_000, 1);
}

#[test]
fn equivalence_2x2_full_load() {
    check_equivalence(2, 16, 1.0, 4_000, 2);
}

#[test]
fn equivalence_4x4_moderate_load() {
    check_equivalence(4, 32, 0.6, 4_000, 3);
}

#[test]
fn equivalence_4x4_overload_with_tiny_buffer() {
    // Buffer-full drops must also match exactly.
    check_equivalence(4, 2, 0.9, 4_000, 4);
}

#[test]
fn equivalence_8x8_high_load() {
    check_equivalence(8, 64, 0.9, 3_000, 5);
}

#[test]
fn equivalence_store_and_forward_mode() {
    let mut cfg = SwitchConfig::symmetric(4, 16);
    cfg.cut_through = false;
    cfg.fused_cut_through = false;
    let (schedule, rtl_deps) = {
        let cfg = cfg.clone();
        let s = cfg.stages();
        let n = cfg.n_in;
        let mut sw = PipelinedSwitch::new(cfg);
        let mut feeders: Vec<PacketFeeder> = (0..n)
            .map(|i| PacketFeeder::random(i, s, 0.5, DestDist::uniform(n), 6, n as u64))
            .collect();
        let mut col = OutputCollector::new(n, s);
        let mut wire = vec![None; n];
        for _ in 0..3_000u64 {
            for (i, f) in feeders.iter_mut().enumerate() {
                wire[i] = f.tick(sw.now());
            }
            let now = sw.now();
            let out = sw.tick(&wire);
            col.observe(now, out);
        }
        for f in feeders.iter_mut() {
            f.halt();
        }
        while !sw.is_quiescent() {
            for (i, f) in feeders.iter_mut().enumerate() {
                wire[i] = f.tick(sw.now());
            }
            let now = sw.now();
            let out = sw.tick(&wire);
            col.observe(now, out);
        }
        let mut schedule: Vec<(u64, usize, usize)> = Vec::new();
        for f in &feeders {
            for r in f.sent() {
                schedule.push((r.birth, f.port(), r.dst));
            }
        }
        schedule.sort_unstable();
        let mut deps: Vec<Dep> = col
            .take()
            .into_iter()
            .map(|d| (d.output.index(), d.first_cycle, d.last_cycle))
            .collect();
        deps.sort_unstable();
        (schedule, deps)
    };
    let bhv = run_behavioral(&cfg, &schedule, 30_000);
    assert_eq!(rtl_deps, bhv, "store-and-forward mode diverged");
}

#[test]
fn determinism_same_seed_same_world() {
    let cfg = SwitchConfig::symmetric(4, 32);
    let a = run_rtl(&cfg, 0.7, 2_000, 42);
    let b = run_rtl(&cfg, 0.7, 2_000, 42);
    assert_eq!(a, b, "simulation must be bit-reproducible");
}

#[test]
fn equivalence_with_multicast_traffic() {
    // Word schedules mixing unicast and multicast; the behavioral model
    // replays the same arrival masks. The two models must agree on every
    // copy's transmission window.
    use telegraphos::simkernel::cell::Packet;
    let n = 4;
    let cfg = SwitchConfig::symmetric(n, 32);
    let s = cfg.stages();
    let mut rng = SplitMix64::new(77);
    // Build the schedule: per input, packets with random gaps; ~30%
    // multicast.
    let cycles = 4_000usize;
    let mut wires = vec![vec![None; n]; cycles];
    let mut masks: Vec<Vec<Option<u32>>> = vec![vec![None; n]; cycles];
    let mut id = 1u64;
    for i in 0..n {
        let mut t = 0usize;
        while t + s <= cycles {
            if rng.chance(0.08) {
                let (p, mask) = if rng.chance(0.3) {
                    let m = (rng.below(1 << n) as u16).max(1);
                    (Packet::synth_multicast(id, i, m, s, t as u64), m as u32)
                } else {
                    let d = rng.below_usize(n);
                    (Packet::synth(id, i, d, s, t as u64), 1u32 << d)
                };
                id += 1;
                for (k, w) in p.words.iter().enumerate() {
                    wires[t + k][i] = Some(*w);
                }
                masks[t][i] = Some(mask);
                t += s;
            } else {
                t += 1;
            }
        }
    }
    // RTL run.
    let mut sw = PipelinedSwitch::new(cfg.clone());
    let mut col = OutputCollector::new(n, s);
    for row in &wires {
        let now = sw.now();
        let out = sw.tick(row);
        col.observe(now, out);
    }
    let idle = vec![None; n];
    let mut guard = 0;
    while !sw.is_quiescent() && guard < 20_000 {
        let now = sw.now();
        let out = sw.tick(&idle);
        col.observe(now, out);
        guard += 1;
    }
    assert!(sw.is_quiescent());
    let mut rtl: Vec<Dep> = col
        .take()
        .into_iter()
        .map(|d| (d.output.index(), d.first_cycle, d.last_cycle))
        .collect();
    rtl.sort_unstable();
    // Behavioral replay.
    let mut bhv_sw = BehavioralSwitch::new(cfg);
    for row in &masks {
        bhv_sw.tick_masks(row);
    }
    let horizon = 30_000;
    let idle_masks = vec![None; n];
    for _ in 0..horizon {
        if bhv_sw.is_quiescent() {
            break;
        }
        bhv_sw.tick_masks(&idle_masks);
    }
    assert!(bhv_sw.is_quiescent());
    let mut bhv: Vec<Dep> = bhv_sw
        .departures()
        .iter()
        .map(|d| (d.output, d.read_start + 1, d.done))
        .collect();
    bhv.sort_unstable();
    assert!(rtl.len() > 100, "workload too thin: {}", rtl.len());
    assert_eq!(rtl, bhv, "multicast departure schedules diverged");
}
