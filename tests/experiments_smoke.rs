//! Smoke test: every experiment module runs to completion in quick mode
//! and produces a non-trivial report mentioning what it measured.

use bench_harness::{run_experiment, ALL};

#[test]
fn every_experiment_runs_quick() {
    for id in ALL {
        let out = run_experiment(id, true).unwrap_or_else(|| panic!("{id} unknown"));
        assert!(out.len() > 100, "{id}: report suspiciously short:\n{out}");
        let cites = out.to_lowercase();
        assert!(
            cites.contains("paper") || cites.contains("extension"),
            "{id}: report must cite the paper claim it regenerates (or be \
             marked an extension)"
        );
    }
}

#[test]
fn unknown_experiment_rejected() {
    assert!(run_experiment("e99", true).is_none());
}

/// The registry itself is part of the contract: every paper experiment
/// (e1–e19) and every extension (x1–x5) must be listed — in order — and
/// must dispatch to a module. Dropping an id from `ALL` would otherwise
/// silently remove it from `expt all`, CI's quick run, and the smoke
/// test above.
#[test]
fn registry_is_complete_and_ordered() {
    let expected: Vec<String> = (1..=19)
        .map(|k| format!("e{k}"))
        .chain((1..=5).map(|k| format!("x{k}")))
        .collect();
    assert_eq!(
        ALL.to_vec(),
        expected.iter().map(String::as_str).collect::<Vec<_>>(),
        "experiment registry drifted from the e01–e19/x01–x05 grid"
    );
    for id in ALL {
        assert!(
            run_experiment(id, true).is_some(),
            "{id} is listed but does not dispatch to a module"
        );
    }
}
