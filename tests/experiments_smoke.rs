//! Smoke test: every experiment module runs to completion in quick mode
//! and produces a non-trivial report mentioning what it measured.

use bench_harness::{run_experiment, ALL};

#[test]
fn every_experiment_runs_quick() {
    for id in ALL {
        let out = run_experiment(id, true).unwrap_or_else(|| panic!("{id} unknown"));
        assert!(out.len() > 100, "{id}: report suspiciously short:\n{out}");
        let cites = out.to_lowercase();
        assert!(
            cites.contains("paper") || cites.contains("extension"),
            "{id}: report must cite the paper claim it regenerates (or be \
             marked an extension)"
        );
    }
}

#[test]
fn unknown_experiment_rejected() {
    assert!(run_experiment("e99", true).is_none());
}
