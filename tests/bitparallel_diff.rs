//! Differential pinning of the bit-parallel dense path against the
//! frozen scalar references (`switch_core::reference`).
//!
//! The bit-parallel rework (packed control words, fused idle batches,
//! wave rings) is licensed by one property: **byte-identical behavior**
//! with the pre-rework scalar models. This suite pins it three ways, on
//! a seeded load grid {10%, 50%, 95%}:
//!
//! 1. `BehavioralSwitch` vs [`BehavioralSwitchRef`]: departures (every
//!    field), arrival/drop/overrun counters, and the *full probe event
//!    stream* must match exactly.
//! 2. `PipelinedSwitch` vs [`PipelinedSwitchRef`]: delivered packets,
//!    `SwitchCounters`, and the probe stream must match exactly.
//! 3. All four memory organizations against the behavioral reference as
//!    oracle: behavioral and pipelined must agree **cycle-exactly** on
//!    the (output, head-cycle, tail-cycle) schedule; wide and
//!    interleaved (whose latencies legitimately differ — see
//!    `tests/wide_vs_pipelined.rs`) must deliver exactly the same
//!    packets to the same outputs.
//!
//! Plus the batching laws: a fused `tick_idle_batch(n)` must equal `n`
//! scalar idle ticks, and the batched fast-forward driver must equal
//! the per-cycle one, probe streams included.

use telegraphos::simkernel::cell::Packet;
use telegraphos::simkernel::ids::{Addr, Cycle};
use telegraphos::simkernel::{advance_to, advance_to_batched, BatchTick, Horizon, SplitMix64};
use telegraphos::switch_core::behavioral::{BehavioralDeparture, BehavioralSwitch};
use telegraphos::switch_core::config::SwitchConfig;
use telegraphos::switch_core::events::SwitchCounters;
use telegraphos::switch_core::ibank::{InterleavedSwitch, InterleavedSwitchConfig};
use telegraphos::switch_core::recovery::RecoveryConfig;
use telegraphos::switch_core::reference::{BehavioralSwitchRef, PipelinedSwitchRef};
use telegraphos::switch_core::rtl::{OutputCollector, PipelinedSwitch};
use telegraphos::switch_core::widemem::{WideMemorySwitchRtl, WideSwitchConfig};
use telegraphos::telemetry::{ProbeEvent, Recorder, Shared};

const LOADS: [f64; 3] = [0.10, 0.50, 0.95];

/// One scheduled launch: header enters `input` at cycle `at`.
#[derive(Debug, Clone, Copy)]
struct Offer {
    at: Cycle,
    input: usize,
    dst: usize,
    id: u64,
}

/// A framing-respecting random schedule at `load` offered word
/// occupancy: each input starts a new `s`-word packet with probability
/// `load / s` per free cycle (the same law as the perf harness).
fn load_schedule(n: usize, s: usize, load: f64, cycles: u64, seed: u64) -> Vec<Offer> {
    let mut rng = SplitMix64::new(seed);
    let mut offers = Vec::new();
    let mut next_free = vec![0u64; n];
    let mut id = 1u64;
    let p = load / s as f64;
    for t in 0..cycles {
        for (i, nf) in next_free.iter_mut().enumerate() {
            if t >= *nf && rng.chance(p) {
                offers.push(Offer {
                    at: t,
                    input: i,
                    dst: rng.below_usize(n),
                    id,
                });
                id += 1;
                *nf = t + s as u64;
            }
        }
    }
    offers
}

type ProbeLog = Vec<telegraphos::simkernel::TraceEntry<ProbeEvent>>;

/// Drive a cell-level model (either twin — they share a method set but
/// not a trait) densely over `offers`, probe attached, until quiescent.
macro_rules! drive_cell {
    ($ty:ty, $cfg:expr, $offers:expr) => {{
        let mut sw = <$ty>::new($cfg.clone());
        let rec = Shared::new(Recorder::unbounded());
        sw.attach_probe(rec.handle());
        let n = $cfg.n_in;
        let mut arr: Vec<Option<usize>> = vec![None; n];
        let mut k = 0usize;
        let end = $offers.last().map_or(0, |o| o.at) + 1;
        for now in 0..end {
            arr.fill(None);
            while k < $offers.len() && $offers[k].at == now {
                let o = $offers[k];
                k += 1;
                arr[o.input] = Some(o.dst);
            }
            sw.tick(&arr);
        }
        arr.fill(None);
        let mut guard = 0u32;
        while !sw.is_quiescent() {
            sw.tick(&arr);
            guard += 1;
            assert!(guard < 100_000, "cell model failed to drain");
        }
        let deps: Vec<BehavioralDeparture> = sw.departures().to_vec();
        let counts = (sw.arrived, sw.dropped, sw.overruns);
        let events: ProbeLog = rec.with(|r| r.iter().cloned().collect());
        (deps, counts, events)
    }};
}

/// Drive a word-level switch over `offers` (packets rendered word by
/// word with [`Packet::synth`]) until drained; returns the delivery
/// stream `(id, output, first, last)` and the model's counters.
macro_rules! drive_word {
    ($sw:expr, $n:expr, $s:expr, $offers:expr) => {{
        let mut sw = $sw;
        let mut col = OutputCollector::new($n, $s);
        let mut current: Vec<Option<(Vec<u64>, usize)>> = vec![None; $n];
        let mut wire: Vec<Option<u64>> = vec![None; $n];
        let mut deliveries: Vec<(u64, usize, Cycle, Cycle)> = Vec::new();
        let mut k = 0usize;
        let mut grace = 0u64;
        loop {
            let now = sw.now();
            let exhausted = k == $offers.len();
            let idle =
                exhausted && current.iter().all(Option::is_none) && sw.next_event().is_none();
            if idle {
                grace += 1;
                if grace > $s as u64 + 4 {
                    break;
                }
            } else {
                grace = 0;
            }
            assert!(now < 1_000_000, "word model failed to drain");
            while k < $offers.len() && $offers[k].at == now {
                let o = $offers[k];
                k += 1;
                let p = Packet::synth(o.id, o.input, o.dst, $s, now);
                current[o.input] = Some((p.words, 0));
            }
            for (w, slot) in wire.iter_mut().zip(current.iter_mut()) {
                *w = None;
                if let Some((words, i)) = slot {
                    *w = Some(words[*i]);
                    *i += 1;
                    if *i == words.len() {
                        *slot = None;
                    }
                }
            }
            let out = sw.tick(&wire);
            col.observe(now, out);
            for d in col.take() {
                assert!(d.verify_payload(), "corrupted payload");
                deliveries.push((d.id, d.output.index(), d.first_cycle, d.last_cycle));
            }
        }
        (deliveries, sw.counters())
    }};
}

// ---------------------------------------------------------------------------
// 1. Behavioral twin
// ---------------------------------------------------------------------------

#[test]
fn behavioral_matches_scalar_reference_on_load_grid() {
    let cfg = SwitchConfig::symmetric(4, 16);
    let s = cfg.stages();
    for load in LOADS {
        for seed in 0..2u64 {
            let offers = load_schedule(4, s, load, 3_000, 0xB17 + seed + (load * 100.0) as u64);
            let (d_new, c_new, e_new) = drive_cell!(BehavioralSwitch, cfg, offers);
            let (d_ref, c_ref, e_ref) = drive_cell!(BehavioralSwitchRef, cfg, offers);
            assert!(!d_ref.is_empty(), "load {load}: workload too thin");
            assert_eq!(
                d_new, d_ref,
                "load {load} seed {seed}: departures diverged from scalar reference"
            );
            assert_eq!(
                c_new, c_ref,
                "load {load} seed {seed}: (arrived, dropped, overruns) diverged"
            );
            assert_eq!(
                e_new, e_ref,
                "load {load} seed {seed}: probe event streams diverged"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 2. RTL twin
// ---------------------------------------------------------------------------

#[test]
fn rtl_matches_scalar_reference_on_load_grid() {
    let cfg = SwitchConfig::symmetric(4, 16);
    let s = cfg.stages();
    for load in LOADS {
        let offers = load_schedule(4, s, load, 2_000, 0x57A6 + (load * 100.0) as u64);
        let rec_new = Shared::new(Recorder::unbounded());
        let mut sw_new = PipelinedSwitch::new(cfg.clone());
        sw_new.attach_probe(rec_new.handle());
        let (d_new, c_new) = drive_word!(sw_new, 4, s, offers);
        let rec_ref = Shared::new(Recorder::unbounded());
        let mut sw_ref = PipelinedSwitchRef::new(cfg.clone());
        sw_ref.attach_probe(rec_ref.handle());
        let (d_ref, c_ref) = drive_word!(sw_ref, 4, s, offers);
        assert!(!d_ref.is_empty(), "load {load}: workload too thin");
        assert_eq!(
            d_new, d_ref,
            "load {load}: RTL deliveries diverged from scalar reference"
        );
        let (c_new, c_ref): (SwitchCounters, SwitchCounters) = (c_new, c_ref);
        assert_eq!(c_new, c_ref, "load {load}: RTL counters diverged");
        let e_new: ProbeLog = rec_new.with(|r| r.iter().cloned().collect());
        let e_ref: ProbeLog = rec_ref.with(|r| r.iter().cloned().collect());
        assert_eq!(e_new, e_ref, "load {load}: RTL probe streams diverged");
    }
}

// ---------------------------------------------------------------------------
// 3. All four organizations vs the reference oracle
// ---------------------------------------------------------------------------

#[test]
fn all_four_organizations_match_the_reference_oracle() {
    // Generous shared buffer: the oracle comparison is about *timing*
    // agreement across organizations; drop divergence under overload is
    // the conformance fuzzer's (credit-flow-controlled) territory.
    let n = 4;
    let slots = 64;
    let cfg = SwitchConfig::symmetric(n, slots);
    let s = cfg.stages();
    for load in LOADS {
        let offers = load_schedule(n, s, load, 2_000, 0x4C6 + (load * 100.0) as u64);
        // Oracle: the frozen scalar behavioral reference.
        let (d_ref, _, _) = drive_cell!(BehavioralSwitchRef, cfg, offers);
        let mut oracle: Vec<(usize, Cycle, Cycle)> = d_ref
            .iter()
            .map(|d| (d.output, d.read_start + 1, d.done))
            .collect();
        oracle.sort_unstable();
        assert!(!oracle.is_empty(), "load {load}: workload too thin");
        // The bit-parallel behavioral model against the oracle.
        let (d_bhv, _, _) = drive_cell!(BehavioralSwitch, cfg, offers);
        let mut bhv: Vec<(usize, Cycle, Cycle)> = d_bhv
            .iter()
            .map(|d| (d.output, d.read_start + 1, d.done))
            .collect();
        bhv.sort_unstable();
        assert_eq!(bhv, oracle, "load {load}: behavioral vs oracle");
        // The three word-level organizations against the oracle.
        let (d, _) = drive_word!(PipelinedSwitch::new(cfg.clone()), n, s, offers);
        let mut got: Vec<(usize, Cycle, Cycle)> = d.iter().map(|&(_, o, f, l)| (o, f, l)).collect();
        got.sort_unstable();
        assert_eq!(got, oracle, "load {load}: pipelined vs oracle");
        // Wide and interleaved run the same architecture with different
        // internal timing; the oracle-pinned invariant is *delivery
        // identity*: the same packet ids reach the same outputs.
        let mut oracle_ids: Vec<(usize, u64)> = d_ref.iter().map(|d| (d.output, d.id)).collect();
        oracle_ids.sort_unstable();
        let (d, _) = drive_word!(
            WideMemorySwitchRtl::new(WideSwitchConfig::fig3(n, slots)),
            n,
            s,
            offers
        );
        let mut got_ids: Vec<(usize, u64)> = d.iter().map(|&(id, o, ..)| (o, id)).collect();
        got_ids.sort_unstable();
        assert_eq!(got_ids, oracle_ids, "load {load}: wide vs oracle");
        let (d, _) = drive_word!(
            InterleavedSwitch::new(InterleavedSwitchConfig::symmetric(n, slots)),
            n,
            s,
            offers
        );
        let mut got_ids: Vec<(usize, u64)> = d.iter().map(|&(id, o, ..)| (o, id)).collect();
        got_ids.sort_unstable();
        assert_eq!(got_ids, oracle_ids, "load {load}: interleaved vs oracle");
    }
}

// ---------------------------------------------------------------------------
// 4. Batching laws
// ---------------------------------------------------------------------------

/// `tick_idle_batch(n)` must be indistinguishable from `n` idle ticks:
/// same departures, counters, probe stream, clock.
#[test]
fn behavioral_idle_batch_equals_scalar_idle_ticks() {
    let cfg = SwitchConfig::symmetric(4, 16);
    let s = cfg.stages();
    let offers = load_schedule(4, s, 0.95, 1_000, 0xBA7C);
    // Drive both switches through the offered span per-cycle, then
    // drain: one per-cycle, one in fused batches of varying width.
    let build = || {
        let mut sw = BehavioralSwitch::new(cfg.clone());
        let rec = Shared::new(Recorder::unbounded());
        sw.attach_probe(rec.handle());
        let mut arr: Vec<Option<usize>> = vec![None; 4];
        let mut k = 0usize;
        for now in 0..1_000u64 {
            arr.fill(None);
            while k < offers.len() && offers[k].at == now {
                let o = offers[k];
                k += 1;
                arr[o.input] = Some(o.dst);
            }
            sw.tick(&arr);
        }
        (sw, rec)
    };
    let (mut a, rec_a) = build();
    let (mut b, rec_b) = build();
    let idle: Vec<Option<usize>> = vec![None; 4];
    let mut width = 1u64;
    while !a.is_quiescent() || !b.is_quiescent() {
        for _ in 0..width {
            a.tick(&idle);
        }
        b.tick_idle_batch(width);
        width = width % 7 + 2; // 1,3,5,7,2,4,6,… varied batch widths
        assert!(a.now() < 200_000, "failed to drain");
    }
    assert_eq!(a.now(), b.now(), "clocks diverged");
    assert_eq!(a.departures(), b.departures(), "departures diverged");
    assert_eq!(
        (a.arrived, a.dropped, a.overruns),
        (b.arrived, b.dropped, b.overruns),
        "counters diverged"
    );
    let ea: ProbeLog = rec_a.with(|r| r.iter().cloned().collect());
    let eb: ProbeLog = rec_b.with(|r| r.iter().cloned().collect());
    assert_eq!(ea, eb, "probe streams diverged");
}

/// Same law for the word-level model's batch entry.
#[test]
fn rtl_idle_batch_equals_scalar_idle_ticks() {
    let cfg = SwitchConfig::symmetric(4, 16);
    let s = cfg.stages();
    let offers = load_schedule(4, s, 0.50, 600, 0x17BA);
    let build = || {
        let mut sw = PipelinedSwitch::new(cfg.clone());
        let rec = Shared::new(Recorder::unbounded());
        sw.attach_probe(rec.handle());
        let mut current: Vec<Option<(Vec<u64>, usize)>> = vec![None; 4];
        let mut wire: Vec<Option<u64>> = vec![None; 4];
        let mut k = 0usize;
        for now in 0..1_000u64 {
            while k < offers.len() && offers[k].at == now {
                let o = offers[k];
                k += 1;
                current[o.input] = Some((Packet::synth(o.id, o.input, o.dst, s, now).words, 0));
            }
            for (w, slot) in wire.iter_mut().zip(current.iter_mut()) {
                *w = None;
                if let Some((words, i)) = slot {
                    *w = Some(words[*i]);
                    *i += 1;
                    if *i == words.len() {
                        *slot = None;
                    }
                }
            }
            sw.tick(&wire);
        }
        (sw, rec)
    };
    let (mut a, rec_a) = build();
    let (mut b, rec_b) = build();
    let idle: Vec<Option<u64>> = vec![None; 4];
    for _ in 0..40 {
        for _ in 0..5 {
            a.tick(&idle);
        }
        b.tick_idle_batch(5);
    }
    assert_eq!(a.now(), b.now(), "clocks diverged");
    assert_eq!(a.counters(), b.counters(), "counters diverged");
    let ea: ProbeLog = rec_a.with(|r| r.iter().cloned().collect());
    let eb: ProbeLog = rec_b.with(|r| r.iter().cloned().collect());
    assert_eq!(ea, eb, "probe streams diverged");
}

/// The batched fast-forward driver must visit exactly the same states as
/// the per-cycle one: same departures, counters, and clock at target.
#[test]
fn batched_fast_forward_driver_equals_per_cycle_driver() {
    let cfg = SwitchConfig::symmetric(4, 16);
    let s = cfg.stages();
    for load in LOADS {
        let offers = load_schedule(4, s, load, 2_000, 0xFF0 + (load * 100.0) as u64);
        let run = |batched: bool| {
            let mut sw = BehavioralSwitch::new(cfg.clone());
            let rec = Shared::new(Recorder::unbounded());
            sw.attach_probe(rec.handle());
            let mut arr: Vec<Option<usize>> = vec![None; 4];
            let idle: Vec<Option<usize>> = vec![None; 4];
            let mut k = 0usize;
            let mut now = 0u64;
            while k < offers.len() {
                let at = offers[k].at;
                if at > now {
                    if batched {
                        advance_to_batched(&mut sw, at);
                    } else {
                        advance_to(&mut sw, at, |m| {
                            m.tick(&idle);
                        });
                    }
                    now = at;
                }
                arr.fill(None);
                while k < offers.len() && offers[k].at == now {
                    let o = offers[k];
                    k += 1;
                    arr[o.input] = Some(o.dst);
                }
                sw.tick(&arr);
                now += 1;
            }
            let target = now + 50_000;
            if batched {
                advance_to_batched(&mut sw, target);
            } else {
                advance_to(&mut sw, target, |m| {
                    m.tick(&idle);
                });
            }
            assert!(sw.is_quiescent(), "failed to drain by target");
            let deps = sw.departures().to_vec();
            let counts = (sw.arrived, sw.dropped, sw.overruns);
            let events: ProbeLog = rec.with(|r| r.iter().cloned().collect());
            (sw.now(), deps, counts, events)
        };
        let per_cycle = run(false);
        let batched = run(true);
        assert_eq!(
            per_cycle, batched,
            "load {load}: batched driver diverged from per-cycle driver"
        );
    }
}

// ---------------------------------------------------------------------------
// 5. Fault injection under the fast-forward drivers
// ---------------------------------------------------------------------------

/// One memory strike: at cycle `at`, xor `mask` into the slot's word in
/// bank-stage `stage`. A ~30% minority of masks carry two bits (beyond
/// SEC-DED correction), so the detect-drop path is exercised alongside
/// correct-in-place.
#[derive(Debug, Clone, Copy)]
struct Strike {
    at: Cycle,
    stage: usize,
    slot: usize,
    mask: u64,
}

/// Strikes aimed at the busy spans of `offers`: each lands within `2s`
/// cycles of some launch, when the struck slot plausibly holds live
/// words.
fn strike_schedule(
    offers: &[Offer],
    s: usize,
    slots: usize,
    count: usize,
    seed: u64,
) -> Vec<Strike> {
    let mut rng = SplitMix64::new(seed);
    let mut strikes: Vec<Strike> = (0..count)
        .map(|_| {
            let o = offers[rng.below_usize(offers.len())];
            let bit = rng.below_usize(64);
            let mut mask = 1u64 << bit;
            if rng.chance(0.3) {
                mask |= 1u64 << ((bit + 1 + rng.below_usize(63)) % 64);
            }
            Strike {
                at: o.at + rng.below(2 * s as u64),
                stage: rng.below_usize(s),
                slot: rng.below_usize(slots),
                mask,
            }
        })
        .collect();
    strikes.sort_by_key(|st| st.at);
    strikes
}

/// Dense stepping vs `advance_to` vs `advance_to_batched` on the
/// ECC-armed pipelined RTL under a strike schedule: every driver injects
/// the same strikes at the same absolute cycles (fast-forward targets
/// are bounded by the next strike), so the clock, the full counter set —
/// ECC corrections, uncorrectable words, integrity drops — and the probe
/// streams must come out byte-identical.
#[test]
fn fault_injected_fast_forward_drivers_agree_on_detection_counters() {
    let mut cfg = SwitchConfig::symmetric(4, 16);
    cfg.cut_through = false;
    cfg.fused_cut_through = false;
    cfg.integrity.checksum = true;
    cfg.integrity.payload_check = true;
    cfg.integrity.harden = true;
    let cfg = cfg.with_recovery(RecoveryConfig::ecc_only());
    let s = cfg.stages();
    let (mut corrected, mut detected) = (0u64, 0u64);
    for load in [0.10, 0.95] {
        let offers = load_schedule(4, s, load, 1_500, 0xECC + (load * 100.0) as u64);
        let strikes = strike_schedule(&offers, s, 16, 32, 0x5712 + (load * 100.0) as u64);
        // mode 0: dense per-cycle; 1: advance_to; 2: advance_to_batched.
        let run = |mode: u8| {
            let mut sw = PipelinedSwitch::new(cfg.clone());
            let rec = Shared::new(Recorder::unbounded());
            sw.attach_probe(rec.handle());
            let mut current: Vec<Option<(Vec<u64>, usize)>> = vec![None; 4];
            let mut wire: Vec<Option<u64>> = vec![None; 4];
            let idle: Vec<Option<u64>> = vec![None; 4];
            let mut k = 0usize;
            let mut f = 0usize;
            let mut grace = 0u64;
            loop {
                let now = sw.now();
                while f < strikes.len() && strikes[f].at == now {
                    let st = strikes[f];
                    f += 1;
                    let _ = sw.inject_bank_fault(st.stage, Addr(st.slot), st.mask);
                }
                let exhausted = k == offers.len() && f == strikes.len();
                let is_idle =
                    exhausted && current.iter().all(Option::is_none) && sw.next_event().is_none();
                if is_idle {
                    grace += 1;
                    if grace > s as u64 + 4 {
                        break;
                    }
                } else {
                    grace = 0;
                }
                assert!(now < 1_000_000, "mode {mode} failed to drain under faults");
                if mode != 0 && !is_idle && current.iter().all(Option::is_none) {
                    let mut target = u64::MAX;
                    if let Some(o) = offers.get(k) {
                        target = target.min(o.at);
                    }
                    if let Some(st) = strikes.get(f) {
                        target = target.min(st.at);
                    }
                    if target != u64::MAX && target > now {
                        if mode == 1 {
                            advance_to(&mut sw, target, |m| {
                                m.tick(&idle);
                            });
                        } else {
                            advance_to_batched(&mut sw, target);
                        }
                        continue;
                    }
                }
                while k < offers.len() && offers[k].at == now {
                    let o = offers[k];
                    k += 1;
                    current[o.input] = Some((Packet::synth(o.id, o.input, o.dst, s, now).words, 0));
                }
                for (w, slot) in wire.iter_mut().zip(current.iter_mut()) {
                    *w = None;
                    if let Some((words, i)) = slot {
                        *w = Some(words[*i]);
                        *i += 1;
                        if *i == words.len() {
                            *slot = None;
                        }
                    }
                }
                sw.tick(&wire);
            }
            let events: ProbeLog = rec.with(|r| r.iter().cloned().collect());
            (sw.now(), sw.counters(), events)
        };
        let dense = run(0);
        let advanced = run(1);
        let batched = run(2);
        assert_eq!(
            dense, advanced,
            "load {load}: advance_to driver diverged from dense under faults"
        );
        assert_eq!(
            dense, batched,
            "load {load}: advance_to_batched driver diverged from dense under faults"
        );
        corrected += dense.1.ecc_corrected;
        detected += dense.1.ecc_uncorrectable + dense.1.corrupt_drops;
    }
    // Non-vacuity: the three-way agreement proves nothing if no strike
    // was ever corrected or detect-dropped.
    assert!(corrected > 0, "no strike was ever ECC-corrected");
    assert!(detected > 0, "no double-bit strike was ever detected");
}
