//! Property tests for the buffer manager's free-list invariants under
//! seeded random schedules: no double-allocation of a live slot, no
//! slot leak across multicast last-copy frees, and generation tags
//! rejecting every stale queue entry — including the stale entries the
//! sharing policies' `evict` path leaves behind.

use simkernel::ids::PortId;
use simkernel::SplitMix64;
use std::collections::BTreeMap;
use switch_core::bufmgr::{BufferManager, Descriptor};

const N_OUT: usize = 4;

/// Shadow model: address -> (packet id, copies still queued).
type Shadow = BTreeMap<usize, (u64, u32)>;

fn check_against_shadow(m: &BufferManager, shadow: &Shadow) {
    assert_eq!(
        m.occupancy(),
        shadow.len(),
        "occupancy must equal the number of live slots"
    );
    // Live queue lengths must equal the shadow's queued copies per
    // output — stale entries (freed or evicted) never count.
    let live_total: usize = (0..N_OUT).map(|j| m.queue_len_live(PortId(j))).sum();
    let shadow_total: usize = shadow.values().map(|&(_, copies)| copies as usize).sum();
    assert_eq!(
        live_total, shadow_total,
        "live queue entries must equal unread copies of live packets"
    );
}

/// One seeded schedule of alloc / read-free / evict / force-release
/// operations, with the shadow model audited after every step.
fn run_schedule(seed: u64, steps: usize, slots: usize) {
    let mut g = SplitMix64::stream(seed, 0);
    let mut m = BufferManager::new(slots, N_OUT);
    let mut shadow: Shadow = Shadow::new();
    let mut next_id = 1u64;
    let mut c = 0u64;

    for step in 0..steps {
        c += 1;
        match g.below_usize(10) {
            // Allocate: unicast (common) or multicast (every fourth try).
            0..=4 => {
                let d = if g.below_usize(4) == 0 {
                    let mask = (g.next_u64() as u32 % (1 << N_OUT)).max(1);
                    Descriptor::multicast(next_id, PortId(0), mask, c)
                } else {
                    Descriptor::unicast(next_id, PortId(0), PortId(g.below_usize(N_OUT)), c)
                };
                let fanout = d.fanout();
                let id = d.id;
                match m.alloc(d) {
                    Some(addr) => {
                        assert!(
                            shadow.insert(addr.index(), (id, fanout)).is_none(),
                            "seed {seed} step {step}: allocator handed out a live slot \
                             (double-free feeding the free list)"
                        );
                        m.mark_write_started(addr, c);
                        next_id += 1;
                    }
                    None => {
                        assert_eq!(
                            shadow.len(),
                            slots,
                            "seed {seed} step {step}: alloc failed below capacity (slot leak)"
                        );
                    }
                }
            }
            // Read-initiate: pop a random output's head; the slot must
            // free exactly when the last copy leaves.
            5..=7 => {
                let j = PortId(g.below_usize(N_OUT));
                if m.head(j).is_some() {
                    let (addr, d, freed) = m.pop_and_free(j);
                    let entry = shadow.get_mut(&addr.index()).unwrap_or_else(|| {
                        panic!(
                            "seed {seed} step {step}: popped a slot the shadow \
                                 thinks is free (stale entry served as live)"
                        )
                    });
                    assert_eq!(
                        entry.0, d.id,
                        "seed {seed} step {step}: descriptor id drifted"
                    );
                    entry.1 -= 1;
                    let last_copy = entry.1 == 0;
                    assert_eq!(
                        freed, last_copy,
                        "seed {seed} step {step}: slot must free exactly on the last \
                         multicast copy"
                    );
                    if last_copy {
                        shadow.remove(&addr.index());
                    }
                }
            }
            // Evict (sharing-policy push-out): rearmost fully-written
            // entry of the longest live queue; all copies leave at once.
            8 => {
                let victim = (0..N_OUT)
                    .max_by_key(|&j| m.queue_len_live(PortId(j)))
                    .expect("N_OUT >= 1");
                if let Some(addr) =
                    m.rearmost_matching(PortId(victim), |d, refs| refs == d.fanout())
                {
                    let d = m.evict(addr);
                    let (id, _) = shadow.remove(&addr.index()).unwrap_or_else(|| {
                        panic!("seed {seed} step {step}: evicted a slot the shadow freed")
                    });
                    assert_eq!(
                        id, d.id,
                        "seed {seed} step {step}: evicted the wrong packet"
                    );
                }
            }
            // Force-release (latch-overrun path): leaves stale queued
            // entries behind for the generation tags to reject.
            _ => {
                if let Some((&addr, _)) = shadow.iter().next() {
                    // Only packets with all copies still queued: releasing
                    // under a partially-read multicast is the overrun
                    // corner the RTL never reaches via this API.
                    let (_, copies) = shadow[&addr];
                    let full = m
                        .descriptor(simkernel::ids::Addr(addr))
                        .is_some_and(|d| d.fanout() == copies);
                    if full {
                        m.release(simkernel::ids::Addr(addr));
                        shadow.remove(&addr);
                    }
                }
            }
        }
        check_against_shadow(&m, &shadow);
    }

    // Drain: every remaining live packet must come out, stale entries
    // must all be skipped, and the pool must end exactly full.
    for j in 0..N_OUT {
        while m.head(PortId(j)).is_some() {
            let (addr, _, freed) = m.pop_and_free(PortId(j));
            let entry = shadow
                .get_mut(&addr.index())
                .expect("drained a slot the shadow freed");
            entry.1 -= 1;
            if entry.1 == 0 {
                assert!(freed);
                shadow.remove(&addr.index());
            }
        }
    }
    assert!(
        shadow.is_empty(),
        "seed {seed}: packets left behind after drain"
    );
    assert_eq!(
        m.occupancy(),
        0,
        "seed {seed}: leaked slots after full drain"
    );
    // The free list must hold every slot exactly once: allocating to
    // capacity succeeds, one more fails.
    for k in 0..slots {
        assert!(
            m.alloc(Descriptor::unicast(
                u64::MAX - k as u64,
                PortId(0),
                PortId(0),
                c
            ))
            .is_some(),
            "seed {seed}: free list lost slot {k} of {slots}"
        );
    }
    assert!(m
        .alloc(Descriptor::unicast(0, PortId(0), PortId(0), c))
        .is_none());
}

#[test]
fn seeded_schedules_hold_the_free_list_invariants() {
    for seed in 0..48u64 {
        run_schedule(seed, 400, 8);
    }
}

#[test]
fn small_pool_maximizes_reuse_pressure() {
    // Two slots, four queues: every allocation recycles a recently
    // freed address, so generation tags carry the whole burden.
    for seed in 0..48u64 {
        run_schedule(seed ^ 0x5EED, 300, 2);
    }
}

#[test]
fn stale_entries_after_evict_are_invisible() {
    // Evict a multicast with copies on several queues, reallocate the
    // slot, and verify no queue serves the old packet under the new
    // generation.
    let mut m = BufferManager::new(1, 4);
    let addr = m
        .alloc(Descriptor::multicast(7, PortId(0), 0b1111, 0))
        .expect("empty pool");
    m.mark_write_started(addr, 0);
    assert_eq!(m.queue_len_live(PortId(3)), 1);
    let d = m.evict(addr);
    assert_eq!(d.id, 7);
    assert_eq!(m.occupancy(), 0);
    // Same slot, new occupant, single destination.
    let addr2 = m
        .alloc(Descriptor::unicast(8, PortId(0), PortId(2), 1))
        .expect("slot was freed by evict");
    assert_eq!(addr2, addr, "one-slot pool must reuse the evicted slot");
    for j in 0..4 {
        let live = m.queue_len_live(PortId(j));
        assert_eq!(
            live,
            usize::from(j == 2),
            "queue {j} must hold only the new packet"
        );
    }
    let (got, desc, freed) = {
        assert!(m.head(PortId(2)).is_some());
        m.pop_and_free(PortId(2))
    };
    assert_eq!((got, desc.id, freed), (addr, 8, true));
    // Queues 0, 1, 3 still hold stale entries for packet 7; heads must
    // reject them all.
    for j in [0usize, 1, 3] {
        assert!(
            m.head(PortId(j)).is_none(),
            "queue {j} served a generation-stale entry"
        );
    }
}
