//! Event-horizon fast-forward equivalence (DESIGN.md §6).
//!
//! The `simkernel::Horizon` contract promises that jumping the clock
//! across an idle span leaves a model in exactly the state dense
//! per-cycle stepping would have produced. This property test drives
//! every organization — behavioral, pipelined RTL, wide-memory, and
//! interleaved — over seeded randomized *bursty* schedules (packet
//! clusters separated by long dead gaps, the workload fast-forwarding
//! exists for), once densely and once through the kernel, and asserts
//! the departure streams and event counters are byte-identical. The
//! fast path may change wall time only, never a departure cycle.
//!
//! The fault-injected variant re-runs the same property with the ECC
//! recovery overlay armed and a strike schedule riding along: upsets
//! land at identical absolute cycles on both paths (fast-forward jumps
//! are bounded by the next strike), so the detection/correction
//! counters must also come out byte-identical.

use telegraphos::membank::interleaved::BankId;
use telegraphos::simkernel::cell::Packet;
use telegraphos::simkernel::ids::{Addr, Cycle};
use telegraphos::simkernel::{Horizon, SplitMix64};
use telegraphos::switch_core::behavioral::{BehavioralDeparture, BehavioralSwitch};
use telegraphos::switch_core::config::SwitchConfig;
use telegraphos::switch_core::events::SwitchCounters;
use telegraphos::switch_core::ibank::{InterleavedSwitch, InterleavedSwitchConfig};
use telegraphos::switch_core::recovery::RecoveryConfig;
use telegraphos::switch_core::rtl::{OutputCollector, PipelinedSwitch};
use telegraphos::switch_core::widemem::{WideMemorySwitchRtl, WideSwitchConfig};

/// One scheduled launch: header enters input `input` at cycle `at`.
#[derive(Debug, Clone, Copy)]
struct Offer {
    at: Cycle,
    input: usize,
    dst: usize,
    id: u64,
}

/// A bursty schedule: clusters of back-to-back packets separated by
/// gaps of 100..2000 idle cycles. Offers respect wire framing (an
/// input's next header is at least `s` cycles after its previous one).
fn bursty_schedule(n: usize, s: usize, bursts: usize, seed: u64) -> Vec<Offer> {
    let mut rng = SplitMix64::new(seed);
    let mut offers = Vec::new();
    let mut next_free = vec![0u64; n];
    let mut base = 0u64;
    let mut id = 1u64;
    for _ in 0..bursts {
        base += 100 + rng.below(1900);
        let packets_per_input = 1 + rng.below(3);
        for (i, nf) in next_free.iter_mut().enumerate() {
            if !rng.chance(0.8) {
                continue;
            }
            let mut at = base.max(*nf) + rng.below(4);
            for _ in 0..packets_per_input {
                offers.push(Offer {
                    at,
                    input: i,
                    dst: rng.below_usize(n),
                    id,
                });
                id += 1;
                *nf = at + s as u64;
                at = *nf + rng.below(3);
            }
        }
    }
    offers.sort_by_key(|o| (o.at, o.input));
    offers
}

/// The three word-level organizations behind one interface.
enum Word {
    Pipelined(Box<PipelinedSwitch>),
    Wide(Box<WideMemorySwitchRtl>),
    Interleaved(Box<InterleavedSwitch>),
}

impl Word {
    fn build(org: &str, n: usize, slots: usize) -> (Self, usize) {
        match org {
            "pipelined" => {
                let cfg = SwitchConfig::symmetric(n, slots);
                let s = cfg.stages();
                (Word::Pipelined(Box::new(PipelinedSwitch::new(cfg))), s)
            }
            "wide" => {
                let cfg = WideSwitchConfig::fig3(n, slots);
                let s = cfg.packet_words();
                (Word::Wide(Box::new(WideMemorySwitchRtl::new(cfg))), s)
            }
            "interleaved" => {
                let cfg = InterleavedSwitchConfig::symmetric(n, slots);
                let s = cfg.packet_words();
                (Word::Interleaved(Box::new(InterleavedSwitch::new(cfg))), s)
            }
            other => panic!("unknown org {other}"),
        }
    }

    fn tick(&mut self, wire: &[Option<u64>]) -> &[Option<u64>] {
        match self {
            Word::Pipelined(sw) => sw.tick(wire),
            Word::Wide(sw) => sw.tick(wire),
            Word::Interleaved(sw) => sw.tick(wire),
        }
    }

    fn now(&self) -> Cycle {
        match self {
            Word::Pipelined(sw) => sw.now(),
            Word::Wide(sw) => sw.now(),
            Word::Interleaved(sw) => sw.now(),
        }
    }

    fn next_event(&self) -> Option<Cycle> {
        match self {
            Word::Pipelined(sw) => sw.next_event(),
            Word::Wide(sw) => sw.next_event(),
            Word::Interleaved(sw) => sw.next_event(),
        }
    }

    fn jump_to(&mut self, target: Cycle) {
        match self {
            Word::Pipelined(sw) => Horizon::jump_to(&mut **sw, target),
            Word::Wide(sw) => Horizon::jump_to(&mut **sw, target),
            Word::Interleaved(sw) => Horizon::jump_to(&mut **sw, target),
        }
    }

    fn counters(&self) -> SwitchCounters {
        match self {
            Word::Pipelined(sw) => sw.counters(),
            Word::Wide(sw) => sw.counters(),
            Word::Interleaved(sw) => sw.counters(),
        }
    }

    /// Like [`Word::build`], but ECC-armed: recovery overlay on,
    /// store-and-forward with the full integrity machinery (mirroring
    /// the chaos harness), so injected upsets are scrubbed on read
    /// instead of silently corrupting deliveries.
    fn build_armed(org: &str, n: usize, slots: usize) -> (Self, usize) {
        let rec = RecoveryConfig::ecc_only();
        match org {
            "pipelined" => {
                let mut cfg = SwitchConfig::symmetric(n, slots);
                cfg.cut_through = false;
                cfg.fused_cut_through = false;
                cfg.integrity.checksum = true;
                cfg.integrity.payload_check = true;
                cfg.integrity.harden = true;
                let cfg = cfg.with_recovery(rec);
                let s = cfg.stages();
                (Word::Pipelined(Box::new(PipelinedSwitch::new(cfg))), s)
            }
            "wide" => {
                let cfg = WideSwitchConfig::fig3(n, slots).with_recovery(rec);
                let s = cfg.packet_words();
                (Word::Wide(Box::new(WideMemorySwitchRtl::new(cfg))), s)
            }
            "interleaved" => {
                let cfg = InterleavedSwitchConfig::symmetric(n, slots).with_recovery(rec);
                let s = cfg.packet_words();
                (Word::Interleaved(Box::new(InterleavedSwitch::new(cfg))), s)
            }
            other => panic!("unknown org {other}"),
        }
    }

    /// Apply one strike, mapping its raw coordinates into this
    /// organization's address space (`ecc_only` arms no spares, so the
    /// primary range is the whole address space).
    fn inject(&mut self, st: &Strike, s: usize, slots: usize) {
        match self {
            Word::Pipelined(sw) => {
                let _ = sw.inject_bank_fault(st.a % s, Addr(st.b % slots), st.mask);
            }
            Word::Wide(sw) => {
                let _ = sw.inject_memory_fault(Addr(st.b % slots), st.a % s, st.mask);
            }
            Word::Interleaved(sw) => {
                let _ = sw.inject_bank_fault(BankId(st.b % slots), st.a % s, st.mask);
            }
        }
    }
}

/// One memory strike: at cycle `at`, xor `mask` into the word addressed
/// by the organization-agnostic coordinates `(a, b)`. A ~30% minority of
/// masks carry two bits — beyond SEC-DED correction, so the detect-drop
/// path gets exercised alongside the correct-in-place path.
#[derive(Debug, Clone, Copy)]
struct Strike {
    at: Cycle,
    a: usize,
    b: usize,
    mask: u64,
}

/// Strikes aimed at the busy spans of `offers`: each lands within `2s`
/// cycles of some launch, when the struck slot plausibly holds live
/// words (a strike into dead memory corrupts nothing anyone reads).
fn strike_schedule(offers: &[Offer], s: usize, count: usize, seed: u64) -> Vec<Strike> {
    let mut rng = SplitMix64::new(seed);
    let mut strikes: Vec<Strike> = (0..count)
        .map(|_| {
            let o = offers[rng.below_usize(offers.len())];
            let at = o.at + rng.below(2 * s as u64);
            let bit = rng.below_usize(64);
            let mut mask = 1u64 << bit;
            if rng.chance(0.3) {
                mask |= 1u64 << ((bit + 1 + rng.below_usize(63)) % 64);
            }
            Strike {
                at,
                a: rng.below_usize(1 << 16),
                b: rng.below_usize(1 << 16),
                mask,
            }
        })
        .collect();
    strikes.sort_by_key(|st| st.at);
    strikes
}

/// Replay `offers` on a word-level organization; `fast` routes the
/// inter-burst gaps through the horizon kernel, dense ticks every cycle.
/// Returns the delivered (id, output, first, last) stream plus counters.
fn run_word(
    org: &str,
    n: usize,
    offers: &[Offer],
    fast: bool,
) -> (Vec<(u64, usize, Cycle, Cycle)>, SwitchCounters) {
    let (mut sw, s) = Word::build(org, n, 4 * n);
    let mut col = OutputCollector::new(n, s);
    let mut current: Vec<Option<(Vec<u64>, usize)>> = vec![None; n];
    let mut wire = vec![None; n];
    let mut deliveries = Vec::new();
    let mut k = 0;
    let mut grace = 0u64;
    loop {
        let now = sw.now();
        let exhausted = k == offers.len();
        let idle = exhausted && current.iter().all(Option::is_none) && sw.next_event().is_none();
        if idle {
            grace += 1;
            if grace > s as u64 + 4 {
                break;
            }
        } else {
            grace = 0;
        }
        assert!(now < 1_000_000, "{org} failed to drain");
        if fast && !idle && current.iter().all(Option::is_none) {
            let horizon = match sw.next_event() {
                None => Some(u64::MAX),
                Some(e) if e > now => Some(e),
                Some(_) => None,
            };
            if let Some(h) = horizon {
                let mut target = h;
                if let Some(o) = offers.get(k) {
                    target = target.min(o.at);
                }
                if target > now && target != u64::MAX {
                    sw.jump_to(target);
                    continue;
                }
            }
        }
        while k < offers.len() && offers[k].at == now {
            let o = offers[k];
            k += 1;
            assert!(current[o.input].is_none(), "schedule violates framing");
            let p = Packet::synth(o.id, o.input, o.dst, s, now);
            current[o.input] = Some((p.words, 0));
        }
        for (w, slot) in wire.iter_mut().zip(current.iter_mut()) {
            *w = None;
            if let Some((words, i)) = slot {
                *w = Some(words[*i]);
                *i += 1;
                if *i == words.len() {
                    *slot = None;
                }
            }
        }
        let out = sw.tick(&wire);
        col.observe(now, out);
        for d in col.take() {
            assert!(d.verify_payload(), "{org}: corrupted payload");
            deliveries.push((d.id, d.output.index(), d.first_cycle, d.last_cycle));
        }
    }
    (deliveries, sw.counters())
}

/// One delivery under fault injection: `(id, output, first, last,
/// payload-intact)`.
type FaultedDelivery = (u64, usize, Cycle, Cycle, bool);

/// [`run_word`] with a strike schedule riding along on an ECC-armed
/// switch: strikes are injected at identical absolute cycles in the
/// dense and fast runs (the fast path bounds each jump by the next
/// strike), so detection/correction counters must come out
/// byte-identical. Deliveries carry their payload verdict instead of
/// asserting it — a double-bit strike may legitimately kill a packet,
/// as long as it kills it identically on both paths.
fn run_word_faulted(
    org: &str,
    n: usize,
    offers: &[Offer],
    strikes: &[Strike],
    fast: bool,
) -> (Vec<FaultedDelivery>, SwitchCounters) {
    let slots = 4 * n;
    let (mut sw, s) = Word::build_armed(org, n, slots);
    let mut col = OutputCollector::new(n, s);
    let mut current: Vec<Option<(Vec<u64>, usize)>> = vec![None; n];
    let mut wire = vec![None; n];
    let mut deliveries = Vec::new();
    let mut k = 0;
    let mut f = 0;
    let mut grace = 0u64;
    loop {
        let now = sw.now();
        while f < strikes.len() && strikes[f].at == now {
            sw.inject(&strikes[f], s, slots);
            f += 1;
        }
        let exhausted = k == offers.len() && f == strikes.len();
        let idle = exhausted && current.iter().all(Option::is_none) && sw.next_event().is_none();
        if idle {
            grace += 1;
            if grace > s as u64 + 4 {
                break;
            }
        } else {
            grace = 0;
        }
        assert!(now < 1_000_000, "{org} failed to drain under faults");
        if fast && !idle && current.iter().all(Option::is_none) {
            let horizon = match sw.next_event() {
                None => Some(u64::MAX),
                Some(e) if e > now => Some(e),
                Some(_) => None,
            };
            if let Some(h) = horizon {
                let mut target = h;
                if let Some(o) = offers.get(k) {
                    target = target.min(o.at);
                }
                if let Some(st) = strikes.get(f) {
                    target = target.min(st.at);
                }
                if target > now && target != u64::MAX {
                    sw.jump_to(target);
                    continue;
                }
            }
        }
        while k < offers.len() && offers[k].at == now {
            let o = offers[k];
            k += 1;
            assert!(current[o.input].is_none(), "schedule violates framing");
            let p = Packet::synth(o.id, o.input, o.dst, s, now);
            current[o.input] = Some((p.words, 0));
        }
        for (w, slot) in wire.iter_mut().zip(current.iter_mut()) {
            *w = None;
            if let Some((words, i)) = slot {
                *w = Some(words[*i]);
                *i += 1;
                if *i == words.len() {
                    *slot = None;
                }
            }
        }
        let out = sw.tick(&wire);
        col.observe(now, out);
        for d in col.take() {
            deliveries.push((
                d.id,
                d.output.index(),
                d.first_cycle,
                d.last_cycle,
                d.verify_payload(),
            ));
        }
    }
    (deliveries, sw.counters())
}

/// Replay `offers` on the behavioral model (header-per-launch, same
/// schedule); returns the raw departure records plus key counters.
fn run_behavioral(
    n: usize,
    offers: &[Offer],
    fast: bool,
) -> (Vec<BehavioralDeparture>, (u64, u64, u64), u64) {
    let cfg = SwitchConfig::symmetric(n, 4 * n);
    let s = cfg.stages();
    let mut sw = BehavioralSwitch::new(cfg);
    let mut arr: Vec<Option<usize>> = vec![None; n];
    let mut k = 0;
    let mut grace = 0u64;
    let mut skipped = 0u64;
    loop {
        let now = sw.now();
        let exhausted = k == offers.len();
        let idle = exhausted && sw.is_quiescent();
        if idle {
            grace += 1;
            if grace > s as u64 + 4 {
                break;
            }
        } else {
            grace = 0;
        }
        assert!(now < 1_000_000, "behavioral failed to drain");
        if fast && !idle {
            let horizon = match sw.next_event() {
                None => Some(u64::MAX),
                Some(e) if e > now => Some(e),
                Some(_) => None,
            };
            if let Some(h) = horizon {
                let mut target = h;
                if let Some(o) = offers.get(k) {
                    target = target.min(o.at);
                }
                if target > now && target != u64::MAX {
                    skipped += target - now;
                    Horizon::jump_to(&mut sw, target);
                    continue;
                }
            }
        }
        arr.fill(None);
        while k < offers.len() && offers[k].at == now {
            let o = offers[k];
            k += 1;
            assert!(sw.input_free(o.input), "schedule violates framing");
            arr[o.input] = Some(o.dst);
        }
        sw.tick(&arr);
    }
    let counters = (sw.arrived, sw.dropped, sw.overruns);
    (sw.departures().to_vec(), counters, skipped)
}

#[test]
fn word_orgs_fast_forward_is_bit_exact() {
    let n = 4;
    for org in ["pipelined", "wide", "interleaved"] {
        for seed in 0..6u64 {
            let s = Word::build(org, n, 4 * n).1;
            let offers = bursty_schedule(n, s, 8, 0x5EED + seed);
            let (dense_d, dense_c) = run_word(org, n, &offers, false);
            let (fast_d, fast_c) = run_word(org, n, &offers, true);
            assert_eq!(
                dense_d, fast_d,
                "{org} seed {seed}: departure streams diverged"
            );
            assert_eq!(dense_c, fast_c, "{org} seed {seed}: counters diverged");
        }
    }
}

#[test]
fn word_orgs_fast_forward_is_bit_exact_under_fault_injection() {
    let n = 4;
    let (mut corrected, mut detected) = (0u64, 0u64);
    for org in ["pipelined", "wide", "interleaved"] {
        for seed in 0..4u64 {
            let s = Word::build(org, n, 4 * n).1;
            let offers = bursty_schedule(n, s, 8, 0xFA17 + seed);
            let strikes = strike_schedule(&offers, s, 24, 0xECC0 + seed);
            let (dense_d, dense_c) = run_word_faulted(org, n, &offers, &strikes, false);
            let (fast_d, fast_c) = run_word_faulted(org, n, &offers, &strikes, true);
            assert_eq!(
                dense_d, fast_d,
                "{org} seed {seed}: faulted departure streams diverged"
            );
            assert_eq!(
                dense_c, fast_c,
                "{org} seed {seed}: detection/correction counters diverged"
            );
            corrected += dense_c.ecc_corrected;
            detected += dense_c.ecc_uncorrectable + dense_c.corrupt_drops;
        }
    }
    // Non-vacuity: the equivalence proves nothing if the campaign never
    // actually corrected or detect-dropped anything.
    assert!(corrected > 0, "no strike was ever ECC-corrected");
    assert!(detected > 0, "no double-bit strike was ever detected");
}

#[test]
fn behavioral_fast_forward_is_bit_exact() {
    let n = 4;
    let s = SwitchConfig::symmetric(n, 4 * n).stages();
    for seed in 0..8u64 {
        let offers = bursty_schedule(n, s, 10, 0xBEE5 + seed);
        let (dense_d, dense_c, _) = run_behavioral(n, &offers, false);
        let (fast_d, fast_c, _) = run_behavioral(n, &offers, true);
        assert_eq!(dense_d, fast_d, "seed {seed}: departure streams diverged");
        assert_eq!(dense_c, fast_c, "seed {seed}: counters diverged");
    }
}

#[test]
fn fast_forward_actually_skips() {
    // Sanity: on a bursty schedule the kernel must skip the bulk of the
    // cycles, otherwise the equivalence above is vacuous.
    let n = 4;
    let s = SwitchConfig::symmetric(n, 4 * n).stages();
    let offers = bursty_schedule(n, s, 10, 0xCAFE);
    let span = offers.last().unwrap().at;
    let (_, _, skipped) = run_behavioral(n, &offers, true);
    assert!(
        skipped > span / 2,
        "expected most of the {span}-cycle span skipped, got {skipped}"
    );
}
