//! Event-horizon fast-forward equivalence (DESIGN.md §6).
//!
//! The `simkernel::Horizon` contract promises that jumping the clock
//! across an idle span leaves a model in exactly the state dense
//! per-cycle stepping would have produced. This property test drives
//! every organization — behavioral, pipelined RTL, wide-memory, and
//! interleaved — over seeded randomized *bursty* schedules (packet
//! clusters separated by long dead gaps, the workload fast-forwarding
//! exists for), once densely and once through the kernel, and asserts
//! the departure streams and event counters are byte-identical. The
//! fast path may change wall time only, never a departure cycle.

use telegraphos::simkernel::cell::Packet;
use telegraphos::simkernel::ids::Cycle;
use telegraphos::simkernel::{Horizon, SplitMix64};
use telegraphos::switch_core::behavioral::{BehavioralDeparture, BehavioralSwitch};
use telegraphos::switch_core::config::SwitchConfig;
use telegraphos::switch_core::events::SwitchCounters;
use telegraphos::switch_core::ibank::{InterleavedSwitch, InterleavedSwitchConfig};
use telegraphos::switch_core::rtl::{OutputCollector, PipelinedSwitch};
use telegraphos::switch_core::widemem::{WideMemorySwitchRtl, WideSwitchConfig};

/// One scheduled launch: header enters input `input` at cycle `at`.
#[derive(Debug, Clone, Copy)]
struct Offer {
    at: Cycle,
    input: usize,
    dst: usize,
    id: u64,
}

/// A bursty schedule: clusters of back-to-back packets separated by
/// gaps of 100..2000 idle cycles. Offers respect wire framing (an
/// input's next header is at least `s` cycles after its previous one).
fn bursty_schedule(n: usize, s: usize, bursts: usize, seed: u64) -> Vec<Offer> {
    let mut rng = SplitMix64::new(seed);
    let mut offers = Vec::new();
    let mut next_free = vec![0u64; n];
    let mut base = 0u64;
    let mut id = 1u64;
    for _ in 0..bursts {
        base += 100 + rng.below(1900);
        let packets_per_input = 1 + rng.below(3);
        for (i, nf) in next_free.iter_mut().enumerate() {
            if !rng.chance(0.8) {
                continue;
            }
            let mut at = base.max(*nf) + rng.below(4);
            for _ in 0..packets_per_input {
                offers.push(Offer {
                    at,
                    input: i,
                    dst: rng.below_usize(n),
                    id,
                });
                id += 1;
                *nf = at + s as u64;
                at = *nf + rng.below(3);
            }
        }
    }
    offers.sort_by_key(|o| (o.at, o.input));
    offers
}

/// The three word-level organizations behind one interface.
enum Word {
    Pipelined(Box<PipelinedSwitch>),
    Wide(Box<WideMemorySwitchRtl>),
    Interleaved(Box<InterleavedSwitch>),
}

impl Word {
    fn build(org: &str, n: usize, slots: usize) -> (Self, usize) {
        match org {
            "pipelined" => {
                let cfg = SwitchConfig::symmetric(n, slots);
                let s = cfg.stages();
                (Word::Pipelined(Box::new(PipelinedSwitch::new(cfg))), s)
            }
            "wide" => {
                let cfg = WideSwitchConfig::fig3(n, slots);
                let s = cfg.packet_words();
                (Word::Wide(Box::new(WideMemorySwitchRtl::new(cfg))), s)
            }
            "interleaved" => {
                let cfg = InterleavedSwitchConfig::symmetric(n, slots);
                let s = cfg.packet_words();
                (Word::Interleaved(Box::new(InterleavedSwitch::new(cfg))), s)
            }
            other => panic!("unknown org {other}"),
        }
    }

    fn tick(&mut self, wire: &[Option<u64>]) -> &[Option<u64>] {
        match self {
            Word::Pipelined(sw) => sw.tick(wire),
            Word::Wide(sw) => sw.tick(wire),
            Word::Interleaved(sw) => sw.tick(wire),
        }
    }

    fn now(&self) -> Cycle {
        match self {
            Word::Pipelined(sw) => sw.now(),
            Word::Wide(sw) => sw.now(),
            Word::Interleaved(sw) => sw.now(),
        }
    }

    fn next_event(&self) -> Option<Cycle> {
        match self {
            Word::Pipelined(sw) => sw.next_event(),
            Word::Wide(sw) => sw.next_event(),
            Word::Interleaved(sw) => sw.next_event(),
        }
    }

    fn jump_to(&mut self, target: Cycle) {
        match self {
            Word::Pipelined(sw) => Horizon::jump_to(&mut **sw, target),
            Word::Wide(sw) => Horizon::jump_to(&mut **sw, target),
            Word::Interleaved(sw) => Horizon::jump_to(&mut **sw, target),
        }
    }

    fn counters(&self) -> SwitchCounters {
        match self {
            Word::Pipelined(sw) => sw.counters(),
            Word::Wide(sw) => sw.counters(),
            Word::Interleaved(sw) => sw.counters(),
        }
    }
}

/// Replay `offers` on a word-level organization; `fast` routes the
/// inter-burst gaps through the horizon kernel, dense ticks every cycle.
/// Returns the delivered (id, output, first, last) stream plus counters.
fn run_word(
    org: &str,
    n: usize,
    offers: &[Offer],
    fast: bool,
) -> (Vec<(u64, usize, Cycle, Cycle)>, SwitchCounters) {
    let (mut sw, s) = Word::build(org, n, 4 * n);
    let mut col = OutputCollector::new(n, s);
    let mut current: Vec<Option<(Vec<u64>, usize)>> = vec![None; n];
    let mut wire = vec![None; n];
    let mut deliveries = Vec::new();
    let mut k = 0;
    let mut grace = 0u64;
    loop {
        let now = sw.now();
        let exhausted = k == offers.len();
        let idle = exhausted && current.iter().all(Option::is_none) && sw.next_event().is_none();
        if idle {
            grace += 1;
            if grace > s as u64 + 4 {
                break;
            }
        } else {
            grace = 0;
        }
        assert!(now < 1_000_000, "{org} failed to drain");
        if fast && !idle && current.iter().all(Option::is_none) {
            let horizon = match sw.next_event() {
                None => Some(u64::MAX),
                Some(e) if e > now => Some(e),
                Some(_) => None,
            };
            if let Some(h) = horizon {
                let mut target = h;
                if let Some(o) = offers.get(k) {
                    target = target.min(o.at);
                }
                if target > now && target != u64::MAX {
                    sw.jump_to(target);
                    continue;
                }
            }
        }
        while k < offers.len() && offers[k].at == now {
            let o = offers[k];
            k += 1;
            assert!(current[o.input].is_none(), "schedule violates framing");
            let p = Packet::synth(o.id, o.input, o.dst, s, now);
            current[o.input] = Some((p.words, 0));
        }
        for (w, slot) in wire.iter_mut().zip(current.iter_mut()) {
            *w = None;
            if let Some((words, i)) = slot {
                *w = Some(words[*i]);
                *i += 1;
                if *i == words.len() {
                    *slot = None;
                }
            }
        }
        let out = sw.tick(&wire);
        col.observe(now, out);
        for d in col.take() {
            assert!(d.verify_payload(), "{org}: corrupted payload");
            deliveries.push((d.id, d.output.index(), d.first_cycle, d.last_cycle));
        }
    }
    (deliveries, sw.counters())
}

/// Replay `offers` on the behavioral model (header-per-launch, same
/// schedule); returns the raw departure records plus key counters.
fn run_behavioral(
    n: usize,
    offers: &[Offer],
    fast: bool,
) -> (Vec<BehavioralDeparture>, (u64, u64, u64), u64) {
    let cfg = SwitchConfig::symmetric(n, 4 * n);
    let s = cfg.stages();
    let mut sw = BehavioralSwitch::new(cfg);
    let mut arr: Vec<Option<usize>> = vec![None; n];
    let mut k = 0;
    let mut grace = 0u64;
    let mut skipped = 0u64;
    loop {
        let now = sw.now();
        let exhausted = k == offers.len();
        let idle = exhausted && sw.is_quiescent();
        if idle {
            grace += 1;
            if grace > s as u64 + 4 {
                break;
            }
        } else {
            grace = 0;
        }
        assert!(now < 1_000_000, "behavioral failed to drain");
        if fast && !idle {
            let horizon = match sw.next_event() {
                None => Some(u64::MAX),
                Some(e) if e > now => Some(e),
                Some(_) => None,
            };
            if let Some(h) = horizon {
                let mut target = h;
                if let Some(o) = offers.get(k) {
                    target = target.min(o.at);
                }
                if target > now && target != u64::MAX {
                    skipped += target - now;
                    Horizon::jump_to(&mut sw, target);
                    continue;
                }
            }
        }
        arr.fill(None);
        while k < offers.len() && offers[k].at == now {
            let o = offers[k];
            k += 1;
            assert!(sw.input_free(o.input), "schedule violates framing");
            arr[o.input] = Some(o.dst);
        }
        sw.tick(&arr);
    }
    let counters = (sw.arrived, sw.dropped, sw.overruns);
    (sw.departures().to_vec(), counters, skipped)
}

#[test]
fn word_orgs_fast_forward_is_bit_exact() {
    let n = 4;
    for org in ["pipelined", "wide", "interleaved"] {
        for seed in 0..6u64 {
            let s = Word::build(org, n, 4 * n).1;
            let offers = bursty_schedule(n, s, 8, 0x5EED + seed);
            let (dense_d, dense_c) = run_word(org, n, &offers, false);
            let (fast_d, fast_c) = run_word(org, n, &offers, true);
            assert_eq!(
                dense_d, fast_d,
                "{org} seed {seed}: departure streams diverged"
            );
            assert_eq!(dense_c, fast_c, "{org} seed {seed}: counters diverged");
        }
    }
}

#[test]
fn behavioral_fast_forward_is_bit_exact() {
    let n = 4;
    let s = SwitchConfig::symmetric(n, 4 * n).stages();
    for seed in 0..8u64 {
        let offers = bursty_schedule(n, s, 10, 0xBEE5 + seed);
        let (dense_d, dense_c, _) = run_behavioral(n, &offers, false);
        let (fast_d, fast_c, _) = run_behavioral(n, &offers, true);
        assert_eq!(dense_d, fast_d, "seed {seed}: departure streams diverged");
        assert_eq!(dense_c, fast_c, "seed {seed}: counters diverged");
    }
}

#[test]
fn fast_forward_actually_skips() {
    // Sanity: on a bursty schedule the kernel must skip the bulk of the
    // cycles, otherwise the equivalence above is vacuous.
    let n = 4;
    let s = SwitchConfig::symmetric(n, 4 * n).stages();
    let offers = bursty_schedule(n, s, 10, 0xCAFE);
    let span = offers.last().unwrap().at;
    let (_, _, skipped) = run_behavioral(n, &offers, true);
    assert!(
        skipped > span / 2,
        "expected most of the {span}-cycle span skipped, got {skipped}"
    );
}
