//! Determinism pinning of the fabric component-graph runtime.
//!
//! The sharded executor's contract is absolute: for any worker count,
//! the run is **byte-identical** to the sequential reference — delivered
//! cells (order included), per-element accepted/dropped counters, and
//! the occupancy probe series. `FabricRun` derives `PartialEq` over all
//! of that, and `digest()` folds it into one FNV fingerprint, so each
//! comparison here is a full-state check, not a summary check.
//!
//! Alongside: the link-latency law (every delivered cell pays at least
//! `hops × link_latency` cycles, scaled by the element cell time) and
//! cell conservation (offered = delivered + dropped + residual) on
//! every topology the builders produce.

use telegraphos::fabric::{topo, ElementKind, Fabric, FabricRun, Pattern, Topology, Workload};

/// The topology ladder under test: omega / banyan / folded Clos /
/// fat-tree at 64–256 endpoints.
fn ladder() -> Vec<(&'static str, Topology)> {
    vec![
        ("omega-64", topo::omega(4, 3)),
        ("omega-256", topo::omega(4, 4)),
        ("banyan-64", topo::banyan(4, 3)),
        ("clos-64", topo::clos2(16, 4)),
        ("clos-256", topo::clos2(16, 16)),
        ("fattree-128", topo::fat_tree(8)),
    ]
}

fn workload(seed: u64, pattern: Pattern) -> Workload {
    Workload {
        pattern,
        load: 0.6,
        seed,
    }
}

fn run_at(topology: &Topology, kind: ElementKind, w: &Workload, jobs: usize) -> FabricRun {
    Fabric::new(topology.clone(), kind).run(300, 200, w, jobs)
}

#[test]
fn sharded_runs_are_byte_identical_for_any_jobs() {
    for (name, topology) in ladder() {
        let uniform_radix = topology.radix.iter().all(|&r| r == topology.radix[0]);
        let mut kinds = vec![ElementKind::Scalar { capacity: Some(16) }];
        if uniform_radix {
            kinds.push(ElementKind::Behavioral {
                slots: 4 * topology.max_radix(),
            });
        }
        for kind in kinds {
            for pattern in [Pattern::Uniform, Pattern::Hotspot { hot_frac: 0.25 }] {
                let w = workload(0xDE7E12, pattern);
                let seq = run_at(&topology, kind, &w, 1);
                assert!(seq.offered > 0, "{name}: traffic must flow");
                for jobs in [2, 4, 8] {
                    let par = run_at(&topology, kind, &w, jobs);
                    assert_eq!(
                        seq.digest(),
                        par.digest(),
                        "{name}/{}/{}: digest diverged at jobs={jobs}",
                        kind.label(),
                        pattern.label()
                    );
                    assert_eq!(
                        seq,
                        par,
                        "{name}/{}/{}: full run state diverged at jobs={jobs}",
                        kind.label(),
                        pattern.label()
                    );
                }
            }
        }
    }
}

#[test]
fn conservation_holds_on_every_topology() {
    for (name, topology) in ladder() {
        let w = workload(0xC0_5E12, Pattern::Uniform);
        let run = run_at(&topology, ElementKind::Scalar { capacity: Some(8) }, &w, 4);
        assert_eq!(
            run.offered,
            run.delivered_total() + run.dropped + run.residual,
            "{name}: every offered cell must be delivered, dropped or residual"
        );
    }
}

#[test]
fn conservation_holds_when_word_elements_drop() {
    // Regression: a dropped packet arrives but never departs, so the
    // word adapters must exclude drops from reported occupancy or
    // residual accounting double-counts every loss. Tiny pools under
    // hotspot traffic force real drops through the RTL path.
    let topology = topo::omega(4, 3);
    let w = Workload {
        pattern: Pattern::Hotspot { hot_frac: 0.5 },
        load: 0.9,
        seed: 0xD20B,
    };
    for kind in [
        ElementKind::WordRtl { slots: 2 },
        ElementKind::WordWide { slots: 2 },
        ElementKind::WordIbank { banks: 2 },
    ] {
        let run = Fabric::new(topology.clone(), kind).run(80, 60, &w, 2);
        assert!(
            run.dropped > 0,
            "{}: hotspot must force drops",
            kind.label()
        );
        assert_eq!(
            run.offered,
            run.delivered_total() + run.dropped + run.residual,
            "{}: conservation must survive drops",
            kind.label()
        );
    }
}

#[test]
fn latency_respects_hops_times_link_latency() {
    // The scalar element forwards a cell in one cycle per hop, so with
    // link latency L a cell from src to dst can never beat
    // hops(src, dst) × L; the word-clocked organizations scale the same
    // bound by their cell time. Checked per delivered cell, for L = 1
    // and an exaggerated L = 3.
    for latency in [1u64, 3] {
        let topology = topo::omega(4, 3);
        let w = workload(0x1A7, Pattern::Uniform);
        let run = Fabric::new(topology.clone(), ElementKind::Scalar { capacity: None })
            .with_link_latency(latency)
            .run(300, 400, &w, 2);
        assert!(run.delivered_total() > 0);
        for (t, per_terminal) in run.delivered.iter().enumerate() {
            for &(cycle, cell) in per_terminal {
                let floor = topology.hops(cell.src.index(), t) as u64 * latency;
                assert!(
                    cycle - cell.birth >= floor,
                    "L={latency}: cell {:?} {}->{t} delivered after {} cycles, \
                     below the {} floor",
                    cell.id,
                    cell.src.index(),
                    cycle - cell.birth,
                    floor
                );
            }
        }
    }
}

#[test]
fn behavioral_fabric_latency_scales_with_cell_time() {
    // Behavioral elements clock one cell in S = 2k cycles, so the same
    // hop bound holds with the link latency equal to the cell time.
    let topology = topo::omega(4, 3);
    let w = workload(0xBEE, Pattern::Permutation);
    let mut fab = Fabric::new(topology.clone(), ElementKind::Behavioral { slots: 16 });
    let cell_time = fab.cell_time();
    assert_eq!(cell_time, 8, "4x4 behavioral element: S = 2k");
    let run = fab.run(120, 100, &w, 2);
    assert!(run.delivered_total() > 0);
    for (t, per_terminal) in run.delivered.iter().enumerate() {
        for &(cycle, cell) in per_terminal {
            let floor = topology.hops(cell.src.index(), t) as u64 * cell_time;
            assert!(
                cycle - cell.birth >= floor,
                "cell {:?} {}->{t}: latency {} below the {} hop floor",
                cell.id,
                cell.src.index(),
                cycle - cell.birth,
                floor
            );
        }
    }
}
