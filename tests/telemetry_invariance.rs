//! Telemetry is behavior-neutral (DESIGN.md §10).
//!
//! Attaching a probe must never change what a switch *does* — only what
//! it *reports*. This property test drives every organization
//! (behavioral, pipelined RTL, wide-memory, interleaved) over seeded
//! bursty schedules three times: probe off, [`NullSink`] attached, and a
//! bounded [`Recorder`] attached. The departure streams and counters
//! must be byte-identical across all three. A golden-file test pins the
//! VCD export of a tiny deterministic run byte-for-byte alongside.

use telegraphos::simkernel::cell::Packet;
use telegraphos::simkernel::ids::Cycle;
use telegraphos::simkernel::{Horizon, SplitMix64};
use telegraphos::switch_core::behavioral::BehavioralSwitch;
use telegraphos::switch_core::config::SwitchConfig;
use telegraphos::switch_core::events::SwitchCounters;
use telegraphos::switch_core::ibank::{InterleavedSwitch, InterleavedSwitchConfig};
use telegraphos::switch_core::rtl::{OutputCollector, PipelinedSwitch};
use telegraphos::switch_core::widemem::{WideMemorySwitchRtl, WideSwitchConfig};
use telegraphos::telemetry::{vcd, NullSink, ProbeHandle, Recorder, Shared, TelemetryConfig};

/// One observed delivery: (id, output, first cycle, last cycle).
type Delivery = (u64, usize, Cycle, Cycle);

/// One scheduled launch: header enters input `input` at cycle `at`.
#[derive(Debug, Clone, Copy)]
struct Offer {
    at: Cycle,
    input: usize,
    dst: usize,
    id: u64,
}

/// A bursty schedule (same shape as `tests/fast_forward.rs`): clusters
/// of back-to-back packets separated by idle gaps, framing-respecting.
fn bursty_schedule(n: usize, s: usize, bursts: usize, seed: u64) -> Vec<Offer> {
    let mut rng = SplitMix64::new(seed);
    let mut offers = Vec::new();
    let mut next_free = vec![0u64; n];
    let mut base = 0u64;
    let mut id = 1u64;
    for _ in 0..bursts {
        base += 50 + rng.below(400);
        let packets_per_input = 1 + rng.below(3);
        for (i, nf) in next_free.iter_mut().enumerate() {
            if !rng.chance(0.8) {
                continue;
            }
            let mut at = base.max(*nf) + rng.below(4);
            for _ in 0..packets_per_input {
                offers.push(Offer {
                    at,
                    input: i,
                    dst: rng.below_usize(n),
                    id,
                });
                id += 1;
                *nf = at + s as u64;
                at = *nf + rng.below(3);
            }
        }
    }
    offers.sort_by_key(|o| (o.at, o.input));
    offers
}

/// The probe a run gets attached.
#[derive(Clone, Copy)]
enum Sink {
    Off,
    Null,
    Bounded,
}

impl Sink {
    fn build(self) -> Option<ProbeHandle> {
        match self {
            Sink::Off => None,
            Sink::Null => Some(ProbeHandle::new(NullSink)),
            Sink::Bounded => Some(Shared::new(Recorder::bounded(128)).handle()),
        }
    }
}

/// The three word-level organizations behind one interface.
enum Word {
    Pipelined(Box<PipelinedSwitch>),
    Wide(Box<WideMemorySwitchRtl>),
    Interleaved(Box<InterleavedSwitch>),
}

impl Word {
    fn build(org: &str, n: usize, slots: usize, sink: Sink) -> (Self, usize) {
        let probe = sink.build();
        match org {
            "pipelined" => {
                let cfg = SwitchConfig::symmetric(n, slots);
                let s = cfg.stages();
                let mut sw = PipelinedSwitch::new(cfg);
                if let Some(p) = probe {
                    sw.attach_probe(p);
                }
                (Word::Pipelined(Box::new(sw)), s)
            }
            "wide" => {
                let cfg = WideSwitchConfig::fig3(n, slots);
                let s = cfg.packet_words();
                let mut sw = WideMemorySwitchRtl::new(cfg);
                if let Some(p) = probe {
                    sw.attach_probe(p);
                }
                (Word::Wide(Box::new(sw)), s)
            }
            "interleaved" => {
                let cfg = InterleavedSwitchConfig::symmetric(n, slots);
                let s = cfg.packet_words();
                let mut sw = InterleavedSwitch::new(cfg);
                if let Some(p) = probe {
                    sw.attach_probe(p);
                }
                (Word::Interleaved(Box::new(sw)), s)
            }
            other => panic!("unknown org {other}"),
        }
    }

    fn tick(&mut self, wire: &[Option<u64>]) -> &[Option<u64>] {
        match self {
            Word::Pipelined(sw) => sw.tick(wire),
            Word::Wide(sw) => sw.tick(wire),
            Word::Interleaved(sw) => sw.tick(wire),
        }
    }

    fn now(&self) -> Cycle {
        match self {
            Word::Pipelined(sw) => sw.now(),
            Word::Wide(sw) => sw.now(),
            Word::Interleaved(sw) => sw.now(),
        }
    }

    fn next_event(&self) -> Option<Cycle> {
        match self {
            Word::Pipelined(sw) => sw.next_event(),
            Word::Wide(sw) => sw.next_event(),
            Word::Interleaved(sw) => sw.next_event(),
        }
    }

    fn counters(&self) -> SwitchCounters {
        match self {
            Word::Pipelined(sw) => sw.counters(),
            Word::Wide(sw) => sw.counters(),
            Word::Interleaved(sw) => sw.counters(),
        }
    }
}

/// Replay `offers` densely on a word-level organization with `sink`
/// attached; returns the delivery stream plus counters.
fn run_word(org: &str, n: usize, offers: &[Offer], sink: Sink) -> (Vec<Delivery>, SwitchCounters) {
    let (mut sw, s) = Word::build(org, n, 4 * n, sink);
    let mut col = OutputCollector::new(n, s);
    let mut current: Vec<Option<(Vec<u64>, usize)>> = vec![None; n];
    let mut wire = vec![None; n];
    let mut deliveries = Vec::new();
    let mut k = 0;
    let mut grace = 0u64;
    loop {
        let now = sw.now();
        let exhausted = k == offers.len();
        let idle = exhausted && current.iter().all(Option::is_none) && sw.next_event().is_none();
        if idle {
            grace += 1;
            if grace > s as u64 + 4 {
                break;
            }
        } else {
            grace = 0;
        }
        assert!(now < 1_000_000, "{org} failed to drain");
        while k < offers.len() && offers[k].at == now {
            let o = offers[k];
            k += 1;
            let p = Packet::synth(o.id, o.input, o.dst, s, now);
            current[o.input] = Some((p.words, 0));
        }
        for (w, slot) in wire.iter_mut().zip(current.iter_mut()) {
            *w = None;
            if let Some((words, i)) = slot {
                *w = Some(words[*i]);
                *i += 1;
                if *i == words.len() {
                    *slot = None;
                }
            }
        }
        let out = sw.tick(&wire);
        col.observe(now, out);
        for d in col.take() {
            assert!(d.verify_payload(), "{org}: corrupted payload");
            deliveries.push((d.id, d.output.index(), d.first_cycle, d.last_cycle));
        }
    }
    (deliveries, sw.counters())
}

/// Replay `offers` on the behavioral model with `sink` attached.
fn run_behavioral(n: usize, offers: &[Offer], sink: Sink) -> (Vec<Delivery>, (u64, u64, u64)) {
    let cfg = SwitchConfig::symmetric(n, 4 * n);
    let s = cfg.stages();
    let mut sw = BehavioralSwitch::new(cfg);
    if let Some(p) = sink.build() {
        sw.attach_probe(p);
    }
    let mut arr: Vec<Option<usize>> = vec![None; n];
    let mut k = 0;
    let mut grace = 0u64;
    loop {
        let now = sw.now();
        let exhausted = k == offers.len();
        let idle = exhausted && sw.is_quiescent();
        if idle {
            grace += 1;
            if grace > s as u64 + 4 {
                break;
            }
        } else {
            grace = 0;
        }
        assert!(now < 1_000_000, "behavioral failed to drain");
        arr.fill(None);
        while k < offers.len() && offers[k].at == now {
            let o = offers[k];
            k += 1;
            arr[o.input] = Some(o.dst);
        }
        sw.tick(&arr);
    }
    let departures = sw
        .departures()
        .iter()
        .map(|d| (d.id, d.output, d.birth, d.done))
        .collect();
    (departures, (sw.arrived, sw.dropped, sw.overruns))
}

#[test]
fn word_orgs_are_probe_invariant() {
    let n = 4;
    for org in ["pipelined", "wide", "interleaved"] {
        for seed in 0..4u64 {
            let s = Word::build(org, n, 4 * n, Sink::Off).1;
            let offers = bursty_schedule(n, s, 6, 0x7E1E + seed);
            let (off_d, off_c) = run_word(org, n, &offers, Sink::Off);
            let (null_d, null_c) = run_word(org, n, &offers, Sink::Null);
            let (rec_d, rec_c) = run_word(org, n, &offers, Sink::Bounded);
            assert_eq!(
                off_d, null_d,
                "{org} seed {seed}: NullSink changed deliveries"
            );
            assert_eq!(
                off_c, null_c,
                "{org} seed {seed}: NullSink changed counters"
            );
            assert_eq!(
                off_d, rec_d,
                "{org} seed {seed}: Recorder changed deliveries"
            );
            assert_eq!(off_c, rec_c, "{org} seed {seed}: Recorder changed counters");
        }
    }
}

#[test]
fn behavioral_is_probe_invariant() {
    let n = 4;
    let s = SwitchConfig::symmetric(n, 4 * n).stages();
    for seed in 0..4u64 {
        let offers = bursty_schedule(n, s, 6, 0xAB1E + seed);
        let (off_d, off_c) = run_behavioral(n, &offers, Sink::Off);
        let (null_d, null_c) = run_behavioral(n, &offers, Sink::Null);
        let (rec_d, rec_c) = run_behavioral(n, &offers, Sink::Bounded);
        assert_eq!(off_d, null_d, "seed {seed}: NullSink changed departures");
        assert_eq!(off_c, null_c, "seed {seed}: NullSink changed counters");
        assert_eq!(off_d, rec_d, "seed {seed}: Recorder changed departures");
        assert_eq!(off_c, rec_c, "seed {seed}: Recorder changed counters");
    }
}

/// The tiny deterministic run behind the golden VCD: a 2×2 pipelined
/// switch, one packet in0 → out1, drained.
fn tiny_traced_run() -> String {
    let cfg = SwitchConfig::symmetric(2, 8);
    let s = cfg.stages();
    let (mut sw, rec) = PipelinedSwitch::with_telemetry(cfg, &TelemetryConfig::unbounded());
    let rec = rec.expect("unbounded() always enables a recorder");
    let p = Packet::synth(1, 0, 1, s, 0);
    for k in 0..16 {
        let wire = [p.words.get(k).copied(), None];
        sw.tick(&wire);
    }
    let entries = rec.entries();
    let topo = vcd::Topo {
        n_in: 2,
        n_out: 2,
        stages: s,
    };
    vcd::export(entries.iter(), &topo)
}

#[test]
fn vcd_export_matches_the_golden_file() {
    let doc = tiny_traced_run();
    vcd::validate(&doc).expect("well-formed VCD");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/tiny.vcd");
        std::fs::write(path, &doc).expect("rewrite golden");
    }
    let golden = include_str!("golden/tiny.vcd");
    assert_eq!(
        doc, golden,
        "VCD export drifted from tests/golden/tiny.vcd; if the change is \
         intentional, rerun this test with UPDATE_GOLDEN=1 and review the diff"
    );
}
