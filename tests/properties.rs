//! Property-based tests (seeded random search) over the core invariants:
//!
//! * conservation — every packet offered to the RTL switch is either
//!   delivered exactly once or counted as dropped, never duplicated,
//!   never silently lost;
//! * integrity — every delivered payload is bit-exact;
//! * per-pair FIFO — packets from input `i` to output `j` depart in
//!   arrival order;
//! * cut-through causality — no word leaves before it arrived;
//! * wave safety — arbitrary arrival patterns never provoke a bank port
//!   violation or latch overrun (both would panic inside the model).
//!
//! Cases are generated from `SplitMix64` with fixed seeds, so every run
//! explores the same workload population — a failure always reproduces
//! by seed, with no external property-testing dependency.

use std::collections::HashMap;
use telegraphos::simkernel::cell::Packet;
use telegraphos::simkernel::SplitMix64;
use telegraphos::switch_core::config::SwitchConfig;
use telegraphos::switch_core::rtl::{DeliveredPacket, OutputCollector, PipelinedSwitch};

/// A randomized workload: per input, a list of (gap_cycles, dst).
#[derive(Debug, Clone)]
struct Workload {
    n: usize,
    slots: usize,
    per_input: Vec<Vec<(u8, u8)>>,
}

/// Draw one workload: 2–4 ports, 1–16 buffer slots, 0–11 packets per
/// input with gaps 0–7 — the same population the proptest strategy drew.
fn random_workload(rng: &mut SplitMix64) -> Workload {
    let n = 2 + rng.below_usize(3);
    let slots = 1 + rng.below_usize(16);
    let per_input = (0..n)
        .map(|_| {
            let pkts = rng.below_usize(12);
            (0..pkts)
                .map(|_| (rng.below(8) as u8, rng.below(n as u64) as u8))
                .collect()
        })
        .collect();
    Workload {
        n,
        slots,
        per_input,
    }
}

/// Offered packet ids per (src, dst), in arrival order.
type OfferedMap = HashMap<(usize, usize), Vec<u64>>;

/// Run the workload to completion; returns (offered ids in order per
/// (src,dst), delivered packets, dropped count, overrun count).
fn execute(w: &Workload) -> (OfferedMap, Vec<DeliveredPacket>, u64, u64) {
    let cfg = SwitchConfig::symmetric(w.n, w.slots);
    let s = cfg.stages();
    let mut sw = PipelinedSwitch::new(cfg);
    let mut col = OutputCollector::new(w.n, s);

    // Expand each input's (gap, dst) list into a word schedule.
    #[derive(Debug)]
    struct Feed {
        words: Vec<Option<u64>>,
    }
    let mut offered: HashMap<(usize, usize), Vec<u64>> = HashMap::new();
    let mut next_id = 1u64;
    let feeds: Vec<Feed> = w
        .per_input
        .iter()
        .enumerate()
        .map(|(i, list)| {
            let mut words = Vec::new();
            for &(gap, dst) in list {
                for _ in 0..gap {
                    words.push(None);
                }
                let id = next_id;
                next_id += 1;
                let birth = words.len() as u64;
                let p = Packet::synth(id, i, dst as usize, s, birth);
                offered.entry((i, dst as usize)).or_default().push(id);
                words.extend(p.words.iter().map(|&w| Some(w)));
            }
            Feed { words }
        })
        .collect();

    let horizon = feeds.iter().map(|f| f.words.len()).max().unwrap_or(0) as u64
        + (4 * s as u64) * (next_id + 2);
    let mut wire = vec![None; w.n];
    for t in 0..horizon {
        for (i, f) in feeds.iter().enumerate() {
            wire[i] = f.words.get(t as usize).copied().flatten();
        }
        let now = sw.now();
        let out = sw.tick(&wire);
        col.observe(now, out);
        if t as usize >= feeds.iter().map(|f| f.words.len()).max().unwrap_or(0) && sw.is_quiescent()
        {
            break;
        }
    }
    assert!(sw.is_quiescent(), "switch failed to drain");
    let ctr = sw.counters();
    (
        offered,
        col.take(),
        ctr.dropped_buffer_full,
        ctr.latch_overruns,
    )
}

const CASES: u64 = 64;

#[test]
fn conservation_and_integrity() {
    let mut rng = SplitMix64::new(0x5EED_0001);
    for case in 0..CASES {
        let w = random_workload(&mut rng);
        let total_offered: usize = w.per_input.iter().map(Vec::len).sum();
        let (_, delivered, dropped, overruns) = execute(&w);
        // Conservation: delivered + dropped == offered; overruns never.
        assert_eq!(overruns, 0, "case {case}: latch overrun must be impossible");
        assert_eq!(
            delivered.len() as u64 + dropped,
            total_offered as u64,
            "case {case}: packets lost or duplicated ({w:?})"
        );
        // No duplicate deliveries.
        let mut ids: Vec<u64> = delivered.iter().map(|d| d.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "case {case}: duplicate delivery");
        // Integrity: every payload bit-exact.
        for d in &delivered {
            assert!(
                d.verify_payload(),
                "case {case}: corrupt payload for id {}",
                d.id
            );
        }
    }
}

#[test]
fn fifo_per_input_output_pair() {
    let mut rng = SplitMix64::new(0x5EED_0002);
    for case in 0..CASES {
        let w = random_workload(&mut rng);
        let (offered, delivered, _, _) = execute(&w);
        // Delivered order per (src-implied-by-id, dst): reconstruct from
        // id order. Ids are assigned in arrival order per input, and the
        // offered map records the per-pair arrival order.
        let mut seen: HashMap<(usize, usize), Vec<u64>> = HashMap::new();
        let mut by_first: Vec<&DeliveredPacket> = delivered.iter().collect();
        by_first.sort_by_key(|d| d.first_cycle);
        for d in by_first {
            // src is recoverable from the offered map (ids unique).
            let src = offered
                .iter()
                .find(|(_, ids)| ids.contains(&d.id))
                .map(|((s, _), _)| *s)
                .expect("delivered id was offered");
            seen.entry((src, d.output.index())).or_default().push(d.id);
        }
        for (pair, ids) in &seen {
            let offered_ids: Vec<u64> = offered[pair]
                .iter()
                .filter(|id| ids.contains(id))
                .copied()
                .collect();
            assert_eq!(
                ids, &offered_ids,
                "case {case}: FIFO violated for pair {pair:?}"
            );
        }
    }
}

#[test]
fn causality_no_word_before_arrival() {
    // A delivered packet's k-th word left no earlier than 2 cycles
    // after that word arrived (latch + register minimum).
    let mut rng = SplitMix64::new(0x5EED_0003);
    for case in 0..CASES {
        let w = random_workload(&mut rng);
        let (_, delivered, _, _) = execute(&w);
        for d in &delivered {
            let span = d.last_cycle - d.first_cycle;
            assert_eq!(
                span as usize + 1,
                d.words.len(),
                "case {case}: transmission not contiguous"
            );
        }
    }
}

#[test]
fn zero_slot_config_rejected() {
    let mut cfg = SwitchConfig::symmetric(2, 1);
    cfg.slots = 0;
    let result = std::panic::catch_unwind(|| PipelinedSwitch::new(cfg));
    assert!(result.is_err(), "slots=0 must be rejected");
}
