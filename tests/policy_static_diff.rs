//! Differential pinning of the pluggable buffer-sharing-policy refactor
//! (`switch_core::policy`).
//!
//! The refactor is licensed by one property: with `PolicyKind::Static`
//! the models must be **byte-identical** to their pre-refactor behavior
//! — same departures, same counters, same probe event stream. The
//! frozen scalar references (`switch_core::reference`) carry that
//! baseline: their static path takes the literal pre-policy admission
//! branch, so live-vs-ref equality on the 10/50/95 % load grid pins the
//! refactor in place. The same harness then runs every non-static
//! policy through both twins — the policy hooks must stay cycle-exact
//! too, or the conformance oracle's RTL≡behavioral clause is a fiction.
//!
//! The fast-forward leg: the conformance driver jumps idle gaps via the
//! event horizon, the dense driver here ticks every cycle. Policies
//! keep admission state (BShare's per-output delay memory), so a jump
//! that skipped a policy-visible event would desynchronize the two —
//! all four organizations must agree with the dense drive under every
//! policy. The batched leg does the same for `tick_idle_batch`.

use simkernel::cell::Packet;
use simkernel::ids::Cycle;
use simkernel::Horizon;
use simkernel::SplitMix64;
use switch_core::behavioral::{BehavioralDeparture, BehavioralSwitch};
use switch_core::config::SwitchConfig;
use switch_core::ibank::{InterleavedSwitch, InterleavedSwitchConfig};
use switch_core::reference::{BehavioralSwitchRef, PipelinedSwitchRef};
use switch_core::rtl::{OutputCollector, PipelinedSwitch};
use switch_core::widemem::{WideMemorySwitchRtl, WideSwitchConfig};
use switch_core::PolicyKind;
use telemetry::{ProbeEvent, Recorder, Shared};

const N: usize = 4;
const SLOTS: usize = 16;

/// The pinning grid: the paper's 10/50/95 % uniform load points, plus a
/// 95 % incast point (80 % of traffic aimed at output 0) so the
/// per-queue policies actually fire their decision paths while the
/// twins are being compared.
const GRID: [(f64, bool); 4] = [(0.10, false), (0.50, false), (0.95, false), (0.95, true)];

type ProbeLog = Vec<simkernel::TraceEntry<ProbeEvent>>;

/// A framing-respecting uniform random schedule at `load` offered word
/// occupancy (the bit-parallel diff suite's law).
fn load_schedule(s: usize, load: f64, cycles: u64, seed: u64) -> Vec<conformance::Offer> {
    let mut rng = SplitMix64::new(seed);
    let mut offers = Vec::new();
    let mut next_free = [0u64; N];
    let mut id = 1u64;
    let p = load / s as f64;
    for t in 0..cycles {
        for (i, nf) in next_free.iter_mut().enumerate() {
            if t >= *nf && rng.chance(p) {
                offers.push(conformance::Offer {
                    at: t,
                    input: i,
                    dst: rng.below_usize(N),
                    id,
                });
                id += 1;
                *nf = t + s as u64;
            }
        }
    }
    offers
}

/// `load_schedule`, optionally incast-skewed: 80 % of offers retargeted
/// at output 0 so the shared pool fills behind one queue.
fn grid_schedule(
    s: usize,
    load: f64,
    skew: bool,
    cycles: u64,
    seed: u64,
) -> Vec<conformance::Offer> {
    let mut offers = load_schedule(s, load, cycles, seed);
    if skew {
        let mut g = SplitMix64::stream(seed, 1);
        for o in &mut offers {
            if g.chance(0.8) {
                o.dst = 0;
            }
        }
    }
    offers
}

/// Drive a cell-level twin densely over `offers` until quiescent.
macro_rules! drive_cell {
    ($ty:ty, $cfg:expr, $offers:expr) => {{
        let mut sw = <$ty>::new($cfg.clone());
        let rec = Shared::new(Recorder::unbounded());
        sw.attach_probe(rec.handle());
        let mut arr: Vec<Option<usize>> = vec![None; N];
        let mut k = 0usize;
        let end = $offers.last().map_or(0, |o| o.at) + 1;
        for now in 0..end {
            arr.fill(None);
            while k < $offers.len() && $offers[k].at == now {
                let o = $offers[k];
                k += 1;
                arr[o.input] = Some(o.dst);
            }
            sw.tick(&arr);
        }
        arr.fill(None);
        let mut guard = 0u32;
        while !sw.is_quiescent() {
            sw.tick(&arr);
            guard += 1;
            assert!(guard < 100_000, "cell model failed to drain");
        }
        let deps: Vec<BehavioralDeparture> = sw.departures().to_vec();
        let counts = (
            sw.arrived,
            sw.dropped,
            sw.overruns,
            sw.policy_drops,
            sw.policy_preempts,
        );
        let events: ProbeLog = rec.with(|r| r.iter().cloned().collect());
        (deps, counts, events)
    }};
}

/// Drive a word-level switch densely (every cycle ticked, no jumps)
/// over `offers`; returns `(id, output, first, last)` deliveries and
/// the model's counters.
macro_rules! drive_word_dense {
    ($sw:expr, $s:expr, $offers:expr) => {{
        let mut sw = $sw;
        let mut col = OutputCollector::new(N, $s);
        let mut current: Vec<Option<(Vec<u64>, usize)>> = vec![None; N];
        let mut wire: Vec<Option<u64>> = vec![None; N];
        let mut deliveries: Vec<(u64, usize, Cycle, Cycle)> = Vec::new();
        let mut k = 0usize;
        let mut grace = 0u64;
        loop {
            let now = sw.now();
            let exhausted = k == $offers.len();
            let idle =
                exhausted && current.iter().all(Option::is_none) && sw.next_event().is_none();
            if idle {
                grace += 1;
                if grace > $s as u64 + 4 {
                    break;
                }
            } else {
                grace = 0;
            }
            assert!(now < 1_000_000, "word model failed to drain");
            while k < $offers.len() && $offers[k].at == now {
                let o = $offers[k];
                k += 1;
                let p = Packet::synth(o.id, o.input, o.dst, $s, now);
                current[o.input] = Some((p.words, 0));
            }
            for (w, slot) in wire.iter_mut().zip(current.iter_mut()) {
                *w = None;
                if let Some((words, i)) = slot {
                    *w = Some(words[*i]);
                    *i += 1;
                    if *i == words.len() {
                        *slot = None;
                    }
                }
            }
            let out = sw.tick(&wire);
            col.observe(now, out);
            for d in col.take() {
                assert!(d.verify_payload(), "corrupted payload");
                deliveries.push((d.id, d.output.index(), d.first_cycle, d.last_cycle));
            }
        }
        (deliveries, sw.counters())
    }};
}

// ---------------------------------------------------------------------------
// 1. Behavioral twin, every policy
// ---------------------------------------------------------------------------

#[test]
fn behavioral_matches_scalar_reference_under_every_policy() {
    for policy in PolicyKind::all_default() {
        let cfg = SwitchConfig::symmetric(N, SLOTS).with_policy(policy);
        let s = cfg.stages();
        for (load, skew) in GRID {
            let offers = grid_schedule(s, load, skew, 2_500, 0xD1F + (load * 100.0) as u64);
            let (d_new, c_new, e_new) = drive_cell!(BehavioralSwitch, cfg, offers);
            let (d_ref, c_ref, e_ref) = drive_cell!(BehavioralSwitchRef, cfg, offers);
            assert!(
                !d_ref.is_empty(),
                "{policy:?} load {load}: workload too thin"
            );
            assert_eq!(
                d_new, d_ref,
                "{policy:?} load {load}: departures diverged from scalar reference"
            );
            assert_eq!(c_new, c_ref, "{policy:?} load {load}: counters diverged");
            assert_eq!(
                e_new, e_ref,
                "{policy:?} load {load}: probe event streams diverged"
            );
            if policy.is_static() {
                assert_eq!(
                    (c_new.3, c_new.4),
                    (0, 0),
                    "load {load}: static pool invoked the policy counters"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Pipelined RTL twin, every policy
// ---------------------------------------------------------------------------

#[test]
fn rtl_matches_scalar_reference_under_every_policy() {
    for policy in PolicyKind::all_default() {
        let cfg = SwitchConfig::symmetric(N, SLOTS).with_policy(policy);
        let s = cfg.stages();
        for (load, skew) in GRID {
            let offers = grid_schedule(s, load, skew, 1_500, 0x57A7 + (load * 100.0) as u64);
            let rec_new = Shared::new(Recorder::unbounded());
            let mut sw_new = PipelinedSwitch::new(cfg.clone());
            sw_new.attach_probe(rec_new.handle());
            let (d_new, c_new) = drive_word_dense!(sw_new, s, offers);
            let rec_ref = Shared::new(Recorder::unbounded());
            let mut sw_ref = PipelinedSwitchRef::new(cfg.clone());
            sw_ref.attach_probe(rec_ref.handle());
            let (d_ref, c_ref) = drive_word_dense!(sw_ref, s, offers);
            assert!(
                !d_ref.is_empty(),
                "{policy:?} load {load}: workload too thin"
            );
            assert_eq!(
                d_new, d_ref,
                "{policy:?} load {load}: deliveries diverged from scalar reference"
            );
            assert_eq!(c_new, c_ref, "{policy:?} load {load}: counters diverged");
            let e_new: ProbeLog = rec_new.with(|r| r.iter().cloned().collect());
            let e_ref: ProbeLog = rec_ref.with(|r| r.iter().cloned().collect());
            assert_eq!(
                e_new, e_ref,
                "{policy:?} load {load}: probe streams diverged"
            );
            if policy.is_static() {
                assert_eq!(
                    c_new.policy_drops + c_new.policy_preempts,
                    0,
                    "load {load}: static pool invoked the policy counters"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Fast-forward driver vs dense drive, all word organizations
// ---------------------------------------------------------------------------

/// The conformance driver (event-horizon jumps over idle gaps) and a
/// dense per-cycle drive of the same configuration must agree on every
/// delivery and counter, under every policy — a jump that skipped a
/// policy-relevant event would show up here as a divergence.
#[test]
fn fast_forward_driver_matches_dense_drive_under_every_policy() {
    for policy in PolicyKind::all_default() {
        for (load, skew) in GRID {
            let s = 2 * N;
            let offers = grid_schedule(s, load, skew, 1_200, 0xFF18 + (load * 100.0) as u64);
            let sc = conformance::Scenario {
                seed: 0,
                n: N,
                slots: SLOTS,
                credited: false,
                load,
                offers: offers.clone(),
                horizon: 1_200,
                fault: None,
                recovery: false,
                policy,
            };
            for org in [
                conformance::Org::Pipelined,
                conformance::Org::Wide,
                conformance::Org::Interleaved,
            ] {
                let ff = conformance::run(&sc, org);
                assert!(
                    ff.error.is_none(),
                    "{policy:?} {org} load {load}: {:?}",
                    ff.error
                );
                let ff_deliveries: Vec<(u64, usize, Cycle, Cycle)> = ff
                    .deliveries
                    .iter()
                    .map(|d| (d.id, d.output, d.first, d.last))
                    .collect();
                let (dense_deliveries, dense_counters) = match org {
                    conformance::Org::Pipelined => {
                        let cfg = SwitchConfig::symmetric(N, SLOTS).with_policy(policy);
                        drive_word_dense!(PipelinedSwitch::new(cfg), s, offers)
                    }
                    conformance::Org::Wide => drive_word_dense!(
                        WideMemorySwitchRtl::new(
                            WideSwitchConfig::fig3(N, SLOTS).with_policy(policy)
                        ),
                        s,
                        offers
                    ),
                    conformance::Org::Interleaved => drive_word_dense!(
                        InterleavedSwitch::new(
                            InterleavedSwitchConfig::symmetric(N, SLOTS).with_policy(policy)
                        ),
                        s,
                        offers
                    ),
                    conformance::Org::Behavioral => unreachable!(),
                };
                assert_eq!(
                    ff_deliveries, dense_deliveries,
                    "{policy:?} {org} load {load}: fast-forward deliveries diverged from dense"
                );
                assert_eq!(
                    ff.counters, dense_counters,
                    "{policy:?} {org} load {load}: fast-forward counters diverged from dense"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 4. Batched idle drain, every policy
// ---------------------------------------------------------------------------

/// `tick_idle_batch(n)` must equal `n` scalar idle ticks with a policy
/// armed: the drain path fires `on_read` hooks (BShare feeds on them),
/// so the batch entry must maintain policy state identically.
#[test]
fn behavioral_idle_batch_equals_scalar_ticks_under_every_policy() {
    for policy in PolicyKind::all_default() {
        let cfg = SwitchConfig::symmetric(N, SLOTS).with_policy(policy);
        let s = cfg.stages();
        let offers = load_schedule(s, 0.95, 800, 0xBA7D);
        let build = || {
            let mut sw = BehavioralSwitch::new(cfg.clone());
            let rec = Shared::new(Recorder::unbounded());
            sw.attach_probe(rec.handle());
            let mut arr: Vec<Option<usize>> = vec![None; N];
            let mut k = 0usize;
            for now in 0..800u64 {
                arr.fill(None);
                while k < offers.len() && offers[k].at == now {
                    let o = offers[k];
                    k += 1;
                    arr[o.input] = Some(o.dst);
                }
                sw.tick(&arr);
            }
            (sw, rec)
        };
        let (mut a, rec_a) = build();
        let (mut b, rec_b) = build();
        let idle: Vec<Option<usize>> = vec![None; N];
        let mut width = 1u64;
        while !a.is_quiescent() || !b.is_quiescent() {
            for _ in 0..width {
                a.tick(&idle);
            }
            b.tick_idle_batch(width);
            width = width % 7 + 2;
            assert!(a.now() < 200_000, "{policy:?}: failed to drain");
        }
        assert_eq!(a.now(), b.now(), "{policy:?}: clocks diverged");
        assert_eq!(
            a.departures(),
            b.departures(),
            "{policy:?}: departures diverged"
        );
        assert_eq!(
            (a.arrived, a.dropped, a.policy_drops, a.policy_preempts),
            (b.arrived, b.dropped, b.policy_drops, b.policy_preempts),
            "{policy:?}: counters diverged"
        );
        let ea: ProbeLog = rec_a.with(|r| r.iter().cloned().collect());
        let eb: ProbeLog = rec_b.with(|r| r.iter().cloned().collect());
        assert_eq!(ea, eb, "{policy:?}: probe streams diverged");
    }
}

// ---------------------------------------------------------------------------
// 5. Non-vacuity: the grid must actually exercise the policies
// ---------------------------------------------------------------------------

#[test]
fn high_load_grid_exercises_every_policy_decision_kind() {
    // Incast at 95 % load over 16 slots: output 0's queue hogs the pool,
    // so every non-static policy must register decisions — otherwise the
    // equality tests above prove nothing about the policy paths.
    let s = 2 * N;
    let mut offers = load_schedule(s, 0.95, 2_500, 0xD1F + 95);
    let mut g = SplitMix64::new(0x1C57);
    for o in &mut offers {
        if g.chance(0.8) {
            o.dst = 0;
        }
    }
    for policy in PolicyKind::all_default() {
        if policy.is_static() {
            continue;
        }
        let cfg = SwitchConfig::symmetric(N, SLOTS).with_policy(policy);
        let (_, c, _) = drive_cell!(BehavioralSwitch, cfg, offers);
        assert!(
            c.3 + c.4 > 0,
            "{policy:?}: the 95% grid never triggered a policy decision"
        );
    }
}
