//! Fault injection: the test suite's integrity machinery must *detect*
//! faults, not merely pass in their absence. These tests corrupt the
//! datapath deliberately (a single-event upset in a buffer bank) and
//! assert that the end-to-end checks catch it — mutation testing for the
//! checkers themselves.

use telegraphos::simkernel::cell::Packet;
use telegraphos::simkernel::ids::Addr;
use telegraphos::switch_core::config::SwitchConfig;
use telegraphos::switch_core::rtl::{OutputCollector, PipelinedSwitch};

/// Send one packet; optionally flip a bit in (stage, slot) while the
/// packet is buffered. Returns the delivered packet's integrity verdict.
fn run_with_fault(fault: Option<(usize, usize, u64)>) -> bool {
    // Store-and-forward mode keeps the packet resident in the banks for
    // a full packet time, giving the "upset" a window to strike.
    let mut cfg = SwitchConfig::symmetric(2, 8);
    cfg.cut_through = false;
    cfg.fused_cut_through = false;
    let s = cfg.stages();
    let mut sw = PipelinedSwitch::new(cfg);
    let p = Packet::synth(9, 0, 1, s, 0);
    let mut col = OutputCollector::new(2, s);
    for k in 0..s {
        let now = sw.now();
        let out = sw.tick(&[Some(p.words[k]), None]);
        col.observe(now, &out);
    }
    // One more cycle lets the write wave's tail stage (written at
    // ws + s - 1 = cycle s) complete; in store-and-forward mode the read
    // wave starts at ws + s = s + 1, so the upset window is open now.
    {
        let now = sw.now();
        let out = sw.tick(&[None, None]);
        col.observe(now, &out);
    }
    if let Some((stage, slot, mask)) = fault {
        sw.inject_bank_fault(stage, Addr(slot), mask);
    }
    let mut guard = 0;
    while !sw.is_quiescent() && guard < 100 * s {
        let now = sw.now();
        let out = sw.tick(&[None, None]);
        col.observe(now, &out);
        guard += 1;
    }
    let pkts = col.take();
    assert_eq!(pkts.len(), 1, "the packet must still be delivered");
    pkts[0].verify_payload()
}

#[test]
fn clean_run_verifies() {
    assert!(run_with_fault(None), "no fault: payload must verify");
}

#[test]
fn payload_bit_flip_detected() {
    // Flip one bit of a payload word in the occupied slot.
    assert!(
        !run_with_fault(Some((2, 0, 1 << 17))),
        "a flipped payload bit must fail verification"
    );
}

#[test]
fn header_bit_flip_detected() {
    // Flip a bit in the header word (bank 0 holds word 0).
    assert!(
        !run_with_fault(Some((0, 0, 1 << 30))),
        "a flipped header id bit must fail verification"
    );
}

#[test]
fn fault_in_unoccupied_slot_is_harmless() {
    // Corrupting a slot the packet does not occupy must not affect it.
    assert!(
        run_with_fault(Some((2, 5, u64::MAX))),
        "fault in a free slot must not corrupt live traffic"
    );
}

#[test]
fn every_stage_is_covered_by_the_check() {
    // The integrity check must cover all stages — a fault anywhere in
    // the word's journey is visible.
    for stage in 0..4 {
        assert!(
            !run_with_fault(Some((stage, 0, 1))),
            "stage {stage}: fault went undetected"
        );
    }
}
