//! Fault injection: the integrity machinery must *detect* faults, not
//! merely pass in their absence. These tests corrupt the datapath
//! deliberately (a single-event upset in a buffer bank) and assert that
//! the checksum scrub at read initiation catches it and condemns the
//! packet — detect-and-drop, never silent delivery of corrupt data.

use telegraphos::simkernel::cell::Packet;
use telegraphos::simkernel::ids::Addr;
use telegraphos::simkernel::run_until_quiescent;
use telegraphos::switch_core::config::SwitchConfig;
use telegraphos::switch_core::rtl::{OutputCollector, PipelinedSwitch};

/// How a packet's journey ended, as typed by the switch's own counters.
#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    /// Delivered, payload bit-exact.
    DeliveredIntact,
    /// Delivered with a wrong payload — the failure mode the scrub
    /// exists to rule out.
    DeliveredCorrupt,
    /// Condemned by the checksum scrub and dropped (counted in
    /// `corrupt_drops`).
    DetectedAndDropped,
}

/// Send one packet; optionally flip bits in (stage, slot) while the
/// packet is buffered. Returns the typed outcome plus the live-data
/// verdict of the injection hook itself.
fn run_with_fault(fault: Option<(usize, usize, u64)>) -> (Outcome, Option<u64>) {
    // Store-and-forward mode keeps the packet resident in the banks for
    // a full packet time, giving the "upset" a window to strike.
    let mut cfg = SwitchConfig::symmetric(2, 8);
    cfg.cut_through = false;
    cfg.fused_cut_through = false;
    let s = cfg.stages();
    let mut sw = PipelinedSwitch::new(cfg);
    let p = Packet::synth(9, 0, 1, s, 0);
    let mut col = OutputCollector::new(2, s);
    for k in 0..s {
        let now = sw.now();
        let out = sw.tick(&[Some(p.words[k]), None]);
        col.observe(now, out);
    }
    // One more cycle lets the write wave's tail stage (written at
    // ws + s - 1 = cycle s) complete; in store-and-forward mode the read
    // wave starts at ws + s = s + 1, so the upset window is open now.
    {
        let now = sw.now();
        let out = sw.tick(&[None, None]);
        col.observe(now, out);
    }
    let live = fault.and_then(|(stage, slot, mask)| sw.inject_bank_fault(stage, Addr(slot), mask));
    run_until_quiescent((100 * s) as u64, "fault-injection drain", |_| {
        if sw.is_quiescent() {
            return true;
        }
        let now = sw.now();
        let out = sw.tick(&[None, None]);
        col.observe(now, out);
        false
    })
    .expect("drain hung — caught by the watchdog");
    let pkts = col.take();
    let drops = sw.counters().corrupt_drops;
    let outcome = match (pkts.len(), drops) {
        (0, 1) => Outcome::DetectedAndDropped,
        (1, 0) if pkts[0].verify_payload() => Outcome::DeliveredIntact,
        (1, 0) => Outcome::DeliveredCorrupt,
        (n, d) => panic!("unaccounted outcome: {n} delivered, {d} dropped"),
    };
    assert_eq!(sw.counters().in_flight(), 0, "every packet accounted for");
    (outcome, live)
}

#[test]
fn clean_run_verifies() {
    let (outcome, live) = run_with_fault(None);
    assert_eq!(
        outcome,
        Outcome::DeliveredIntact,
        "no fault: clean delivery"
    );
    assert_eq!(live, None);
}

#[test]
fn payload_bit_flip_detected_and_dropped() {
    // Flip one bit of a payload word in the occupied slot: the scrub at
    // read initiation must condemn the packet.
    let (outcome, live) = run_with_fault(Some((2, 0, 1 << 17)));
    assert_eq!(outcome, Outcome::DetectedAndDropped);
    assert_eq!(live, Some(9), "the hook knows it struck live data");
}

#[test]
fn header_bit_flip_detected_and_dropped() {
    // Flip a bit in the header word (bank 0 holds word 0): the checksum
    // covers the header too.
    let (outcome, live) = run_with_fault(Some((0, 0, 1 << 30)));
    assert_eq!(outcome, Outcome::DetectedAndDropped);
    assert_eq!(live, Some(9));
}

#[test]
fn fault_in_unoccupied_slot_is_harmless() {
    // Corrupting a slot the packet does not occupy must not affect it —
    // and the hook must report the upset as not-live (zero false
    // positives on coverage accounting).
    let (outcome, live) = run_with_fault(Some((2, 5, u64::MAX)));
    assert_eq!(outcome, Outcome::DeliveredIntact);
    assert_eq!(live, None, "upset in free storage is ineffective");
}

#[test]
fn every_stage_is_covered_by_the_check() {
    // The scrub must cover all stages — a fault anywhere in the word's
    // journey is visible.
    for stage in 0..4 {
        let (outcome, _) = run_with_fault(Some((stage, 0, 1)));
        assert_eq!(
            outcome,
            Outcome::DetectedAndDropped,
            "stage {stage}: fault went undetected"
        );
    }
}
