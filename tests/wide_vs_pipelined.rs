//! Word-level head-to-head: the pipelined switch (fig. 4) vs the
//! wide-memory switch (fig. 3) under identical workloads.
//!
//! The paper's §3.2 comparison in executable form: both organizations
//! carry the same traffic without loss, but the wide memory needs double
//! input buffering and a bypass crossbar to do it, and without the
//! bypass its cut-through latency degrades by a full packet time.

use telegraphos::simkernel::cell::Packet;
use telegraphos::simkernel::ids::Addr;
use telegraphos::simkernel::{run_until_quiescent, SplitMix64};
use telegraphos::switch_core::config::SwitchConfig;
use telegraphos::switch_core::rtl::{DeliveredPacket, OutputCollector, PipelinedSwitch};
use telegraphos::switch_core::widemem::{WideMemorySwitchRtl, WideSwitchConfig};

/// Generate a deterministic word schedule: per input, contiguous packets
/// with random gaps and destinations.
#[allow(clippy::needless_range_loop)]
fn schedule(n: usize, s: usize, cycles: u64, load: f64, seed: u64) -> Vec<Vec<Option<u64>>> {
    let mut rng = SplitMix64::new(seed);
    let mut wires = vec![vec![None; n]; cycles as usize];
    let q = load / (load + s as f64 * (1.0 - load));
    let mut next_id = 1u64;
    for i in 0..n {
        let mut t = 0usize;
        while t < cycles as usize {
            if rng.chance(q) {
                if t + s > cycles as usize {
                    break;
                }
                let p = Packet::synth(next_id, i, rng.below_usize(n), s, t as u64);
                next_id += 1;
                for (k, w) in p.words.iter().enumerate() {
                    wires[t + k][i] = Some(*w);
                }
                t += s;
            } else {
                t += 1;
            }
        }
    }
    wires
}

fn run_pipelined(wires: &[Vec<Option<u64>>], n: usize, s: usize) -> Vec<DeliveredPacket> {
    let mut sw = PipelinedSwitch::new(SwitchConfig::symmetric(n, 64));
    let mut col = OutputCollector::new(n, s);
    for row in wires {
        let now = sw.now();
        let out = sw.tick(row);
        col.observe(now, out);
    }
    let idle = vec![None; n];
    run_until_quiescent(10_000, "pipelined drain", |_| {
        if sw.is_quiescent() {
            return true;
        }
        let now = sw.now();
        let out = sw.tick(&idle);
        col.observe(now, out);
        false
    })
    .expect("pipelined switch failed to drain — hang caught by the watchdog");
    assert_eq!(sw.counters().latch_overruns, 0);
    assert_eq!(sw.counters().dropped_buffer_full, 0);
    col.take()
}

fn run_wide(
    wires: &[Vec<Option<u64>>],
    n: usize,
    s: usize,
    crossbar: bool,
) -> Vec<DeliveredPacket> {
    let mut cfg = WideSwitchConfig::fig3(n, 64);
    cfg.cut_through_crossbar = crossbar;
    let mut sw = WideMemorySwitchRtl::new(cfg);
    let mut col = OutputCollector::new(n, s);
    for row in wires {
        let now = sw.now();
        let out = sw.tick(row);
        col.observe(now, out);
    }
    let idle = vec![None; n];
    run_until_quiescent(10_000, "wide-memory drain", |_| {
        if sw.is_quiescent() {
            return true;
        }
        let now = sw.now();
        let out = sw.tick(&idle);
        col.observe(now, out);
        false
    })
    .expect("wide-memory switch failed to drain — hang caught by the watchdog");
    assert_eq!(sw.counters().latch_overruns, 0, "double buffering suffices");
    assert_eq!(sw.counters().dropped_buffer_full, 0);
    col.take()
}

#[test]
fn both_deliver_everything_intact() {
    let (n, s) = (4, 8);
    let wires = schedule(n, s, 8_000, 0.6, 11);
    let pipe = run_pipelined(&wires, n, s);
    let wide = run_wide(&wires, n, s, true);
    assert_eq!(pipe.len(), wide.len(), "same packets in, same packets out");
    assert!(pipe.iter().all(|d| d.verify_payload()));
    assert!(wide.iter().all(|d| d.verify_payload()));
    assert!(pipe.len() > 300, "workload too thin: {}", pipe.len());
}

#[test]
fn pipelined_latency_never_worse_than_wide_without_crossbar() {
    // Identical workloads, so comparing mean first-word cycles compares
    // mean head latency directly.
    let (n, s) = (4, 8);
    let wires = schedule(n, s, 8_000, 0.4, 13);
    let pipe = run_pipelined(&wires, n, s);
    let wide_nc = run_wide(&wires, n, s, false);
    let mean_first = |pkts: &[DeliveredPacket]| {
        pkts.iter().map(|d| d.first_cycle).sum::<u64>() as f64 / pkts.len() as f64
    };
    assert_eq!(pipe.len(), wide_nc.len());
    let mp = mean_first(&pipe);
    let mw = mean_first(&wide_nc);
    assert!(
        mw > mp + (s as f64) * 0.5,
        "wide memory without the bypass crossbar must pay ≈ a packet time \
         of extra latency (pipelined {mp:.1} vs wide {mw:.1})"
    );
}

/// The same single-bit upset — flip bit 3 of stored word 2 of a buffered
/// packet — must be detected by every memory organization the paper
/// compares: the pipelined per-stage banks (checksum scrub at read
/// initiation), the wide memory (checksum scrub at fetch), and the
/// interleaved one-packet-per-bank organization (checksum over the bank
/// read-back). One fault model, three organizations, three detections.
#[test]
fn all_three_organizations_detect_the_same_upset() {
    const WORD_K: usize = 2;
    const MASK: u64 = 1 << 3;
    let s = 4; // 2x2 switch quantum

    // --- Pipelined per-stage banks ------------------------------------
    let mut cfg = SwitchConfig::symmetric(2, 8);
    cfg.cut_through = false;
    cfg.fused_cut_through = false;
    let mut sw = PipelinedSwitch::new(cfg);
    let p = Packet::synth(5, 0, 1, s, 0);
    let mut col = OutputCollector::new(2, s);
    for k in 0..=s {
        let now = sw.now();
        let out = sw.tick(&[p.words.get(k).copied(), None]);
        col.observe(now, out);
    }
    let live: Vec<usize> = (0..8)
        .filter(|&a| sw.inject_bank_fault(WORD_K, Addr(a), MASK).is_some())
        .collect();
    assert_eq!(live.len(), 1, "one slot holds the packet");
    run_until_quiescent(200, "pipelined upset drain", |_| {
        if sw.is_quiescent() {
            return true;
        }
        let now = sw.now();
        let out = sw.tick(&[None, None]);
        col.observe(now, out);
        false
    })
    .expect("drain hung");
    assert!(col.take().is_empty(), "pipelined: corrupt packet must drop");
    assert_eq!(sw.counters().corrupt_drops, 1, "pipelined scrub detects");

    // --- Wide memory ---------------------------------------------------
    let mut wcfg = WideSwitchConfig::fig3(2, 8);
    wcfg.cut_through_crossbar = false; // store-and-forward: packet resident
    let mut wsw = WideMemorySwitchRtl::new(wcfg);
    let mut wcol = OutputCollector::new(2, s);
    for k in 0..=s {
        let now = wsw.now();
        let out = wsw.tick(&[p.words.get(k).copied(), None]);
        wcol.observe(now, out);
    }
    let live: Vec<usize> = (0..8)
        .filter(|&a| wsw.inject_memory_fault(Addr(a), WORD_K, MASK))
        .collect();
    assert_eq!(live.len(), 1, "one wide slot holds the packet");
    run_until_quiescent(200, "wide upset drain", |_| {
        if wsw.is_quiescent() {
            return true;
        }
        let now = wsw.now();
        let out = wsw.tick(&[None, None]);
        wcol.observe(now, out);
        false
    })
    .expect("drain hung");
    assert!(wcol.take().is_empty(), "wide: corrupt packet must drop");
    assert_eq!(wsw.counters().corrupt_drops, 1, "wide fetch scrub detects");

    // --- Interleaved (one packet per bank) -----------------------------
    use telegraphos::membank::interleaved::InterleavedMemory;
    use telegraphos::switch_core::rtl::integrity_checksum;
    let mut mem = InterleavedMemory::new(4, s, 64);
    let b = mem.allocate().expect("free bank");
    let sealed = integrity_checksum(p.words.iter().copied());
    for (k, &w) in p.words.iter().enumerate() {
        mem.begin_cycle(k as u64);
        mem.write_word(b, k, w).expect("single write per cycle");
    }
    mem.inject_fault(b, WORD_K, MASK);
    let mut stored = Vec::with_capacity(s);
    for k in 0..s {
        mem.begin_cycle((s + k) as u64);
        stored.push(mem.read_word(b, k).expect("single read per cycle"));
    }
    assert_ne!(
        integrity_checksum(stored.iter().copied()),
        sealed,
        "interleaved: the checksum over the read-back exposes the upset"
    );
    mem.release(b);
}

#[test]
fn wide_with_crossbar_approaches_pipelined_latency() {
    let (n, s) = (4, 8);
    let wires = schedule(n, s, 8_000, 0.3, 17);
    let pipe = run_pipelined(&wires, n, s);
    let wide = run_wide(&wires, n, s, true);
    let mean_first = |pkts: &[DeliveredPacket]| {
        pkts.iter().map(|d| d.first_cycle).sum::<u64>() as f64 / pkts.len() as f64
    };
    let gap = mean_first(&wide) - mean_first(&pipe);
    assert!(
        gap.abs() < s as f64,
        "with its extra crossbar the wide memory should be within a packet \
         time of the pipelined switch (gap {gap:.1}); the pipelined one gets \
         this latency with no bypass hardware at all"
    );
}
