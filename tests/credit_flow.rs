//! Link-level credit flow control makes buffer-full drops impossible.
//!
//! Telegraphos reserves downstream buffer slots per incoming link and
//! paces each sender by credits (§4.2, \[KVES95\]). With per-input credit
//! allotments summing to at most the shared-buffer capacity, a packet is
//! only launched when a slot is guaranteed — the switch's
//! `dropped_buffer_full` counter must stay exactly zero under any load,
//! while the uncredited switch with the same tiny buffer drops heavily.

use telegraphos::simkernel::cell::Packet;
use telegraphos::simkernel::SplitMix64;
use telegraphos::switch_core::config::SwitchConfig;
use telegraphos::switch_core::credit::CreditedInput;
use telegraphos::switch_core::ibank::{InterleavedSwitch, InterleavedSwitchConfig};
use telegraphos::switch_core::rtl::{OutputCollector, PipelinedSwitch};
use telegraphos::switch_core::widemem::{WideMemorySwitchRtl, WideSwitchConfig};

/// Word-level switch under test: the credit protocol (§4.2) is
/// organization-agnostic, so the lossy-return tests run against every
/// memory organization, not just the pipelined one.
enum AnySwitch {
    Pipelined(Box<PipelinedSwitch>),
    Wide(Box<WideMemorySwitchRtl>),
    Interleaved(Box<InterleavedSwitch>),
}

impl AnySwitch {
    /// Build `org` at (n, slots); returns the switch and its packet
    /// length in words (identical across organizations by construction).
    fn build(org: &str, n: usize, slots: usize) -> (Self, usize) {
        match org {
            "pipelined" => {
                let cfg = SwitchConfig::symmetric(n, slots);
                let s = cfg.stages();
                (AnySwitch::Pipelined(Box::new(PipelinedSwitch::new(cfg))), s)
            }
            "wide" => {
                let cfg = WideSwitchConfig::fig3(n, slots);
                let s = cfg.packet_words();
                (AnySwitch::Wide(Box::new(WideMemorySwitchRtl::new(cfg))), s)
            }
            "interleaved" => {
                let cfg = InterleavedSwitchConfig::symmetric(n, slots);
                let s = cfg.packet_words();
                (
                    AnySwitch::Interleaved(Box::new(InterleavedSwitch::new(cfg))),
                    s,
                )
            }
            other => panic!("unknown organization {other}"),
        }
    }

    fn tick(&mut self, wire: &[Option<u64>]) -> &[Option<u64>] {
        match self {
            AnySwitch::Pipelined(sw) => sw.tick(wire),
            AnySwitch::Wide(sw) => sw.tick(wire),
            AnySwitch::Interleaved(sw) => sw.tick(wire),
        }
    }

    fn now(&self) -> u64 {
        match self {
            AnySwitch::Pipelined(sw) => sw.now(),
            AnySwitch::Wide(sw) => sw.now(),
            AnySwitch::Interleaved(sw) => sw.now(),
        }
    }

    fn counters(&self) -> telegraphos::switch_core::events::SwitchCounters {
        match self {
            AnySwitch::Pipelined(sw) => sw.counters(),
            AnySwitch::Wide(sw) => sw.counters(),
            AnySwitch::Interleaved(sw) => sw.counters(),
        }
    }
}

/// Drive an n×n switch at full demand with *uncredited* senders (the
/// control case). Returns (delivered, dropped_buffer_full).
fn drive(n: usize, slots: usize, _credits: Option<u32>, cycles: u64) -> (usize, u64) {
    let cfg = SwitchConfig::symmetric(n, slots);
    let s = cfg.stages();
    let mut sw = PipelinedSwitch::new(cfg);
    let mut col = OutputCollector::new(n, s);
    let mut rng = SplitMix64::new(99);
    let mut current: Vec<Option<(Packet, usize)>> = vec![None; n];
    let mut next_id = 1u64;

    for _ in 0..cycles {
        let now = sw.now();
        let mut wire = vec![None; n];
        for i in 0..n {
            if current[i].is_none() {
                let dst = rng.below_usize(n);
                let p = Packet::synth(next_id, i, dst, s, now);
                next_id += 1;
                current[i] = Some((p, 0));
            }
            if let Some((p, k)) = current[i].as_mut() {
                wire[i] = Some(p.words[*k]);
                *k += 1;
                if *k == s {
                    current[i] = None;
                }
            }
        }
        let out = sw.tick(&wire);
        col.observe(now, out);
        col.take();
    }
    let ctr = sw.counters();
    (ctr.departed as usize, ctr.dropped_buffer_full)
}

/// Full version with id→input mapping for credit return.
fn drive_credited(n: usize, slots: usize, credits_per_input: u32, cycles: u64) -> (usize, u64) {
    let cfg = SwitchConfig::symmetric(n, slots);
    let s = cfg.stages();
    let mut sw = PipelinedSwitch::new(cfg);
    let mut col = OutputCollector::new(n, s);
    let mut rng = SplitMix64::new(7);
    let mut senders: Vec<CreditedInput<usize>> = (0..n)
        .map(|_| CreditedInput::new(credits_per_input, 1))
        .collect();
    let mut current: Vec<Option<(Packet, usize)>> = vec![None; n];
    let mut next_id = 1u64;
    let mut id_to_input: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();

    for _ in 0..cycles {
        let now = sw.now();
        let mut wire = vec![None; n];
        for i in 0..n {
            if current[i].is_none() {
                senders[i].offer(rng.below_usize(n));
                if let Some(dst) = senders[i].poll(now) {
                    let p = Packet::synth(next_id, i, dst, s, now);
                    id_to_input.insert(next_id, i);
                    next_id += 1;
                    current[i] = Some((p, 0));
                }
            }
            if let Some((p, k)) = current[i].as_mut() {
                wire[i] = Some(p.words[*k]);
                *k += 1;
                if *k == s {
                    current[i] = None;
                }
            }
        }
        let out = sw.tick(&wire);
        col.observe(now, out);
        for d in col.take() {
            let src = id_to_input.remove(&d.id).expect("delivered id was sent");
            senders[src].return_credit(now);
            assert!(d.verify_payload());
        }
    }
    let ctr = sw.counters();
    (ctr.departed as usize, ctr.dropped_buffer_full)
}

#[test]
fn credits_prevent_all_drops_with_tiny_buffer() {
    // Buffer of n slots, credits of 1 per input: sum of credits = slots,
    // so drops are impossible even at full demand.
    let n = 4;
    let (delivered, dropped) = drive_credited(n, n, 1, 20_000);
    assert_eq!(dropped, 0, "credited senders must never see buffer-full");
    assert!(delivered > 500, "and traffic must still flow: {delivered}");
}

#[test]
fn credits_scale_with_reservation() {
    let n = 4;
    let (d1, drop1) = drive_credited(n, 2 * n, 2, 20_000);
    assert_eq!(drop1, 0);
    assert!(d1 > 500);
}

#[test]
fn uncredited_senders_drop_at_same_buffer_size() {
    let n = 4;
    let (_, dropped) = drive(n, n, None, 20_000);
    assert!(
        dropped > 50,
        "uncredited full demand against n slots must drop (got {dropped})"
    );
}

/// Like [`drive_credited`], but runs any memory organization, every
/// `lose_every`-th credit return is dropped on the reverse wire, and the
/// sender audits its conservation invariant every `audit_period` cycles
/// against the ledger's ground truth, resyncing on a detected leak.
/// Returns (delivered, leaks_detected, credits_recovered, final_credits).
fn drive_credited_lossy(
    org: &str,
    n: usize,
    slots: usize,
    credits_per_input: u32,
    cycles: u64,
    lose_every: u64,
    audit_period: u64,
) -> (usize, u64, u64, Vec<u32>) {
    let (mut sw, s) = AnySwitch::build(org, n, slots);
    let mut col = OutputCollector::new(n, s);
    let mut rng = SplitMix64::new(7);
    let mut senders: Vec<CreditedInput<usize>> = (0..n)
        .map(|_| CreditedInput::new(credits_per_input, 1))
        .collect();
    let mut current: Vec<Option<(Packet, usize)>> = vec![None; n];
    let mut next_id = 1u64;
    let mut id_to_input: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut launched = vec![0u64; n];
    let mut delivered_from = vec![0u64; n];
    let mut returns_seen = 0u64;
    let mut leaks = 0u64;
    let mut recovered = 0u64;

    for _ in 0..cycles {
        let now = sw.now();
        let mut wire = vec![None; n];
        for i in 0..n {
            if current[i].is_none() {
                senders[i].offer(rng.below_usize(n));
                if let Some(dst) = senders[i].poll(now) {
                    let p = Packet::synth(next_id, i, dst, s, now);
                    id_to_input.insert(next_id, i);
                    launched[i] += 1;
                    next_id += 1;
                    current[i] = Some((p, 0));
                }
            }
            if let Some((p, k)) = current[i].as_mut() {
                wire[i] = Some(p.words[*k]);
                *k += 1;
                if *k == s {
                    current[i] = None;
                }
            }
        }
        let out = sw.tick(&wire);
        col.observe(now, out);
        for d in col.take() {
            let src = id_to_input.remove(&d.id).expect("delivered id was sent");
            delivered_from[src] += 1;
            returns_seen += 1;
            // The faulty reverse wire: every `lose_every`-th credit
            // return vanishes.
            if !returns_seen.is_multiple_of(lose_every) {
                senders[src].return_credit(now);
            }
            assert!(d.verify_payload());
        }
        // Periodic audit against ground truth (what a real credit
        // protocol gets from an absolute-count sync message).
        if now % audit_period == audit_period - 1 {
            for i in 0..n {
                let actual = (launched[i] - delivered_from[i]) as u32;
                if senders[i].audit(actual, "lossy link").is_err() {
                    leaks += 1;
                    recovered += u64::from(senders[i].resync(actual));
                }
            }
        }
    }
    let ctr = sw.counters();
    // Credits only ever under-admit (loss and resync both shrink the
    // in-flight bound), so no organization may report buffer-full drops.
    assert_eq!(
        ctr.dropped_buffer_full, 0,
        "{org}: credited senders must never see buffer-full"
    );
    let final_credits = senders.iter().map(|c| c.credits()).collect();
    (ctr.departed as usize, leaks, recovered, final_credits)
}

#[test]
fn credited_throughput_approaches_uncredited() {
    // Credits sized to the buffer shouldn't throttle much at this load.
    let n = 4;
    let (d_credit, _) = drive_credited(n, 4 * n, 4, 30_000);
    let (d_free, _) = drive(n, 4 * n, None, 30_000);
    assert!(
        d_credit as f64 > 0.8 * d_free as f64,
        "credits over-throttle: {d_credit} vs {d_free}"
    );
}

#[test]
fn lost_credit_returns_bleed_the_link_dry_without_audit() {
    // Every 4th credit return vanishes and no audit ever runs: each
    // sender's allotment bleeds away and the link wedges permanently —
    // the failure mode the audit exists to catch.
    let n = 4;
    let (delivered, leaks, recovered, credits) =
        drive_credited_lossy("pipelined", n, 4 * n, 4, 20_000, 4, u64::MAX);
    assert_eq!(leaks, 0, "no audit, no detection");
    assert_eq!(recovered, 0);
    assert!(
        delivered < 150,
        "without resync the link must wedge after ~4x allotment per \
         sender, got {delivered}"
    );
    assert!(
        credits.iter().all(|&c| c == 0),
        "every sender bled dry: {credits:?}"
    );
}

#[test]
fn credit_audit_detects_loss_and_resync_restores_throughput() {
    // Same lossy reverse wire, but the senders audit the conservation
    // invariant every 100 cycles against ground truth and resync. The
    // audit must fire (CreditLeak detected), recover the lost credits,
    // and keep throughput near the lossless link's.
    let n = 4;
    let (d_lossy, leaks, recovered, _) =
        drive_credited_lossy("pipelined", n, 4 * n, 4, 20_000, 4, 100);
    assert!(leaks > 0, "audit must detect the leaked credits");
    assert!(
        recovered >= leaks,
        "each detected leak recovers >= 1 credit"
    );
    let (d_clean, clean_leaks, clean_recovered, _) =
        drive_credited_lossy("pipelined", n, 4 * n, 4, 20_000, u64::MAX, 100);
    assert_eq!(clean_leaks, 0, "false positive: audit fired without loss");
    assert_eq!(clean_recovered, 0);
    assert!(
        d_lossy as f64 > 0.5 * d_clean as f64,
        "throughput must recover after resync: {d_lossy} vs {d_clean}"
    );
}

/// The lossy-return protocol checks are organization-agnostic: run the
/// full detect/resync cycle against the wide-memory and interleaved
/// organizations too (until now only the pipelined RTL was exercised).
/// Each must (a) wedge without an audit, (b) detect and recover with
/// one, (c) keep throughput, and (d) never drop — the in-helper
/// buffer-full assertion.
fn lossy_credit_roundtrip(org: &str) {
    let n = 4;
    let (wedged, _, _, credits) = drive_credited_lossy(org, n, 4 * n, 4, 20_000, 4, u64::MAX);
    assert!(
        wedged < 150,
        "{org}: without resync the link must wedge, got {wedged}"
    );
    assert!(
        credits.iter().all(|&c| c == 0),
        "{org}: every sender bled dry: {credits:?}"
    );
    let (d_lossy, leaks, recovered, _) = drive_credited_lossy(org, n, 4 * n, 4, 20_000, 4, 100);
    assert!(leaks > 0, "{org}: audit must detect the leaked credits");
    assert!(recovered >= leaks, "{org}: resync must recover credits");
    let (d_clean, clean_leaks, _, _) =
        drive_credited_lossy(org, n, 4 * n, 4, 20_000, u64::MAX, 100);
    assert_eq!(clean_leaks, 0, "{org}: audit fired without loss");
    assert!(
        d_lossy as f64 > 0.5 * d_clean as f64,
        "{org}: throughput must recover after resync: {d_lossy} vs {d_clean}"
    );
}

#[test]
fn wide_memory_survives_lossy_credit_returns() {
    lossy_credit_roundtrip("wide");
}

#[test]
fn interleaved_survives_lossy_credit_returns() {
    lossy_credit_roundtrip("interleaved");
}
