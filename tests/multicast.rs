//! Multicast through the pipelined shared buffer.
//!
//! The paper's switches "forward packets that arrive through the incoming
//! links to the proper outgoing link(s)". Multicast exercises the buffer
//! manager's distinctive economy: one stored copy serves every
//! destination, each copy is claimed by its own read wave, and the slot
//! is freed at the *last* copy's read initiation — earlier copies' reads
//! are still in flight then, safe because any later write wave trails
//! them stage by stage.

use telegraphos::simkernel::cell::Packet;
use telegraphos::switch_core::config::SwitchConfig;
use telegraphos::switch_core::rtl::{DeliveredPacket, OutputCollector, PipelinedSwitch};

/// Send one multicast packet to `mask` and drain; returns deliveries.
fn send_multicast(n: usize, slots: usize, mask: u16) -> (Vec<DeliveredPacket>, PipelinedSwitch) {
    let cfg = SwitchConfig::symmetric(n, slots);
    let s = cfg.stages();
    let mut sw = PipelinedSwitch::new(cfg);
    let p = Packet::synth_multicast(7, 0, mask, s, 0);
    let mut col = OutputCollector::new(n, s);
    for k in 0..s {
        let mut wire = vec![None; n];
        wire[0] = Some(p.words[k]);
        let now = sw.now();
        let out = sw.tick(&wire);
        col.observe(now, out);
    }
    let idle = vec![None; n];
    let mut guard = 0;
    while !sw.is_quiescent() && guard < 100 * s {
        let now = sw.now();
        let out = sw.tick(&idle);
        col.observe(now, out);
        guard += 1;
    }
    assert!(sw.is_quiescent());
    (col.take(), sw)
}

#[test]
fn one_copy_per_destination() {
    let (pkts, sw) = send_multicast(4, 8, 0b1011);
    assert_eq!(pkts.len(), 3, "three destinations, three copies");
    let mut outs: Vec<usize> = pkts.iter().map(|d| d.output.index()).collect();
    outs.sort_unstable();
    assert_eq!(outs, vec![0, 1, 3]);
    // One arrival, three departures; no drops.
    let ctr = sw.counters();
    assert_eq!(ctr.arrived, 1);
    assert_eq!(ctr.departed, 3);
    assert_eq!(ctr.dropped_buffer_full, 0);
    assert_eq!(ctr.latch_overruns, 0);
}

#[test]
fn all_copies_bit_exact() {
    let (pkts, _) = send_multicast(4, 8, 0b0110);
    assert_eq!(pkts.len(), 2);
    assert_eq!(pkts[0].words, pkts[1].words, "copies must be identical");
    // Payload integrity: check against the multicast synthesis.
    let reference = Packet::synth_multicast(7, 0, 0b0110, 8, 0);
    for d in &pkts {
        assert_eq!(d.words, reference.words, "copy corrupted");
    }
}

#[test]
fn copies_staggered_one_initiation_per_cycle() {
    // Reads for the copies initiate in different cycles; with all outputs
    // idle they go out back to back starting at the fused cut-through.
    let (pkts, _) = send_multicast(4, 8, 0b0011);
    let mut firsts: Vec<u64> = pkts.iter().map(|d| d.first_cycle).collect();
    firsts.sort_unstable();
    assert_eq!(firsts[0], 2, "first copy cuts through fused (a+2)");
    assert_eq!(firsts[1], 3, "second copy's read initiates next cycle");
}

#[test]
fn broadcast_to_all_outputs() {
    let n = 8;
    let mask = (1u16 << n) - 1;
    let (pkts, sw) = send_multicast(n, 16, mask);
    assert_eq!(pkts.len(), n);
    assert_eq!(sw.counters().departed, n as u64);
    let mut outs: Vec<usize> = pkts.iter().map(|d| d.output.index()).collect();
    outs.sort_unstable();
    assert_eq!(outs, (0..n).collect::<Vec<_>>());
}

#[test]
fn slot_freed_only_after_last_copy_claimed() {
    // One buffer slot, a 2-way multicast, then a unicast packet behind
    // it: the unicast must be admitted only after the multicast's last
    // read initiated, and everything must still be delivered.
    let n = 2;
    let cfg = SwitchConfig::symmetric(n, 1);
    let s = cfg.stages();
    let mut sw = PipelinedSwitch::new(cfg);
    let mc = Packet::synth_multicast(1, 0, 0b11, s, 0);
    let uc = Packet::synth(2, 0, 1, s, s as u64);
    let mut col = OutputCollector::new(n, s);
    for k in 0..s {
        let now = sw.now();
        let out = sw.tick(&[Some(mc.words[k]), None]);
        col.observe(now, out);
    }
    for k in 0..s {
        let now = sw.now();
        let out = sw.tick(&[Some(uc.words[k]), None]);
        col.observe(now, out);
    }
    let mut guard = 0;
    while !sw.is_quiescent() && guard < 100 * s {
        let now = sw.now();
        let out = sw.tick(&[None, None]);
        col.observe(now, out);
        guard += 1;
    }
    let pkts = col.take();
    let ctr = sw.counters();
    // The multicast claims the only slot; whether the unicast is admitted
    // depends on when the last copy's read initiates. Conservation must
    // hold either way: 2 copies + (unicast delivered XOR dropped).
    let mc_copies = pkts.iter().filter(|d| d.id == 1).count();
    let uc_copies = pkts.iter().filter(|d| d.id == 2).count();
    assert_eq!(mc_copies, 2);
    assert_eq!(uc_copies as u64 + ctr.dropped_buffer_full, 1);
    assert_eq!(ctr.latch_overruns, 0);
}

#[test]
fn multicast_under_load_conserves() {
    // Random mix of unicast and multicast on all inputs at high load.
    use telegraphos::simkernel::SplitMix64;
    let n = 4;
    let cfg = SwitchConfig::symmetric(n, 32);
    let s = cfg.stages();
    let mut sw = PipelinedSwitch::new(cfg);
    let mut col = OutputCollector::new(n, s);
    let mut rng = SplitMix64::new(13);
    let mut next_id = 1u64;
    let mut expected_copies = 0u64;
    let mut current: Vec<Option<(Packet, usize)>> = vec![None; n];
    let mut launched_fanout: std::collections::HashMap<u64, u32> = Default::default();
    for _ in 0..20_000u64 {
        let now = sw.now();
        let mut wire = vec![None; n];
        for i in 0..n {
            if current[i].is_none() && rng.chance(0.6) {
                let p = if rng.chance(0.3) {
                    // Multicast to a random non-empty mask.
                    let mask = (rng.below(1 << n) as u16).max(1);
                    Packet::synth_multicast(next_id, i, mask, s, now)
                } else {
                    Packet::synth(next_id, i, rng.below_usize(n), s, now)
                };
                let (mask, _) = Packet::decode_header_any(p.words[0]);
                launched_fanout.insert(next_id, mask.count_ones());
                next_id += 1;
                current[i] = Some((p, 0));
            }
            if let Some((p, k)) = current[i].as_mut() {
                wire[i] = Some(p.words[*k]);
                *k += 1;
                if *k == s {
                    current[i] = None;
                }
            }
        }
        let out = sw.tick(&wire);
        col.observe(now, out);
    }
    // Drain: finish any packet still on a wire, then idle.
    let mut guard = 0;
    while !sw.is_quiescent() && guard < 10_000 {
        let now = sw.now();
        let mut wire = vec![None; n];
        for i in 0..n {
            if let Some((p, k)) = current[i].as_mut() {
                wire[i] = Some(p.words[*k]);
                *k += 1;
                if *k == s {
                    current[i] = None;
                }
            }
        }
        let out = sw.tick(&wire);
        col.observe(now, out);
        guard += 1;
    }
    assert!(sw.is_quiescent());
    let pkts = col.take();
    let ctr = sw.counters();
    // Copies delivered per id must equal its fanout, for every admitted
    // packet; dropped packets deliver zero copies.
    let mut delivered_per_id: std::collections::HashMap<u64, u32> = Default::default();
    for d in &pkts {
        *delivered_per_id.entry(d.id).or_default() += 1;
    }
    for (id, copies) in &delivered_per_id {
        assert_eq!(copies, &launched_fanout[id], "id {id}: wrong copy count");
        expected_copies += u64::from(*copies);
    }
    assert_eq!(ctr.departed, expected_copies);
    assert_eq!(
        delivered_per_id.len() as u64 + ctr.dropped_buffer_full,
        ctr.arrived
    );
    assert_eq!(ctr.latch_overruns, 0, "overruns must stay impossible");
    assert!(pkts.len() > 5_000, "workload too thin: {}", pkts.len());
}
