//! Property tests over the behavioral switch, the half-quantum buffer
//! and the WRR multiplexer — the invariants that define each component,
//! under arbitrary legal stimulus.
//!
//! Stimulus is drawn from `SplitMix64` with fixed seeds (no external
//! property-testing dependency): every run checks the same population of
//! cases, and a failing case reproduces from its printed case number.

use std::collections::HashMap;
use telegraphos::simkernel::SplitMix64;
use telegraphos::switch_core::behavioral::BehavioralSwitch;
use telegraphos::switch_core::config::SwitchConfig;
use telegraphos::switch_core::halfq::HalfQuantumBuffer;
use telegraphos::switch_core::wrr::WrrMux;

/// The behavioral switch's structural invariants under random loads:
/// one wave initiation per cycle (read starts unique), per-output
/// transmissions non-overlapping, conservation exact.
#[test]
fn behavioral_structural_invariants() {
    let mut gen = SplitMix64::new(0x5EED_0010);
    for case in 0..48u64 {
        let n = 2 + gen.below_usize(5);
        let slots = 1 + gen.below_usize(32);
        let load = (5 + gen.below(96)) as f64 / 100.0;
        let seed = gen.below(1000);
        let cfg = SwitchConfig::symmetric(n, slots);
        let s = cfg.stages() as u64;
        let mut sw = BehavioralSwitch::new(cfg);
        let mut rng = SplitMix64::new(seed);
        let mut arr = vec![None; n];
        for _ in 0..3_000u64 {
            for (i, a) in arr.iter_mut().enumerate() {
                *a = (sw.input_free(i) && rng.chance(load)).then(|| rng.below_usize(n));
            }
            sw.tick(&arr);
        }
        let idle = vec![None; n];
        let mut guard = 0;
        while !sw.is_quiescent() && guard < 10_000 {
            sw.tick(&idle);
            guard += 1;
        }
        assert!(sw.is_quiescent(), "case {case}");
        assert_eq!(sw.overruns, 0, "case {case}: latch overruns are impossible");
        assert_eq!(
            sw.arrived,
            sw.departures().len() as u64,
            "case {case}: conservation: every accepted packet departs exactly once"
        );
        // One initiation per cycle: no two read waves share a start.
        let mut starts: Vec<u64> = sw.departures().iter().map(|d| d.read_start).collect();
        let before = starts.len();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(
            starts.len(),
            before,
            "case {case}: two read waves in one cycle"
        );
        // Per-output transmissions never overlap.
        let mut per_out: HashMap<usize, Vec<(u64, u64)>> = HashMap::new();
        for d in sw.departures() {
            per_out
                .entry(d.output)
                .or_default()
                .push((d.read_start + 1, d.done));
        }
        for (out, mut spans) in per_out {
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(
                    w[0].1 < w[1].0,
                    "case {case}: output {out}: transmissions overlap: {w:?}"
                );
            }
            // And each transmission is exactly S cycles.
            for (a, b) in &spans {
                assert_eq!(b - a + 1, s, "case {case}");
            }
        }
    }
}

/// The half-quantum buffer never corrupts data and never exceeds its
/// per-cycle budgets, for arbitrary interleavings of stores/fetches.
#[test]
fn halfq_data_integrity_under_random_ops() {
    let mut gen = SplitMix64::new(0x5EED_0011);
    for case in 0..48u64 {
        let n = 2 + gen.below_usize(7);
        let depth = 1 + gen.below_usize(8);
        let op_count = 1 + gen.below_usize(199);
        let seed = gen.below(500);
        let ops: Vec<bool> = (0..op_count).map(|_| gen.chance(0.5)).collect();
        let mut b = HalfQuantumBuffer::new(n, depth, 64);
        let mut rng = SplitMix64::new(seed);
        let mut stored: Vec<(telegraphos::switch_core::halfq::PacketHandle, u64)> = Vec::new();
        let mut expected: Vec<u64> = Vec::new();
        let mut got: Vec<u64> = Vec::new();
        let mut next_seed = 1u64;
        for &do_store in &ops {
            if do_store {
                let words: Vec<u64> = (0..n as u64).map(|k| next_seed * 1000 + k).collect();
                if let Ok(h) = b.store(words) {
                    stored.push((h, next_seed));
                    next_seed += 1;
                }
            } else if !stored.is_empty() {
                let idx = rng.below_usize(stored.len());
                let (h, s) = stored[idx];
                if b.fetch(h).is_ok() {
                    stored.swap_remove(idx);
                    expected.push(s);
                }
            }
            for (_, r) in b.tick() {
                got.push(r.words[0] / 1000);
            }
        }
        for (_, r) in b.drain() {
            got.push(r.words[0] / 1000);
        }
        expected.sort_unstable();
        got.sort_unstable();
        assert_eq!(
            got, expected,
            "case {case}: every fetch returns its own packet"
        );
    }
}

/// WRR long-run service shares track weights for any weight vector,
/// and total service is work-conserving.
#[test]
fn wrr_shares_track_weights() {
    let mut gen = SplitMix64::new(0x5EED_0012);
    for case in 0..48u64 {
        let flows = 2 + gen.below_usize(4);
        let weights: Vec<u32> = (0..flows).map(|_| 1 + gen.below(8) as u32).collect();
        let mut m: WrrMux<u32> = WrrMux::new(&weights);
        let rounds = 4000usize;
        let mut served = vec![0u64; weights.len()];
        for _ in 0..rounds {
            for f in 0..weights.len() {
                while m.queue_len(f) < 2 {
                    m.enqueue(f, 0);
                }
            }
            let (f, _) = m.dequeue().expect("backlogged");
            served[f] += 1;
        }
        let total: u64 = served.iter().sum();
        assert_eq!(total, rounds as u64, "case {case}: work conservation");
        let wsum: u32 = weights.iter().sum();
        for (f, &w) in weights.iter().enumerate() {
            let share = served[f] as f64 / total as f64;
            let expect = w as f64 / wsum as f64;
            assert!(
                (share - expect).abs() < 0.05,
                "case {case}: flow {f}: share {share:.3} vs {expect:.3} (weights {weights:?})"
            );
        }
    }
}
