//! Tier-1 differential conformance: a fixed-budget fuzz campaign over
//! all four memory organizations, the seeded-fault detect-and-shrink
//! path, cross-`--jobs` determinism, and the minimal reproducer the
//! fuzzer once caught the wide-memory model with.

use conformance::{check_scenario, shrink, Offer, Scenario};

/// A fixed-budget campaign must come back clean — zero divergences —
/// while proving it reached the §3.2/§3.3 corner cases (arbitration
/// collisions, cut-through hits, same-cycle starts, full-buffer stalls)
/// and that the aggregate §3.4 latency stayed inside the formula
/// envelope. The embedded shrinker self-test seeds a bank-upset fault
/// through `faultsim` and requires it to shrink to a tiny reproducer.
#[test]
fn fixed_budget_campaign_is_clean() {
    let (report, ok) = bench_harness::fuzz::campaign(64, bench_harness::fuzz::DEFAULT_BASE);
    assert!(ok, "conformance campaign failed its gates:\n{report}");
}

/// An intentionally-seeded bank upset must be detected as a divergence
/// and shrink to a reproducer of at most four packets that still fails
/// the same way.
#[test]
fn seeded_fault_shrinks_to_a_tiny_reproducer() {
    let sc = bench_harness::fuzz::detected_fault_scenario(bench_harness::fuzz::DEFAULT_BASE)
        .expect("no detectable seeded fault found");
    let original_offers = sc.offers.len();
    let (shrunk, err) = shrink(&sc);
    assert!(
        shrunk.offers.len() <= 4,
        "reproducer kept {} of {original_offers} offers: {err}\n{shrunk}",
        shrunk.offers.len()
    );
    assert!(
        check_scenario(&shrunk).is_err(),
        "shrunk reproducer no longer fails"
    );
}

/// The campaign report is a pure function of `(base, seeds)`: sharding
/// it over 1 or 8 workers must produce byte-identical output. (CI also
/// diffs the `expt fuzz` output across `--jobs`; this covers the same
/// property without spawning processes.)
#[test]
fn campaign_report_is_byte_identical_across_jobs() {
    bench_harness::sweep::set_jobs(1);
    let (seq, _) = bench_harness::fuzz::campaign(32, 0xFEED);
    bench_harness::sweep::set_jobs(8);
    let (par, _) = bench_harness::fuzz::campaign(32, 0xFEED);
    bench_harness::sweep::set_jobs(0);
    assert_eq!(seq, par, "campaign report varies with worker count");
}

/// Regression: the 15-offer reproducer the fuzzer shrank out of seed
/// index 86 of the default campaign. Two inputs at full load, credited:
/// with absolute read priority on the wide memory's single port, a
/// transient fetch burst starved a staged write past its one-packet
/// deadline and overflowed the double buffer (a loss credits cannot
/// prevent). The urgent-write override keeps every organization
/// loss-free on this schedule.
#[test]
fn wide_memory_write_starvation_reproducer_stays_fixed() {
    let mk = |at, input, dst, id| Offer { at, input, dst, id };
    let sc = Scenario {
        seed: 0x33030a5c64c8d6aa,
        n: 2,
        slots: 8,
        credited: true,
        recovery: false,
        policy: switch_core::PolicyKind::Static,
        load: 1.0,
        offers: vec![
            mk(0, 0, 0, 11),
            mk(0, 1, 1, 12),
            mk(4, 0, 0, 13),
            mk(4, 1, 1, 14),
            mk(8, 0, 1, 15),
            mk(8, 1, 1, 16),
            mk(12, 0, 0, 17),
            mk(12, 1, 1, 18),
            mk(16, 0, 1, 19),
            mk(16, 1, 1, 20),
            mk(20, 0, 0, 21),
            mk(20, 1, 0, 22),
            mk(24, 0, 0, 23),
            mk(24, 1, 0, 24),
            mk(28, 1, 1, 26),
        ],
        horizon: 192,
        fault: None,
    };
    let stats = check_scenario(&sc).unwrap_or_else(|e| panic!("reproducer diverged again: {e}"));
    assert_eq!(stats.launched, 15);
    assert_eq!(stats.delivered, 15, "credited mode may not lose packets");
}
