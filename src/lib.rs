//! # telegraphos — pipelined-memory shared-buffer VLSI switch, in simulation
//!
//! A full reproduction of Katevenis, Vatsolaki & Efthymiou, *"Pipelined
//! Memory Shared Buffer for VLSI Switches"* (SIGCOMM 1995), as a Rust
//! workspace. This root crate re-exports the workspace members and hosts
//! the runnable examples and the cross-crate integration tests.
//!
//! Start here:
//!
//! * [`switch_core::rtl::PipelinedSwitch`] — the paper's switch, word-
//!   accurate: input latch rows, wave-swept single-ported banks, shared
//!   output register row, automatic cut-through.
//! * [`switch_core::behavioral::BehavioralSwitch`] — the same semantics
//!   at cell level, for statistics.
//! * [`baselines`] — every architecture the paper compares against.
//! * [`fabric`] — the component-graph runtime: multistage networks of
//!   real elements, sharded bit-exactly across worker threads.
//! * [`vlsimodel`] — the silicon-area and RC-delay arithmetic of §4–5.
//! * `bench-harness` (`cargo run -p bench-harness --bin expt -- all`) —
//!   regenerates every table and figure; see EXPERIMENTS.md.
//!
//! ```
//! use telegraphos::switch_core::config::SwitchConfig;
//! use telegraphos::switch_core::rtl::PipelinedSwitch;
//! use telegraphos::simkernel::cell::Packet;
//!
//! // A 2x2 switch (4 stages, 4-word packets); send one packet in.
//! let mut sw = PipelinedSwitch::new(SwitchConfig::symmetric(2, 8));
//! let p = Packet::synth(1, 0, 1, 4, 0);
//! let mut first_out = None;
//! for k in 0..12 {
//!     let wire = [p.words.get(k).copied(), None];
//!     let now = sw.now();
//!     let out = sw.tick(&wire);
//!     if first_out.is_none() && out[1].is_some() {
//!         first_out = Some(now);
//!     }
//! }
//! // Automatic cut-through: first word out two cycles after the header.
//! assert_eq!(first_out, Some(2));
//! ```

pub use baselines;
pub use conformance;
pub use fabric;
pub use membank;
pub use netsim;
pub use simkernel;
pub use stats;
pub use switch_core;
pub use telemetry;
pub use traffic;
pub use vlsimodel;
