//! The probe API: the trait models emit into, the handle they hold, and
//! the stock sinks.
//!
//! A model stores `Option<ProbeHandle>`; the `None` arm is the entire
//! disabled cost. `ProbeHandle` is a shared, interior-mutable reference
//! (`Rc<RefCell<dyn Probe>>`) so one sink can watch several models — or
//! several sinks one model, via [`Fanout`] — without threading mutable
//! borrows through tick phases.

use crate::event::ProbeEvent;
use simkernel::ids::Cycle;
use simkernel::trace::{Trace, TraceEntry};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A consumer of probe events.
pub trait Probe {
    /// Observe one event at `cycle`. Events arrive in nondecreasing
    /// cycle order from any single model.
    fn record(&mut self, cycle: Cycle, event: ProbeEvent);
}

/// The do-nothing sink: attaching it exercises every emission site at
/// (almost) zero cost — the property test and the perf gate both use it
/// to pin "telemetry never changes behavior, enabled or not".
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Probe for NullSink {
    #[inline(always)]
    fn record(&mut self, _cycle: Cycle, _event: ProbeEvent) {}
}

/// A cloneable, type-erased reference to a [`Probe`] that models hold.
#[derive(Clone)]
pub struct ProbeHandle(Rc<RefCell<dyn Probe>>);

impl ProbeHandle {
    /// Wrap any sink into a handle a model can hold.
    pub fn new(probe: impl Probe + 'static) -> Self {
        ProbeHandle(Rc::new(RefCell::new(probe)))
    }

    /// Deliver one event to the sink.
    #[inline]
    pub fn emit(&self, cycle: Cycle, event: ProbeEvent) {
        self.0.borrow_mut().record(cycle, event);
    }
}

impl fmt::Debug for ProbeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ProbeHandle(..)")
    }
}

/// A sink shared between the attaching harness and the models: the
/// harness keeps the [`Shared`], hands [`Shared::handle`]s to models,
/// and inspects the sink afterwards through [`Shared::with`].
#[derive(Debug)]
pub struct Shared<T: Probe + 'static>(Rc<RefCell<T>>);

impl<T: Probe + 'static> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared(Rc::clone(&self.0))
    }
}

impl<T: Probe + 'static> Shared<T> {
    /// Share a sink.
    pub fn new(sink: T) -> Self {
        Shared(Rc::new(RefCell::new(sink)))
    }

    /// A handle for a model to hold (aliases this sink).
    pub fn handle(&self) -> ProbeHandle {
        ProbeHandle(Rc::clone(&self.0) as Rc<RefCell<dyn Probe>>)
    }

    /// Inspect or mutate the shared sink.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }
}

/// Records the probe stream into a [`Trace`] — the single storage engine
/// behind directed-test assertions, the VCD exporter, and the flight
/// recorder (`bounded` construction).
#[derive(Debug, Clone)]
pub struct Recorder {
    trace: Trace<ProbeEvent>,
}

impl Recorder {
    /// Keep every event (directed tests, short runs).
    pub fn unbounded() -> Self {
        Recorder {
            trace: Trace::unbounded(),
        }
    }

    /// Keep only the last `window` events (flight recorder).
    pub fn bounded(window: usize) -> Self {
        Recorder {
            trace: Trace::bounded(window),
        }
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace<ProbeEvent> {
        &self.trace
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry<ProbeEvent>> {
        self.trace.iter()
    }

    /// Events evicted from the window (or total offered, via
    /// [`Trace::recorded`]).
    pub fn dropped(&self) -> u64 {
        self.trace.dropped()
    }

    /// Render as a `cycle: event` listing.
    pub fn render(&self) -> String {
        self.trace.render()
    }
}

impl Probe for Recorder {
    fn record(&mut self, cycle: Cycle, event: ProbeEvent) {
        self.trace.record(cycle, event);
    }
}

/// A [`Recorder`] shared between harness and model.
pub type SharedRecorder = Shared<Recorder>;

impl SharedRecorder {
    /// A cloned snapshot of the recorded events, oldest first.
    pub fn entries(&self) -> Vec<TraceEntry<ProbeEvent>> {
        self.with(|r| r.iter().cloned().collect())
    }

    /// Render the recorded stream.
    pub fn render(&self) -> String {
        self.with(|r| r.render())
    }
}

/// Duplicates the stream to several sinks (e.g. a flight recorder and a
/// metrics pipeline watching the same run).
pub struct Fanout {
    sinks: Vec<ProbeHandle>,
}

impl Probe for Fanout {
    fn record(&mut self, cycle: Cycle, event: ProbeEvent) {
        for s in &self.sinks {
            s.emit(cycle, event);
        }
    }
}

/// Build a fanout handle over `sinks`.
pub fn fanout(sinks: Vec<ProbeHandle>) -> ProbeHandle {
    ProbeHandle::new(Fanout { sinks })
}

/// Opt-in telemetry for model constructors: disabled by default, or a
/// recorder with an optional flight-recorder window.
///
/// Models offer `with_telemetry(cfg, &TelemetryConfig)` constructors
/// that return the model plus the attached [`SharedRecorder`] (if any);
/// harnesses that need a different sink attach a [`ProbeHandle`]
/// directly via the models' `attach_probe`.
#[derive(Debug, Clone, Copy, Default)]
pub struct TelemetryConfig {
    /// Attach a recorder at construction.
    pub enabled: bool,
    /// Keep only the last `window` events (None = unbounded).
    pub window: Option<usize>,
}

impl TelemetryConfig {
    /// No telemetry (the hot-path default).
    pub fn off() -> Self {
        TelemetryConfig::default()
    }

    /// Record everything.
    pub fn unbounded() -> Self {
        TelemetryConfig {
            enabled: true,
            window: None,
        }
    }

    /// Flight recorder: keep the last `window` events.
    pub fn last(window: usize) -> Self {
        TelemetryConfig {
            enabled: true,
            window: Some(window),
        }
    }

    /// Build the recorder this configuration asks for.
    pub fn recorder(&self) -> Option<SharedRecorder> {
        self.enabled.then(|| {
            Shared::new(match self.window {
                Some(w) => Recorder::bounded(w),
                None => Recorder::unbounded(),
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DropReason;

    #[test]
    fn recorder_retains_stream_in_order() {
        let rec = SharedRecorder::new(Recorder::unbounded());
        let h = rec.handle();
        h.emit(
            3,
            ProbeEvent::HeaderArrived {
                input: 0,
                id: 1,
                dst: 1,
            },
        );
        h.emit(
            5,
            ProbeEvent::Drop {
                id: 1,
                reason: DropReason::BufferFull,
            },
        );
        let ev = rec.entries();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].cycle, 3);
        assert_eq!(ev[1].cycle, 5);
        assert!(rec.render().contains("drop id=0x1 (buffer-full)"));
    }

    #[test]
    fn fanout_duplicates_to_every_sink() {
        let a = SharedRecorder::new(Recorder::unbounded());
        let b = SharedRecorder::new(Recorder::bounded(1));
        let h = fanout(vec![a.handle(), b.handle()]);
        for c in 0..4u64 {
            h.emit(
                c,
                ProbeEvent::Gauge {
                    gauge: crate::event::GaugeKind::Occupancy,
                    index: 0,
                    value: c,
                },
            );
        }
        assert_eq!(a.entries().len(), 4);
        assert_eq!(b.entries().len(), 1, "bounded sink keeps the window");
        assert_eq!(b.with(|r| r.dropped()), 3);
    }

    #[test]
    fn telemetry_config_builds_the_right_recorder() {
        assert!(TelemetryConfig::off().recorder().is_none());
        let rec = TelemetryConfig::last(2).recorder().expect("enabled");
        let h = rec.handle();
        for c in 0..5u64 {
            h.emit(
                c,
                ProbeEvent::WaveLaunched {
                    addr: 0,
                    write: true,
                },
            );
        }
        assert_eq!(rec.entries().len(), 2);
        assert_eq!(rec.with(|r| r.trace().recorded()), 5);
    }

    #[test]
    fn null_sink_accepts_everything() {
        let h = ProbeHandle::new(NullSink);
        h.emit(0, ProbeEvent::WaveAdvanced { stage: 1, addr: 2 });
    }
}
