//! VCD (Value Change Dump) export: turn a recorded probe stream into a
//! waveform any VCD viewer (GTKWave, Surfer) can open.
//!
//! The exporter derives a fixed signal set from the event stream:
//! per-stage control codes (the fig. 5 table as a waveform), per-input
//! header strobes, per-output tail strobes, arbitration grant/collision,
//! cut-through and drop/fault strobes, and the occupancy / queue-depth
//! gauges. Signals are either *persistent* (gauges hold their value) or
//! *pulses* (strobes clear the cycle after they fire).
//!
//! The output is deterministic: same event stream, byte-identical VCD —
//! pinned by a golden-file test.

use crate::event::{ProbeEvent, WaveDir};
use simkernel::ids::Cycle;
use simkernel::trace::TraceEntry;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// The switch topology the stream was recorded from (sizes the per-port
/// and per-stage signal arrays).
#[derive(Debug, Clone, Copy)]
pub struct Topo {
    /// Input links.
    pub n_in: usize,
    /// Output links.
    pub n_out: usize,
    /// Pipeline stages (= memory banks = words per packet).
    pub stages: usize,
}

/// Stage-control codes used in the VCD (`m<k>_ctrl` signals); nop is 0
/// (the pulse-reset value, so it needs no named constant).
const CTRL_WRITE: u64 = 1;
const CTRL_READ: u64 = 2;
const CTRL_FUSED: u64 = 3;

#[derive(Debug, Clone)]
struct Signal {
    name: String,
    width: usize,
    /// Pulses reset to 0 every cycle; persistent signals hold.
    pulse: bool,
}

/// VCD identifier code for signal `i` (printable ASCII, base 94).
fn id_code(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

fn signal_table(topo: &Topo) -> Vec<Signal> {
    let mut sigs = Vec::new();
    let mut push = |name: String, width: usize, pulse: bool| {
        sigs.push(Signal { name, width, pulse });
    };
    push("occupancy".into(), 16, false);
    for j in 0..topo.n_out {
        push(format!("qdepth_o{j}"), 16, false);
    }
    for k in 0..topo.stages {
        push(format!("m{k}_ctrl"), 2, true);
    }
    for i in 0..topo.n_in {
        push(format!("hdr_i{i}"), 1, true);
    }
    for j in 0..topo.n_out {
        push(format!("tail_o{j}"), 1, true);
    }
    push("arb_grant".into(), 2, true);
    push("arb_collision".into(), 1, true);
    push("cut_through".into(), 1, true);
    push("staggered_start".into(), 1, true);
    push("drop".into(), 1, true);
    push("fault".into(), 1, true);
    push("recovery".into(), 4, true);
    sigs
}

/// Code for the `recovery` signal: 0 = idle, else the ladder step that
/// fired this cycle (matches [`RecoveryTag`]'s declaration order + 1).
fn recovery_code(tag: &crate::event::RecoveryTag) -> u64 {
    use crate::event::RecoveryTag as T;
    match tag {
        T::EccCorrected => 1,
        T::EccUncorrectable => 2,
        T::BankFailover => 3,
        T::LinkRetry => 4,
        T::LinkNak => 5,
        T::DegradedEnter => 6,
        T::DegradedExit => 7,
        T::WatchdogResync => 8,
    }
}

/// Indices into the signal table, mirroring [`signal_table`]'s layout.
struct Layout {
    occupancy: usize,
    qdepth: usize,
    mctrl: usize,
    hdr: usize,
    tail: usize,
    arb_grant: usize,
    arb_collision: usize,
    cut_through: usize,
    staggered: usize,
    drop: usize,
    fault: usize,
    recovery: usize,
}

impl Layout {
    fn of(topo: &Topo) -> Layout {
        let occupancy = 0;
        let qdepth = occupancy + 1;
        let mctrl = qdepth + topo.n_out;
        let hdr = mctrl + topo.stages;
        let tail = hdr + topo.n_in;
        let arb_grant = tail + topo.n_out;
        Layout {
            occupancy,
            qdepth,
            mctrl,
            hdr,
            tail,
            arb_grant,
            arb_collision: arb_grant + 1,
            cut_through: arb_grant + 2,
            staggered: arb_grant + 3,
            drop: arb_grant + 4,
            fault: arb_grant + 5,
            recovery: arb_grant + 6,
        }
    }
}

fn apply(event: &ProbeEvent, topo: &Topo, lay: &Layout, vals: &mut [u64]) {
    match event {
        ProbeEvent::Gauge {
            gauge,
            index,
            value,
        } => match gauge {
            crate::event::GaugeKind::Occupancy => vals[lay.occupancy] = *value,
            crate::event::GaugeKind::QueueDepth => {
                if *index < topo.n_out {
                    vals[lay.qdepth + index] = *value;
                }
            }
        },
        ProbeEvent::BankAccess { stage, op, .. } if *stage < topo.stages => {
            vals[lay.mctrl + stage] = match op {
                WaveDir::Write => CTRL_WRITE,
                WaveDir::Read => CTRL_READ,
                WaveDir::Fused => CTRL_FUSED,
            };
        }
        ProbeEvent::WaveAdvanced { stage, .. } if *stage < topo.stages => {
            vals[lay.mctrl + stage] = CTRL_WRITE.max(vals[lay.mctrl + stage]);
        }
        ProbeEvent::HeaderArrived { input, .. } if *input < topo.n_in => {
            vals[lay.hdr + input] = 1;
        }
        ProbeEvent::Departed { output, .. } if *output < topo.n_out => {
            vals[lay.tail + output] = 1;
        }
        ProbeEvent::Arbitration {
            reads,
            writes,
            outcome,
        } => {
            vals[lay.arb_grant] = match outcome {
                crate::event::ArbOutcome::Write => 1,
                crate::event::ArbOutcome::Read => 2,
                crate::event::ArbOutcome::Idle => 3,
            };
            if *reads > 0 && *writes > 0 {
                vals[lay.arb_collision] = 1;
            }
        }
        ProbeEvent::CutThrough { .. } => vals[lay.cut_through] = 1,
        ProbeEvent::StaggeredStart { .. } => vals[lay.staggered] = 1,
        ProbeEvent::Drop { .. } => vals[lay.drop] = 1,
        ProbeEvent::Fault { .. } => vals[lay.fault] = 1,
        ProbeEvent::Recovery { tag, .. } => {
            // Later ladder steps shadow earlier ones within a cycle (a
            // failover implies corrections led up to it).
            vals[lay.recovery] = vals[lay.recovery].max(recovery_code(tag));
        }
        _ => {}
    }
}

fn fmt_value(out: &mut String, sig: &Signal, value: u64, code: &str) {
    if sig.width == 1 {
        let _ = writeln!(out, "{}{}", value & 1, code);
    } else {
        let _ = writeln!(out, "b{:b} {}", value, code);
    }
}

/// Render the probe stream as a VCD document.
///
/// Deterministic (no timestamps beyond simulated cycles), so exports are
/// byte-comparable across runs and machines.
pub fn export<'a>(
    events: impl IntoIterator<Item = &'a TraceEntry<ProbeEvent>>,
    topo: &Topo,
) -> String {
    let events: Vec<&TraceEntry<ProbeEvent>> = events.into_iter().collect();
    let sigs = signal_table(topo);
    let lay = Layout::of(topo);
    let mut out = String::new();
    out.push_str("$version telegraphos telemetry probe stream $end\n");
    out.push_str("$timescale 1ns $end\n");
    out.push_str("$scope module switch $end\n");
    for (i, s) in sigs.iter().enumerate() {
        let _ = writeln!(out, "$var wire {} {} {} $end", s.width, id_code(i), s.name);
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");

    // Initial values: everything 0.
    out.push_str("$dumpvars\n");
    for (i, s) in sigs.iter().enumerate() {
        fmt_value(&mut out, s, 0, &id_code(i));
    }
    out.push_str("$end\n");

    // Evaluate at every cycle that carries events, plus the following
    // cycle (to clear pulse strobes); emit only value changes.
    let mut interesting: BTreeSet<Cycle> = BTreeSet::new();
    for e in &events {
        interesting.insert(e.cycle);
        interesting.insert(e.cycle + 1);
    }
    let mut emitted = vec![0u64; sigs.len()];
    let mut vals = vec![0u64; sigs.len()];
    let mut k = 0usize;
    for &c in &interesting {
        for (i, s) in sigs.iter().enumerate() {
            if s.pulse {
                vals[i] = 0;
            }
        }
        while k < events.len() && events[k].cycle < c {
            k += 1; // unreachable (events sorted), defensive
        }
        let mut j = k;
        while j < events.len() && events[j].cycle == c {
            apply(&events[j].event, topo, &lay, &mut vals);
            j += 1;
        }
        let mut wrote_stamp = false;
        for (i, s) in sigs.iter().enumerate() {
            if vals[i] != emitted[i] {
                if !wrote_stamp {
                    let _ = writeln!(out, "#{c}");
                    wrote_stamp = true;
                }
                fmt_value(&mut out, s, vals[i], &id_code(i));
                emitted[i] = vals[i];
            }
        }
    }
    out
}

/// Minimal structural check on a VCD document (the `--smoke` gate and
/// golden tests use it): definitions close, every value change names a
/// declared identifier, timestamps never go backwards.
///
/// Returns `(signals, changes)` on success.
pub fn validate(doc: &str) -> Result<(usize, usize), String> {
    let mut ids: BTreeSet<String> = BTreeSet::new();
    let mut defs_closed = false;
    let mut last_ts: Option<u64> = None;
    let mut changes = 0usize;
    let mut in_dumpvars = false;
    for (lineno, line) in doc.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if !defs_closed {
            if line.starts_with("$var") {
                let parts: Vec<&str> = line.split_whitespace().collect();
                if parts.len() < 5 {
                    return Err(format!("line {}: malformed $var", lineno + 1));
                }
                ids.insert(parts[3].to_string());
            } else if line.starts_with("$enddefinitions") {
                defs_closed = true;
            }
            continue;
        }
        if line == "$dumpvars" {
            in_dumpvars = true;
            continue;
        }
        if line == "$end" {
            in_dumpvars = false;
            continue;
        }
        if let Some(ts) = line.strip_prefix('#') {
            let ts: u64 = ts
                .parse()
                .map_err(|_| format!("line {}: bad timestamp", lineno + 1))?;
            if last_ts.is_some_and(|p| ts < p) {
                return Err(format!("line {}: timestamp went backwards", lineno + 1));
            }
            last_ts = Some(ts);
            continue;
        }
        let id = if let Some(rest) = line.strip_prefix('b') {
            let mut it = rest.split_whitespace();
            let bits = it.next().unwrap_or("");
            if bits.is_empty() || !bits.chars().all(|c| c == '0' || c == '1') {
                return Err(format!("line {}: bad vector value", lineno + 1));
            }
            it.next()
                .ok_or_else(|| format!("line {}: vector change without id", lineno + 1))?
        } else {
            let (v, id) = line.split_at(1);
            if v != "0" && v != "1" {
                return Err(format!("line {}: bad scalar value", lineno + 1));
            }
            id
        };
        if !ids.contains(id) {
            return Err(format!(
                "line {}: change on undeclared id '{id}'",
                lineno + 1
            ));
        }
        if !in_dumpvars {
            changes += 1;
        }
    }
    if !defs_closed {
        return Err("no $enddefinitions".to_string());
    }
    Ok((ids.len(), changes))
}

/// The fig. 5 per-stage control cell for one cycle's events — the same
/// strings the paper's table uses (`-`, `W<slot> i<in>`, `R<slot> o<out>`,
/// `W<slot>+R i<in> o<out>`).
pub fn stage_cells<'a>(
    events: impl IntoIterator<Item = &'a ProbeEvent>,
    stages: usize,
) -> Vec<String> {
    let mut cells = vec!["-".to_string(); stages];
    for e in events {
        if let ProbeEvent::BankAccess {
            stage,
            addr,
            op,
            input,
            output,
        } = e
        {
            if *stage < stages {
                cells[*stage] = match op {
                    WaveDir::Write => format!("W{} i{}", addr, input.unwrap_or(0)),
                    WaveDir::Read => format!("R{} o{}", addr, output.unwrap_or(0)),
                    WaveDir::Fused => format!(
                        "W{}+R i{} o{}",
                        addr,
                        input.unwrap_or(0),
                        output.unwrap_or(0)
                    ),
                };
            }
        }
    }
    cells
}

/// The fig. 5 control-signal table as a derived view of the probe
/// stream: one row per cycle in the recorded window, one column per
/// memory stage.
pub fn fig5_view<'a>(
    events: impl IntoIterator<Item = &'a TraceEntry<ProbeEvent>>,
    stages: usize,
) -> String {
    let events: Vec<&TraceEntry<ProbeEvent>> = events.into_iter().collect();
    let mut out = String::from("cyc |");
    for k in 0..stages {
        let _ = write!(out, " {:>12}", format!("M{k}"));
    }
    out.push('\n');
    let _ = writeln!(out, "{}", "-".repeat(5 + 13 * stages));
    let Some(first) = events.first().map(|e| e.cycle) else {
        return out;
    };
    let last = events.last().map(|e| e.cycle).unwrap_or(first);
    let mut k = 0usize;
    for c in first..=last {
        let start = k;
        while k < events.len() && events[k].cycle == c {
            k += 1;
        }
        let cells = stage_cells(events[start..k].iter().map(|e| &e.event), stages);
        let _ = write!(out, "{c:>3} |");
        for cell in cells {
            let _ = write!(out, " {cell:>12}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ArbOutcome, GaugeKind};

    fn entry(cycle: Cycle, event: ProbeEvent) -> TraceEntry<ProbeEvent> {
        TraceEntry { cycle, event }
    }

    fn tiny_stream() -> Vec<TraceEntry<ProbeEvent>> {
        vec![
            entry(
                0,
                ProbeEvent::HeaderArrived {
                    input: 0,
                    id: 0xA,
                    dst: 1,
                },
            ),
            entry(
                1,
                ProbeEvent::Arbitration {
                    reads: 0,
                    writes: 1,
                    outcome: ArbOutcome::Write,
                },
            ),
            entry(
                1,
                ProbeEvent::BankAccess {
                    stage: 0,
                    addr: 0,
                    op: WaveDir::Fused,
                    input: Some(0),
                    output: Some(1),
                },
            ),
            entry(
                1,
                ProbeEvent::Gauge {
                    gauge: GaugeKind::Occupancy,
                    index: 0,
                    value: 1,
                },
            ),
            entry(
                5,
                ProbeEvent::Departed {
                    output: 1,
                    id: 0xA,
                    birth: 0,
                    latency: 5,
                },
            ),
        ]
    }

    #[test]
    fn export_validates_and_round_trips() {
        let topo = Topo {
            n_in: 2,
            n_out: 2,
            stages: 4,
        };
        let doc = export(tiny_stream().iter(), &topo);
        let (signals, changes) = validate(&doc).expect("well-formed VCD");
        assert_eq!(signals, 1 + 2 + 4 + 2 + 2 + 7);
        assert!(changes > 0, "stream must produce value changes");
        assert!(doc.contains("$var wire 2"), "stage controls are 2-bit");
        // Pulses clear: the header strobe fires at #0 and clears at #1.
        assert!(doc.contains("#0\n"));
        assert!(doc.contains("#1\n"));
    }

    #[test]
    fn export_is_deterministic() {
        let topo = Topo {
            n_in: 2,
            n_out: 2,
            stages: 4,
        };
        let a = export(tiny_stream().iter(), &topo);
        let b = export(tiny_stream().iter(), &topo);
        assert_eq!(a, b);
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate("not a vcd").is_err());
        let topo = Topo {
            n_in: 2,
            n_out: 2,
            stages: 4,
        };
        let doc = export(tiny_stream().iter(), &topo);
        assert!(doc.contains("#5"), "Departed@5 must appear: {doc}");
        let broken = doc.replace("#5", "#0"); // time goes backwards
        assert!(validate(&broken).is_err());
    }

    #[test]
    fn fig5_view_renders_stage_cells() {
        let view = fig5_view(tiny_stream().iter(), 4);
        assert!(view.contains("M0"), "{view}");
        assert!(view.contains("W0+R i0 o1"), "{view}");
    }
}
