//! # telemetry — structured probes and their consumers
//!
//! Observability layer for the switch models (DESIGN.md §10). The split
//! is strict:
//!
//! * **Probes live in the models.** Every model owns an
//!   `Option<ProbeHandle>`; emission sites are written as
//!   `if let Some(p) = &self.probe { p.emit(cycle, ProbeEvent::…) }`
//!   so that with no probe attached the hot path pays exactly one
//!   predictable branch and constructs nothing — the perf gate
//!   (`expt bench --gate`) holds this property.
//! * **Sinks live in the harness.** A [`Probe`] implementation decides
//!   what to do with the stream: record it ([`Recorder`]), aggregate it
//!   ([`metrics::Metrics`]), discard it ([`NullSink`]), or fan it out
//!   ([`Fanout`]).
//! * **Consumers derive views.** The VCD exporter ([`vcd`]), the metrics
//!   JSON ([`metrics`]), and the post-mortem dump ([`flight`]) are all
//!   pure functions of the recorded stream — the fig. 5 control-signal
//!   table is one more derived view ([`vcd::fig5_view`]), not a parallel
//!   tracing mechanism.
//!
//! Storage is [`simkernel::Trace`] throughout: the flight recorder is a
//! bounded trace of [`ProbeEvent`]s, the metrics time series are bounded
//! traces of `u64` samples. There is one tracing engine in the
//! workspace, and this crate is its front end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod flight;
pub mod metrics;
pub mod probe;
pub mod vcd;

pub use event::{ArbOutcome, DropReason, FaultTag, GaugeKind, ProbeEvent, RecoveryTag, WaveDir};
pub use probe::{
    fanout, Fanout, NullSink, Probe, ProbeHandle, Recorder, Shared, SharedRecorder, TelemetryConfig,
};
