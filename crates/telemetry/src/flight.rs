//! The flight recorder: a bounded [`Recorder`] window plus a post-mortem
//! renderer, so every fault or divergence report ships with the last-K
//! cycles of structured events leading up to it.
//!
//! The fault-injection watchdog and the conformance fuzzer re-run a
//! shrunk failing scenario with a bounded recorder attached and embed
//! [`post_mortem`]'s output in their failure reports.

use crate::event::ProbeEvent;
use crate::probe::{Recorder, SharedRecorder};
use std::fmt::Write as _;

/// Render a bounded recorder's window as a post-mortem dump: a header
/// with window/drop accounting (`headline` names what went wrong),
/// followed by the retained `cycle: event` listing.
pub fn post_mortem(headline: &str, recorder: &Recorder) -> String {
    let trace = recorder.trace();
    let mut s = String::new();
    let _ = writeln!(s, "=== post-mortem: {headline} ===");
    let window = trace.iter().next().map(|first| {
        let last = trace.iter().last().expect("non-empty trace has a last");
        (first.cycle, last.cycle)
    });
    match window {
        Some((first, last)) => {
            let _ = writeln!(
                s,
                "window: cycles {first}..={last} ({} events retained, {} older evicted)",
                trace.len(),
                trace.dropped()
            );
        }
        None => {
            let _ = writeln!(s, "window: empty (no events recorded)");
        }
    }
    for e in trace.iter() {
        let _ = writeln!(s, "  {:>6}: {}", e.cycle, e.event);
    }
    s.push_str("=== end post-mortem ===\n");
    s
}

/// [`post_mortem`] over a shared recorder (the usual harness shape).
pub fn post_mortem_shared(headline: &str, recorder: &SharedRecorder) -> String {
    recorder.with(|r| post_mortem(headline, r))
}

/// Count retained events matching `pred` — convenience for asserting a
/// dump window contains the interesting event.
pub fn count_matching(recorder: &SharedRecorder, pred: impl Fn(&ProbeEvent) -> bool) -> usize {
    recorder.with(|r| r.iter().filter(|e| pred(&e.event)).count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DropReason;
    use crate::probe::{Probe, Shared};

    #[test]
    fn dump_reports_window_and_evictions() {
        let mut rec = Recorder::bounded(3);
        for c in 0..8u64 {
            rec.record(
                c,
                ProbeEvent::WaveAdvanced {
                    stage: c as usize,
                    addr: 0,
                },
            );
        }
        rec.record(
            8,
            ProbeEvent::Drop {
                id: 7,
                reason: DropReason::BufferFull,
            },
        );
        let dump = post_mortem("forced drop", &rec);
        assert!(dump.contains("post-mortem: forced drop"));
        assert!(dump.contains("cycles 6..=8 (3 events retained, 6 older evicted)"));
        assert!(dump.contains("drop id=0x7 (buffer-full)"));
        assert!(!dump.contains("stage0"), "evicted events absent");
    }

    #[test]
    fn empty_window_renders_cleanly() {
        let rec = Recorder::bounded(4);
        let dump = post_mortem("nothing happened", &rec);
        assert!(dump.contains("window: empty"));
    }

    #[test]
    fn count_matching_filters_the_window() {
        let rec = Shared::new(Recorder::unbounded());
        let h = rec.handle();
        h.emit(
            1,
            ProbeEvent::WaveLaunched {
                addr: 0,
                write: true,
            },
        );
        h.emit(
            2,
            ProbeEvent::WaveLaunched {
                addr: 1,
                write: false,
            },
        );
        let writes = count_matching(&rec, |e| {
            matches!(e, ProbeEvent::WaveLaunched { write: true, .. })
        });
        assert_eq!(writes, 1);
    }
}
