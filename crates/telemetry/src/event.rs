//! The structured event vocabulary every model speaks.
//!
//! Variants use only primitive fields (`usize`, `u64`) so the event type
//! lives below every model crate in the dependency graph: `membank`,
//! `switch-core`, and `netsim` all emit [`ProbeEvent`]s without this
//! crate knowing their types. The mapping back to paper concepts is in
//! each variant's doc comment.

use std::fmt;

/// Direction of a memory wave / bank operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaveDir {
    /// A write wave depositing words from an input latch row.
    Write,
    /// A read wave filling the output register row.
    Read,
    /// Fused write+read: the output register samples the write bus
    /// (§3.3 automatic cut-through).
    Fused,
}

impl fmt::Display for WaveDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WaveDir::Write => "W",
            WaveDir::Read => "R",
            WaveDir::Fused => "W+R",
        })
    }
}

/// Who won the single initiation slot this cycle (§3.2: read priority
/// over writes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbOutcome {
    /// A read wave was granted.
    Read,
    /// A write wave was granted.
    Write,
    /// Requests existed but none was servable.
    Idle,
}

impl fmt::Display for ArbOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArbOutcome::Read => "read",
            ArbOutcome::Write => "write",
            ArbOutcome::Idle => "idle",
        })
    }
}

/// Why a packet was removed from the datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Shared buffer had no free slot at header time.
    BufferFull,
    /// The write wave missed its latch deadline (provably unreachable
    /// under the shipped policies; counted so violations fail loudly).
    LatchOverrun,
    /// Header addressed no valid output (hardened framing).
    BadHeader,
    /// The link idled mid-packet; the tail never arrived.
    Truncated,
    /// Integrity scrub: stored checksum mismatched at read initiation.
    Checksum,
    /// Ingress payload verification condemned the packet.
    Payload,
    /// A buffer-sharing admission policy rejected the arriving packet
    /// even though (or because) slots remained; counted separately from
    /// `BufferFull` so each policy's declared loss is auditable.
    AdmissionPolicy,
    /// A buffer-sharing policy evicted this already-buffered packet to
    /// admit a new arrival (push-out / Occamy preemptive drop).
    Preempted,
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DropReason::BufferFull => "buffer-full",
            DropReason::LatchOverrun => "latch-overrun",
            DropReason::BadHeader => "bad-header",
            DropReason::Truncated => "truncated",
            DropReason::Checksum => "checksum-mismatch",
            DropReason::Payload => "payload-mismatch",
            DropReason::AdmissionPolicy => "policy",
            DropReason::Preempted => "preempt",
        })
    }
}

/// A fault observed without removing a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTag {
    /// A packet left the switch with corrupted payload (egress check).
    CorruptDelivered,
    /// A stuck control signal suppressed a bank write.
    WriteSuppressed,
}

impl fmt::Display for FaultTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultTag::CorruptDelivered => "corrupt-delivered",
            FaultTag::WriteSuppressed => "write-suppressed",
        })
    }
}

/// What step of the detect→correct→degrade recovery ladder fired
/// (see DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryTag {
    /// ECC corrected a single-bit upset in place (index = stage/bank,
    /// info = slot address).
    EccCorrected,
    /// ECC saw a multi-bit pattern it could not repair (index =
    /// stage/bank, info = slot address); detection falls back to the
    /// checksum scrub's detect-and-drop.
    EccUncorrectable,
    /// A repeatedly-failing bank was masked out and a spare promoted
    /// (index = stage/bank, info = corrections that tripped failover).
    BankFailover,
    /// A link-level retransmission was issued after a NAK (index =
    /// input, info = sequence number).
    LinkRetry,
    /// The receiver rejected a packet and requested replay (index =
    /// input, info = sequence number).
    LinkNak,
    /// Degraded mode entered: admission throttled while recovery runs
    /// (index = stage/bank that triggered it, info = window length).
    DegradedEnter,
    /// Degraded mode left; full arbitration capacity restored.
    DegradedExit,
    /// Watchdog escalation ran a drain-and-resync attempt instead of
    /// declaring the run hung (index = 0, info = recovered credits).
    WatchdogResync,
}

impl fmt::Display for RecoveryTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecoveryTag::EccCorrected => "ecc-corrected",
            RecoveryTag::EccUncorrectable => "ecc-uncorrectable",
            RecoveryTag::BankFailover => "bank-failover",
            RecoveryTag::LinkRetry => "link-retry",
            RecoveryTag::LinkNak => "link-nak",
            RecoveryTag::DegradedEnter => "degraded-enter",
            RecoveryTag::DegradedExit => "degraded-exit",
            RecoveryTag::WatchdogResync => "watchdog-resync",
        })
    }
}

/// What a [`ProbeEvent::Gauge`] sample measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeKind {
    /// Shared-buffer occupancy in packets (index unused, 0).
    Occupancy,
    /// Per-output queue depth in packets (index = output link).
    QueueDepth,
}

impl fmt::Display for GaugeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GaugeKind::Occupancy => "occupancy",
            GaugeKind::QueueDepth => "queue-depth",
        })
    }
}

/// One structured observation from a model's datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent {
    /// A packet header entered the switch on `input`, bound for `dst`.
    HeaderArrived {
        /// Input link.
        input: usize,
        /// Packet id decoded from the header.
        id: u64,
        /// Primary (lowest) destination output.
        dst: usize,
    },
    /// An input latch row latched one word (§3.1: no double buffering).
    LatchLoad {
        /// Input link whose latch row loaded.
        input: usize,
        /// Latch position (= word index within the packet).
        stage: usize,
    },
    /// Read-vs-write arbitration was exercised for the single initiation
    /// slot (§3.2). `reads > 0 && writes > 0` is a collision.
    Arbitration {
        /// Read requests contending this cycle.
        reads: usize,
        /// Write requests contending this cycle.
        writes: usize,
        /// Who won.
        outcome: ArbOutcome,
    },
    /// A write wave launched from input `input` into slot `addr`.
    WriteWave {
        /// Source input link.
        input: usize,
        /// Buffer slot written.
        addr: usize,
    },
    /// A read wave launched for output `output` from slot `addr`;
    /// `fused` when it rides the write bus (§3.3).
    ReadWave {
        /// Destination output link.
        output: usize,
        /// Buffer slot read.
        addr: usize,
        /// True when fused with the packet's own write wave.
        fused: bool,
    },
    /// A raw memory wave launched at stage 0 (membank-level view).
    WaveLaunched {
        /// Buffer slot the wave operates on.
        addr: usize,
        /// True for write waves, false for reads.
        write: bool,
    },
    /// A raw memory wave performed its stage-`stage` operation
    /// (membank-level view of one-stage-per-cycle sweep).
    WaveAdvanced {
        /// Pipeline stage (= bank index) visited this cycle.
        stage: usize,
        /// Buffer slot the wave operates on.
        addr: usize,
    },
    /// A bank performed an access on behalf of a switch-level wave (the
    /// fig. 5 control signal of stage `stage` this cycle).
    BankAccess {
        /// Pipeline stage (= bank index).
        stage: usize,
        /// Buffer slot accessed.
        addr: usize,
        /// Operation performed.
        op: WaveDir,
        /// Source input link (write and fused ops).
        input: Option<usize>,
        /// Destination output link (read and fused ops).
        output: Option<usize>,
    },
    /// An output began transmitting a packet that had to wait for the
    /// initiation slot — the §3.4 staggered start.
    StaggeredStart {
        /// Output link starting transmission.
        output: usize,
        /// Packet id.
        id: u64,
    },
    /// Cut-through engaged: transmission started before the packet was
    /// fully buffered.
    CutThrough {
        /// Output link.
        output: usize,
        /// Packet id.
        id: u64,
        /// True for the fused form (first word out at a+2).
        fused: bool,
    },
    /// A flow-control credit was consumed by a launch on `input`.
    CreditGrant {
        /// Input link whose sender spent a credit.
        input: usize,
        /// Credits remaining after the grant.
        remaining: u64,
    },
    /// A flow-control credit was returned toward `input`.
    CreditReturn {
        /// Input link whose sender will receive the credit.
        input: usize,
        /// Credits held before the returned one matures.
        remaining: u64,
    },
    /// A packet's tail word left on output `output`.
    Departed {
        /// Output link.
        output: usize,
        /// Packet id.
        id: u64,
        /// Cycle the header arrived.
        birth: u64,
        /// Cycles from header arrival to tail departure.
        latency: u64,
    },
    /// A packet was removed from the datapath.
    Drop {
        /// Packet id.
        id: u64,
        /// Why.
        reason: DropReason,
    },
    /// A fault was observed without removing a packet.
    Fault {
        /// Packet id involved (0 when not packet-specific).
        id: u64,
        /// What happened.
        kind: FaultTag,
    },
    /// A sampled gauge value (emitted on change, not per cycle).
    Gauge {
        /// What the sample measures.
        gauge: GaugeKind,
        /// Sub-index (output link for queue depths, 0 otherwise).
        index: usize,
        /// The sampled value.
        value: u64,
    },
    /// A step of the detect→correct→degrade recovery ladder fired.
    Recovery {
        /// Which step.
        tag: RecoveryTag,
        /// Stage/bank or input link the step concerns (see each tag).
        index: usize,
        /// Tag-specific detail (slot address, sequence number, …).
        info: u64,
    },
    /// A packet was delivered end-to-end across a multi-hop chain
    /// (netsim-level view).
    ChainDelivered {
        /// Egress link of the final hop.
        egress: usize,
        /// Packet id.
        id: u64,
        /// Virtual channel it traveled on.
        vc: usize,
    },
}

impl fmt::Display for ProbeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeEvent::HeaderArrived { input, id, dst } => {
                write!(f, "header id={id:#x} in{input} -> out{dst}")
            }
            ProbeEvent::LatchLoad { input, stage } => {
                write!(f, "latch-load in{input} pos{stage}")
            }
            ProbeEvent::Arbitration {
                reads,
                writes,
                outcome,
            } => {
                write!(f, "arbitration reads={reads} writes={writes} -> {outcome}")
            }
            ProbeEvent::WriteWave { input, addr } => {
                write!(f, "write-wave in{input} slot{addr}")
            }
            ProbeEvent::ReadWave {
                output,
                addr,
                fused,
            } => {
                write!(
                    f,
                    "read-wave out{output} slot{addr}{}",
                    if *fused { " (fused)" } else { "" }
                )
            }
            ProbeEvent::WaveLaunched { addr, write } => {
                write!(
                    f,
                    "wave-launched {} slot{addr}",
                    if *write { "write" } else { "read" }
                )
            }
            ProbeEvent::WaveAdvanced { stage, addr } => {
                write!(f, "wave-advanced stage{stage} slot{addr}")
            }
            ProbeEvent::BankAccess {
                stage,
                addr,
                op,
                input,
                output,
            } => {
                write!(f, "bank M{stage} {op} slot{addr}")?;
                if let Some(i) = input {
                    write!(f, " i{i}")?;
                }
                if let Some(o) = output {
                    write!(f, " o{o}")?;
                }
                Ok(())
            }
            ProbeEvent::StaggeredStart { output, id } => {
                write!(f, "staggered-start out{output} id={id:#x}")
            }
            ProbeEvent::CutThrough { output, id, fused } => {
                write!(
                    f,
                    "cut-through out{output} id={id:#x}{}",
                    if *fused { " (fused)" } else { "" }
                )
            }
            ProbeEvent::CreditGrant { input, remaining } => {
                write!(f, "credit-grant in{input} remaining={remaining}")
            }
            ProbeEvent::CreditReturn { input, remaining } => {
                write!(f, "credit-return in{input} held={remaining}")
            }
            ProbeEvent::Departed {
                output,
                id,
                birth,
                latency,
            } => {
                write!(
                    f,
                    "departed out{output} id={id:#x} birth={birth} latency={latency}"
                )
            }
            ProbeEvent::Drop { id, reason } => write!(f, "drop id={id:#x} ({reason})"),
            ProbeEvent::Fault { id, kind } => write!(f, "fault id={id:#x} ({kind})"),
            ProbeEvent::Gauge {
                gauge,
                index,
                value,
            } => write!(f, "gauge {gauge}[{index}] = {value}"),
            ProbeEvent::Recovery { tag, index, info } => {
                write!(f, "recovery {tag}[{index}] info={info}")
            }
            ProbeEvent::ChainDelivered { egress, id, vc } => {
                write!(f, "chain-delivered egress{egress} id={id:#x} vc{vc}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_and_stable() {
        let e = ProbeEvent::HeaderArrived {
            input: 1,
            id: 0xA,
            dst: 0,
        };
        assert_eq!(e.to_string(), "header id=0xa in1 -> out0");
        let b = ProbeEvent::BankAccess {
            stage: 2,
            addr: 5,
            op: WaveDir::Fused,
            input: Some(0),
            output: Some(1),
        };
        assert_eq!(b.to_string(), "bank M2 W+R slot5 i0 o1");
    }
}
