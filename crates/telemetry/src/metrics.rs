//! The metrics pipeline: an online [`Probe`] sink that aggregates the
//! event stream into ring-buffered time series and per-port latency
//! histograms, and renders them as JSON.
//!
//! Time series reuse [`simkernel::Trace`] as the ring buffer (bounded
//! construction), so a long run keeps the most recent `series_window`
//! samples per series with exact drop accounting. JSON is hand-rolled
//! like the rest of the workspace (offline build, no serde).

use crate::event::{GaugeKind, ProbeEvent};
use crate::probe::Probe;
use simkernel::ids::Cycle;
use simkernel::trace::Trace;
use stats::Histogram;
use std::fmt::Write as _;

/// Online aggregation of a probe stream.
#[derive(Debug)]
pub struct Metrics {
    /// Shared-buffer occupancy samples (cycle-stamped, ring-buffered).
    occupancy: Trace<u64>,
    /// Per-output queue-depth samples.
    queue_depth: Vec<Trace<u64>>,
    /// Per-output packet latency (header arrival to tail departure).
    latency: Vec<Histogram>,
    series_window: usize,
    arrived: u64,
    departed: u64,
    drops: u64,
    faults: u64,
    cut_throughs: u64,
    staggered_starts: u64,
    arbitrations: u64,
    rw_collisions: u64,
    credit_grants: u64,
    credit_returns: u64,
    first_cycle: Option<Cycle>,
    last_cycle: Cycle,
}

impl Metrics {
    /// A pipeline for `n_out` output links, keeping the most recent
    /// `series_window` samples per time series and tracking latencies
    /// exactly up to `latency_cap` cycles (overflow counted beyond).
    pub fn new(n_out: usize, series_window: usize, latency_cap: usize) -> Self {
        Metrics {
            occupancy: Trace::bounded(series_window.max(1)),
            queue_depth: (0..n_out)
                .map(|_| Trace::bounded(series_window.max(1)))
                .collect(),
            latency: (0..n_out).map(|_| Histogram::new(latency_cap)).collect(),
            series_window: series_window.max(1),
            arrived: 0,
            departed: 0,
            drops: 0,
            faults: 0,
            cut_throughs: 0,
            staggered_starts: 0,
            arbitrations: 0,
            rw_collisions: 0,
            credit_grants: 0,
            credit_returns: 0,
            first_cycle: None,
            last_cycle: 0,
        }
    }

    /// Packets departed (tail words observed).
    pub fn departed(&self) -> u64 {
        self.departed
    }

    /// Read/write arbitration collisions observed (§3.2).
    pub fn rw_collisions(&self) -> u64 {
        self.rw_collisions
    }

    /// The retained occupancy series, oldest first.
    pub fn occupancy_series(&self) -> impl Iterator<Item = (Cycle, u64)> + '_ {
        self.occupancy.iter().map(|e| (e.cycle, e.event))
    }

    /// Per-output latency histograms.
    pub fn latency_histograms(&self) -> &[Histogram] {
        &self.latency
    }

    fn series_json(s: &mut String, series: &Trace<u64>, indent: &str) {
        let _ = write!(s, "{indent}{{\"window\": {}, ", series.len());
        let _ = write!(s, "\"evicted\": {}, \"samples\": [", series.dropped());
        for (k, e) in series.iter().enumerate() {
            if k > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "[{}, {}]", e.cycle, e.event);
        }
        s.push_str("]}");
    }

    /// Render the aggregated metrics as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(
            s,
            "  \"cycles\": {{\"first\": {}, \"last\": {}}},",
            self.first_cycle.unwrap_or(0),
            self.last_cycle
        );
        let _ = writeln!(s, "  \"arrived\": {},", self.arrived);
        let _ = writeln!(s, "  \"departed\": {},", self.departed);
        let _ = writeln!(s, "  \"drops\": {},", self.drops);
        let _ = writeln!(s, "  \"faults\": {},", self.faults);
        let _ = writeln!(s, "  \"cut_throughs\": {},", self.cut_throughs);
        let _ = writeln!(s, "  \"staggered_starts\": {},", self.staggered_starts);
        let _ = writeln!(s, "  \"arbitrations\": {},", self.arbitrations);
        let _ = writeln!(s, "  \"rw_collisions\": {},", self.rw_collisions);
        let _ = writeln!(s, "  \"credit_grants\": {},", self.credit_grants);
        let _ = writeln!(s, "  \"credit_returns\": {},", self.credit_returns);
        let _ = writeln!(s, "  \"series_window\": {},", self.series_window);
        s.push_str("  \"occupancy\": ");
        Self::series_json(&mut s, &self.occupancy, "");
        s.push_str(",\n  \"queue_depth\": [\n");
        for (j, series) in self.queue_depth.iter().enumerate() {
            let _ = write!(s, "    {{\"output\": {j}, \"series\": ");
            Self::series_json(&mut s, series, "");
            s.push('}');
            s.push_str(if j + 1 < self.queue_depth.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n  \"latency\": [\n");
        for (j, h) in self.latency.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"output\": {j}, \"count\": {}, \"mean\": {:.4}, \
                 \"p50\": {}, \"p99\": {}, \"max\": {}, \"overflow\": {}}}",
                h.count(),
                h.mean(),
                h.percentile(0.50).unwrap_or(0),
                h.percentile(0.99).unwrap_or(0),
                h.max_tracked().unwrap_or(0),
                h.overflow(),
            );
            s.push_str(if j + 1 < self.latency.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

impl Probe for Metrics {
    fn record(&mut self, cycle: Cycle, event: ProbeEvent) {
        if self.first_cycle.is_none() {
            self.first_cycle = Some(cycle);
        }
        self.last_cycle = self.last_cycle.max(cycle);
        match event {
            ProbeEvent::HeaderArrived { .. } => self.arrived += 1,
            ProbeEvent::Departed {
                output, latency, ..
            } => {
                self.departed += 1;
                if let Some(h) = self.latency.get_mut(output) {
                    h.record(latency);
                }
            }
            ProbeEvent::Drop { .. } => self.drops += 1,
            ProbeEvent::Fault { .. } => self.faults += 1,
            ProbeEvent::CutThrough { .. } => self.cut_throughs += 1,
            ProbeEvent::StaggeredStart { .. } => self.staggered_starts += 1,
            ProbeEvent::Arbitration { reads, writes, .. } => {
                self.arbitrations += 1;
                if reads > 0 && writes > 0 {
                    self.rw_collisions += 1;
                }
            }
            ProbeEvent::CreditGrant { .. } => self.credit_grants += 1,
            ProbeEvent::CreditReturn { .. } => self.credit_returns += 1,
            ProbeEvent::Gauge {
                gauge,
                index,
                value,
            } => match gauge {
                GaugeKind::Occupancy => self.occupancy.record(cycle, value),
                GaugeKind::QueueDepth => {
                    if let Some(series) = self.queue_depth.get_mut(index) {
                        series.record(cycle, value);
                    }
                }
            },
            _ => {}
        }
    }
}

/// Structural JSON check (braces/brackets balance outside strings, a few
/// required keys present) — the `--smoke` self-test for metrics output.
pub fn validate_json(doc: &str) -> Result<(), String> {
    let mut depth: i64 = 0;
    let mut in_str = false;
    let mut esc = false;
    for ch in doc.chars() {
        if in_str {
            if esc {
                esc = false;
            } else if ch == '\\' {
                esc = true;
            } else if ch == '"' {
                in_str = false;
            }
            continue;
        }
        match ch {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return Err("unbalanced brackets".to_string());
                }
            }
            _ => {}
        }
    }
    if depth != 0 || in_str {
        return Err("unbalanced document".to_string());
    }
    for key in [
        "\"occupancy\"",
        "\"latency\"",
        "\"queue_depth\"",
        "\"departed\"",
    ] {
        if !doc.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ArbOutcome;

    fn feed(m: &mut Metrics) {
        m.record(
            0,
            ProbeEvent::HeaderArrived {
                input: 0,
                id: 1,
                dst: 1,
            },
        );
        m.record(
            1,
            ProbeEvent::Arbitration {
                reads: 1,
                writes: 1,
                outcome: ArbOutcome::Read,
            },
        );
        m.record(
            1,
            ProbeEvent::Gauge {
                gauge: GaugeKind::Occupancy,
                index: 0,
                value: 1,
            },
        );
        m.record(
            2,
            ProbeEvent::Gauge {
                gauge: GaugeKind::QueueDepth,
                index: 1,
                value: 1,
            },
        );
        m.record(
            6,
            ProbeEvent::Departed {
                output: 1,
                id: 1,
                birth: 0,
                latency: 6,
            },
        );
    }

    #[test]
    fn aggregates_the_stream() {
        let mut m = Metrics::new(2, 64, 128);
        feed(&mut m);
        assert_eq!(m.departed(), 1);
        assert_eq!(m.rw_collisions(), 1);
        assert_eq!(m.occupancy_series().count(), 1);
        assert_eq!(m.latency_histograms()[1].count(), 1);
        assert_eq!(m.latency_histograms()[1].max_tracked(), Some(6));
    }

    #[test]
    fn json_is_well_formed() {
        let mut m = Metrics::new(2, 8, 64);
        feed(&mut m);
        let doc = m.to_json();
        validate_json(&doc).expect("valid metrics JSON");
        assert!(doc.contains("\"rw_collisions\": 1"));
        assert!(doc.contains("[1, 1]"), "occupancy sample present: {doc}");
    }

    #[test]
    fn series_ring_keeps_the_window() {
        let mut m = Metrics::new(1, 4, 16);
        for c in 0..10u64 {
            m.record(
                c,
                ProbeEvent::Gauge {
                    gauge: GaugeKind::Occupancy,
                    index: 0,
                    value: c,
                },
            );
        }
        let samples: Vec<(u64, u64)> = m.occupancy_series().collect();
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[0], (6, 6), "oldest retained sample");
        assert!(m.to_json().contains("\"evicted\": 6"));
    }

    #[test]
    fn validate_json_rejects_imbalance() {
        assert!(validate_json("{\"a\": [1, 2}").is_err());
        assert!(validate_json("{}").is_err(), "required keys missing");
    }
}
