//! A dependency-free, API-compatible subset of the Criterion.rs
//! benchmarking harness.
//!
//! This workspace builds in environments with no crates.io access, so the
//! real Criterion cannot be a dependency. The benches only use a small
//! slice of its API — groups, `bench_function` / `bench_with_input`,
//! throughput annotation, and the `criterion_group!` / `criterion_main!`
//! macros — which this crate reimplements over `std::time::Instant`.
//!
//! Measurement model: each bench warms up briefly, then runs
//! [`SAMPLES`](Criterion) timed batches sized so one batch lasts roughly
//! `measurement_time / samples`, and reports the per-iteration mean of
//! the fastest batch (minimum-of-batches is robust against scheduler
//! noise). No statistics beyond that are attempted — for regression
//! hunting, compare numbers from the same machine and the same settings.
//!
//! Environment knobs (both optional):
//! * `BENCH_MEASUREMENT_MS` — per-bench measurement budget in
//!   milliseconds (default 500).
//! * `BENCH_SAMPLES` — timed batches per bench (default 10).

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group: turns per-iteration time
/// into a rate in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("alg", 8)` renders as `alg/8`.
    pub fn new<P: Display>(function_id: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_id.into()),
        }
    }

    /// Id consisting of the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.id.fmt(f)
    }
}

/// The timing driver handed to each bench closure.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    /// Mean seconds/iteration of the fastest sample batch, set by `iter`.
    best_s_per_iter: f64,
}

impl Bencher {
    /// Time `f`, storing the per-iteration cost for the report.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up: also calibrates how many iterations fit in one batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let warm_s = warm_start.elapsed().as_secs_f64();
        let s_per_iter = warm_s / warm_iters as f64;
        let batch_budget = self.measurement.as_secs_f64() / self.samples as f64;
        let batch_iters = ((batch_budget / s_per_iter) as u64).max(1);

        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch_iters {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64() / batch_iters as f64;
            if dt < best {
                best = dt;
            }
        }
        self.best_s_per_iter = best;
    }
}

fn env_ms(name: &str, default_ms: u64) -> Duration {
    let ms = std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(default_ms);
    Duration::from_millis(ms)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(default)
}

/// The benchmark manager (shim): owns default settings, prints results.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: env_ms("BENCH_WARMUP_MS", 100),
            measurement: env_ms("BENCH_MEASUREMENT_MS", 500),
            samples: env_usize("BENCH_SAMPLES", 10).max(1),
        }
    }
}

impl Criterion {
    /// Override the per-bench measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Override the warm-up budget.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Override the number of timed batches.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Open a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run one stand-alone bench.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let settings = self.clone();
        run_one(&settings, None, &id.id, None, f);
        self
    }
}

/// A group of benches sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benches with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.samples = n.max(1);
        self
    }

    /// Run one bench in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(self.criterion, Some(&self.name), &id.id, self.throughput, f);
        self
    }

    /// Run one bench parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            self.criterion,
            Some(&self.name),
            &id.id,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// End the group (report flushing is immediate; kept for API parity).
    pub fn finish(self) {}
}

fn run_one(
    settings: &Criterion,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut b = Bencher {
        warm_up: settings.warm_up,
        measurement: settings.measurement,
        samples: settings.samples,
        best_s_per_iter: f64::NAN,
    };
    f(&mut b);
    let s = b.best_s_per_iter;
    let time = if s.is_nan() {
        "no iter() call".to_string()
    } else if s < 1e-6 {
        format!("{:10.1} ns/iter", s * 1e9)
    } else if s < 1e-3 {
        format!("{:10.2} µs/iter", s * 1e6)
    } else {
        format!("{:10.3} ms/iter", s * 1e3)
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if s > 0.0 => {
            format!("  {:12.3e} elem/s", n as f64 / s)
        }
        Some(Throughput::Bytes(n)) if s > 0.0 => {
            format!("  {:12.3e} B/s", n as f64 / s)
        }
        _ => String::new(),
    };
    println!("{full:<48} {time}{rate}");
}

/// Define a group function running each target with a fresh or provided
/// [`Criterion`]; same forms as the real macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` invoking each group (CLI arguments are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_prints() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1))
            .sample_size(2);
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0, "closure must have been driven");
    }

    #[test]
    fn group_api_matches_real_criterion_shapes() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1))
            .sample_size(1);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("n", 4), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("alg", 8).to_string(), "alg/8");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }
}
