//! Word-level multi-switch fabrics: chains of RTL pipelined switches with
//! virtual-circuit translation at every hop.
//!
//! The Telegraphos system is switches *plus wires*: hosts and switches
//! connected by links, circuits set up hop by hop in each switch's RT
//! (fig. 6), labels swapped at every stage. This module wires several
//! word-accurate [`TranslatedSwitch`]es together through registered
//! inter-switch links (one cycle of wire delay per hop, as §4.3's
//! "split the long lines … into pipeline stages" prescribes) and carries
//! packets end to end — cut-through compounding across hops, every word
//! bit-exact at the far side.

use simkernel::ids::Cycle;
use switch_core::config::SwitchConfig;
use switch_core::rtl::OutputCollector;
use switch_core::vcroute::{decode_delivery, encode_header_vc, TranslatedSwitch};
use telemetry::{ProbeEvent, ProbeHandle};

/// A linear chain of `hops` switches: stage `h`'s output `link` feeds
/// stage `h+1`'s input `link` through a one-cycle registered wire.
/// Terminal hosts attach to stage 0's inputs and the last stage's
/// outputs.
#[derive(Debug)]
pub struct RtlChain {
    switches: Vec<TranslatedSwitch>,
    /// Registered wires between stage h and h+1: `wire[h][link]` holds
    /// the word launched last cycle, delivered this cycle.
    wires: Vec<Vec<Option<u64>>>,
    /// Per-wire framing counters: words of the current packet already
    /// launched on `wire[h][link]` (0 = next word is a header). The
    /// egress link interface uses this to re-encode the buffer-internal
    /// header back into the wire's VC format for the next hop.
    wire_k: Vec<Vec<usize>>,
    n: usize,
    stages_per_switch: usize,
    collector: OutputCollector,
    cycle: Cycle,
    probe: Option<ProbeHandle>,
}

/// A delivered end-to-end packet: final egress link, outgoing label, id,
/// egress cycle of the head word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainDelivery {
    /// Output link of the last switch.
    pub egress: usize,
    /// Label after the last swap (host-facing).
    pub vc: u16,
    /// Original packet id.
    pub id: u64,
    /// Cycle the head word reached the terminal host.
    pub head_cycle: Cycle,
    /// Payload words as delivered.
    pub words: Vec<u64>,
}

impl RtlChain {
    /// A chain of `hops` switches of geometry `cfg`, each with an RT of
    /// `vcs` labels.
    pub fn new(cfg: SwitchConfig, hops: usize, vcs: usize) -> Self {
        assert!(hops >= 1);
        let n = cfg.n_in;
        let s = cfg.stages();
        RtlChain {
            switches: (0..hops)
                .map(|_| TranslatedSwitch::new(cfg.clone(), vcs))
                .collect(),
            wires: vec![vec![None; n]; hops.saturating_sub(1)],
            wire_k: vec![vec![0; n]; hops.saturating_sub(1)],
            n,
            stages_per_switch: s,
            collector: OutputCollector::new(n, s),
            cycle: 0,
            probe: None,
        }
    }

    /// Attach a probe to hop `hop`'s switch: its per-cycle events
    /// (waves, bank accesses, departures) stream into `probe`. The
    /// chain itself additionally reports each end-to-end delivery as
    /// [`ProbeEvent::ChainDelivered`] regardless of which hop is probed.
    pub fn attach_probe(&mut self, hop: usize, probe: ProbeHandle) {
        self.switches[hop].inner_mut().attach_probe(probe.clone());
        self.probe = Some(probe);
    }

    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.switches.len()
    }

    /// Words per packet.
    pub fn packet_words(&self) -> usize {
        self.stages_per_switch
    }

    /// Install a circuit across the whole chain: at hop `h`, label
    /// `labels[h]` maps to (`links[h]`, `labels[h+1]`). `labels` has one
    /// more entry than hops (the final label is host-facing).
    pub fn install_circuit(&mut self, labels: &[u16], links: &[usize]) {
        assert_eq!(labels.len(), self.hops() + 1);
        assert_eq!(links.len(), self.hops());
        for (h, sw) in self.switches.iter_mut().enumerate() {
            sw.rt().install(labels[h], links[h], labels[h + 1]);
        }
    }

    /// Advance one cycle. `host_in[i]` is the word a host drives into
    /// stage 0's input `i`. Completed end-to-end packets accumulate in
    /// the delivery log ([`RtlChain::take_deliveries`]).
    pub fn tick(&mut self, host_in: &[Option<u64>]) {
        assert_eq!(host_in.len(), self.n);
        // Stage 0 consumes host input; stage h>0 consumes wire[h-1];
        // each stage's output feeds the next wire (registered).
        let mut inbound: Vec<Option<u64>> = host_in.to_vec();
        let last = self.hops() - 1;
        let s = self.stages_per_switch;
        for (h, sw) in self.switches.iter_mut().enumerate() {
            let next_in = if h < last {
                self.wires[h].clone()
            } else {
                Vec::new()
            };
            let out = sw.tick(&inbound);
            if h < last {
                // Launch into the registered wire (reusing its buffer;
                // last cycle's words were already cloned into `next_in`).
                let wire = &mut self.wires[h];
                wire.clear();
                wire.extend_from_slice(out);
                // Egress link interface: the first word of each packet
                // leaving the buffer carries the internal (output,
                // composite-id) header; re-encode it into the VC wire
                // format the next hop's RT expects.
                for (link, w) in wire.iter_mut().enumerate() {
                    match w {
                        Some(word) => {
                            if self.wire_k[h][link] == 0 {
                                let (_, composite) = simkernel::cell::Packet::decode_header(*word);
                                let next_vc = (composite >> 40) as u16;
                                let id = composite & ((1 << 40) - 1);
                                *word = encode_header_vc(next_vc, id);
                            }
                            self.wire_k[h][link] = (self.wire_k[h][link] + 1) % s;
                        }
                        None => {
                            debug_assert_eq!(
                                self.wire_k[h][link], 0,
                                "inter-switch link idled mid-packet"
                            );
                        }
                    }
                }
                inbound = next_in;
            } else {
                self.collector.observe(self.cycle, out);
            }
        }
        self.cycle += 1;
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.cycle
    }

    /// True when every switch is empty and all wires idle.
    pub fn is_quiescent(&self) -> bool {
        self.switches.iter().all(|s| s.inner().is_quiescent())
            && self.wires.iter().all(|w| w.iter().all(Option::is_none))
    }

    /// Drain and return completed end-to-end deliveries.
    pub fn take_deliveries(&mut self) -> Vec<ChainDelivery> {
        self.collector
            .take()
            .into_iter()
            .map(|d| {
                let (vc, id) = decode_delivery(&d);
                let delivery = ChainDelivery {
                    egress: d.output.index(),
                    vc,
                    id,
                    head_cycle: d.first_cycle,
                    words: d.words,
                };
                if let Some(p) = &self.probe {
                    p.emit(
                        delivery.head_cycle,
                        ProbeEvent::ChainDelivered {
                            egress: delivery.egress,
                            id: delivery.id,
                            vc: delivery.vc as usize,
                        },
                    );
                }
                delivery
            })
            .collect()
    }

    /// Total packets dropped at any hop for lack of a circuit.
    pub fn dangling_drops(&self) -> u64 {
        self.switches.iter().map(|s| s.dangling_drops).sum()
    }
}

/// Build the host-side wire words for a packet on a circuit's first
/// label.
pub fn host_packet(id: u64, first_label: u16, size_words: usize) -> Vec<u64> {
    let mut words: Vec<u64> = (1..size_words)
        .map(|k| simkernel::cell::Packet::payload_word(id, k))
        .collect();
    words.insert(0, encode_header_vc(first_label, id));
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::cell::Packet;

    fn drain(chain: &mut RtlChain) {
        let idle = vec![None; 2];
        let mut guard = 0;
        while !chain.is_quiescent() && guard < 2_000 {
            chain.tick(&idle);
            guard += 1;
        }
        assert!(chain.is_quiescent(), "chain failed to drain");
    }

    #[test]
    fn three_hop_circuit_end_to_end() {
        let mut chain = RtlChain::new(SwitchConfig::symmetric(2, 8), 3, 64);
        // Circuit: in on label 5; hop labels 5→9→13→21; path 1, 0, 1.
        chain.install_circuit(&[5, 9, 13, 21], &[1, 0, 1]);
        let s = chain.packet_words();
        let words = host_packet(77, 5, s);
        for &w in words.iter().take(s) {
            chain.tick(&[Some(w), None]);
        }
        drain(&mut chain);
        let out = chain.take_deliveries();
        assert_eq!(out.len(), 1);
        let d = &out[0];
        assert_eq!(d.egress, 1, "exits on the last hop's configured link");
        assert_eq!(d.vc, 21, "final label after three swaps");
        assert_eq!(d.id, 77);
        for (k, w) in d.words.iter().enumerate().skip(1) {
            assert_eq!(*w, Packet::payload_word(77, k), "payload intact");
        }
        assert_eq!(chain.dangling_drops(), 0);
    }

    #[test]
    fn cut_through_compounds_across_hops() {
        // Per hop: header in at cycle a → head out at a+2 (fused
        // cut-through) + 1 cycle of wire. Three hops ≈ 3·2 + 2 wires = 8
        // cycles of head latency — far below store-and-forward
        // (3 hops × (2 + packet) ≈ 18+). The chain must achieve the
        // cut-through figure.
        let mut chain = RtlChain::new(SwitchConfig::symmetric(2, 8), 3, 64);
        chain.install_circuit(&[5, 9, 13, 21], &[0, 0, 0]);
        let s = chain.packet_words();
        let words = host_packet(1, 5, s);
        for &w in words.iter().take(s) {
            chain.tick(&[Some(w), None]);
        }
        drain(&mut chain);
        let out = chain.take_deliveries();
        assert_eq!(out.len(), 1);
        let head = out[0].head_cycle;
        assert!(
            head <= 9,
            "cut-through must compound: head at cycle {head}, expected ≈ 8"
        );
        assert!(head >= 6, "but physics still applies: {head}");
    }

    #[test]
    fn missing_hop_entry_drops_at_that_hop() {
        let mut chain = RtlChain::new(SwitchConfig::symmetric(2, 8), 3, 64);
        // Install only the first two hops.
        chain.switches[0].rt().install(5, 1, 9);
        chain.switches[1].rt().install(9, 0, 13);
        let s = chain.packet_words();
        let words = host_packet(3, 5, s);
        for &w in words.iter().take(s) {
            chain.tick(&[Some(w), None]);
        }
        drain(&mut chain);
        assert!(chain.take_deliveries().is_empty());
        assert_eq!(chain.dangling_drops(), 1, "dropped exactly at hop 3");
    }

    #[test]
    fn many_circuits_share_the_fabric() {
        use simkernel::SplitMix64;
        let mut chain = RtlChain::new(SwitchConfig::symmetric(2, 16), 2, 64);
        // Two circuits entering on different inputs, exiting on
        // different links.
        chain.install_circuit(&[1, 2, 3], &[0, 0]);
        chain.install_circuit(&[11, 12, 13], &[1, 1]);
        let s = chain.packet_words();
        let mut rng = SplitMix64::new(8);
        let mut current: Vec<Option<(Vec<u64>, usize)>> = vec![None, None];
        let mut sent = [0u64; 2];
        let mut next_id = 1u64;
        for _ in 0..2_000u64 {
            let mut host = vec![None, None];
            for i in 0..2 {
                if current[i].is_none() && rng.chance(0.4) {
                    let label = if i == 0 { 1 } else { 11 };
                    current[i] = Some((host_packet(next_id, label, s), 0));
                    sent[i] += 1;
                    next_id += 1;
                }
                if let Some((w, k)) = current[i].as_mut() {
                    host[i] = Some(w[*k]);
                    *k += 1;
                    if *k == s {
                        current[i] = None;
                    }
                }
            }
            chain.tick(&host);
        }
        // Finish any host packet still on the wire before idling.
        while current.iter().any(Option::is_some) {
            let mut host = vec![None, None];
            for i in 0..2 {
                if let Some((w, k)) = current[i].as_mut() {
                    host[i] = Some(w[*k]);
                    *k += 1;
                    if *k == s {
                        current[i] = None;
                    }
                }
            }
            chain.tick(&host);
        }
        drain(&mut chain);
        let out = chain.take_deliveries();
        assert_eq!(out.len() as u64, sent[0] + sent[1]);
        assert_eq!(chain.dangling_drops(), 0);
        // Circuit isolation: everything from circuit A exits on link 0
        // with label 3, circuit B on link 1 with label 13.
        for d in &out {
            match d.egress {
                0 => assert_eq!(d.vc, 3),
                1 => assert_eq!(d.vc, 13),
                other => panic!("unexpected egress {other}"),
            }
        }
    }
}
