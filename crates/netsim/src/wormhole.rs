//! Flit-level wormhole routing on a k-ary 2-D mesh with virtual channels.
//!
//! The \[Dally90\] substrate behind the paper's §2.1 saturation quote. A
//! message of `msg_flits` flits snakes through the network holding one
//! virtual-channel *lane* on every link it occupies; when its head blocks,
//! the whole worm stalls in place, and with a single lane per link every
//! channel under the worm is dead to other traffic — the mechanism that
//! drives saturation down to ≈ 25 % of capacity with 20-flit messages and
//! 16-flit buffers. Adding lanes lets other worms pass the blocked one
//! (virtual-channel flow control), recovering much of the capacity.
//!
//! Routing is dimension-order (X then Y). Two topologies are supported:
//! the **mesh** (no wraparound; deadlock-free with any lane count) and
//! the **k-ary 2-cube torus** — Dally's actual topology — where the lane
//! set splits into two *dateline classes*: a worm uses class 0 until its
//! path traverses the wrap link of the dimension it is traveling, and
//! class 1 from the wrap link onward. Class-0 channel dependencies never
//! close a ring and class-1 chains all start at the dateline, so both
//! classes are acyclic and the torus is deadlock-free (verified by a
//! sustained-traffic delivery test). On the torus at the minimum
//! deadlock-free configuration the network saturates at ≈ 0.3 of the
//! capacity bound — the paper's quoted "about 25 %".

use simkernel::ids::Cycle;
use simkernel::SplitMix64;
use std::collections::VecDeque;

/// Mesh/workload configuration.
#[derive(Debug, Clone)]
pub struct MeshConfig {
    /// Mesh radix: `k × k` nodes.
    pub k: usize,
    /// Virtual-channel lanes per link (Dally's "lanes"; 1 = plain
    /// wormhole).
    pub lanes: usize,
    /// FIFO buffer depth per lane, in flits.
    pub buf_flits: usize,
    /// Message length in flits (head carries the route).
    pub msg_flits: usize,
    /// Per-node message injection probability per cycle.
    pub injection_rate: f64,
    /// RNG seed.
    pub seed: u64,
    /// Wraparound links (k-ary 2-cube, Dally's actual topology). Requires
    /// an even number of lanes ≥ 2: the lane set splits into two dateline
    /// classes for deadlock freedom (packets start in class 0 and move to
    /// class 1 after crossing the wrap link of the dimension they are
    /// traveling — the \[Dally90\] construction).
    pub torus: bool,
}

impl MeshConfig {
    /// The \[Dally90\] §2.1 configuration: 20-flit messages, 16-flit
    /// buffers, at the given lane count and injection rate.
    pub fn dally(k: usize, lanes: usize, injection_rate: f64, seed: u64) -> Self {
        MeshConfig {
            k,
            lanes,
            buf_flits: 16 / lanes.max(1),
            msg_flits: 20,
            injection_rate,
            seed,
            torus: false,
        }
    }

    /// The torus variant (k-ary 2-cube proper). `lanes` must be even.
    pub fn dally_torus(k: usize, lanes: usize, injection_rate: f64, seed: u64) -> Self {
        let mut c = Self::dally(k, lanes, injection_rate, seed);
        c.torus = true;
        c
    }
}

/// Directions out of a router (+local ejection handled separately).
const DIRS: usize = 4; // 0:+x 1:-x 2:+y 3:-y
const LOCAL: usize = 4;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Flit {
    msg_id: u64,
    /// Remaining flits after this one (0 = tail).
    remaining: u32,
    dest: (usize, usize),
    birth: Cycle,
    /// Torus dateline state: true once the worm has traversed the wrap
    /// link of the dimension it is currently traveling (selects lane
    /// class 1). Reset on dimension change; unused on meshes.
    crossed: bool,
}

/// One lane of one input port: a FIFO of flits plus the output lane the
/// current worm holds.
#[derive(Debug, Clone, Default)]
struct Lane {
    fifo: VecDeque<Flit>,
    /// Allocated output (port, lane) for the worm currently traversing.
    route: Option<(usize, usize)>,
}

#[derive(Debug, Clone)]
struct Router {
    /// `input[port][lane]`; port 4 = injection queue (single lane).
    inputs: Vec<Vec<Lane>>,
    /// Output lane ownership: `out_owner[port][lane]` = msg_id holding it.
    out_owner: Vec<Vec<Option<u64>>>,
    /// Round-robin pointer per output port.
    rr: Vec<usize>,
}

/// A `k×k` wormhole mesh.
#[derive(Debug)]
pub struct WormholeMesh {
    cfg: MeshConfig,
    routers: Vec<Router>,
    rng: SplitMix64,
    cycle: Cycle,
    next_msg: u64,
    /// Messages fully ejected: (birth, completion).
    pub delivered: Vec<(Cycle, Cycle)>,
    /// Messages generated but not yet fully injected (source queueing).
    pub injected: u64,
    /// Messages generated in total.
    pub generated: u64,
    /// Flits delivered (for throughput).
    pub flits_delivered: u64,
    /// Source queues: per node, pending messages.
    src_q: Vec<VecDeque<PendingMsg>>,
}

/// A generated message awaiting injection:
/// (dest_x, dest_y, birth, flits left to inject, msg_id).
type PendingMsg = (usize, usize, Cycle, u32, u64);

impl WormholeMesh {
    /// Build an idle mesh.
    pub fn new(cfg: MeshConfig) -> Self {
        assert!(cfg.k >= 2 && cfg.lanes >= 1 && cfg.buf_flits >= 1 && cfg.msg_flits >= 1);
        assert!(
            !cfg.torus || (cfg.lanes >= 2 && cfg.lanes.is_multiple_of(2)),
            "torus deadlock freedom needs an even lane count >= 2 (dateline classes)"
        );
        let nodes = cfg.k * cfg.k;
        let router = Router {
            inputs: (0..=DIRS)
                .map(|p| {
                    let lanes = if p == LOCAL { 1 } else { cfg.lanes };
                    vec![Lane::default(); lanes]
                })
                .collect(),
            out_owner: (0..DIRS).map(|_| vec![None; cfg.lanes]).collect(),
            rr: vec![0; DIRS],
        };
        WormholeMesh {
            rng: SplitMix64::new(cfg.seed),
            routers: vec![router; nodes],
            cfg,
            cycle: 0,
            next_msg: 0,
            delivered: Vec::new(),
            injected: 0,
            generated: 0,
            flits_delivered: 0,
            src_q: vec![VecDeque::new(); nodes],
        }
    }

    fn node_id(&self, x: usize, y: usize) -> usize {
        y * self.cfg.k + x
    }

    fn coords(&self, id: usize) -> (usize, usize) {
        (id % self.cfg.k, id / self.cfg.k)
    }

    /// Dimension-order next hop: returns the output port, or LOCAL. On a
    /// torus the shorter way around each ring is taken.
    fn route(&self, at: usize, dest: (usize, usize)) -> usize {
        let (x, y) = self.coords(at);
        let k = self.cfg.k;
        let dim = |from: usize, to: usize, plus: usize, minus: usize| {
            if from == to {
                return None;
            }
            if !self.cfg.torus {
                return Some(if from < to { plus } else { minus });
            }
            let fwd = (to + k - from) % k;
            Some(if fwd <= k / 2 { plus } else { minus })
        };
        dim(x, dest.0, 0, 1)
            .or_else(|| dim(y, dest.1, 2, 3))
            .unwrap_or(LOCAL)
    }

    fn neighbor(&self, at: usize, port: usize) -> usize {
        let (x, y) = self.coords(at);
        let k = self.cfg.k;
        if self.cfg.torus {
            return match port {
                0 => self.node_id((x + 1) % k, y),
                1 => self.node_id((x + k - 1) % k, y),
                2 => self.node_id(x, (y + 1) % k),
                3 => self.node_id(x, (y + k - 1) % k),
                _ => unreachable!("no neighbor through the local port"),
            };
        }
        match port {
            0 => self.node_id(x + 1, y),
            1 => self.node_id(x - 1, y),
            2 => self.node_id(x, y + 1),
            3 => self.node_id(x, y - 1),
            _ => unreachable!("no neighbor through the local port"),
        }
    }

    /// True if taking `port` out of `at` traverses a wraparound link.
    fn wraps(&self, at: usize, port: usize) -> bool {
        if !self.cfg.torus {
            return false;
        }
        let (x, y) = self.coords(at);
        let k = self.cfg.k;
        match port {
            0 => x == k - 1,
            1 => x == 0,
            2 => y == k - 1,
            3 => y == 0,
            _ => false,
        }
    }

    /// The dimension of a non-local port (0 = x, 1 = y).
    fn port_dim(port: usize) -> usize {
        port / 2
    }

    /// The lane range a worm may claim on `out_port`, given the head's
    /// dateline state and where it came from.
    ///
    /// Deadlock freedom on the torus rings requires that the wrap channel
    /// itself is already class 1: class-0 dependency chains then never
    /// close the ring, and class-1 chains all start at the dateline and
    /// run < k hops forward, so both classes are acyclic.
    fn lane_range(
        &self,
        node: usize,
        in_port: usize,
        out_port: usize,
        head: &Flit,
    ) -> (usize, usize) {
        let l = self.cfg.lanes;
        if !self.cfg.torus {
            return (0, l);
        }
        let fresh_dim = in_port == LOCAL || Self::port_dim(in_port) != Self::port_dim(out_port);
        let crossed = !fresh_dim && head.crossed;
        let class1 = crossed || self.wraps(node, out_port);
        if class1 {
            (l / 2, l)
        } else {
            (0, l / 2)
        }
    }

    /// Opposite direction: arriving through `port` at the neighbor.
    fn opposite(port: usize) -> usize {
        match port {
            0 => 1,
            1 => 0,
            2 => 3,
            3 => 2,
            _ => unreachable!(),
        }
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.cycle
    }

    /// Advance one cycle.
    pub fn tick(&mut self) {
        let n = self.routers.len();
        let c = self.cycle;

        // 1. Generation: enqueue new messages at sources.
        for node in 0..n {
            if self.rng.chance(self.cfg.injection_rate) {
                let dest = loop {
                    let d = self.rng.below_usize(n);
                    if d != node {
                        break d;
                    }
                };
                let (dx, dy) = self.coords(dest);
                self.generated += 1;
                self.next_msg += 1;
                self.src_q[node].push_back((dx, dy, c, self.cfg.msg_flits as u32, self.next_msg));
            }
        }

        // 2. Injection: the local input lane accepts one flit per cycle
        //    while it has buffer space and the previous message has fully
        //    entered.
        for node in 0..n {
            let inj_free = {
                let lane = &self.routers[node].inputs[LOCAL][0];
                lane.fifo.len() < self.cfg.buf_flits.max(self.cfg.msg_flits)
            };
            if !inj_free {
                continue;
            }
            if let Some(front) = self.src_q[node].front_mut() {
                let (dx, dy, birth, left, msg_id) = *front;
                if left == self.cfg.msg_flits as u32 {
                    self.injected += 1;
                }
                self.routers[node].inputs[LOCAL][0].fifo.push_back(Flit {
                    msg_id,
                    remaining: left - 1,
                    dest: (dx, dy),
                    birth,
                    crossed: false,
                });
                front.3 -= 1;
                if front.3 == 0 {
                    self.src_q[node].pop_front();
                }
            }
        }

        // 3. Route allocation: head flits at lane fronts without a route
        //    try to claim an output lane.
        for node in 0..n {
            for port in 0..=DIRS {
                let lane_count = self.routers[node].inputs[port].len();
                for l in 0..lane_count {
                    let (needs_route, head) = {
                        let lane = &self.routers[node].inputs[port][l];
                        match lane.fifo.front() {
                            Some(f) if lane.route.is_none() => (true, *f),
                            _ => (
                                false,
                                Flit {
                                    msg_id: 0,
                                    remaining: 0,
                                    dest: (0, 0),
                                    birth: 0,
                                    crossed: false,
                                },
                            ),
                        }
                    };
                    if !needs_route {
                        continue;
                    }
                    let out_port = self.route(node, head.dest);
                    if out_port == LOCAL {
                        // Ejection needs no allocation.
                        self.routers[node].inputs[port][l].route = Some((LOCAL, 0));
                        continue;
                    }
                    // Claim a free lane on that output, within the
                    // dateline class the worm is entitled to.
                    let (lo, hi) = self.lane_range(node, port, out_port, &head);
                    let owners = &mut self.routers[node].out_owner[out_port];
                    if let Some(free) = (lo..hi).find(|&x| owners[x].is_none()) {
                        owners[free] = Some(head.msg_id);
                        self.routers[node].inputs[port][l].route = Some((out_port, free));
                    }
                }
            }
        }

        // 4. Flit transfer: each output port forwards at most one flit
        //    (the physical channel), round-robin over its lanes; each
        //    ejection port consumes one flit per input lane… physical
        //    ejection bandwidth: one flit per node per cycle.
        for node in 0..n {
            // Ejection first (one flit per cycle per node).
            'eject: for port in 0..=DIRS {
                for l in 0..self.routers[node].inputs[port].len() {
                    let lane = &mut self.routers[node].inputs[port][l];
                    if lane.route == Some((LOCAL, 0)) {
                        if let Some(f) = lane.fifo.pop_front() {
                            self.flits_delivered += 1;
                            if f.remaining == 0 {
                                lane.route = None;
                                self.delivered.push((f.birth, c));
                            }
                            break 'eject;
                        }
                    }
                }
            }
            // Physical channels.
            for out_port in 0..DIRS {
                // Skip edge ports with no neighbor (meshes only — every
                // torus port has a neighbor via wraparound).
                let (x, y) = self.coords(node);
                let valid = self.cfg.torus
                    || match out_port {
                        0 => x + 1 < self.cfg.k,
                        1 => x > 0,
                        2 => y + 1 < self.cfg.k,
                        3 => y > 0,
                        _ => false,
                    };
                if !valid {
                    continue;
                }
                let nbr = self.neighbor(node, out_port);
                let in_port = Self::opposite(out_port);
                // Find a sendable (input port, lane) whose worm owns a
                // lane on this output and whose downstream buffer has
                // room. Round-robin over candidates.
                let mut candidates: Vec<(usize, usize, usize)> = Vec::new(); // (in_port, in_lane, out_lane)
                for port in 0..=DIRS {
                    for l in 0..self.routers[node].inputs[port].len() {
                        let lane = &self.routers[node].inputs[port][l];
                        if let Some((op, ol)) = lane.route {
                            if op == out_port && !lane.fifo.is_empty() {
                                let room = self.routers[nbr].inputs[in_port][ol].fifo.len()
                                    < self.cfg.buf_flits;
                                if room {
                                    candidates.push((port, l, ol));
                                }
                            }
                        }
                    }
                }
                if candidates.is_empty() {
                    continue;
                }
                let pick = self.routers[node].rr[out_port] % candidates.len();
                self.routers[node].rr[out_port] = self.routers[node].rr[out_port].wrapping_add(1);
                let (ip, il, ol) = candidates[pick];
                let mut f = self.routers[node].inputs[ip][il]
                    .fifo
                    .pop_front()
                    .expect("candidate has a flit");
                // Dateline bookkeeping: entering a fresh dimension resets
                // the crossing flag; traversing a wrap link sets it.
                if ip == LOCAL || Self::port_dim(ip) != Self::port_dim(out_port) {
                    f.crossed = false;
                }
                if self.wraps(node, out_port) {
                    f.crossed = true;
                }
                if f.remaining == 0 {
                    // Tail: release the input lane's route and, once the
                    // tail leaves, the upstream ownership of this output
                    // lane transfers downstream implicitly; free it here.
                    self.routers[node].inputs[ip][il].route = None;
                    self.routers[node].out_owner[out_port][ol] = None;
                }
                self.routers[nbr].inputs[in_port][ol].fifo.push_back(f);
            }
        }

        self.cycle = c + 1;
    }

    /// Run `cycles` cycles.
    pub fn run(&mut self, cycles: Cycle) {
        for _ in 0..cycles {
            self.tick();
        }
    }

    /// Delivered flit throughput as a fraction of network bisection-ish
    /// capacity: flits per node per cycle, normalized by the max
    /// sustainable uniform-traffic injection (flits/node/cycle = 4/avg
    /// hops ≈ 4·k/(2k/3·2) … reported raw as flits/node/cycle; callers
    /// normalize).
    pub fn flits_per_node_cycle(&self) -> f64 {
        if self.cycle == 0 {
            return 0.0;
        }
        self.flits_delivered as f64 / (self.cycle as f64 * self.routers.len() as f64)
    }

    /// Mean message latency (birth → tail ejected), cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered.is_empty() {
            return 0.0;
        }
        self.delivered
            .iter()
            .map(|&(b, d)| (d - b) as f64)
            .sum::<f64>()
            / self.delivered.len() as f64
    }

    /// Messages fully delivered.
    pub fn messages_delivered(&self) -> usize {
        self.delivered.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_message_traverses_mesh() {
        let mut cfg = MeshConfig::dally(4, 1, 0.0, 1);
        cfg.msg_flits = 5;
        let mut mesh = WormholeMesh::new(cfg);
        // Inject one message by hand: node (0,0) → (3,3).
        mesh.generated += 1;
        mesh.next_msg += 1;
        mesh.src_q[0].push_back((3, 3, 0, 5, mesh.next_msg));
        mesh.run(200);
        assert_eq!(mesh.messages_delivered(), 1);
        let (birth, done) = mesh.delivered[0];
        // 6 hops + 5 flits + per-hop pipelining: latency bounded sanely.
        assert!(done - birth >= 10, "too fast: {}", done - birth);
        assert!(done - birth < 60, "too slow: {}", done - birth);
    }

    #[test]
    fn all_generated_messages_eventually_delivered_at_low_load() {
        let cfg = MeshConfig::dally(4, 1, 0.002, 7);
        let mut mesh = WormholeMesh::new(cfg);
        mesh.run(20_000);
        // Stop generating, drain.
        mesh.cfg.injection_rate = 0.0;
        mesh.run(20_000);
        assert!(mesh.generated > 50);
        assert_eq!(
            mesh.messages_delivered() as u64,
            mesh.generated,
            "wormhole must not lose or deadlock messages on a mesh"
        );
    }

    #[test]
    fn latency_explodes_past_saturation() {
        let low = {
            let mut m = WormholeMesh::new(MeshConfig::dally(6, 1, 0.001, 3));
            m.run(30_000);
            m.mean_latency()
        };
        let high = {
            let mut m = WormholeMesh::new(MeshConfig::dally(6, 1, 0.02, 3));
            m.run(30_000);
            m.mean_latency()
        };
        assert!(
            high > 2.0 * low,
            "saturated latency {high} should dwarf unloaded {low}"
        );
    }

    #[test]
    fn more_lanes_carry_more_traffic() {
        // The [Dally90] headline: at an injection rate past 1-lane
        // saturation, 4 lanes deliver significantly more flits.
        let run = |lanes| {
            // 0.05 msgs/node/cycle × 20 flits = 1.0 flits/node/cycle
            // offered — far past saturation for every lane count.
            let mut m = WormholeMesh::new(MeshConfig::dally(6, lanes, 0.05, 9));
            m.run(30_000);
            m.flits_per_node_cycle()
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four > one * 1.1,
            "4 lanes ({four}) must outperform 1 lane ({one}) at saturation"
        );
    }

    #[test]
    fn mesh_edges_respected() {
        // Corner node routing sanity: (0,0) must never route -x or -y.
        let cfg = MeshConfig::dally(4, 1, 0.0, 1);
        let mesh = WormholeMesh::new(cfg);
        assert_eq!(mesh.route(0, (3, 0)), 0);
        assert_eq!(mesh.route(0, (0, 3)), 2);
        assert_eq!(mesh.route(0, (0, 0)), LOCAL);
        let corner = mesh.node_id(3, 3);
        assert_eq!(mesh.route(corner, (0, 3)), 1);
        assert_eq!(mesh.route(corner, (3, 0)), 3);
    }
}

#[cfg(test)]
mod torus_tests {
    use super::*;

    #[test]
    fn torus_shortest_way_around() {
        let mesh = WormholeMesh::new(MeshConfig::dally_torus(8, 2, 0.0, 1));
        // From (0,0) to (6,0): backward around the ring (2 hops) beats
        // forward (6 hops).
        assert_eq!(mesh.route(0, (6, 0)), 1, "-x is shorter via wraparound");
        assert_eq!(mesh.route(0, (3, 0)), 0, "+x when forward is shorter");
        // Wrap detection.
        assert!(mesh.wraps(0, 1), "leaving x=0 in -x wraps");
        assert!(!mesh.wraps(0, 0));
        let (x, y) = mesh.coords(mesh.neighbor(0, 1));
        assert_eq!((x, y), (7, 0), "wrap neighbor");
    }

    #[test]
    fn torus_delivers_everything_no_deadlock() {
        // The dateline discipline must keep the wraparound rings
        // deadlock-free under sustained random traffic.
        let mut mesh = WormholeMesh::new(MeshConfig::dally_torus(6, 2, 0.004, 3));
        mesh.run(30_000);
        mesh.cfg.injection_rate = 0.0;
        mesh.run(30_000);
        assert!(mesh.generated > 300, "workload too thin");
        assert_eq!(
            mesh.messages_delivered() as u64,
            mesh.generated,
            "torus lost or deadlocked messages"
        );
    }

    #[test]
    fn torus_baseline_saturates_near_quarter_capacity() {
        // The Dally configuration proper: on the k-ary 2-cube with the
        // minimum deadlock-free lane count (2 = one usable lane per
        // dateline class), 20-flit messages and 16-flit buffers saturate
        // around a quarter to a third of the DOR capacity bound — the
        // paper's §2.1 "about 25 % of link capacity". More lanes recover
        // throughput.
        let k = 8;
        let cap = 8.0 / k as f64; // torus bisection bound, flits/node/cycle
        let rate = 1.5 * cap / 20.0; // well past saturation
        let mut t2 = WormholeMesh::new(MeshConfig::dally_torus(k, 2, rate, 5));
        t2.run(15_000);
        let f2 = t2.flits_per_node_cycle() / cap;
        assert!(
            (0.18..=0.42).contains(&f2),
            "2-lane torus saturation fraction {f2} should be near the paper's ~25%"
        );
        let mut t4 = WormholeMesh::new(MeshConfig::dally_torus(k, 4, rate, 5));
        t4.run(15_000);
        let f4 = t4.flits_per_node_cycle() / cap;
        assert!(f4 > f2 * 1.15, "4 lanes ({f4}) must recover over 2 ({f2})");
    }

    #[test]
    #[should_panic(expected = "even lane count")]
    fn torus_rejects_single_lane() {
        let _ = WormholeMesh::new(MeshConfig::dally_torus(4, 1, 0.0, 1));
    }
}
