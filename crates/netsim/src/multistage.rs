//! Omega networks built from shared-buffer switch elements.
//!
//! The paper's switches are "building blocks for larger, multi-stage
//! switches and networks". An omega network connects `N = k^s` terminals
//! through `s` stages of `N/k` switches of size `k×k`, with a perfect
//! shuffle between stages; self-routing uses one base-`k` digit of the
//! destination per stage. Each element here is a slot-level
//! `baselines`-style shared-buffer switch — the configuration the paper
//! recommends — but the element type is generic in principle; the
//! experiments compare fabrics of shared vs input-queued elements at the
//! cell level.

use simkernel::cell::Cell;
use simkernel::ids::Cycle;
use std::collections::VecDeque;

/// One k×k shared-buffer element (self-contained so the fabric does not
/// depend on the baselines crate; behaviorally identical to
/// `baselines::SharedBufferSwitch`).
#[derive(Debug, Clone)]
struct Element {
    queues: Vec<VecDeque<Cell>>,
    pool: usize,
    capacity: Option<usize>,
    dropped: u64,
}

impl Element {
    fn new(k: usize, capacity: Option<usize>) -> Self {
        Element {
            queues: vec![VecDeque::new(); k],
            pool: 0,
            capacity,
            dropped: 0,
        }
    }

    /// `port_dst[i]` = local output port for the cell arriving on input i.
    fn tick(&mut self, arrivals: &[Option<(Cell, usize)>], out: &mut [Option<Cell>]) {
        for o in out.iter_mut() {
            *o = None;
        }
        for a in arrivals.iter().flatten() {
            if self.capacity.is_some_and(|cap| self.pool >= cap) {
                self.dropped += 1;
            } else {
                self.queues[a.1].push_back(a.0);
                self.pool += 1;
            }
        }
        for (j, q) in self.queues.iter_mut().enumerate() {
            if let Some(c) = q.pop_front() {
                out[j] = Some(c);
                self.pool -= 1;
            }
        }
    }
}

/// An omega network of `stages` stages of `k×k` shared-buffer elements,
/// serving `N = k^stages` terminals.
#[derive(Debug)]
pub struct OmegaNetwork {
    k: usize,
    stages: usize,
    n: usize,
    elements: Vec<Vec<Element>>,
    delivered: Vec<Cell>,
    latencies: Vec<u64>,
    /// Per-stage pipeline registers.
    pipe: Vec<Vec<Option<Cell>>>,
    /// Reusable per-slot scratch (shuffle, route, stage-output, element
    /// output): allocated once so `tick` is allocation-free per slot.
    scratch_shuffled: Vec<Option<Cell>>,
    scratch_routed: Vec<Option<(Cell, usize)>>,
    scratch_stage_out: Vec<Option<Cell>>,
    scratch_elem_out: Vec<Option<Cell>>,
    scratch_stage_in: Vec<Option<Cell>>,
}

impl OmegaNetwork {
    /// Build an omega network for `k^stages` terminals with per-element
    /// pool capacity `element_capacity`.
    pub fn new(k: usize, stages: usize, element_capacity: Option<usize>) -> Self {
        assert!(k >= 2 && stages >= 1);
        let n = k.pow(stages as u32);
        OmegaNetwork {
            k,
            stages,
            n,
            elements: (0..stages)
                .map(|_| {
                    (0..n / k)
                        .map(|_| Element::new(k, element_capacity))
                        .collect()
                })
                .collect(),
            delivered: Vec::new(),
            latencies: Vec::new(),
            pipe: vec![vec![None; n]; stages],
            scratch_shuffled: vec![None; n],
            scratch_routed: vec![None; n],
            scratch_stage_out: vec![None; n],
            scratch_elem_out: vec![None; k],
            scratch_stage_in: vec![None; n],
        }
    }

    /// Number of terminals.
    pub fn terminals(&self) -> usize {
        self.n
    }

    /// Perfect-shuffle wiring into every stage: line `i` connects to
    /// position `shuffle(i)` of the next stage's input side.
    fn shuffle(&self, i: usize) -> usize {
        // Rotate the base-k representation left by one digit.
        (i * self.k) % self.n + (i * self.k) / self.n
    }

    /// The destination digit consumed at `stage` (most significant
    /// first).
    fn digit(&self, dest: usize, stage: usize) -> usize {
        let shift = self.stages - 1 - stage;
        (dest / self.k.pow(shift as u32)) % self.k
    }

    /// Advance one slot: `arrivals[t]` is the cell entering at terminal
    /// `t`; returns cells delivered to terminals this slot via the
    /// internal `delivered` log.
    pub fn tick(&mut self, now: Cycle, arrivals: &[Option<Cell>]) {
        assert_eq!(arrivals.len(), self.n);
        let k = self.k;
        // Feed each stage from its pipeline register (stage 0 from the
        // terminals), routing by the stage's destination digit. All four
        // per-slot line vectors are reusable scratch hoisted out of the
        // loop (zero allocations per slot).
        let mut stage_in = std::mem::take(&mut self.scratch_stage_in);
        let mut shuffled = std::mem::take(&mut self.scratch_shuffled);
        let mut routed = std::mem::take(&mut self.scratch_routed);
        let mut stage_out = std::mem::take(&mut self.scratch_stage_out);
        let mut elem_out = std::mem::take(&mut self.scratch_elem_out);
        stage_in.clear();
        stage_in.extend_from_slice(arrivals);
        for s in 0..self.stages {
            // Shuffle into the stage.
            shuffled.iter_mut().for_each(|c| *c = None);
            for (i, c) in stage_in.iter().enumerate() {
                if c.is_some() {
                    shuffled[self.shuffle(i)] = *c;
                }
            }
            // Route lookup (one destination digit per stage), then each
            // element of the stage switches its k lines.
            for (r, c) in routed.iter_mut().zip(shuffled.iter()) {
                *r = c.map(|c| (c, self.digit(c.dst.index(), s)));
            }
            stage_out.iter_mut().for_each(|c| *c = None);
            for (e, elem) in self.elements[s].iter_mut().enumerate() {
                let base = e * k;
                elem.tick(&routed[base..base + k], &mut elem_out);
                for (j, c) in elem_out.iter().enumerate() {
                    stage_out[base + j] = *c;
                }
            }
            // Latch this stage's output; what the register previously
            // held (stage `s`'s output of the last slot) feeds stage
            // `s + 1` on the next loop iteration.
            std::mem::swap(&mut stage_in, &mut self.pipe[s]);
            std::mem::swap(&mut self.pipe[s], &mut stage_out);
        }
        // What fell out of the last pipeline register is delivered.
        for c in stage_in.iter().copied().flatten() {
            self.latencies.push(now.saturating_sub(c.birth));
            self.delivered.push(c);
        }
        self.scratch_stage_in = stage_in;
        self.scratch_shuffled = shuffled;
        self.scratch_routed = routed;
        self.scratch_stage_out = stage_out;
        self.scratch_elem_out = elem_out;
    }

    /// Total cells delivered to terminals.
    pub fn delivered(&self) -> &[Cell] {
        &self.delivered
    }

    /// Mean terminal-to-terminal latency in slots.
    pub fn mean_latency(&self) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        self.latencies.iter().sum::<u64>() as f64 / self.latencies.len() as f64
    }

    /// Cells dropped inside elements.
    pub fn dropped(&self) -> u64 {
        self.elements
            .iter()
            .flat_map(|s| s.iter())
            .map(|e| e.dropped)
            .sum()
    }

    /// Cells buffered inside the fabric.
    pub fn occupancy(&self) -> usize {
        self.elements
            .iter()
            .flat_map(|s| s.iter())
            .map(|e| e.pool)
            .sum::<usize>()
            + self
                .pipe
                .iter()
                .flat_map(|p| p.iter())
                .filter(|c| c.is_some())
                .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: u64, src: usize, dst: usize, birth: Cycle) -> Cell {
        Cell::new(id, src, dst, birth)
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let net = OmegaNetwork::new(2, 3, None);
        let mut seen = [false; 8];
        for i in 0..8 {
            let s = net.shuffle(i);
            assert!(!seen[s], "shuffle collides at {i}→{s}");
            seen[s] = true;
        }
    }

    #[test]
    fn single_cell_routes_to_its_terminal() {
        let mut net = OmegaNetwork::new(2, 3, None);
        for dst in 0..8 {
            let mut arr = vec![None; 8];
            arr[5] = Some(cell(dst as u64, 5, dst, 0));
            net.tick(0, &arr);
            for now in 1..20 {
                net.tick(now, &vec![None; 8]);
            }
        }
        assert_eq!(net.delivered().len(), 8);
        for c in net.delivered() {
            assert_eq!(
                c.id.0 as usize,
                c.dst.index(),
                "cell mis-routed: id {} arrived at {}",
                c.id.0,
                c.dst
            );
        }
    }

    #[test]
    fn latency_is_stage_count_when_uncontended() {
        let mut net = OmegaNetwork::new(2, 3, None);
        let mut arr = vec![None; 8];
        arr[0] = Some(cell(1, 0, 7, 0));
        net.tick(0, &arr);
        for now in 1..10 {
            net.tick(now, &vec![None; 8]);
        }
        assert_eq!(net.delivered().len(), 1);
        assert_eq!(net.mean_latency(), 3.0, "3 stages = 3 slots");
    }

    #[test]
    fn contention_buffers_inside_fabric() {
        // Two cells to the same terminal in the same slot: one is
        // buffered in a shared element, both arrive, one slot apart.
        let mut net = OmegaNetwork::new(2, 2, None);
        let mut arr = vec![None; 4];
        arr[0] = Some(cell(1, 0, 3, 0));
        arr[1] = Some(cell(2, 1, 3, 0));
        net.tick(0, &arr);
        for now in 1..10 {
            net.tick(now, &[None; 4]);
        }
        assert_eq!(net.delivered().len(), 2);
        let lat: Vec<u64> = net.latencies.clone();
        assert_eq!(lat.len(), 2);
        assert_eq!((lat[0] as i64 - lat[1] as i64).abs(), 1);
    }

    #[test]
    fn conservation_under_random_traffic() {
        let mut net = OmegaNetwork::new(2, 4, None);
        let n = net.terminals();
        let mut rng = simkernel::SplitMix64::new(4);
        let mut offered = 0u64;
        for now in 0..2000u64 {
            let arr: Vec<Option<Cell>> = (0..n)
                .map(|i| {
                    rng.chance(0.5).then(|| {
                        offered += 1;
                        cell(offered, i, rng.below_usize(n), now)
                    })
                })
                .collect();
            net.tick(now, &arr);
        }
        for now in 2000..2200u64 {
            net.tick(now, &vec![None; n]);
        }
        assert_eq!(
            offered,
            net.delivered().len() as u64 + net.dropped() + net.occupancy() as u64
        );
        assert_eq!(net.dropped(), 0, "unbounded elements never drop");
    }
}
