//! # netsim — networks built from switches
//!
//! The paper's introduction places single-chip switches as "building
//! blocks for larger, multi-stage switches and networks"; its §2.1 quotes
//! \[Dally90\]: with wormhole routing, 20-flit messages and 16-flit buffers,
//! an input-queued network saturates at ≈ 25 % of link capacity (fig. 8,
//! 1 lane). This crate provides the two network-level substrates those
//! claims need:
//!
//! * [`wormhole`] — a flit-level k-ary mesh with wormhole routing and
//!   configurable virtual-channel lanes, reproducing the \[Dally90\]
//!   saturation behavior (experiment E2): deep messages + shallow FIFO
//!   buffers + 1 lane ⇒ heavy channel-blocking chains;
//! * [`multistage`] — omega networks composed of shared-buffer switch
//!   elements, demonstrating the "building block" use of the paper's
//!   switch (experiment E15's fabric scenarios and the `lan_fabric`
//!   example);
//! * [`rtlnet`] — chains of *word-level* pipelined switches with
//!   per-hop virtual-circuit label swapping and registered inter-switch
//!   wires: the Telegraphos system in miniature, cut-through compounding
//!   across hops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod multistage;
pub mod rtlnet;
pub mod wormhole;

pub use multistage::OmegaNetwork;
pub use rtlnet::{ChainDelivery, RtlChain};
pub use wormhole::{MeshConfig, WormholeMesh};
