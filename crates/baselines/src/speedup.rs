//! Input queueing with internal fabric speedup (\[PaBr93\], fig. 1 middle).
//!
//! The fabric runs `s` times faster than the links: per slot, up to `s`
//! cells may leave each input queue and up to `s` may be delivered into
//! each output queue (which still transmits one per slot). §2.1: "This is
//! equivalent to input queueing operating at a reduced input load. Output
//! queues are also needed here."

use crate::model::{clear_out, CellSwitch};
use simkernel::cell::Cell;
use simkernel::ids::Cycle;
use simkernel::SplitMix64;
use std::collections::VecDeque;

/// Speedup-`s` switch: FIFO input queues, `s` fabric passes per slot,
/// output queues.
#[derive(Debug)]
pub struct SpeedupSwitch {
    n: usize,
    speedup: usize,
    in_q: Vec<VecDeque<Cell>>,
    out_q: Vec<VecDeque<Cell>>,
    in_cap: Option<usize>,
    out_cap: Option<usize>,
    dropped: u64,
    rng: SplitMix64,
}

impl SpeedupSwitch {
    /// An `n×n` switch with internal speedup `s ≥ 1`.
    pub fn new(
        n: usize,
        speedup: usize,
        in_cap: Option<usize>,
        out_cap: Option<usize>,
        seed: u64,
    ) -> Self {
        assert!(n > 0 && speedup >= 1);
        SpeedupSwitch {
            n,
            speedup,
            in_q: vec![VecDeque::new(); n],
            out_q: vec![VecDeque::new(); n],
            in_cap,
            out_cap,
            dropped: 0,
            rng: SplitMix64::new(seed),
        }
    }
}

impl CellSwitch for SpeedupSwitch {
    fn ports(&self) -> usize {
        self.n
    }

    fn tick(&mut self, _now: Cycle, arrivals: &[Option<Cell>], out: &mut [Option<Cell>]) {
        clear_out(out);
        let n = self.n;
        for (i, a) in arrivals.iter().enumerate() {
            if let Some(c) = a {
                if self.in_cap.is_some_and(|cap| self.in_q[i].len() >= cap) {
                    self.dropped += 1;
                } else {
                    self.in_q[i].push_back(*c);
                }
            }
        }
        // `speedup` fabric passes: each pass is one HOL contention round,
        // with outputs accepting at most `speedup` deliveries per slot.
        let mut delivered = vec![0usize; n];
        for _ in 0..self.speedup {
            let mut contenders: Vec<Vec<usize>> = vec![Vec::new(); n];
            for (i, q) in self.in_q.iter().enumerate() {
                if let Some(head) = q.front() {
                    let j = head.dst.index();
                    if delivered[j] < self.speedup {
                        contenders[j].push(i);
                    }
                }
            }
            let mut any = false;
            for (j, cands) in contenders.iter().enumerate() {
                if cands.is_empty() {
                    continue;
                }
                let winner = cands[self.rng.below_usize(cands.len())];
                let c = self.in_q[winner].pop_front().expect("contender has head");
                if self.out_cap.is_some_and(|cap| self.out_q[j].len() >= cap) {
                    self.dropped += 1;
                } else {
                    self.out_q[j].push_back(c);
                }
                delivered[j] += 1;
                any = true;
            }
            if !any {
                break;
            }
        }
        for (j, q) in self.out_q.iter_mut().enumerate() {
            out[j] = q.pop_front();
        }
    }

    fn occupancy(&self) -> usize {
        self.in_q.iter().map(VecDeque::len).sum::<usize>()
            + self.out_q.iter().map(VecDeque::len).sum::<usize>()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn name(&self) -> &'static str {
        "speedup"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: u64, src: usize, dst: usize) -> Cell {
        Cell::new(id, src, dst, 0)
    }

    #[test]
    fn speedup_two_moves_two_to_same_output() {
        let mut sw = SpeedupSwitch::new(2, 2, None, None, 1);
        let mut out = vec![None; 2];
        sw.tick(0, &[Some(cell(1, 0, 0)), Some(cell(2, 1, 0))], &mut out);
        // Both cells crossed the fabric; input queues are empty, one cell
        // departed, one waits at the output.
        assert!(out[0].is_some());
        assert_eq!(sw.in_q.iter().map(VecDeque::len).sum::<usize>(), 0);
        assert_eq!(sw.out_q[0].len(), 1);
    }

    #[test]
    fn speedup_one_equals_plain_input_queueing() {
        let mut sw = SpeedupSwitch::new(2, 1, None, None, 1);
        let mut out = vec![None; 2];
        sw.tick(0, &[Some(cell(1, 0, 0)), Some(cell(2, 1, 0))], &mut out);
        // Only one cell crossed; the loser is still in its input queue.
        assert_eq!(sw.in_q.iter().map(VecDeque::len).sum::<usize>(), 1);
    }

    #[test]
    fn conservation() {
        let mut sw = SpeedupSwitch::new(4, 2, None, None, 2);
        let mut rng = SplitMix64::new(9);
        let mut out = vec![None; 4];
        let mut offered = 0u64;
        let mut carried = 0u64;
        for now in 0..2000u64 {
            let arr: Vec<Option<Cell>> = (0..4)
                .map(|i| {
                    rng.chance(0.8).then(|| {
                        offered += 1;
                        cell(offered, i, rng.below_usize(4))
                    })
                })
                .collect();
            sw.tick(now, &arr, &mut out);
            carried += out.iter().flatten().count() as u64;
        }
        for now in 2000..4000u64 {
            sw.tick(now, &[None, None, None, None], &mut out);
            carried += out.iter().flatten().count() as u64;
        }
        assert_eq!(offered, carried + sw.dropped() + sw.occupancy() as u64);
    }
}
