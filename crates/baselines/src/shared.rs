//! Shared (centralized) buffering at slot level, plus its wide-memory and
//! PRIZMA variants.
//!
//! One buffer pool for the whole switch; logically one FIFO per output,
//! all drawing slots from the pool. This is the architecture the paper
//! argues for (optimal link utilization *and* best memory utilization);
//! [`SharedBufferSwitch`] is the slot-level ideal used for the \[HlKa88\]
//! buffer-sizing comparison (E3).
//!
//! [`WideMemorySwitch`] and [`PrizmaSwitch`] share the same slot-level
//! queueing behavior but model the organizational penalties §3 discusses:
//!
//! * the **wide memory** (\[KaSC91\]) can only store a packet after it has
//!   been fully assembled — without the extra cut-through crossbar of
//!   fig. 3 every cell pays one extra slot of latency;
//! * **PRIZMA** (\[DeEI95\]) stores one packet per bank, so its capacity is
//!   exactly `M` banks — behaviorally a shared pool of `M`, its real cost
//!   being silicon area (`vlsimodel`, E14).

use crate::model::{clear_out, CellSwitch};
use simkernel::cell::Cell;
use simkernel::ids::Cycle;
use std::collections::VecDeque;

/// Slot-level shared-buffer switch: pool of `capacity` cells, per-output
/// FIFO service.
#[derive(Debug)]
pub struct SharedBufferSwitch {
    n: usize,
    queues: Vec<VecDeque<Cell>>,
    capacity: Option<usize>,
    /// Per-output admission threshold (buffer-hogging fence): a cell is
    /// rejected when its output already holds this many cells, even if
    /// the pool has room. `None` = unfenced sharing.
    per_output_cap: Option<usize>,
    occupancy: usize,
    dropped: u64,
    /// Cells become eligible for departure only in the slot after arrival
    /// (wide-memory assembly penalty) when `true`.
    assembly_delay: bool,
    name: &'static str,
}

impl SharedBufferSwitch {
    /// An `n×n` shared-buffer switch with a pool of `capacity` cells
    /// (`None` = unbounded).
    pub fn new(n: usize, capacity: Option<usize>) -> Self {
        assert!(n > 0);
        SharedBufferSwitch {
            n,
            queues: vec![VecDeque::new(); n],
            capacity,
            per_output_cap: None,
            occupancy: 0,
            dropped: 0,
            assembly_delay: false,
            name: "shared-buffer",
        }
    }

    /// Fence each output at `per_output_cap` cells — the classic defense
    /// against buffer hogging: one oversubscribed output can then never
    /// starve the others of pool space, at a small cost in peak sharing.
    pub fn with_threshold(mut self, per_output_cap: usize) -> Self {
        assert!(per_output_cap >= 1);
        self.per_output_cap = Some(per_output_cap);
        self.name = "shared-thresholded";
        self
    }

    fn with(mut self, assembly_delay: bool, name: &'static str) -> Self {
        self.assembly_delay = assembly_delay;
        self.name = name;
        self
    }

    /// Length of one output's logical queue.
    pub fn queue_len(&self, j: usize) -> usize {
        self.queues[j].len()
    }
}

impl CellSwitch for SharedBufferSwitch {
    fn ports(&self) -> usize {
        self.n
    }

    fn tick(&mut self, now: Cycle, arrivals: &[Option<Cell>], out: &mut [Option<Cell>]) {
        clear_out(out);
        for a in arrivals.iter().flatten() {
            let pool_full = self.capacity.is_some_and(|cap| self.occupancy >= cap);
            let fenced = self
                .per_output_cap
                .is_some_and(|cap| self.queues[a.dst.index()].len() >= cap);
            if pool_full || fenced {
                self.dropped += 1;
            } else {
                self.queues[a.dst.index()].push_back(*a);
                self.occupancy += 1;
            }
        }
        for (j, q) in self.queues.iter_mut().enumerate() {
            let eligible = match q.front() {
                None => false,
                Some(c) => !self.assembly_delay || c.birth < now,
            };
            if eligible {
                out[j] = q.pop_front();
                self.occupancy -= 1;
            }
        }
    }

    fn occupancy(&self) -> usize {
        self.occupancy
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Wide-memory shared buffer (\[KaSC91\], fig. 3).
///
/// `cut_through_crossbar = false` models the organization *without* the
/// extra bypass buses: every cell waits one slot for packet assembly
/// before it may depart. With the crossbar, behavior equals the ideal
/// shared buffer (at the silicon cost §5.2 quantifies).
#[derive(Debug)]
pub struct WideMemorySwitch(SharedBufferSwitch);

impl WideMemorySwitch {
    /// An `n×n` wide-memory switch.
    pub fn new(n: usize, capacity: Option<usize>, cut_through_crossbar: bool) -> Self {
        WideMemorySwitch(
            SharedBufferSwitch::new(n, capacity).with(!cut_through_crossbar, "wide-memory"),
        )
    }
}

impl CellSwitch for WideMemorySwitch {
    fn ports(&self) -> usize {
        self.0.ports()
    }
    fn tick(&mut self, now: Cycle, arrivals: &[Option<Cell>], out: &mut [Option<Cell>]) {
        self.0.tick(now, arrivals, out)
    }
    fn occupancy(&self) -> usize {
        self.0.occupancy()
    }
    fn dropped(&self) -> u64 {
        self.0.dropped()
    }
    fn name(&self) -> &'static str {
        self.0.name()
    }
}

/// PRIZMA-style interleaved shared buffer (\[DeEI95\]): one packet per
/// bank, `m` banks. Behaviorally a shared pool of exactly `m` cells; its
/// distinguishing cost — `n×M` router/selector crossbars — is modeled in
/// `vlsimodel` (E14).
#[derive(Debug)]
pub struct PrizmaSwitch(SharedBufferSwitch);

impl PrizmaSwitch {
    /// An `n×n` PRIZMA switch with `m` single-packet banks.
    pub fn new(n: usize, m: usize) -> Self {
        PrizmaSwitch(SharedBufferSwitch::new(n, Some(m)).with(false, "prizma"))
    }

    /// Number of banks (= packet capacity).
    pub fn banks(&self) -> usize {
        self.0.capacity.expect("always bounded")
    }
}

impl CellSwitch for PrizmaSwitch {
    fn ports(&self) -> usize {
        self.0.ports()
    }
    fn tick(&mut self, now: Cycle, arrivals: &[Option<Cell>], out: &mut [Option<Cell>]) {
        self.0.tick(now, arrivals, out)
    }
    fn occupancy(&self) -> usize {
        self.0.occupancy()
    }
    fn dropped(&self) -> u64 {
        self.0.dropped()
    }
    fn name(&self) -> &'static str {
        self.0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: u64, src: usize, dst: usize, birth: Cycle) -> Cell {
        Cell::new(id, src, dst, birth)
    }

    #[test]
    fn pool_is_shared_across_outputs() {
        // Capacity 3: output 0 may hold all 3 slots even while output 1
        // holds none — the memory-utilization advantage over per-output
        // partitions.
        let mut sw = SharedBufferSwitch::new(2, Some(3));
        let mut out = vec![None; 2];
        sw.tick(
            0,
            &[Some(cell(1, 0, 0, 0)), Some(cell(2, 1, 0, 0))],
            &mut out,
        );
        sw.tick(
            1,
            &[Some(cell(3, 0, 0, 1)), Some(cell(4, 1, 0, 1))],
            &mut out,
        );
        // Slot 0: 2 accepted, 1 departed. Slot 1: 2 more offered, pool
        // has 1 + 2 = 3 ≤ 3 → both accepted... then one departs.
        assert_eq!(sw.dropped(), 0);
        sw.tick(
            2,
            &[Some(cell(5, 0, 0, 2)), Some(cell(6, 1, 0, 2))],
            &mut out,
        );
        // Occupancy was 2 after slot 1; two arrive → 4 > 3: one drops.
        assert_eq!(sw.dropped(), 1);
    }

    #[test]
    fn departures_fifo_per_output() {
        let mut sw = SharedBufferSwitch::new(2, None);
        let mut out = vec![None; 2];
        sw.tick(
            0,
            &[Some(cell(1, 0, 1, 0)), Some(cell(2, 1, 1, 0))],
            &mut out,
        );
        let first = out[1].unwrap().id.0;
        sw.tick(1, &[None, None], &mut out);
        let second = out[1].unwrap().id.0;
        assert_eq!((first, second), (1, 2));
    }

    #[test]
    fn wide_memory_without_crossbar_adds_one_slot() {
        let mut ideal = WideMemorySwitch::new(2, None, true);
        let mut wide = WideMemorySwitch::new(2, None, false);
        let mut out = vec![None; 2];
        ideal.tick(0, &[Some(cell(1, 0, 0, 0)), None], &mut out);
        assert!(out[0].is_some(), "with crossbar: same-slot cut-through");
        wide.tick(0, &[Some(cell(1, 0, 0, 0)), None], &mut out);
        assert!(out[0].is_none(), "without crossbar: assembly delay");
        wide.tick(1, &[None, None], &mut out);
        assert!(out[0].is_some());
    }

    #[test]
    fn prizma_capacity_is_bank_count() {
        let mut sw = PrizmaSwitch::new(2, 2);
        assert_eq!(sw.banks(), 2);
        let mut out = vec![None; 2];
        // Fill both banks toward a blocked output... outputs always drain
        // 1/slot, so offer 2/slot to one output for two slots.
        sw.tick(
            0,
            &[Some(cell(1, 0, 0, 0)), Some(cell(2, 1, 0, 0))],
            &mut out,
        );
        sw.tick(
            1,
            &[Some(cell(3, 0, 0, 1)), Some(cell(4, 1, 0, 1))],
            &mut out,
        );
        sw.tick(
            2,
            &[Some(cell(5, 0, 0, 2)), Some(cell(6, 1, 0, 2))],
            &mut out,
        );
        assert!(sw.dropped() >= 1, "bank exhaustion must drop");
    }
}
