//! Input smoothing (\[HlKa88\], §2.2 of the paper).
//!
//! Each input accumulates arrivals over a *frame* of `b` slots into a
//! frame buffer of `b` cells. At the frame boundary, all buffered cells
//! are submitted simultaneously through an `(nb × nb)` space-division
//! switch; each output can accept at most `b` cells per frame (it
//! transmits one per slot, `b` per frame). Cells in excess of `b` for the
//! same output in the same frame are lost.
//!
//! This is the architecture behind the paper's third \[HlKa88\] data point:
//! to reach loss 10⁻³ at load 0.8 on a 16×16 switch, input smoothing
//! needs ≈ 80 cells of buffer *per input* — 15× the shared buffer's
//! per-port requirement. Experiment E3 regenerates the comparison.

use crate::model::{clear_out, CellSwitch};
use simkernel::cell::Cell;
use simkernel::ids::Cycle;
use simkernel::SplitMix64;
use std::collections::VecDeque;

/// Input-smoothing switch with frame/buffer size `b` per input.
#[derive(Debug)]
pub struct InputSmoothingSwitch {
    n: usize,
    b: usize,
    /// Per-input frame accumulation buffer.
    frames: Vec<Vec<Cell>>,
    /// Per-output transmission queue for the current frame (≤ b cells).
    out_q: Vec<VecDeque<Cell>>,
    slot_in_frame: usize,
    dropped: u64,
    rng: SplitMix64,
}

impl InputSmoothingSwitch {
    /// An `n×n` input-smoothing switch with frame length `b`.
    pub fn new(n: usize, b: usize, seed: u64) -> Self {
        assert!(n > 0 && b >= 1);
        InputSmoothingSwitch {
            n,
            b,
            frames: vec![Vec::new(); n],
            out_q: vec![VecDeque::new(); n],
            slot_in_frame: 0,
            dropped: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// Frame length (= per-input buffer size).
    pub fn frame_len(&self) -> usize {
        self.b
    }
}

impl CellSwitch for InputSmoothingSwitch {
    fn ports(&self) -> usize {
        self.n
    }

    fn tick(&mut self, _now: Cycle, arrivals: &[Option<Cell>], out: &mut [Option<Cell>]) {
        clear_out(out);
        // Accumulate into the current frame (≤ 1 arrival/slot keeps each
        // frame within b cells by construction).
        for (i, a) in arrivals.iter().enumerate() {
            if let Some(c) = a {
                debug_assert!(self.frames[i].len() < self.b);
                self.frames[i].push(*c);
            }
        }
        self.slot_in_frame += 1;
        if self.slot_in_frame == self.b {
            self.slot_in_frame = 0;
            // Frame boundary: submit everything through the big switch;
            // each output accepts at most b cells, random knockout beyond.
            let mut batches: Vec<Vec<Cell>> = vec![Vec::new(); self.n];
            for f in self.frames.iter_mut() {
                for c in f.drain(..) {
                    batches[c.dst.index()].push(c);
                }
            }
            for (j, batch) in batches.iter_mut().enumerate() {
                while batch.len() > self.b {
                    let victim = self.rng.below_usize(batch.len());
                    batch.swap_remove(victim);
                    self.dropped += 1;
                }
                debug_assert!(self.out_q[j].is_empty(), "frame pacing keeps ≤ b");
                self.out_q[j].extend(batch.drain(..));
            }
        }
        for (j, q) in self.out_q.iter_mut().enumerate() {
            out[j] = q.pop_front();
        }
    }

    fn occupancy(&self) -> usize {
        self.frames.iter().map(Vec::len).sum::<usize>()
            + self.out_q.iter().map(VecDeque::len).sum::<usize>()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn name(&self) -> &'static str {
        "input-smoothing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: u64, src: usize, dst: usize) -> Cell {
        Cell::new(id, src, dst, 0)
    }

    #[test]
    fn cells_wait_for_frame_boundary() {
        let mut sw = InputSmoothingSwitch::new(2, 4, 1);
        let mut out = vec![None; 2];
        sw.tick(0, &[Some(cell(1, 0, 0)), None], &mut out);
        assert!(out[0].is_none(), "no departure before the frame closes");
        for now in 1..4 {
            sw.tick(now, &[None, None], &mut out);
        }
        // Frame closed at slot 3's tick; the cell departs then/after.
        assert!(out[0].is_some());
    }

    #[test]
    fn per_output_frame_excess_dropped() {
        // Frame b=2, both inputs send 2 cells each to output 0 within one
        // frame: 4 > b=2 → 2 dropped.
        let mut sw = InputSmoothingSwitch::new(2, 2, 1);
        let mut out = vec![None; 2];
        sw.tick(0, &[Some(cell(1, 0, 0)), Some(cell(2, 1, 0))], &mut out);
        sw.tick(1, &[Some(cell(3, 0, 0)), Some(cell(4, 1, 0))], &mut out);
        assert_eq!(sw.dropped(), 2);
    }

    #[test]
    fn output_drains_full_frame_in_time() {
        // b cells accepted per output per frame, transmitted 1/slot — the
        // queue must be empty again before the next boundary.
        let n = 4;
        let b = 8;
        let mut sw = InputSmoothingSwitch::new(n, b, 3);
        let mut rng = SplitMix64::new(7);
        let mut out = vec![None; n];
        let mut id = 0;
        for now in 0..(b as u64) * 100 {
            let arr: Vec<Option<Cell>> = (0..n)
                .map(|i| {
                    rng.chance(0.7).then(|| {
                        id += 1;
                        cell(id, i, rng.below_usize(n))
                    })
                })
                .collect();
            sw.tick(now, &arr, &mut out);
        }
        // No panic from the ≤ b debug assertions means pacing held.
        assert!(sw.dropped() < id / 10, "excessive loss for b=8 @ 0.7");
    }
}
