//! Block-crosspoint buffering (§2.2, last paragraph; §3.5).
//!
//! "A mixture of crosspoint and shared buffering … a number of shared
//! buffers, each dedicated to a certain subset of incoming and outgoing
//! links. It features lower throughput-per-buffer requirements than a
//! single shared buffer, and better buffer space utilization than
//! crosspoint queueing." §3.5 offers it as the scaling path when one
//! pipelined buffer cannot cover all links.
//!
//! Model: inputs and outputs are partitioned into `g` groups of `n/g`;
//! each (input-group, output-group) pair owns one shared pool with
//! per-output FIFOs; each output serves its `g` feeding blocks round-
//! robin, one cell per slot.

use crate::model::{clear_out, CellSwitch};
use simkernel::cell::Cell;
use simkernel::ids::Cycle;
use std::collections::VecDeque;

/// Block-crosspoint switch: `g × g` blocks of shared buffers.
#[derive(Debug)]
pub struct BlockCrosspointSwitch {
    n: usize,
    g: usize,
    /// Pool occupancy per block, `blocks[bi * g + bo]`.
    pool_used: Vec<usize>,
    pool_cap: Option<usize>,
    /// One FIFO per (block, output): `queues[(bi * g + bo) * n + j]`
    /// (only the `n/g` outputs of group `bo` are used per block).
    queues: Vec<VecDeque<Cell>>,
    /// Per-output round-robin pointer over input groups.
    rr: Vec<usize>,
    dropped: u64,
}

impl BlockCrosspointSwitch {
    /// An `n×n` switch partitioned into `g` groups per side (`g` must
    /// divide `n`); each of the `g²` blocks holds a shared pool of
    /// `pool_cap` cells.
    pub fn new(n: usize, g: usize, pool_cap: Option<usize>) -> Self {
        assert!(n > 0 && g >= 1 && n.is_multiple_of(g), "g must divide n");
        BlockCrosspointSwitch {
            n,
            g,
            pool_used: vec![0; g * g],
            pool_cap,
            queues: vec![VecDeque::new(); g * g * n],
            rr: vec![0; n],
            dropped: 0,
        }
    }

    fn group_of(&self, port: usize) -> usize {
        port / (self.n / self.g)
    }

    /// Occupancy of one block's pool.
    pub fn block_occupancy(&self, bi: usize, bo: usize) -> usize {
        self.pool_used[bi * self.g + bo]
    }
}

impl CellSwitch for BlockCrosspointSwitch {
    fn ports(&self) -> usize {
        self.n
    }

    #[allow(clippy::needless_range_loop)] // per-port hardware scan
    fn tick(&mut self, _now: Cycle, arrivals: &[Option<Cell>], out: &mut [Option<Cell>]) {
        clear_out(out);
        let (n, g) = (self.n, self.g);
        for (i, a) in arrivals.iter().enumerate() {
            if let Some(c) = a {
                let bi = self.group_of(i);
                let bo = self.group_of(c.dst.index());
                let blk = bi * g + bo;
                if self.pool_cap.is_some_and(|cap| self.pool_used[blk] >= cap) {
                    self.dropped += 1;
                } else {
                    self.pool_used[blk] += 1;
                    self.queues[blk * n + c.dst.index()].push_back(*c);
                }
            }
        }
        for j in 0..n {
            let bo = self.group_of(j);
            for k in 0..g {
                let bi = (self.rr[j] + k) % g;
                let blk = bi * g + bo;
                if let Some(c) = self.queues[blk * n + j].pop_front() {
                    self.pool_used[blk] -= 1;
                    out[j] = Some(c);
                    self.rr[j] = (bi + 1) % g;
                    break;
                }
            }
        }
    }

    fn occupancy(&self) -> usize {
        self.pool_used.iter().sum()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn name(&self) -> &'static str {
        "block-crosspoint"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: u64, src: usize, dst: usize) -> Cell {
        Cell::new(id, src, dst, 0)
    }

    #[test]
    fn g1_behaves_as_single_shared_buffer() {
        let mut sw = BlockCrosspointSwitch::new(4, 1, Some(3));
        let mut out = vec![None; 4];
        let arr: Vec<Option<Cell>> = (0..4).map(|i| Some(cell(i as u64, i, 0))).collect();
        sw.tick(0, &arr, &mut out);
        // Pool of 3 for 4 simultaneous arrivals: one drop, one departure.
        assert_eq!(sw.dropped(), 1);
        assert!(out[0].is_some());
        assert_eq!(sw.occupancy(), 2);
    }

    #[test]
    fn gn_behaves_as_crosspoint() {
        // g = n: every block pairs exactly one input with one output.
        let mut sw = BlockCrosspointSwitch::new(2, 2, Some(1));
        let mut out = vec![None; 2];
        sw.tick(0, &[Some(cell(1, 0, 0)), Some(cell(2, 1, 0))], &mut out);
        // Both cells landed in different blocks (different input groups),
        // no drop despite pool capacity 1 per block.
        assert_eq!(sw.dropped(), 0);
        assert!(out[0].is_some());
    }

    #[test]
    fn pools_isolated_between_blocks() {
        let mut sw = BlockCrosspointSwitch::new(4, 2, Some(1));
        let mut out = vec![None; 4];
        // Inputs 0,1 (group 0) both to output 0 (group 0): same block,
        // pool 1 → one drop (minus the same-slot departure … departure
        // happens after enqueue, so second arrival finds pool full).
        sw.tick(
            0,
            &[Some(cell(1, 0, 0)), Some(cell(2, 1, 0)), None, None],
            &mut out,
        );
        assert_eq!(sw.dropped(), 1);
        // Meanwhile block (1,1) was unaffected.
        assert_eq!(sw.block_occupancy(1, 1), 0);
    }

    #[test]
    fn output_serves_blocks_round_robin() {
        let mut sw = BlockCrosspointSwitch::new(4, 2, None);
        let mut out = vec![None; 4];
        // Cells for output 0 from both input groups.
        sw.tick(
            0,
            &[Some(cell(1, 0, 0)), None, Some(cell(2, 2, 0)), None],
            &mut out,
        );
        let first_src = out[0].unwrap().src.index();
        sw.tick(1, &[None; 4], &mut out);
        let second_src = out[0].unwrap().src.index();
        assert_ne!(
            sw.group_of(first_src),
            sw.group_of(second_src),
            "outputs must alternate between feeding blocks"
        );
    }
}
