//! Non-FIFO input buffering: virtual output queues + crossbar scheduler.
//!
//! The "non-FIFO input buffering" architecture of §2.1: each input keeps
//! one queue per output (no HOL blocking), a scheduler computes a matching
//! every slot, and matched HOL cells traverse the crossbar. Throughput
//! approaches 100 % with a good scheduler, but latency is roughly twice
//! that of output/shared queueing at loads 0.6–0.9 (\[AOST93 fig. 3\]) —
//! experiment E4 regenerates that comparison.

use crate::model::{clear_out, CellSwitch};
use crate::sched::Scheduler;
use simkernel::cell::Cell;
use simkernel::ids::Cycle;
use std::collections::VecDeque;

/// VOQ switch with a pluggable scheduler.
pub struct VoqSwitch<S: Scheduler> {
    n: usize,
    /// `queues[i * n + j]`: cells at input `i` destined to output `j`.
    queues: Vec<VecDeque<Cell>>,
    /// Per-input total capacity (cells across all its VOQs), `None` = ∞.
    capacity: Option<usize>,
    sched: S,
    dropped: u64,
    requests: Vec<bool>,
    matching: Vec<Option<usize>>,
}

impl<S: Scheduler> VoqSwitch<S> {
    /// An `n×n` VOQ switch.
    pub fn new(n: usize, capacity: Option<usize>, sched: S) -> Self {
        assert!(n > 0);
        VoqSwitch {
            n,
            queues: vec![VecDeque::new(); n * n],
            capacity,
            sched,
            dropped: 0,
            requests: vec![false; n * n],
            matching: vec![None; n],
        }
    }

    /// Total cells buffered at one input.
    pub fn input_occupancy(&self, i: usize) -> usize {
        (0..self.n).map(|j| self.queues[i * self.n + j].len()).sum()
    }

    /// Access the scheduler (e.g. to read its name).
    pub fn scheduler(&self) -> &S {
        &self.sched
    }
}

impl<S: Scheduler> CellSwitch for VoqSwitch<S> {
    fn ports(&self) -> usize {
        self.n
    }

    fn tick(&mut self, _now: Cycle, arrivals: &[Option<Cell>], out: &mut [Option<Cell>]) {
        clear_out(out);
        let n = self.n;
        for (i, a) in arrivals.iter().enumerate() {
            if let Some(c) = a {
                if self
                    .capacity
                    .is_some_and(|cap| self.input_occupancy(i) >= cap)
                {
                    self.dropped += 1;
                } else {
                    self.queues[i * n + c.dst.index()].push_back(*c);
                }
            }
        }
        for (idx, q) in self.queues.iter().enumerate() {
            self.requests[idx] = !q.is_empty();
        }
        self.sched.schedule(n, &self.requests, &mut self.matching);
        for (i, m) in self.matching.iter().enumerate() {
            if let Some(j) = m {
                let c = self.queues[i * n + j]
                    .pop_front()
                    .expect("scheduler granted an empty VOQ");
                debug_assert!(out[*j].is_none(), "two inputs matched to one output");
                out[*j] = Some(c);
            }
        }
    }

    fn occupancy(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn name(&self) -> &'static str {
        "voq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{IslipScheduler, PimScheduler, Rr2dScheduler};

    fn cell(id: u64, src: usize, dst: usize) -> Cell {
        Cell::new(id, src, dst, 0)
    }

    #[test]
    fn no_hol_blocking() {
        // Input 0 holds cells for output 0 (blocked by input 1's winner in
        // input-FIFO) and output 1. With VOQ both outputs are served in
        // the same slot.
        let mut sw = VoqSwitch::new(2, None, IslipScheduler::new(2, 2));
        let mut out = vec![None; 2];
        sw.tick(0, &[Some(cell(1, 0, 0)), Some(cell(2, 1, 0))], &mut out);
        // One of the →0 cells departed; queue the →1 cell on input 0.
        sw.tick(1, &[Some(cell(3, 0, 1)), None], &mut out);
        assert!(out[1].is_some(), "output 1 must not idle under VOQ");
    }

    #[test]
    fn fifo_within_each_voq() {
        let mut sw = VoqSwitch::new(2, None, Rr2dScheduler::new());
        let mut out = vec![None; 2];
        let mut ids = Vec::new();
        let mut record = |out: &[Option<Cell>]| {
            if let Some(c) = out[1] {
                ids.push(c.id.0);
            }
        };
        sw.tick(0, &[Some(cell(1, 0, 1)), None], &mut out);
        record(&out);
        sw.tick(1, &[Some(cell(2, 0, 1)), None], &mut out);
        record(&out);
        for now in 2..6 {
            sw.tick(now, &[None, None], &mut out);
            record(&out);
        }
        let pos1 = ids.iter().position(|&x| x == 1);
        let pos2 = ids.iter().position(|&x| x == 2);
        assert!(pos1.is_some() && pos2.is_some(), "departures: {ids:?}");
        assert!(pos1 < pos2, "per-VOQ FIFO order violated: {ids:?}");
    }

    #[test]
    fn capacity_drops_count() {
        let mut sw = VoqSwitch::new(2, Some(1), PimScheduler::new(2, 5));
        let mut out = vec![None; 2];
        // Two cells to the same output from both inputs; each input holds
        // at most 1, so nothing drops yet.
        sw.tick(0, &[Some(cell(1, 0, 0)), Some(cell(2, 1, 0))], &mut out);
        // The unmatched input still holds its cell; a new arrival there
        // exceeds capacity 1.
        let loser = if sw.input_occupancy(0) > 0 { 0 } else { 1 };
        let mut arr = vec![None, None];
        arr[loser] = Some(cell(3, loser, 1));
        sw.tick(1, &arr, &mut out);
        assert_eq!(sw.dropped(), 1);
    }

    #[test]
    fn sustains_full_uniform_load() {
        // The point of VOQ + iSLIP: ~100 % throughput where input-FIFO
        // saturates at 58.6 %. Feed uniform full load and verify carried
        // throughput stays near 1.0 per port.
        let n = 8;
        let mut sw = VoqSwitch::new(n, None, IslipScheduler::new(n, 4));
        let mut rng = simkernel::SplitMix64::new(11);
        let mut out = vec![None; n];
        let mut carried = 0u64;
        let slots = 5_000u64;
        let mut id = 0;
        for now in 0..slots {
            let arr: Vec<Option<Cell>> = (0..n)
                .map(|i| {
                    id += 1;
                    Some(cell(id, i, rng.below_usize(n)))
                })
                .collect();
            sw.tick(now, &arr, &mut out);
            carried += out.iter().flatten().count() as u64;
        }
        let util = carried as f64 / (slots * n as u64) as f64;
        assert!(util > 0.95, "iSLIP should sustain ~100 %, got {util}");
        // Occupancy bounded (stable): queues not exploding linearly.
        assert!(
            sw.occupancy() < (slots as usize) / 4,
            "queues diverged: {}",
            sw.occupancy()
        );
    }
}
