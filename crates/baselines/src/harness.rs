//! Run a model × workload pair and measure it.

use crate::model::CellSwitch;
use simkernel::cell::Cell;
use simkernel::ids::Cycle;
use stats::{LatencyStats, LossMeter, ThroughputMeter};
use traffic::sources::CellSource;

/// Results of one measured run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Offered load per input per slot (measured, post-warmup).
    pub offered_load: f64,
    /// Carried load per output per slot (utilization).
    pub utilization: f64,
    /// Mean cell latency in slots (arrival slot → departure slot).
    pub mean_latency: f64,
    /// 99th-percentile latency.
    pub p99_latency: Option<u64>,
    /// Loss probability (drops / offered), post-warmup.
    pub loss: f64,
    /// Peak buffer occupancy observed (including warmup).
    pub peak_occupancy: usize,
    /// Occupancy at the end of the run (diagnoses instability).
    pub final_occupancy: usize,
    /// Cells measured for latency.
    pub samples: u64,
}

/// Drive `model` with `source` for `slots` slots (first `warmup` excluded
/// from measurement) and collect statistics.
///
/// Cell ids are assigned here; the source only yields destinations.
pub fn run(
    model: &mut dyn CellSwitch,
    source: &mut dyn CellSource,
    slots: Cycle,
    warmup: Cycle,
) -> RunStats {
    let n = model.ports();
    assert_eq!(source.ports(), n, "source/model port mismatch");
    let mut dests = vec![None; n];
    let mut arrivals: Vec<Option<Cell>> = vec![None; n];
    let mut out: Vec<Option<Cell>> = vec![None; n];
    let mut tput = ThroughputMeter::new(n, warmup);
    let mut latency = LatencyStats::new(warmup, 1 << 20);
    // Drops may surface later than the slot their cells arrived in (e.g.
    // input smoothing drops at frame boundaries), so loss is accounted as
    // window totals: dropped / offered.
    let mut loss = LossMeter::new(warmup);
    let mut next_id = 0u64;
    let mut peak = 0usize;
    let mut drops_before = model.dropped();

    for now in 0..slots {
        source.poll(now, &mut dests);
        for (i, d) in dests.iter().enumerate() {
            arrivals[i] = d.map(|dst| {
                next_id += 1;
                Cell::new(next_id, i, dst, now)
            });
        }
        let offered = arrivals.iter().flatten().count() as u64;
        tput.slot(now);
        tput.arrivals(now, offered);
        model.tick(now, &arrivals, &mut out);
        let drops_now = model.dropped();
        loss.drop(now, drops_now - drops_before);
        loss.accept(now, offered);
        drops_before = drops_now;
        let mut departed = 0u64;
        for c in out.iter().flatten() {
            departed += 1;
            latency.record(c.birth, now);
        }
        tput.departures(now, departed);
        peak = peak.max(model.occupancy());
    }

    // `accept` above counted all offered cells (drops included), so the
    // loss fraction is dropped / offered, not the meter's default ratio.
    let loss_fraction = if loss.accepted() == 0 {
        0.0
    } else {
        loss.dropped() as f64 / loss.accepted() as f64
    };
    RunStats {
        offered_load: tput.offered_load(),
        utilization: tput.utilization(),
        mean_latency: latency.mean(),
        p99_latency: latency.percentile(99.0),
        loss: loss_fraction,
        peak_occupancy: peak,
        final_occupancy: model.occupancy(),
        samples: latency.count(),
    }
}

/// Measure the carried load of `make_model` under uniform iid traffic at
/// `load` — the evaluation function used by saturation searches.
pub fn carried_at_load(
    mut make_model: impl FnMut() -> Box<dyn CellSwitch>,
    n: usize,
    load: f64,
    slots: Cycle,
    seed: u64,
) -> f64 {
    let mut model = make_model();
    let mut src = traffic::Bernoulli::new(n, load, traffic::DestDist::uniform(n), seed);
    let stats = run(model.as_mut(), &mut src, slots, slots / 5);
    stats.utilization
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output_queued::OutputQueuedSwitch;
    use crate::shared::SharedBufferSwitch;
    use traffic::{Bernoulli, DestDist};

    #[test]
    fn output_queued_carries_everything_below_one() {
        let n = 8;
        let mut model = OutputQueuedSwitch::new(n, None);
        let mut src = Bernoulli::new(n, 0.9, DestDist::uniform(n), 42);
        let s = run(&mut model, &mut src, 30_000, 5_000);
        assert!(
            (s.offered_load - 0.9).abs() < 0.02,
            "offered {}",
            s.offered_load
        );
        assert!(
            (s.utilization - s.offered_load).abs() < 0.02,
            "OQ must carry ≈ all offered: {} vs {}",
            s.utilization,
            s.offered_load
        );
        assert_eq!(s.loss, 0.0);
        assert!(s.samples > 100_000);
    }

    #[test]
    fn latency_grows_with_load() {
        let n = 8;
        let measure = |load: f64| {
            let mut model = SharedBufferSwitch::new(n, None);
            let mut src = Bernoulli::new(n, load, DestDist::uniform(n), 7);
            run(&mut model, &mut src, 20_000, 4_000).mean_latency
        };
        let l3 = measure(0.3);
        let l9 = measure(0.9);
        assert!(l9 > l3 + 1.0, "latency must grow with load: {l3} vs {l9}");
    }

    #[test]
    fn carried_at_load_monotone_until_saturation() {
        let c1 = carried_at_load(
            || Box::new(crate::input_fifo::InputFifoSwitch::new(8, None, 1)),
            8,
            0.3,
            20_000,
            1,
        );
        let c2 = carried_at_load(
            || Box::new(crate::input_fifo::InputFifoSwitch::new(8, None, 1)),
            8,
            0.9,
            20_000,
            1,
        );
        assert!((c1 - 0.3).abs() < 0.02, "below saturation all carried");
        assert!(c2 < 0.75, "input FIFO cannot carry 0.9 (HOL): {c2}");
    }
}
