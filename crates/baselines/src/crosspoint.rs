//! Crosspoint queueing (fig. 1, right).
//!
//! One queue per input–output pair (`n²` queues). Every output can always
//! transmit if *any* of its column's queues holds a cell — optimal link
//! utilization — but the memory is fragmented `n²` ways, which is why §2.1
//! notes it "needs … a total memory capacity considerably higher than" the
//! shared architectures for the same loss.

use crate::model::{clear_out, CellSwitch};
use simkernel::cell::Cell;
use simkernel::ids::Cycle;
use std::collections::VecDeque;

/// Crosspoint-queued switch: `n²` FIFOs of `per_queue` cells each.
#[derive(Debug)]
pub struct CrosspointSwitch {
    n: usize,
    queues: Vec<VecDeque<Cell>>,
    per_queue: Option<usize>,
    dropped: u64,
    /// Round-robin pointers, one per output column.
    rr: Vec<usize>,
}

impl CrosspointSwitch {
    /// An `n×n` crosspoint switch; each of the `n²` queues holds at most
    /// `per_queue` cells (`None` = unbounded).
    pub fn new(n: usize, per_queue: Option<usize>) -> Self {
        assert!(n > 0);
        CrosspointSwitch {
            n,
            queues: vec![VecDeque::new(); n * n],
            per_queue,
            dropped: 0,
            rr: vec![0; n],
        }
    }
}

impl CellSwitch for CrosspointSwitch {
    fn ports(&self) -> usize {
        self.n
    }

    #[allow(clippy::needless_range_loop)] // per-column hardware scan
    fn tick(&mut self, _now: Cycle, arrivals: &[Option<Cell>], out: &mut [Option<Cell>]) {
        clear_out(out);
        let n = self.n;
        for (i, a) in arrivals.iter().enumerate() {
            if let Some(c) = a {
                let q = &mut self.queues[i * n + c.dst.index()];
                if self.per_queue.is_some_and(|cap| q.len() >= cap) {
                    self.dropped += 1;
                } else {
                    q.push_back(*c);
                }
            }
        }
        // Each output serves its column round-robin across inputs.
        for j in 0..n {
            for k in 0..n {
                let i = (self.rr[j] + k) % n;
                if let Some(c) = self.queues[i * n + j].pop_front() {
                    out[j] = Some(c);
                    self.rr[j] = (i + 1) % n;
                    break;
                }
            }
        }
    }

    fn occupancy(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn name(&self) -> &'static str {
        "crosspoint"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: u64, src: usize, dst: usize) -> Cell {
        Cell::new(id, src, dst, 0)
    }

    #[test]
    fn outputs_independent() {
        // Both outputs transmit in the same slot even when all cells come
        // from one input (no HOL coupling).
        let mut sw = CrosspointSwitch::new(2, None);
        let mut out = vec![None; 2];
        sw.tick(0, &[Some(cell(1, 0, 0)), None], &mut out);
        sw.tick(1, &[Some(cell(2, 0, 1)), None], &mut out);
        // Queue (0,1) just got cell 2; queue (0,0) drained at slot 0.
        assert!(
            out[1].is_some() || {
                let mut o = vec![None; 2];
                sw.tick(2, &[None, None], &mut o);
                o[1].is_some()
            }
        );
    }

    #[test]
    fn column_round_robin_is_fair() {
        let mut sw = CrosspointSwitch::new(2, None);
        let mut out = vec![None; 2];
        // Load both queues of column 0.
        sw.tick(0, &[Some(cell(1, 0, 0)), Some(cell(2, 1, 0))], &mut out);
        let first = out[0].unwrap().src.index();
        sw.tick(1, &[None, None], &mut out);
        let second = out[0].unwrap().src.index();
        assert_ne!(first, second, "round robin must alternate inputs");
    }

    #[test]
    fn per_queue_capacity_fragmants_memory() {
        // The §2.1 criticism: capacity is per crosspoint, so one hot pair
        // drops while every other queue is empty.
        let mut sw = CrosspointSwitch::new(2, Some(1));
        let mut out = vec![None; 2];
        sw.tick(0, &[Some(cell(1, 0, 0)), Some(cell(2, 1, 0))], &mut out);
        // Queue (loser, 0) holds 1 cell = its whole capacity.
        let loser = if sw.queues[0].is_empty() { 1 } else { 0 };
        let mut arr = vec![None, None];
        arr[loser] = Some(cell(3, loser, 0));
        sw.tick(1, &arr, &mut out);
        // The new arrival found its crosspoint queue... it may have
        // drained this slot; force a definite overflow instead:
        let mut sw2 = CrosspointSwitch::new(2, Some(0));
        let mut out2 = vec![None; 2];
        sw2.tick(0, &[Some(cell(1, 0, 0)), None], &mut out2);
        assert_eq!(sw2.dropped(), 1);
    }
}
