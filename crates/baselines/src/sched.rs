//! Crossbar schedulers for non-FIFO input buffering (VOQ).
//!
//! §2.1 of the paper: "a more complicated scheduler is needed, because now
//! the scheduling of each output depends on the scheduling of the other
//! outputs". The paper cites the schedulers of \[AOST93\] (PIM — parallel
//! iterative matching), \[LaSe95\] (two-dimensional round robin) and
//! \[TaCh93\]; iSLIP is the de-facto-standard descendant of PIM and is
//! included for completeness. All three produce a *matching* between
//! inputs and outputs given the request matrix "VOQ(i,j) non-empty".

use simkernel::SplitMix64;

/// A crossbar scheduler: computes an input→output matching.
pub trait Scheduler {
    /// Given `n` and the request matrix (`requests[i * n + j]` = input `i`
    /// has at least one cell for output `j`), fill `match_out[i]` with the
    /// output granted to input `i` (`None` if unmatched). The result must
    /// be a matching: no output granted to two inputs.
    fn schedule(&mut self, n: usize, requests: &[bool], match_out: &mut [Option<usize>]);

    /// Scheduler name for reports.
    fn name(&self) -> &'static str;
}

/// Parallel Iterative Matching (\[AOST93\]): each iteration, every
/// unmatched output grants a uniformly random requesting input, and every
/// input with grants accepts one uniformly at random. `iters` iterations
/// (AOST93 show log n suffice).
#[derive(Debug)]
pub struct PimScheduler {
    iters: usize,
    rng: SplitMix64,
    // Per-call scratch, reused across slots (schedule runs every slot of
    // every VOQ simulation — the hot path must not allocate).
    out_matched: Vec<bool>,
    grants: Vec<Vec<usize>>,
    cands: Vec<usize>,
}

impl PimScheduler {
    /// PIM with the given iteration count.
    pub fn new(iters: usize, seed: u64) -> Self {
        assert!(iters >= 1);
        PimScheduler {
            iters,
            rng: SplitMix64::new(seed),
            out_matched: Vec::new(),
            grants: Vec::new(),
            cands: Vec::new(),
        }
    }
}

impl Scheduler for PimScheduler {
    fn schedule(&mut self, n: usize, requests: &[bool], match_out: &mut [Option<usize>]) {
        debug_assert_eq!(requests.len(), n * n);
        for m in match_out.iter_mut() {
            *m = None;
        }
        self.out_matched.clear();
        self.out_matched.resize(n, false);
        self.grants.resize_with(n, Vec::new); // per input
        for _ in 0..self.iters {
            for g in self.grants.iter_mut() {
                g.clear();
            }
            // Grant phase: each unmatched output grants one random
            // requesting unmatched input.
            for j in 0..n {
                if self.out_matched[j] {
                    continue;
                }
                self.cands.clear();
                for (i, m) in match_out.iter().enumerate() {
                    if m.is_none() && requests[i * n + j] {
                        self.cands.push(i);
                    }
                }
                if !self.cands.is_empty() {
                    let i = self.cands[self.rng.below_usize(self.cands.len())];
                    self.grants[i].push(j);
                }
            }
            // Accept phase: each input accepts one random grant.
            let mut progress = false;
            for (i, g) in self.grants.iter().enumerate() {
                if g.is_empty() || match_out[i].is_some() {
                    continue;
                }
                let j = g[self.rng.below_usize(g.len())];
                match_out[i] = Some(j);
                self.out_matched[j] = true;
                progress = true;
            }
            if !progress {
                break;
            }
        }
    }

    fn name(&self) -> &'static str {
        "pim"
    }
}

/// iSLIP (McKeown): like PIM but grants/accepts use rotating round-robin
/// pointers, updated only on the first iteration's accepted grants —
/// achieving desynchronized pointers and 100 % throughput under uniform
/// traffic.
#[derive(Debug)]
pub struct IslipScheduler {
    iters: usize,
    grant_ptr: Vec<usize>,
    accept_ptr: Vec<usize>,
    // Per-call scratch, reused across slots.
    out_matched: Vec<bool>,
    in_cands: Vec<bool>,
    grants_to: Vec<bool>,
    granted: Vec<Option<usize>>,
}

impl IslipScheduler {
    /// iSLIP for an `n`-port switch with the given iteration count.
    pub fn new(n: usize, iters: usize) -> Self {
        assert!(iters >= 1);
        IslipScheduler {
            iters,
            grant_ptr: vec![0; n],
            accept_ptr: vec![0; n],
            out_matched: Vec::with_capacity(n),
            in_cands: Vec::with_capacity(n),
            grants_to: Vec::with_capacity(n),
            granted: Vec::with_capacity(n),
        }
    }

    fn rr_pick(ptr: usize, cands: &[bool]) -> Option<usize> {
        let n = cands.len();
        (0..n).map(|k| (ptr + k) % n).find(|&x| cands[x])
    }
}

impl Scheduler for IslipScheduler {
    #[allow(clippy::needless_range_loop)] // index-parallel hardware scan
    fn schedule(&mut self, n: usize, requests: &[bool], match_out: &mut [Option<usize>]) {
        debug_assert_eq!(requests.len(), n * n);
        for m in match_out.iter_mut() {
            *m = None;
        }
        self.out_matched.clear();
        self.out_matched.resize(n, false);
        self.in_cands.clear();
        self.in_cands.resize(n, false);
        self.grants_to.clear();
        self.grants_to.resize(n, false);
        for iter in 0..self.iters {
            // Grant phase.
            self.granted.clear();
            self.granted.resize(n, None); // output -> input
            for j in 0..n {
                if self.out_matched[j] {
                    continue;
                }
                for (i, c) in self.in_cands.iter_mut().enumerate() {
                    *c = match_out[i].is_none() && requests[i * n + j];
                }
                self.granted[j] = Self::rr_pick(self.grant_ptr[j], &self.in_cands);
            }
            // Accept phase.
            let mut progress = false;
            for i in 0..n {
                if match_out[i].is_some() {
                    continue;
                }
                for (j, g) in self.grants_to.iter_mut().enumerate() {
                    *g = self.granted[j] == Some(i);
                }
                if let Some(j) = Self::rr_pick(self.accept_ptr[i], &self.grants_to) {
                    match_out[i] = Some(j);
                    self.out_matched[j] = true;
                    progress = true;
                    if iter == 0 {
                        // Pointer update rule: only on first-iteration
                        // accepts (the desynchronization trick).
                        self.grant_ptr[j] = (i + 1) % n;
                        self.accept_ptr[i] = (j + 1) % n;
                    }
                }
            }
            if !progress {
                break;
            }
        }
    }

    fn name(&self) -> &'static str {
        "islip"
    }
}

/// Two-dimensional round robin (\[LaSe95\]): sweep a rotating generalized
/// diagonal pattern over the request matrix; cells on the active diagonals
/// are served. Deterministic, starvation-free, O(n) work per slot.
#[derive(Debug)]
pub struct Rr2dScheduler {
    phase: usize,
    // Per-call scratch, reused across slots.
    out_matched: Vec<bool>,
}

impl Rr2dScheduler {
    /// A 2DRR scheduler.
    pub fn new() -> Self {
        Rr2dScheduler {
            phase: 0,
            out_matched: Vec::new(),
        }
    }
}

impl Default for Rr2dScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Rr2dScheduler {
    fn schedule(&mut self, n: usize, requests: &[bool], match_out: &mut [Option<usize>]) {
        debug_assert_eq!(requests.len(), n * n);
        for m in match_out.iter_mut() {
            *m = None;
        }
        self.out_matched.clear();
        self.out_matched.resize(n, false);
        // Serve diagonals d, d+1, ... (offset by the rotating phase): the
        // k-th diagonal pairs input i with output (i + d) mod n. A full
        // sweep of n diagonals guarantees a maximal-diagonal matching.
        for k in 0..n {
            let d = (self.phase + k) % n;
            for i in 0..n {
                let j = (i + d) % n;
                if match_out[i].is_none() && !self.out_matched[j] && requests[i * n + j] {
                    match_out[i] = Some(j);
                    self.out_matched[j] = true;
                }
            }
        }
        self.phase = (self.phase + 1) % n;
    }

    fn name(&self) -> &'static str {
        "2drr"
    }
}

/// Check that `match_out` is a valid matching consistent with `requests`.
pub fn is_valid_matching(n: usize, requests: &[bool], match_out: &[Option<usize>]) -> bool {
    let mut used = vec![false; n];
    for (i, m) in match_out.iter().enumerate() {
        if let Some(j) = m {
            if *j >= n || used[*j] || !requests[i * n + j] {
                return false;
            }
            used[*j] = true;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_requests(n: usize) -> Vec<bool> {
        vec![true; n * n]
    }

    fn run_all(n: usize, requests: &[bool]) -> Vec<(String, Vec<Option<usize>>)> {
        let mut out = Vec::new();
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(PimScheduler::new(4, 1)),
            Box::new(IslipScheduler::new(n, 4)),
            Box::new(Rr2dScheduler::new()),
        ];
        for s in schedulers.iter_mut() {
            let mut m = vec![None; n];
            s.schedule(n, requests, &mut m);
            out.push((s.name().to_string(), m));
        }
        out
    }

    #[test]
    fn all_produce_valid_matchings() {
        let n = 8;
        let mut rng = SplitMix64::new(3);
        for _ in 0..50 {
            let requests: Vec<bool> = (0..n * n).map(|_| rng.chance(0.4)).collect();
            for (name, m) in run_all(n, &requests) {
                assert!(
                    is_valid_matching(n, &requests, &m),
                    "{name} produced an invalid matching"
                );
            }
        }
    }

    #[test]
    fn full_requests_yield_perfect_matching() {
        // PIM and iSLIP need enough iterations to match all ports in one
        // cold call (iSLIP matches exactly one new pair per iteration
        // from synchronized pointers); 2DRR is maximal in one pass.
        let n = 8;
        let req = full_requests(n);
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(PimScheduler::new(n, 1)),
            Box::new(IslipScheduler::new(n, n)),
            Box::new(Rr2dScheduler::new()),
        ];
        for s in schedulers.iter_mut() {
            let mut m = vec![None; n];
            s.schedule(n, &req, &mut m);
            let matched = m.iter().flatten().count();
            assert_eq!(
                matched,
                n,
                "{} left ports unmatched under full load",
                s.name()
            );
        }
    }

    #[test]
    fn empty_requests_yield_empty_matching() {
        let n = 4;
        let req = vec![false; n * n];
        for (_, m) in run_all(n, &req) {
            assert!(m.iter().all(Option::is_none));
        }
    }

    #[test]
    fn single_request_is_served() {
        let n = 4;
        let mut req = vec![false; n * n];
        req[2 * n + 3] = true;
        for (name, m) in run_all(n, &req) {
            assert_eq!(m[2], Some(3), "{name} missed the only request");
        }
    }

    #[test]
    fn islip_desynchronizes_under_uniform_full_load() {
        // After a warmup, iSLIP serves a full diagonal every slot.
        let n = 4;
        let mut s = IslipScheduler::new(n, 1);
        let req = full_requests(n);
        let mut m = vec![None; n];
        for _ in 0..10 {
            s.schedule(n, &req, &mut m);
        }
        let matched = m.iter().flatten().count();
        assert_eq!(matched, n, "iSLIP failed to desynchronize");
    }

    #[test]
    fn rr2d_rotates_fairly() {
        // One input requesting everything: over n slots every output is
        // served exactly once (starvation freedom).
        let n = 4;
        let mut s = Rr2dScheduler::new();
        let mut req = vec![false; n * n];
        for r in req.iter_mut().take(n) {
            *r = true; // input 0 wants all outputs
        }
        let mut served = vec![0usize; n];
        let mut m = vec![None; n];
        for _ in 0..n {
            s.schedule(n, &req, &mut m);
            served[m[0].expect("input 0 always matched")] += 1;
        }
        assert_eq!(served, vec![1; n]);
    }

    #[test]
    fn pim_converges_with_more_iterations() {
        // With 1 iteration PIM may leave matchable pairs unmatched; with
        // n iterations it is maximal for this structured case.
        let n = 8;
        let req = full_requests(n);
        let mut one = PimScheduler::new(1, 7);
        let mut many = PimScheduler::new(8, 7);
        let (mut m1, mut mn) = (vec![None; n], vec![None; n]);
        let mut sum1 = 0;
        let mut sumn = 0;
        for _ in 0..100 {
            one.schedule(n, &req, &mut m1);
            many.schedule(n, &req, &mut mn);
            sum1 += m1.iter().flatten().count();
            sumn += mn.iter().flatten().count();
        }
        assert!(
            sumn > sum1,
            "more iterations must match more ({sumn} vs {sum1})"
        );
        assert_eq!(sumn, 100 * n, "full iterations saturate full requests");
    }
}
