//! Output queueing (fig. 2, left).
//!
//! Each output owns a FIFO able to accept, in the worst case, cells from
//! all inputs simultaneously (buffer write throughput ∝ n — the
//! "high-throughput buffer" class of §2.2). Link utilization is optimal;
//! memory utilization is worse than shared buffering because a busy
//! output cannot borrow another output's idle buffer space (\[HlKa88\] —
//! experiment E3).

use crate::model::{clear_out, CellSwitch};
use simkernel::cell::Cell;
use simkernel::ids::Cycle;
use std::collections::VecDeque;

/// Output-queued switch with per-output capacity.
#[derive(Debug)]
pub struct OutputQueuedSwitch {
    queues: Vec<VecDeque<Cell>>,
    capacity: Option<usize>,
    dropped: u64,
}

impl OutputQueuedSwitch {
    /// An `n×n` output-queued switch; each output queue holds at most
    /// `capacity` cells (`None` = unbounded).
    pub fn new(n: usize, capacity: Option<usize>) -> Self {
        assert!(n > 0);
        OutputQueuedSwitch {
            queues: vec![VecDeque::new(); n],
            capacity,
            dropped: 0,
        }
    }

    /// Length of one output queue.
    pub fn queue_len(&self, j: usize) -> usize {
        self.queues[j].len()
    }
}

impl CellSwitch for OutputQueuedSwitch {
    fn ports(&self) -> usize {
        self.queues.len()
    }

    fn tick(&mut self, _now: Cycle, arrivals: &[Option<Cell>], out: &mut [Option<Cell>]) {
        clear_out(out);
        // All arrivals transfer to their output queues in the same slot
        // (the n-fold-throughput buffer assumption).
        for a in arrivals.iter().flatten() {
            let q = &mut self.queues[a.dst.index()];
            if self.capacity.is_some_and(|cap| q.len() >= cap) {
                self.dropped += 1;
            } else {
                q.push_back(*a);
            }
        }
        for (j, q) in self.queues.iter_mut().enumerate() {
            out[j] = q.pop_front();
        }
    }

    fn occupancy(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn name(&self) -> &'static str {
        "output-queued"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: u64, src: usize, dst: usize) -> Cell {
        Cell::new(id, src, dst, 0)
    }

    #[test]
    fn accepts_all_simultaneous_arrivals() {
        let mut sw = OutputQueuedSwitch::new(4, None);
        let mut out = vec![None; 4];
        let arr: Vec<Option<Cell>> = (0..4).map(|i| Some(cell(i as u64, i, 0))).collect();
        sw.tick(0, &arr, &mut out);
        // One departed immediately, three remain queued.
        assert!(out[0].is_some());
        assert_eq!(sw.occupancy(), 3);
        // They drain one per slot, FIFO.
        for _ in 0..3 {
            sw.tick(1, &[None, None, None, None], &mut out);
            assert!(out[0].is_some());
        }
        assert_eq!(sw.occupancy(), 0);
    }

    #[test]
    fn per_output_capacity_drops() {
        let mut sw = OutputQueuedSwitch::new(4, Some(2));
        let mut out = vec![None; 4];
        let arr: Vec<Option<Cell>> = (0..4).map(|i| Some(cell(i as u64, i, 0))).collect();
        sw.tick(0, &arr, &mut out);
        // 4 arrivals, capacity 2: two enqueue, two drop; one of the
        // enqueued departs this slot.
        assert_eq!(sw.dropped(), 2);
        assert_eq!(sw.occupancy(), 1);
    }

    #[test]
    fn work_conserving_each_output() {
        // An output with any cell queued transmits every slot.
        let mut sw = OutputQueuedSwitch::new(2, None);
        let mut out = vec![None; 2];
        sw.tick(0, &[Some(cell(1, 0, 1)), Some(cell(2, 1, 1))], &mut out);
        assert!(out[1].is_some());
        assert!(out[0].is_none());
        sw.tick(1, &[None, None], &mut out);
        assert!(out[1].is_some());
    }
}
