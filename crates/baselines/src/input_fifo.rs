//! Input FIFO queueing — the architecture of \[KaHM87\] (fig. 1, left).
//!
//! One FIFO per input; only the head-of-line (HOL) cell of each queue
//! contends for its output; contention is resolved uniformly at random
//! among the contenders (the \[KaHM87\] assumption). HOL blocking limits the
//! saturation throughput to `2 − √2 ≈ 0.586` for large `n` under uniform
//! iid traffic — the number experiment E1 regenerates.

use crate::model::{clear_out, CellSwitch};
use simkernel::cell::Cell;
use simkernel::ids::Cycle;
use simkernel::SplitMix64;
use std::collections::VecDeque;

/// FIFO-input-queued switch.
#[derive(Debug)]
pub struct InputFifoSwitch {
    queues: Vec<VecDeque<Cell>>,
    capacity: Option<usize>,
    dropped: u64,
    rng: SplitMix64,
    /// Scratch: contenders per output.
    contenders: Vec<Vec<usize>>,
}

impl InputFifoSwitch {
    /// An `n×n` switch with per-input queue `capacity` (`None` =
    /// unbounded, the setting for saturation studies).
    pub fn new(n: usize, capacity: Option<usize>, seed: u64) -> Self {
        assert!(n > 0);
        InputFifoSwitch {
            queues: vec![VecDeque::new(); n],
            capacity,
            dropped: 0,
            rng: SplitMix64::new(seed),
            contenders: vec![Vec::new(); n],
        }
    }

    /// Length of one input queue.
    pub fn queue_len(&self, i: usize) -> usize {
        self.queues[i].len()
    }
}

impl CellSwitch for InputFifoSwitch {
    fn ports(&self) -> usize {
        self.queues.len()
    }

    fn tick(&mut self, _now: Cycle, arrivals: &[Option<Cell>], out: &mut [Option<Cell>]) {
        clear_out(out);
        // Enqueue arrivals.
        for (i, a) in arrivals.iter().enumerate() {
            if let Some(c) = a {
                if self.capacity.is_some_and(|cap| self.queues[i].len() >= cap) {
                    self.dropped += 1;
                } else {
                    self.queues[i].push_back(*c);
                }
            }
        }
        // HOL contention: collect contenders per output.
        for v in self.contenders.iter_mut() {
            v.clear();
        }
        for (i, q) in self.queues.iter().enumerate() {
            if let Some(head) = q.front() {
                self.contenders[head.dst.index()].push(i);
            }
        }
        // Uniform random winner per output; losers stay blocked.
        for (j, c) in self.contenders.iter().enumerate() {
            if c.is_empty() {
                continue;
            }
            let winner = c[self.rng.below_usize(c.len())];
            out[j] = self.queues[winner].pop_front();
        }
    }

    fn occupancy(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn name(&self) -> &'static str {
        "input-fifo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: u64, src: usize, dst: usize) -> Cell {
        Cell::new(id, src, dst, 0)
    }

    #[test]
    fn uncontended_cells_flow_through() {
        let mut sw = InputFifoSwitch::new(2, None, 1);
        let mut out = vec![None; 2];
        sw.tick(0, &[Some(cell(1, 0, 0)), Some(cell(2, 1, 1))], &mut out);
        assert_eq!(out[0].unwrap().id.0, 1);
        assert_eq!(out[1].unwrap().id.0, 2);
        assert_eq!(sw.occupancy(), 0);
    }

    #[test]
    fn contention_serializes() {
        let mut sw = InputFifoSwitch::new(2, None, 1);
        let mut out = vec![None; 2];
        sw.tick(0, &[Some(cell(1, 0, 0)), Some(cell(2, 1, 0))], &mut out);
        assert!(out[0].is_some() && out[1].is_none());
        assert_eq!(sw.occupancy(), 1);
        sw.tick(1, &[None, None], &mut out);
        assert!(out[0].is_some());
        assert_eq!(sw.occupancy(), 0);
    }

    #[test]
    fn hol_blocking_demonstrated() {
        // Input 0 queues: [→0, →1]; input 1: [→0]. Output 1 is idle but
        // input 0's second cell is blocked behind its HOL cell whenever
        // input 1 wins output 0 — the defining pathology.
        let mut blocked_seen = false;
        for seed in 0..20 {
            let mut sw = InputFifoSwitch::new(2, None, seed);
            let mut out = vec![None; 2];
            sw.tick(0, &[Some(cell(1, 0, 0)), Some(cell(2, 1, 0))], &mut out);
            // Put →1 behind input 0's head (if it still has one queued).
            sw.tick(1, &[Some(cell(3, 0, 1)), None], &mut out);
            if sw.queue_len(0) > 0 && out[1].is_none() {
                blocked_seen = true;
            }
        }
        assert!(blocked_seen, "HOL blocking never manifested across seeds");
    }

    #[test]
    fn finite_capacity_drops() {
        let mut sw = InputFifoSwitch::new(1, Some(1), 1);
        let mut out = vec![None; 1];
        // Two same-slot arrivals can't happen (1 per input), so fill then
        // overflow across slots while output is blocked... with n=1 the
        // queue drains every slot; use dst contention impossible — instead
        // capacity 0-ish test: capacity 1 with two arrivals in consecutive
        // slots while HOL departs — no drop. Force drop via n=2 on same
        // output.
        let mut sw2 = InputFifoSwitch::new(2, Some(1), 1);
        let mut out2 = vec![None; 2];
        sw2.tick(0, &[Some(cell(1, 0, 0)), Some(cell(2, 1, 0))], &mut out2);
        // Loser still queued; next arrival on its input overflows.
        let loser = if sw2.queue_len(0) > 0 { 0 } else { 1 };
        let mut arr = vec![None, None];
        arr[loser] = Some(cell(3, loser, 1));
        sw2.tick(1, &arr, &mut out2);
        assert_eq!(sw2.dropped(), 1);
        // silence unused warnings for the n=1 instance
        sw.tick(0, &[None], &mut out);
        assert_eq!(sw.dropped(), 0);
    }
}
