//! The Knockout switch (\[YeHA87\], cited in §3.1).
//!
//! Output queueing with a concentrator: each output accepts at most `l`
//! of the cells arriving for it in one slot; the rest are "knocked out"
//! (dropped), on the observation that more than `l ≈ 8` simultaneous
//! arrivals for one output are rare under uniform traffic. The accepted
//! cells enter interleaved per-output buffers ("shifters"), modeled here
//! as one FIFO per output.

use crate::model::{clear_out, CellSwitch};
use simkernel::cell::Cell;
use simkernel::ids::Cycle;
use simkernel::SplitMix64;
use std::collections::VecDeque;

/// Knockout switch: concentration factor `l`, per-output queue capacity.
#[derive(Debug)]
pub struct KnockoutSwitch {
    queues: Vec<VecDeque<Cell>>,
    l: usize,
    capacity: Option<usize>,
    dropped_knockout: u64,
    dropped_overflow: u64,
    rng: SplitMix64,
    staging: Vec<Vec<Cell>>,
}

impl KnockoutSwitch {
    /// An `n×n` knockout switch accepting at most `l` simultaneous cells
    /// per output.
    pub fn new(n: usize, l: usize, capacity: Option<usize>, seed: u64) -> Self {
        assert!(n > 0 && l >= 1);
        KnockoutSwitch {
            queues: vec![VecDeque::new(); n],
            l,
            capacity,
            dropped_knockout: 0,
            dropped_overflow: 0,
            rng: SplitMix64::new(seed),
            staging: vec![Vec::new(); n],
        }
    }

    /// Cells lost in the concentrators.
    pub fn knocked_out(&self) -> u64 {
        self.dropped_knockout
    }
}

impl CellSwitch for KnockoutSwitch {
    fn ports(&self) -> usize {
        self.queues.len()
    }

    fn tick(&mut self, _now: Cycle, arrivals: &[Option<Cell>], out: &mut [Option<Cell>]) {
        clear_out(out);
        for s in self.staging.iter_mut() {
            s.clear();
        }
        for a in arrivals.iter().flatten() {
            self.staging[a.dst.index()].push(*a);
        }
        for (j, batch) in self.staging.iter_mut().enumerate() {
            // Concentrator: keep a uniformly random l of the batch.
            while batch.len() > self.l {
                let victim = self.rng.below_usize(batch.len());
                batch.swap_remove(victim);
                self.dropped_knockout += 1;
            }
            for c in batch.drain(..) {
                let q = &mut self.queues[j];
                if self.capacity.is_some_and(|cap| q.len() >= cap) {
                    self.dropped_overflow += 1;
                } else {
                    q.push_back(c);
                }
            }
            out[j] = self.queues[j].pop_front();
        }
    }

    fn occupancy(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    fn dropped(&self) -> u64 {
        self.dropped_knockout + self.dropped_overflow
    }

    fn name(&self) -> &'static str {
        "knockout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: u64, src: usize, dst: usize) -> Cell {
        Cell::new(id, src, dst, 0)
    }

    #[test]
    fn accepts_up_to_l() {
        let mut sw = KnockoutSwitch::new(4, 2, None, 1);
        let mut out = vec![None; 4];
        let arr: Vec<Option<Cell>> = (0..4).map(|i| Some(cell(i as u64, i, 0))).collect();
        sw.tick(0, &arr, &mut out);
        assert_eq!(sw.knocked_out(), 2, "4 arrivals, l=2 → 2 knocked out");
        assert!(out[0].is_some());
        assert_eq!(sw.occupancy(), 1);
    }

    #[test]
    fn no_knockout_below_l() {
        let mut sw = KnockoutSwitch::new(4, 8, None, 1);
        let mut out = vec![None; 4];
        let arr: Vec<Option<Cell>> = (0..4).map(|i| Some(cell(i as u64, i, 0))).collect();
        sw.tick(0, &arr, &mut out);
        assert_eq!(sw.knocked_out(), 0);
    }

    #[test]
    fn knockout_loss_rare_under_uniform_traffic() {
        // The [YeHA87] design argument: with l = 8, uniform iid traffic at
        // 90 % load loses a negligible fraction. Measure it.
        let n = 16;
        let mut sw = KnockoutSwitch::new(n, 8, None, 2);
        let mut rng = SplitMix64::new(5);
        let mut out = vec![None; n];
        let mut offered = 0u64;
        for now in 0..20_000u64 {
            let arr: Vec<Option<Cell>> = (0..n)
                .map(|i| {
                    rng.chance(0.9).then(|| {
                        offered += 1;
                        cell(offered, i, rng.below_usize(n))
                    })
                })
                .collect();
            sw.tick(now, &arr, &mut out);
        }
        let loss = sw.knocked_out() as f64 / offered as f64;
        assert!(loss < 1e-3, "knockout loss {loss} too high for l=8");
    }
}
