//! # baselines — every switch architecture the paper compares against
//!
//! §2 of the paper surveys the buffer organizations of figures 1 and 2 and
//! grounds its argument in quantitative results from the literature:
//! input FIFO queueing saturates at ≈ 58.6 % \[KaHM87\]; scheduled non-FIFO
//! input buffering approaches full throughput but with ≈ 2× the latency of
//! output queueing \[AOST93\]; for equal loss probability, shared buffering
//! needs far less memory than output queueing, which needs far less than
//! input smoothing \[HlKa88\]. This crate implements all of those systems so
//! the experiment harness can regenerate those numbers rather than quote
//! them.
//!
//! ## Model of time
//!
//! These are *slot-level* models, as in the cited literature: one slot =
//! one cell transmission time; each input receives at most one cell per
//! slot; each output transmits at most one cell per slot. (The paper's own
//! switch is modeled at word granularity in `switch-core`; the behavioral
//! bridge between the two granularities is exercised by the integration
//! tests.)
//!
//! All models implement [`CellSwitch`] so experiments sweep architectures
//! generically; [`harness::run`] measures utilization/latency/loss for any
//! model × workload pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block_crosspoint;
pub mod crosspoint;
pub mod harness;
pub mod input_fifo;
pub mod input_smoothing;
pub mod knockout;
pub mod model;
pub mod output_queued;
pub mod sched;
pub mod shared;
pub mod speedup;
pub mod voq;

pub use block_crosspoint::BlockCrosspointSwitch;
pub use crosspoint::CrosspointSwitch;
pub use harness::{run, RunStats};
pub use input_fifo::InputFifoSwitch;
pub use input_smoothing::InputSmoothingSwitch;
pub use knockout::KnockoutSwitch;
pub use model::CellSwitch;
pub use output_queued::OutputQueuedSwitch;
pub use sched::{IslipScheduler, PimScheduler, Rr2dScheduler, Scheduler};
pub use shared::{PrizmaSwitch, SharedBufferSwitch, WideMemorySwitch};
pub use speedup::SpeedupSwitch;
pub use voq::VoqSwitch;
