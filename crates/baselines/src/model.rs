//! The common interface of all slot-level switch models.

use simkernel::cell::Cell;
use simkernel::ids::Cycle;

/// A slot-level `n×n` switch model.
///
/// Per slot: at most one arriving cell per input, at most one departing
/// cell per output. Cells that cannot be buffered are dropped and counted;
/// a model must never silently lose a cell (conservation is property-
/// tested across all implementations).
pub trait CellSwitch {
    /// Number of ports (inputs = outputs = n).
    fn ports(&self) -> usize;

    /// Advance one slot. `arrivals[i]` is the cell arriving on input `i`;
    /// departures are written into `out[j]` for output `j` (pre-cleared by
    /// the implementation).
    fn tick(&mut self, now: Cycle, arrivals: &[Option<Cell>], out: &mut [Option<Cell>]);

    /// Cells currently buffered anywhere in the switch.
    fn occupancy(&self) -> usize;

    /// Cells dropped since construction.
    fn dropped(&self) -> u64;

    /// Short architecture name for reports.
    fn name(&self) -> &'static str;
}

/// Clear a departure buffer (helper for implementations).
pub fn clear_out(out: &mut [Option<Cell>]) {
    for o in out.iter_mut() {
        *o = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Null(usize);
    impl CellSwitch for Null {
        fn ports(&self) -> usize {
            self.0
        }
        fn tick(&mut self, _now: Cycle, _arr: &[Option<Cell>], out: &mut [Option<Cell>]) {
            clear_out(out);
        }
        fn occupancy(&self) -> usize {
            0
        }
        fn dropped(&self) -> u64 {
            0
        }
        fn name(&self) -> &'static str {
            "null"
        }
    }

    #[test]
    fn clear_out_clears() {
        let mut out = vec![Some(Cell::new(1, 0, 0, 0)), None];
        clear_out(&mut out);
        assert!(out.iter().all(Option::is_none));
        let mut n = Null(2);
        n.tick(0, &[None, None], &mut out);
        assert_eq!(n.ports(), 2);
    }
}
