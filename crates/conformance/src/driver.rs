//! Drivers: replay one [`Scenario`] against each memory organization.
//!
//! All four organizations see the *same* offered schedule through the
//! same launch logic (the internal `Launcher`): in credited mode each input holds a
//! [`CreditedInput`] sender whose credits return when *that
//! organization* delivers the packet's tail word, so backpressure timing
//! is native to each model; in open mode packets launch at exactly
//! `Offer::at`. Word-level organizations are fed word by word on the
//! input wires and observed through an [`OutputCollector`]; the
//! behavioral model is fed per-cell arrivals and reports departures
//! directly.

use crate::scenario::Scenario;
use simkernel::cell::Packet;
use simkernel::error::SimError;
use simkernel::ids::Cycle;
use simkernel::Horizon;
use std::collections::{HashMap, VecDeque};
use switch_core::behavioral::BehavioralSwitch;
use switch_core::config::SwitchConfig;
use switch_core::credit::CreditedInput;
use switch_core::events::SwitchCounters;
use switch_core::faultsim::{Fault, FaultAction, FaultKind, FaultPlan};
use switch_core::ibank::{InterleavedSwitch, InterleavedSwitchConfig};
use switch_core::recovery::{RecoveryConfig, RecoveryReport};
use switch_core::rtl::{OutputCollector, PipelinedSwitch};
use switch_core::widemem::{WideMemorySwitchRtl, WideSwitchConfig};
use telemetry::ProbeHandle;

/// The four memory organizations under differential test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Org {
    /// Word-accurate pipelined-memory RTL (§3, the paper's design).
    Pipelined,
    /// Cell-level behavioral model with identical initiation semantics.
    Behavioral,
    /// Wide-memory organization of fig. 3 (double buffering + bypass).
    Wide,
    /// Interleaved one-packet-per-bank organization (store-and-forward).
    Interleaved,
}

impl Org {
    /// All organizations, in reporting order.
    pub const ALL: [Org; 4] = [Org::Pipelined, Org::Behavioral, Org::Wide, Org::Interleaved];

    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Org::Pipelined => "pipelined",
            Org::Behavioral => "behavioral",
            Org::Wide => "wide",
            Org::Interleaved => "interleaved",
        }
    }
}

impl std::fmt::Display for Org {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One packet launch as it actually happened in a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Launch {
    /// Packet id (from the scenario's offer).
    pub id: u64,
    /// Input link.
    pub input: usize,
    /// Destination output.
    pub dst: usize,
    /// Cycle the header entered the switch.
    pub at: Cycle,
}

/// One packet delivery as observed on an output link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Packet id decoded from the delivered header.
    pub id: u64,
    /// Output link it emerged on.
    pub output: usize,
    /// Cycle the first word appeared on the link.
    pub first: Cycle,
    /// Cycle the tail word appeared on the link.
    pub last: Cycle,
}

/// Everything one organization did with the scenario.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Which organization ran.
    pub org: Org,
    /// Launches in launch order.
    pub launches: Vec<Launch>,
    /// Deliveries in completion order.
    pub deliveries: Vec<Delivery>,
    /// The organization's own event counters after drain.
    pub counters: SwitchCounters,
    /// Delivered packets whose payload failed verification.
    pub payload_failures: u64,
    /// Cycles an input sat idle with backlog because credits ran out
    /// (credited mode only) — the full-buffer backpressure corner.
    pub stalls: u64,
    /// Cycles in which two or more inputs started transmission together.
    pub same_cycle_starts: u64,
    /// Head latencies of departures whose output was idle at arrival
    /// (behavioral model only; the §3.4 measurement population).
    pub idle_head_latencies: Vec<Cycle>,
    /// Watchdog or credit-audit failure, if the run did not end cleanly.
    pub error: Option<SimError>,
    /// Recovery ledger (corrections, failovers, declared windows); all
    /// zeros unless the scenario armed recovery.
    pub recovery: RecoveryReport,
}

/// Shared launch logic: turns the scenario's offers into per-cycle
/// launches, under credit backpressure or open-loop timing.
struct Launcher {
    s: Cycle,
    pending: Vec<VecDeque<crate::scenario::Offer>>,
    senders: Option<Vec<CreditedInput<crate::scenario::Offer>>>,
    next_free: Vec<Cycle>,
    stalls: u64,
    same_cycle_starts: u64,
}

impl Launcher {
    fn new(sc: &Scenario, probe: Option<&ProbeHandle>) -> Launcher {
        let mut pending = vec![VecDeque::new(); sc.n];
        for o in &sc.offers {
            pending[o.input].push_back(*o);
        }
        let senders = sc.credited.then(|| {
            (0..sc.n)
                .map(|i| {
                    let mut s: CreditedInput<crate::scenario::Offer> =
                        CreditedInput::new(sc.credits_per_input(), 1);
                    if let Some(p) = probe {
                        s.attach_probe(p.clone(), i);
                    }
                    s
                })
                .collect()
        });
        Launcher {
            s: sc.stages() as Cycle,
            pending,
            senders,
            next_free: vec![0; sc.n],
            stalls: 0,
            same_cycle_starts: 0,
        }
    }

    /// Launches starting at `now` (at most one per input).
    fn poll(&mut self, now: Cycle) -> Vec<crate::scenario::Offer> {
        let mut started = Vec::new();
        if let Some(senders) = &mut self.senders {
            for (q, sender) in self.pending.iter_mut().zip(senders.iter_mut()) {
                while q.front().is_some_and(|o| o.at <= now) {
                    sender.offer(q.pop_front().expect("checked non-empty"));
                }
            }
            for (i, sender) in senders.iter_mut().enumerate() {
                if self.next_free[i] > now {
                    continue;
                }
                match sender.poll(now) {
                    Some(o) => {
                        self.next_free[i] = now + self.s;
                        started.push(o);
                    }
                    None => {
                        if sender.backlog() > 0 {
                            // Link free, work queued, zero credits: the
                            // shared buffer's reservation is exhausted.
                            self.stalls += 1;
                        }
                    }
                }
            }
        } else {
            for (i, q) in self.pending.iter_mut().enumerate() {
                if q.front().is_some_and(|o| o.at == now) {
                    assert!(
                        self.next_free[i] <= now,
                        "schedule violates wire framing on input {i} at cycle {now}"
                    );
                    let o = q.pop_front().expect("checked non-empty");
                    self.next_free[i] = now + self.s;
                    started.push(o);
                }
            }
        }
        if started.len() >= 2 {
            self.same_cycle_starts += 1;
        }
        started
    }

    /// Earliest offer time still queued upstream of the senders. Fronts
    /// are always `>= now` (earlier offers were transferred or launched
    /// by previous polls), so this bounds how far a driver may
    /// fast-forward without missing a launch.
    fn earliest_pending(&self) -> Option<Cycle> {
        self.pending
            .iter()
            .filter_map(|q| q.front().map(|o| o.at))
            .min()
    }

    /// True when any credited sender holds queued work. Stall cycles are
    /// counted per cycle while backlog waits on credits, so time may only
    /// be skipped when every backlog is empty.
    fn any_backlog(&self) -> bool {
        self.senders
            .as_ref()
            .is_some_and(|ss| ss.iter().any(|s| s.backlog() > 0))
    }

    fn credit_return(&mut self, input: usize, now: Cycle) {
        if let Some(senders) = &mut self.senders {
            senders[input].return_credit(now);
        }
    }

    /// No offer will ever launch again.
    fn exhausted(&self) -> bool {
        self.pending.iter().all(VecDeque::is_empty)
            && self
                .senders
                .as_ref()
                .is_none_or(|ss| ss.iter().all(|s| s.backlog() == 0))
    }

    /// Final credit-conservation audit against the testbench ledger.
    fn audit(&self, actual_outstanding: &[u32], org: Org) -> Result<(), SimError> {
        if let Some(senders) = &self.senders {
            for (i, sender) in senders.iter().enumerate() {
                sender.audit(actual_outstanding[i], &format!("{org} input {i}"))?;
            }
        }
        Ok(())
    }
}

/// The three word-level organizations behind one tick interface.
enum WordSwitch {
    Pipelined(Box<PipelinedSwitch>),
    Wide(Box<WideMemorySwitchRtl>),
    Interleaved(Box<InterleavedSwitch>),
}

impl WordSwitch {
    fn tick(&mut self, wire: &[Option<u64>]) -> &[Option<u64>] {
        match self {
            WordSwitch::Pipelined(sw) => sw.tick(wire),
            WordSwitch::Wide(sw) => sw.tick(wire),
            WordSwitch::Interleaved(sw) => sw.tick(wire),
        }
    }

    /// Earliest future cycle at which this organization's state can
    /// change with no further input (the [`simkernel::Horizon`] contract).
    fn next_event(&self) -> Option<Cycle> {
        match self {
            WordSwitch::Pipelined(sw) => Horizon::next_event(&**sw),
            WordSwitch::Wide(sw) => Horizon::next_event(&**sw),
            WordSwitch::Interleaved(sw) => Horizon::next_event(&**sw),
        }
    }

    fn jump_to(&mut self, target: Cycle) {
        match self {
            WordSwitch::Pipelined(sw) => Horizon::jump_to(&mut **sw, target),
            WordSwitch::Wide(sw) => Horizon::jump_to(&mut **sw, target),
            WordSwitch::Interleaved(sw) => Horizon::jump_to(&mut **sw, target),
        }
    }

    fn now(&self) -> Cycle {
        match self {
            WordSwitch::Pipelined(sw) => sw.now(),
            WordSwitch::Wide(sw) => sw.now(),
            WordSwitch::Interleaved(sw) => sw.now(),
        }
    }

    fn is_quiescent(&self) -> bool {
        match self {
            WordSwitch::Pipelined(sw) => sw.is_quiescent(),
            WordSwitch::Wide(sw) => sw.is_quiescent(),
            WordSwitch::Interleaved(sw) => sw.is_quiescent(),
        }
    }

    fn counters(&self) -> SwitchCounters {
        match self {
            WordSwitch::Pipelined(sw) => sw.counters(),
            WordSwitch::Wide(sw) => sw.counters(),
            WordSwitch::Interleaved(sw) => sw.counters(),
        }
    }

    fn recovery_report(&self) -> RecoveryReport {
        match self {
            WordSwitch::Pipelined(sw) => sw.recovery_report(),
            WordSwitch::Wide(sw) => sw.recovery_report(),
            WordSwitch::Interleaved(sw) => sw.recovery_report(),
        }
    }
}

/// Hard cap on simulated cycles past the scenario horizon before a run is
/// declared hung (a divergence in its own right).
const DRAIN_CAP: Cycle = 200_000;

/// Replay `sc` on organization `org` and report everything it did.
pub fn run(sc: &Scenario, org: Org) -> RunOutcome {
    run_with(sc, org, None)
}

/// Like [`run`], but with a telemetry probe attached to the model under
/// test and to the credited senders: every per-cycle event (waves,
/// arbitration, drops, credit grants/returns) streams into `probe`
/// while the run proceeds bit-identically to an unprobed one — the
/// flight-recorder path the fuzzer uses to dump a failure's last
/// cycles.
pub fn run_with(sc: &Scenario, org: Org, probe: Option<ProbeHandle>) -> RunOutcome {
    match org {
        Org::Behavioral => run_behavioral(sc, probe),
        _ => run_word(sc, org, probe),
    }
}

fn run_word(sc: &Scenario, org: Org, probe: Option<ProbeHandle>) -> RunOutcome {
    let n = sc.n;
    let s = sc.stages();
    // ECC-only recovery: corrections are timing-invisible, so the armed
    // run must stay cycle-identical to an unarmed clean one.
    let rec = if sc.recovery {
        RecoveryConfig::ecc_only()
    } else {
        RecoveryConfig::default()
    };
    let cfg = SwitchConfig::symmetric(n, sc.slots)
        .with_recovery(rec)
        .with_policy(sc.policy);
    let mut sw = match org {
        Org::Pipelined => WordSwitch::Pipelined(Box::new(PipelinedSwitch::new(cfg.clone()))),
        Org::Wide => WordSwitch::Wide(Box::new(WideMemorySwitchRtl::new(
            WideSwitchConfig::fig3(n, sc.slots)
                .with_recovery(rec)
                .with_policy(sc.policy),
        ))),
        Org::Interleaved => WordSwitch::Interleaved(Box::new(InterleavedSwitch::new(
            InterleavedSwitchConfig::symmetric(n, sc.slots)
                .with_recovery(rec)
                .with_policy(sc.policy),
        ))),
        Org::Behavioral => unreachable!("behavioral runs via run_behavioral"),
    };
    if let Some(p) = &probe {
        match &mut sw {
            WordSwitch::Pipelined(s) => s.attach_probe(p.clone()),
            WordSwitch::Wide(s) => s.attach_probe(p.clone()),
            WordSwitch::Interleaved(s) => s.attach_probe(p.clone()),
        }
    }
    // Faults strike the pipelined RTL only: the other organizations stay
    // clean references, so any effective upset becomes a divergence.
    let mut plan = match (&sw, sc.fault) {
        (WordSwitch::Pipelined(_), Some(f)) => Some(FaultPlan::generate(
            FaultKind::BankUpset,
            f.rate,
            sc.horizon,
            &cfg,
            f.seed,
        )),
        _ => None,
    };
    let mut col = OutputCollector::new(n, s);
    let mut launcher = Launcher::new(sc, probe.as_ref());
    let mut current: Vec<Option<(Vec<u64>, usize)>> = (0..n).map(|_| None).collect();
    let mut launches = Vec::new();
    let mut deliveries = Vec::new();
    let mut id_input: HashMap<u64, usize> = HashMap::new();
    let mut payload_failures = 0u64;
    let mut error = None;
    let cap = sc.horizon + DRAIN_CAP;
    let mut grace: Cycle = 0;
    let mut wire: Vec<Option<u64>> = vec![None; n];
    let mut due_faults: Vec<Fault> = Vec::new();
    loop {
        let now = sw.now();
        // The buffer manager can be empty while tail words are still on
        // the output wires, so idle-ness must persist for a full packet
        // time before the run is considered drained.
        let idle = launcher.exhausted() && current.iter().all(Option::is_none) && sw.is_quiescent();
        if idle {
            grace += 1;
            if grace > s as Cycle + 4 {
                break;
            }
        } else {
            grace = 0;
        }
        if now >= cap {
            error = Some(SimError::Watchdog {
                limit: cap,
                context: format!("{org} failed to drain"),
            });
            break;
        }
        // Event-horizon fast-forward (DESIGN.md §6): with the input wires
        // idle, no credited backlog stalling, and the switch reporting no
        // state change before `e`, jump the clock to the next launch /
        // fault / model event instead of ticking through the gap. Bounding
        // the jump by `plan.next_due()` keeps every fault injected at its
        // exact scheduled cycle, so departures stay bit-identical.
        if !idle && current.iter().all(Option::is_none) && !launcher.any_backlog() {
            let horizon = match sw.next_event() {
                None => Some(cap),
                Some(e) if e > now => Some(e),
                Some(_) => None, // state changes this cycle: dense-tick
            };
            if let Some(h) = horizon {
                let mut target = h.min(cap);
                if let Some(t) = launcher.earliest_pending() {
                    target = target.min(t);
                }
                if let Some(t) = plan.as_ref().and_then(FaultPlan::next_due) {
                    target = target.min(t);
                }
                if target > now {
                    simkernel::horizon::note_skipped(target - now);
                    sw.jump_to(target);
                    continue;
                }
            }
        }
        simkernel::horizon::note_executed(1);
        if let Some(plan) = &mut plan {
            plan.take_due_into(now, &mut due_faults);
            for f in due_faults.drain(..) {
                if let (FaultAction::BankUpset { stage, slot, mask }, WordSwitch::Pipelined(sw)) =
                    (f.action, &mut sw)
                {
                    sw.inject_bank_fault(stage, slot, mask);
                }
            }
        }
        for o in launcher.poll(now) {
            let p = Packet::synth(o.id, o.input, o.dst, s, now);
            launches.push(Launch {
                id: o.id,
                input: o.input,
                dst: o.dst,
                at: now,
            });
            id_input.insert(o.id, o.input);
            debug_assert!(current[o.input].is_none(), "launch while wire busy");
            current[o.input] = Some((p.words, 0));
        }
        for (w, slot) in wire.iter_mut().zip(current.iter_mut()) {
            *w = None;
            if let Some((words, k)) = slot {
                *w = Some(words[*k]);
                *k += 1;
                if *k == words.len() {
                    *slot = None;
                }
            }
        }
        let out = sw.tick(&wire);
        col.observe(now, out);
        for d in col.take() {
            if !d.verify_payload() {
                payload_failures += 1;
            }
            deliveries.push(Delivery {
                id: d.id,
                output: d.output.index(),
                first: d.first_cycle,
                last: d.last_cycle,
            });
            // Return the credit to whoever launched this id; a corrupted
            // header that no longer names a launched id returns nothing,
            // and the final audit reports the leak.
            if let Some(&input) = id_input.get(&d.id) {
                launcher.credit_return(input, now);
            }
        }
    }
    if error.is_none() {
        let mut outstanding = vec![0u32; n];
        for l in &launches {
            outstanding[l.input] += 1;
        }
        for d in &deliveries {
            if let Some(&i) = id_input.get(&d.id) {
                outstanding[i] = outstanding[i].saturating_sub(1);
            }
        }
        if let Err(e) = launcher.audit(&outstanding, org) {
            error = Some(e);
        }
    }
    RunOutcome {
        org,
        launches,
        deliveries,
        counters: sw.counters(),
        payload_failures,
        stalls: launcher.stalls,
        same_cycle_starts: launcher.same_cycle_starts,
        idle_head_latencies: Vec::new(),
        error,
        recovery: sw.recovery_report(),
    }
}

fn run_behavioral(sc: &Scenario, probe: Option<ProbeHandle>) -> RunOutcome {
    let n = sc.n;
    let cfg = SwitchConfig::symmetric(n, sc.slots).with_policy(sc.policy);
    let mut sw = BehavioralSwitch::new(cfg);
    let mut launcher = Launcher::new(sc, probe.as_ref());
    if let Some(p) = probe {
        sw.attach_probe(p);
    }
    // The behavioral model numbers packets internally; recover scenario
    // ids through the (input, birth) pair — unique because each input
    // launches at most one header per cycle.
    let mut key_to_id: HashMap<(usize, Cycle), u64> = HashMap::new();
    let mut launches = Vec::new();
    let mut deliveries = Vec::new();
    let mut idle_head_latencies = Vec::new();
    let mut error = None;
    let mut arrivals: Vec<Option<usize>> = vec![None; n];
    let cap = sc.horizon + DRAIN_CAP;
    let mut now: Cycle = 0;
    let mut grace: Cycle = 0;
    loop {
        let idle = launcher.exhausted() && sw.is_quiescent();
        if idle {
            grace += 1;
            if grace > sc.stages() as Cycle + 4 {
                break;
            }
        } else {
            grace = 0;
        }
        if now >= cap {
            error = Some(SimError::Watchdog {
                limit: cap,
                context: "behavioral failed to drain".to_string(),
            });
            break;
        }
        // Event-horizon fast-forward, behavioral flavor: the model's
        // fine-grained horizon covers in-flight transmissions and queued
        // write/read schedules, so the clock may jump straight to the
        // next departure edge or the next pending offer.
        if !idle && !launcher.any_backlog() {
            let horizon = match Horizon::next_event(&sw) {
                None => Some(cap),
                Some(e) if e > now => Some(e),
                Some(_) => None,
            };
            if let Some(h) = horizon {
                let mut target = h.min(cap);
                if let Some(t) = launcher.earliest_pending() {
                    target = target.min(t);
                }
                if target > now {
                    simkernel::horizon::note_skipped(target - now);
                    Horizon::jump_to(&mut sw, target);
                    now = target;
                    continue;
                }
            }
        }
        simkernel::horizon::note_executed(1);
        arrivals.fill(None);
        for o in launcher.poll(now) {
            debug_assert!(sw.input_free(o.input), "launch while input busy");
            arrivals[o.input] = Some(o.dst);
            key_to_id.insert((o.input, now), o.id);
            launches.push(Launch {
                id: o.id,
                input: o.input,
                dst: o.dst,
                at: now,
            });
        }
        let departures = sw.tick(&arrivals).to_vec();
        for d in departures {
            let id = *key_to_id
                .get(&(d.input, d.birth))
                .expect("departure for a packet that was never launched");
            deliveries.push(Delivery {
                id,
                output: d.output,
                first: d.read_start + 1,
                last: d.done,
            });
            if d.output_was_idle {
                idle_head_latencies.push(d.head_latency());
            }
            launcher.credit_return(d.input, now);
        }
        now += 1;
    }
    if error.is_none() {
        let mut outstanding = vec![0u32; n];
        for l in &launches {
            outstanding[l.input] += 1;
        }
        for d in &deliveries {
            if let Some(l) = launches.iter().find(|l| l.id == d.id) {
                outstanding[l.input] = outstanding[l.input].saturating_sub(1);
            }
        }
        if let Err(e) = launcher.audit(&outstanding, Org::Behavioral) {
            error = Some(e);
        }
    }
    let counters = SwitchCounters {
        // The behavioral model counts only *accepted* packets in
        // `arrived`; the RTL counts every header (including policy-
        // refused ones). Normalize to the RTL convention so one
        // conservation law covers both.
        arrived: sw.arrived + sw.dropped + sw.policy_drops,
        departed: deliveries.len() as u64,
        dropped_buffer_full: sw.dropped,
        latch_overruns: sw.overruns,
        policy_drops: sw.policy_drops,
        policy_preempts: sw.policy_preempts,
        ..SwitchCounters::default()
    };
    RunOutcome {
        org: Org::Behavioral,
        launches,
        deliveries,
        counters,
        payload_failures: 0,
        stalls: launcher.stalls,
        same_cycle_starts: launcher.same_cycle_starts,
        idle_head_latencies,
        error,
        recovery: RecoveryReport::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Offer, Scenario};

    fn tiny(credited: bool) -> Scenario {
        Scenario {
            seed: 0,
            n: 2,
            slots: 4,
            credited,
            load: 0.5,
            offers: vec![
                Offer {
                    at: 0,
                    input: 0,
                    dst: 1,
                    id: 1,
                },
                Offer {
                    at: 2,
                    input: 1,
                    dst: 0,
                    id: 2,
                },
            ],
            horizon: 64,
            fault: None,
            recovery: false,
            policy: switch_core::PolicyKind::Static,
        }
    }

    #[test]
    fn every_org_delivers_the_tiny_schedule() {
        for credited in [false, true] {
            let sc = tiny(credited);
            for org in Org::ALL {
                let r = run(&sc, org);
                assert!(r.error.is_none(), "{org}: {:?}", r.error);
                assert_eq!(r.launches.len(), 2, "{org} launches");
                assert_eq!(r.deliveries.len(), 2, "{org} deliveries");
                assert_eq!(r.payload_failures, 0, "{org} payload");
                let mut ids: Vec<u64> = r.deliveries.iter().map(|d| d.id).collect();
                ids.sort_unstable();
                assert_eq!(ids, vec![1, 2], "{org} ids");
            }
        }
    }

    #[test]
    fn rtl_and_behavioral_agree_on_the_tiny_schedule() {
        let sc = tiny(true);
        let a = run(&sc, Org::Pipelined);
        let b = run(&sc, Org::Behavioral);
        let key = |r: &RunOutcome| {
            let mut v: Vec<(u64, usize, Cycle, Cycle)> = r
                .deliveries
                .iter()
                .map(|d| (d.id, d.output, d.first, d.last))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(key(&a), key(&b), "cycle-exact departure agreement");
    }

    #[test]
    fn credited_starvation_counts_stalls() {
        // One slot, one credit: the second same-input offer must stall
        // until the first packet's slot is freed downstream.
        let sc = Scenario {
            seed: 0,
            n: 2,
            slots: 2, // 1 credit per input
            credited: true,
            load: 1.0,
            offers: vec![
                Offer {
                    at: 0,
                    input: 0,
                    dst: 1,
                    id: 1,
                },
                Offer {
                    at: 4,
                    input: 0,
                    dst: 1,
                    id: 2,
                },
            ],
            horizon: 64,
            fault: None,
            recovery: false,
            policy: switch_core::PolicyKind::Static,
        };
        let r = run(&sc, Org::Interleaved);
        assert!(r.error.is_none(), "{:?}", r.error);
        assert_eq!(r.deliveries.len(), 2);
        assert!(
            r.stalls > 0,
            "store-and-forward holds the bank past the second offer time"
        );
    }
}
