//! Seeded scenario generation.
//!
//! A [`Scenario`] is a complete, self-describing test case: switch
//! geometry, flow-control mode, and an explicit arrival schedule of
//! [`Offer`]s. Every organization replays the *same* schedule, so any
//! disagreement is a model divergence, not a traffic artifact.
//!
//! All randomness comes from `SplitMix64::stream(seed, SCENARIO_STREAM)`;
//! the same seed regenerates the same scenario bit for bit on any machine
//! and at any parallelism. Offers carry their packet ids explicitly
//! (assigned at generation time), so a shrunk schedule still names the
//! same packets as the original.

use simkernel::ids::Cycle;
use simkernel::SplitMix64;
use std::fmt;
use switch_core::PolicyKind;

/// RNG stream index for scenario generation. Distinct from
/// `faultsim::TRAFFIC_STREAM` (0) and `faultsim::FAULT_STREAM` (1) so a
/// scenario and its optional fault plan never share a stream.
pub const SCENARIO_STREAM: u64 = 2;

/// RNG stream index for the buffer-sharing-policy dimension (and its
/// optional incast/hotspot-burst shape override). A separate stream,
/// drawn *after* base generation, so every seed's base geometry and
/// schedule stay bit-identical to what they were before the policy
/// dimension existed.
pub const POLICY_STREAM: u64 = 3;

/// Policy mix the fuzzer draws from: static-weighted (half the seeds keep
/// the pre-policy admission path hot) with every non-static policy
/// represented.
const POLICY_MIX: [PolicyKind; 8] = [
    PolicyKind::Static,
    PolicyKind::Static,
    PolicyKind::Static,
    PolicyKind::Static,
    PolicyKind::DynamicThresholds {
        alpha_num: 1,
        alpha_den: 1,
    },
    PolicyKind::PushOut,
    PolicyKind::Occamy,
    PolicyKind::BShare,
];

/// One packet offered to the switch: at cycle `at` (or as soon after as
/// credits allow), input `input` wants to send packet `id` to `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Offer {
    /// Earliest cycle the header may enter the switch.
    pub at: Cycle,
    /// Input link.
    pub input: usize,
    /// Destination output.
    pub dst: usize,
    /// Packet id (unique within the scenario, stable under shrinking).
    pub id: u64,
}

/// An optional seeded fault-injection overlay (single-event bank upsets),
/// used to prove the oracle detects — and the shrinker minimizes — real
/// datapath corruption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeededFault {
    /// Per-cycle upset probability.
    pub rate: f64,
    /// Seed for `FaultPlan::generate` (stream `FAULT_STREAM`).
    pub seed: u64,
}

/// A complete differential test case.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Seed this scenario was generated from (0 for hand-built cases).
    pub seed: u64,
    /// Ports per side (symmetric `n × n` switch, `S = 2n` word packets).
    pub n: usize,
    /// Shared-buffer capacity in packet slots.
    pub slots: usize,
    /// Credit backpressure active? When true each input holds
    /// `slots / n` credits (so reservations sum to the capacity and loss
    /// is impossible); when false, packets launch at exactly `Offer::at`
    /// and buffer-full drops are legal.
    pub credited: bool,
    /// Offered per-input load the schedule was drawn at (diagnostic).
    pub load: f64,
    /// Arrival schedule, sorted by `at`.
    pub offers: Vec<Offer>,
    /// Fault-plan horizon in cycles. Kept fixed while shrinking so the
    /// surviving offers still meet the same absolute-time faults.
    pub horizon: Cycle,
    /// Optional seeded bank-upset overlay (pipelined RTL only).
    pub fault: Option<SeededFault>,
    /// Arm ECC recovery on the word-level organizations. Corrections are
    /// timing-invisible, so a recovery-enabled run must restore *exact*
    /// conformance with the clean behavioral reference even under a
    /// fault overlay — upsets are repaired instead of detect-dropped.
    pub recovery: bool,
    /// Buffer-sharing policy every organization runs under. Non-static
    /// policies drop at admission even below capacity, so a non-static
    /// scenario is always open-loop (`credited = false`): a policy drop
    /// would otherwise leak a credit and wedge the drain.
    pub policy: PolicyKind,
}

impl Scenario {
    /// Packet size in words (`S = 2n`, the paper's quantum).
    pub fn stages(&self) -> usize {
        2 * self.n
    }

    /// Credits per input in credited mode: per-link reservations that sum
    /// to at most the buffer capacity, the zero-loss precondition.
    pub fn credits_per_input(&self) -> u32 {
        debug_assert!(self.credited);
        ((self.slots / self.n).max(1)) as u32
    }

    /// Generate the scenario for `seed`: the frozen base corpus of
    /// [`Scenario::generate_base`] plus the buffer-sharing policy dimension — a
    /// policy drawn from its own stream, and on a quarter of the seeds
    /// an incast / hotspot-burst traffic override.
    pub fn generate(seed: u64) -> Scenario {
        let mut sc = Self::generate_base(seed);
        // Policy dimension, drawn from its own stream *after* the base
        // so every pre-policy seed keeps its geometry and schedule bit
        // for bit. A quarter of the seeds also override the traffic
        // shape with incast / hotspot-burst — the patterns that actually
        // separate buffer-sharing policies.
        let mut pg = SplitMix64::stream(seed, POLICY_STREAM);
        sc.policy = *pg.choose(&POLICY_MIX);
        sc.credited = sc.credited && sc.policy.is_static();
        if pg.chance(0.25) {
            let shape = *pg.choose(&[4u8, 5]);
            let s = sc.stages();
            let q = sc.header_chance();
            sc.offers = Self::shaped_offers(&mut pg, sc.n, s, q, sc.horizon, shape);
        }
        sc
    }

    /// Generate the pre-policy scenario for `seed`. Geometry, mode,
    /// traffic pattern and load are all drawn from the seed; the
    /// schedule respects the wire constraint (one header per input per
    /// `S` cycles). This corpus is frozen — distribution-pinned tests
    /// (fault detection rates, ECC exactness counts) anchor to it so
    /// the policy dimension cannot shift their statistics.
    pub fn generate_base(seed: u64) -> Scenario {
        let mut g = SplitMix64::stream(seed, SCENARIO_STREAM);
        let n = *g.choose(&[2usize, 3, 4, 8]);
        let s = 2 * n;
        let credited = g.chance(0.5);
        let slots = if credited {
            n * *g.choose(&[1usize, 2, 4])
        } else {
            *g.choose(&[2usize, n, 2 * n, 4 * n])
        };
        let load = *g.choose(&[0.2, 0.5, 0.8, 1.0]);
        // 0 = uniform, 1 = hotspot, 2 = permutation, 3 = synchronized.
        let pattern = *g.choose(&[0u8, 1, 2, 3]);
        let horizon = 48 * s as Cycle;
        // Per-cycle header probability that yields busy-fraction `load`
        // when each start occupies the wire for S cycles.
        let q = if load >= 1.0 {
            1.0
        } else {
            load / (load + s as f64 * (1.0 - load))
        };
        let mut offers = Vec::new();
        let mut next_free = vec![0 as Cycle; n];
        for t in 0..horizon {
            for (i, nf) in next_free.iter_mut().enumerate() {
                if *nf > t {
                    continue;
                }
                let start = match pattern {
                    // Synchronized: all inputs may only start on quantum
                    // boundaries — maximizes same-cycle start collisions.
                    3 => t % s as Cycle == 0 && g.chance(load),
                    _ => g.chance(q),
                };
                if !start {
                    continue;
                }
                let dst = match pattern {
                    // Hotspot: 70 % of traffic converges on output 0.
                    1 => {
                        if g.chance(0.7) {
                            0
                        } else {
                            g.below_usize(n)
                        }
                    }
                    // Permutation: conflict-free input → output mapping.
                    2 => (i + 1) % n,
                    _ => g.below_usize(n),
                };
                offers.push(Offer {
                    at: t,
                    input: i,
                    dst,
                    id: 0, // assigned below
                });
                *nf = t + s as Cycle;
            }
        }
        for (k, o) in offers.iter_mut().enumerate() {
            o.id = k as u64 + 1;
        }
        Scenario {
            seed,
            n,
            slots,
            credited,
            load,
            offers,
            horizon,
            fault: None,
            recovery: false,
            policy: PolicyKind::Static,
        }
    }

    /// Per-cycle header probability that yields busy-fraction `load`
    /// when each start occupies the wire for `S` cycles.
    fn header_chance(&self) -> f64 {
        if self.load >= 1.0 {
            1.0
        } else {
            let s = self.stages() as f64;
            self.load / (self.load + s * (1.0 - self.load))
        }
    }

    /// Incast (pattern 4) and hotspot-burst (pattern 5) schedules for the
    /// policy dimension; the base patterns 0–3 live in [`generate`].
    ///
    /// [`generate`]: Scenario::generate
    fn shaped_offers(
        g: &mut SplitMix64,
        n: usize,
        s: usize,
        q: f64,
        horizon: Cycle,
        shape: u8,
    ) -> Vec<Offer> {
        let mut offers = Vec::new();
        let mut next_free = vec![0 as Cycle; n];
        let burst = 4 * s as Cycle;
        for t in 0..horizon {
            for (i, nf) in next_free.iter_mut().enumerate() {
                if *nf > t {
                    continue;
                }
                let start = match shape {
                    // Incast: every input offers at the drawn load.
                    4 => g.chance(q),
                    // Hotspot burst: on/off windows of 4S cycles; the
                    // on-window runs at double intensity.
                    _ => (t / burst).is_multiple_of(2) && g.chance((2.0 * q).min(1.0)),
                };
                if !start {
                    continue;
                }
                let dst = match shape {
                    // N-to-1: 80 % of the traffic converges on output 0.
                    4 => {
                        if g.chance(0.8) {
                            0
                        } else {
                            g.below_usize(n)
                        }
                    }
                    // Burst traffic favors output 0 half the time.
                    _ => {
                        if g.chance(0.5) {
                            0
                        } else {
                            g.below_usize(n)
                        }
                    }
                };
                offers.push(Offer {
                    at: t,
                    input: i,
                    dst,
                    id: 0,
                });
                *nf = t + s as Cycle;
            }
        }
        for (k, o) in offers.iter_mut().enumerate() {
            o.id = k as u64 + 1;
        }
        offers
    }

    /// The same scenario with a seeded bank-upset overlay.
    pub fn with_fault(mut self, rate: f64, seed: u64) -> Scenario {
        self.fault = Some(SeededFault { rate, seed });
        self
    }

    /// The same scenario with ECC recovery armed on the word-level
    /// organizations.
    pub fn with_recovery(mut self) -> Scenario {
        self.recovery = true;
        self
    }

    /// The same scenario under the given buffer-sharing policy. Forces
    /// open-loop offers for non-static policies (policy drops would leak
    /// credits).
    pub fn with_policy(mut self, policy: PolicyKind) -> Scenario {
        self.policy = policy;
        if !policy.is_static() {
            self.credited = false;
        }
        self
    }

    /// Replacement offer schedule (shrinker helper); geometry untouched.
    pub fn with_offers(&self, offers: Vec<Offer>) -> Scenario {
        Scenario {
            offers,
            ..self.clone()
        }
    }

    /// Largest port index referenced by the schedule (for `n` shrinking).
    pub fn max_port(&self) -> usize {
        self.offers
            .iter()
            .map(|o| o.input.max(o.dst))
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Scenario {
    /// Replayable form: one header line with every generation parameter,
    /// then the schedule, one offer per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scenario seed={:#018x} n={} slots={} credited={} load={:.2} horizon={} policy={}",
            self.seed,
            self.n,
            self.slots,
            self.credited,
            self.load,
            self.horizon,
            self.policy.token()
        )?;
        if let Some(sf) = &self.fault {
            write!(
                f,
                " fault=bank-upset rate={:.4} fseed={:#x}",
                sf.rate, sf.seed
            )?;
        }
        if self.recovery {
            write!(f, " recovery=ecc")?;
        }
        for o in &self.offers {
            write!(
                f,
                "\n  offer id={} at={} in={} dst={}",
                o.id, o.at, o.input, o.dst
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Scenario::generate(0xDEAD_BEEF);
        let b = Scenario::generate(0xDEAD_BEEF);
        assert_eq!(a, b, "same seed, same scenario, bit for bit");
        let c = Scenario::generate(0xDEAD_BEF0);
        assert_ne!(a, c, "neighboring seeds diverge");
    }

    #[test]
    fn schedule_respects_wire_framing() {
        for seed in 0..64u64 {
            let sc = Scenario::generate(seed);
            let s = sc.stages() as Cycle;
            let mut last = vec![None::<Cycle>; sc.n];
            for o in &sc.offers {
                assert!(o.dst < sc.n && o.input < sc.n);
                if let Some(prev) = last[o.input] {
                    assert!(
                        o.at >= prev + s,
                        "input {} offers at {} and {}: closer than S={}",
                        o.input,
                        prev,
                        o.at,
                        s
                    );
                }
                last[o.input] = Some(o.at);
            }
        }
    }

    #[test]
    fn ids_are_unique_and_stable() {
        let sc = Scenario::generate(7);
        let mut ids: Vec<u64> = sc.offers.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), sc.offers.len(), "duplicate packet id");
        assert!(!ids.contains(&0), "id 0 is reserved for hand-built cases");
    }

    #[test]
    fn credited_reservations_fit_the_buffer() {
        for seed in 0..128u64 {
            let sc = Scenario::generate(seed);
            if sc.credited {
                let total = sc.credits_per_input() as usize * sc.n;
                assert!(
                    total <= sc.slots,
                    "credits {}x{} exceed {} slots",
                    sc.credits_per_input(),
                    sc.n,
                    sc.slots
                );
            }
        }
    }

    #[test]
    fn display_round_trips_the_parameters() {
        let sc = Scenario::generate(42).with_fault(0.01, 9);
        let text = format!("{sc}");
        assert!(text.contains("seed=0x000000000000002a"));
        assert!(text.contains("fault=bank-upset"));
        assert!(text.lines().count() == sc.offers.len() + 1);
    }

    #[test]
    fn policy_dimension_covers_every_kind() {
        use std::collections::HashSet;
        let mut tokens = HashSet::new();
        for seed in 0..256u64 {
            let sc = Scenario::generate(seed);
            tokens.insert(sc.policy.token());
            if !sc.policy.is_static() {
                assert!(
                    !sc.credited,
                    "seed {seed}: non-static policy must force open-loop offers"
                );
            }
        }
        for kind in PolicyKind::all_default() {
            assert!(
                tokens.contains(kind.token()),
                "256 seeds never drew policy {}",
                kind.token()
            );
        }
    }

    #[test]
    fn policy_draw_keeps_base_geometry_bit_identical() {
        // The policy/shape draw comes from its own SplitMix64 stream, so
        // seeds that draw the static policy with no shape override must
        // produce exactly the pre-policy schedule (same offers, framing,
        // slot count) — that is what pins old regression seeds in place.
        for seed in 0..64u64 {
            let sc = Scenario::generate(seed);
            let again = Scenario::generate(seed);
            assert_eq!(sc.offers, again.offers, "seed {seed}");
            assert_eq!(sc.policy.token(), again.policy.token(), "seed {seed}");
        }
    }

    #[test]
    fn display_names_the_policy_for_the_shrinker() {
        for kind in PolicyKind::all_default() {
            let sc = Scenario::generate(11).with_policy(kind);
            let header = format!("{sc}");
            let header = header.lines().next().unwrap().to_string();
            assert!(
                header.ends_with(&format!("policy={}", kind.token())),
                "header {header:?} does not name policy {}",
                kind.token()
            );
        }
    }

    #[test]
    fn with_policy_forces_open_loop_for_non_static() {
        let base = Scenario::generate(3);
        let dt = base.clone().with_policy(PolicyKind::dynamic_thresholds());
        assert!(!dt.credited);
        let st = base.clone().with_policy(PolicyKind::Static);
        assert_eq!(st.credited, base.credited);
    }

    #[test]
    fn shaped_offers_respect_wire_framing() {
        // Incast / hotspot overrides must still emit legal back-to-back
        // schedules: one header per S cycles per input, ids unique.
        let mut shaped = 0usize;
        for seed in 0..256u64 {
            let sc = Scenario::generate(seed);
            let s = sc.stages() as Cycle;
            let mut last: Vec<Option<Cycle>> = vec![None; sc.n];
            for o in &sc.offers {
                if let Some(prev) = last[o.input] {
                    assert!(o.at >= prev + s, "seed {seed}: framing violation");
                }
                last[o.input] = Some(o.at);
            }
            let to_zero = sc.offers.iter().filter(|o| o.dst == 0).count();
            if sc.offers.len() >= 8 && to_zero * 2 > sc.offers.len() {
                shaped += 1;
            }
        }
        assert!(
            shaped >= 8,
            "expected a visible incast/hotspot share of seeds, saw {shaped}"
        );
    }
}
