//! # conformance — differential conformance fuzzer
//!
//! One seeded scenario engine drives **four memory organizations** of the
//! same switch — the pipelined-memory RTL ([`switch_core::rtl`]), the
//! behavioral model ([`switch_core::behavioral`]), the wide-memory
//! organization of fig. 3 ([`switch_core::widemem`]) and the interleaved
//! one-packet-per-bank organization ([`switch_core::ibank`]) — through
//! **identical arrival schedules** and checks them all against a shared
//! oracle:
//!
//! * per-flow FIFO order on every `(input, output)` flow;
//! * zero loss whenever credit backpressure is active, and credit
//!   conservation (final audit against the testbench ledger);
//! * packet conservation per organization (arrived = departed + counted
//!   losses, nothing in flight after drain);
//! * payload integrity of every delivered word;
//! * cut-through latency bounded per packet and, in aggregate, by the
//!   §3.4 staggered-initiation formula `(p/4)·(n−1)/n`;
//! * cycle-exact agreement between the pipelined RTL and the behavioral
//!   model on every per-packet departure interval.
//!
//! Scenarios come from [`SplitMix64::stream`](simkernel::SplitMix64), so a
//! campaign is bit-reproducible at any `--jobs` parallelism. When a check
//! fails, a greedy shrinker ([`shrink()`]) reduces the scenario to a minimal
//! reproducer — fewer packets, fewer slots, a smaller switch — that still
//! fails the same way, and prints it as a replayable seed + schedule.
//! Coverage counters ([`engine::Coverage`]) gate that the campaign
//! actually reached the §3.2 corner cases (read/write arbitration
//! collisions, same-cycle transmission starts, full-buffer stalls,
//! cut-through hits).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod engine;
pub mod oracle;
pub mod scenario;
pub mod shrink;

pub use driver::{run, Delivery, Launch, Org, RunOutcome};
pub use engine::{run_seed, Coverage, Failure, SeedOutcome, SeedReport};
pub use oracle::{check_scenario, ScenarioStats};
pub use scenario::{Offer, Scenario, SeededFault};
pub use shrink::shrink;
pub use switch_core::PolicyKind;
