//! Campaign engine: one seed in, one verdict out — plus the coverage
//! aggregation that gates whether a campaign actually exercised the
//! corner cases it claims to have tested.
//!
//! [`run_seed`] is a pure function of `(base_seed, index)`, so a campaign
//! can be sharded across any number of workers (`sweep::map` in the bench
//! harness) and still produce bit-identical reports.

use crate::driver::{run_with, Org};
use crate::oracle::{check_scenario, ScenarioStats};
use crate::scenario::Scenario;
use crate::shrink::shrink;
use simkernel::error::SimError;
use simkernel::split_seed;
use std::fmt;
use telemetry::{flight, TelemetryConfig};

/// Cycles of probe events retained when a failing seed is replayed for
/// its post-mortem dump (the flight-recorder window).
pub const POST_MORTEM_WINDOW: usize = 256;

/// RNG stream offset separating campaign indices from the scenario
/// stream itself: scenario `k` of base seed `B` is generated from
/// `split_seed(B, k)`.
pub const CAMPAIGN_BASE_SEED: u64 = 0xC0F0_2026;

/// A failing seed, fully processed: the original divergence, the
/// scenario that produced it, and the shrunk minimal reproducer.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The divergence the full scenario produced.
    pub error: SimError,
    /// The generated scenario.
    pub scenario: Scenario,
    /// The minimal reproducer (still fails the oracle).
    pub shrunk: Scenario,
    /// The divergence the minimal reproducer produces.
    pub shrunk_error: SimError,
    /// Flight-recorder post-mortem: the last [`POST_MORTEM_WINDOW`]
    /// probe events of the shrunk reproducer replayed on the pipelined
    /// RTL (the design under test).
    pub dump: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DIVERGENCE: {}", self.error)?;
        writeln!(
            f,
            "  original: {} offers on n={} slots={} (seed {:#018x})",
            self.scenario.offers.len(),
            self.scenario.n,
            self.scenario.slots,
            self.scenario.seed
        )?;
        writeln!(
            f,
            "  shrunk reproducer ({} offers): {}",
            self.shrunk.offers.len(),
            self.shrunk_error
        )?;
        writeln!(f, "  {}", self.shrunk)?;
        write!(f, "{}", self.dump)
    }
}

/// Replay the shrunk reproducer on the pipelined RTL with a bounded
/// flight recorder attached and render the post-mortem event window.
fn record_post_mortem(shrunk: &Scenario, shrunk_error: &SimError) -> String {
    let rec = TelemetryConfig::last(POST_MORTEM_WINDOW)
        .recorder()
        .expect("last(w) always enables a recorder");
    let _ = run_with(shrunk, Org::Pipelined, Some(rec.handle()));
    flight::post_mortem_shared(&format!("{shrunk_error}"), &rec)
}

/// The verdict for one campaign seed.
#[derive(Debug, Clone)]
pub enum SeedOutcome {
    /// All organizations agreed; coverage stats collected.
    Pass(ScenarioStats),
    /// A divergence, with its shrunk reproducer.
    Fail(Box<Failure>),
}

/// One seed's verdict, tagged with its campaign position.
#[derive(Debug, Clone)]
pub struct SeedReport {
    /// Campaign index (0-based).
    pub index: u64,
    /// The derived scenario seed (`split_seed(base, index)`).
    pub scenario_seed: u64,
    /// What happened.
    pub outcome: SeedOutcome,
}

/// Run campaign seed `index` of `base`: generate, replay on all four
/// organizations, check the oracle, shrink on failure. Pure function of
/// its arguments — shard it freely.
pub fn run_seed(base: u64, index: u64) -> SeedReport {
    let scenario_seed = split_seed(base, index);
    let mut scenario = Scenario::generate(scenario_seed);
    // Every fourth seed replays under an ECC-recovery overlay: a low-rate
    // upset plan the armed organizations must correct back to full
    // conformance (open-loop — an uncorrectable double-hit in credited
    // mode would leak a credit and wedge the drain, which is the e16
    // harness's resync territory, not the differential oracle's).
    if index % 4 == 3 {
        scenario = scenario
            .with_fault(0.02, scenario_seed ^ 0x0ECC)
            .with_recovery();
        scenario.credited = false;
        // Fault overlays never combine with non-static sharing policies:
        // recovery shedding takes priority over policy admission, so a
        // policy draw on these seeds would test neither subsystem cleanly.
        scenario.policy = switch_core::PolicyKind::Static;
    }
    let outcome = match check_scenario(&scenario) {
        Ok(stats) => SeedOutcome::Pass(stats),
        Err(error) => {
            let (shrunk, shrunk_error) = shrink(&scenario);
            let dump = record_post_mortem(&shrunk, &shrunk_error);
            SeedOutcome::Fail(Box::new(Failure {
                error,
                scenario,
                shrunk,
                shrunk_error,
                dump,
            }))
        }
    };
    SeedReport {
        index,
        scenario_seed,
        outcome,
    }
}

/// Campaign-wide aggregation: corner-case coverage counters and the §3.4
/// latency population.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Coverage {
    /// Scenarios checked.
    pub scenarios: u64,
    /// Scenarios that diverged.
    pub failures: u64,
    /// Total packets launched (pipelined runs).
    pub launched: u64,
    /// Total packets delivered (pipelined runs).
    pub delivered: u64,
    /// §3.2 read/write arbitration collisions reached.
    pub rw_collisions: u64,
    /// §3.3 fused cut-through reads reached.
    pub cut_through_hits: u64,
    /// Same-cycle transmission starts reached.
    pub same_cycle_starts: u64,
    /// Full-buffer backpressure events reached.
    pub full_buffer_stalls: u64,
    /// Σ (head latency − 2) over idle-output departures.
    pub idle_excess_sum: f64,
    /// Idle-output departures measured.
    pub idle_excess_count: u64,
    /// Σ §3.4 formula over the same departures.
    pub idle_formula_sum: f64,
}

impl Coverage {
    /// Fold one seed's verdict in.
    pub fn absorb(&mut self, report: &SeedReport) {
        self.scenarios += 1;
        match &report.outcome {
            SeedOutcome::Pass(s) => {
                self.launched += s.launched;
                self.delivered += s.delivered;
                self.rw_collisions += s.rw_collisions;
                self.cut_through_hits += s.cut_through_hits;
                self.same_cycle_starts += s.same_cycle_starts;
                self.full_buffer_stalls += s.full_buffer_stalls;
                self.idle_excess_sum += s.idle_excess_sum;
                self.idle_excess_count += s.idle_excess_count;
                self.idle_formula_sum += s.idle_formula_sum;
            }
            SeedOutcome::Fail(_) => self.failures += 1,
        }
    }

    /// Did the campaign reach every §3.2/§3.3 corner case at least once?
    /// A campaign that never collided a read with a write, never started
    /// two transmissions in one cycle, never filled the buffer and never
    /// cut a packet through proves much less than its seed count implies.
    pub fn corner_cases_reached(&self) -> bool {
        self.rw_collisions > 0
            && self.cut_through_hits > 0
            && self.same_cycle_starts > 0
            && self.full_buffer_stalls > 0
    }

    /// Mean extra cut-through latency over idle-output departures.
    pub fn mean_idle_excess(&self) -> f64 {
        if self.idle_excess_count == 0 {
            0.0
        } else {
            self.idle_excess_sum / self.idle_excess_count as f64
        }
    }

    /// Mean §3.4 prediction over the same population.
    pub fn mean_formula(&self) -> f64 {
        if self.idle_excess_count == 0 {
            0.0
        } else {
            self.idle_formula_sum / self.idle_excess_count as f64
        }
    }

    /// Statistical §3.4 gate: with enough samples, the measured mean
    /// extra latency must sit within a generous envelope of the formula.
    /// (The per-packet hard bound is enforced per scenario by the oracle;
    /// this catches systematic drift the hard bound would miss.)
    pub fn latency_within_formula(&self) -> bool {
        // Below this the mean is dominated by whichever load mix the few
        // scenarios happened to draw (second-order queueing noise, not
        // drift): an 8-seed campaign can sit past the envelope with no
        // model at fault. CI budgets (64+ seeds) are well above it.
        const MIN_SAMPLES: u64 = 2000;
        if self.idle_excess_count < MIN_SAMPLES {
            return true;
        }
        self.mean_idle_excess() <= 3.0 * self.mean_formula() + 0.3
    }

    /// Deterministic multi-line summary (no timestamps, no floats beyond
    /// fixed precision) — safe to diff byte-for-byte across `--jobs`.
    pub fn summary(&self) -> String {
        format!(
            "scenarios            {:>8}\n\
             divergences          {:>8}\n\
             packets launched     {:>8}\n\
             packets delivered    {:>8}\n\
             coverage: rw-arbitration collisions {:>8}\n\
             coverage: cut-through hits          {:>8}\n\
             coverage: same-cycle starts         {:>8}\n\
             coverage: full-buffer stalls        {:>8}\n\
             sec3.4: idle-output departures      {:>8}\n\
             sec3.4: mean extra latency          {:>8.4}\n\
             sec3.4: formula prediction          {:>8.4}",
            self.scenarios,
            self.failures,
            self.launched,
            self.delivered,
            self.rw_collisions,
            self.cut_through_hits,
            self.same_cycle_starts,
            self.full_buffer_stalls,
            self.idle_excess_count,
            self.mean_idle_excess(),
            self.mean_formula(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_seed_is_reproducible() {
        let a = run_seed(CAMPAIGN_BASE_SEED, 3);
        let b = run_seed(CAMPAIGN_BASE_SEED, 3);
        assert_eq!(a.scenario_seed, b.scenario_seed);
        match (&a.outcome, &b.outcome) {
            (SeedOutcome::Pass(x), SeedOutcome::Pass(y)) => assert_eq!(x, y),
            (SeedOutcome::Fail(x), SeedOutcome::Fail(y)) => {
                assert_eq!(x.shrunk, y.shrunk);
            }
            _ => panic!("verdict flipped between identical runs"),
        }
    }

    #[test]
    fn post_mortem_dump_carries_the_event_window() {
        // Any failing seed gets this dump attached; force the rendering
        // path directly on a known-good scenario.
        let sc = Scenario::generate(split_seed(CAMPAIGN_BASE_SEED, 0));
        let err = SimError::Watchdog {
            limit: 1,
            context: "forced".to_string(),
        };
        let dump = record_post_mortem(&sc, &err);
        assert!(dump.contains("post-mortem"), "headline present: {dump}");
        assert!(dump.contains("forced"), "error text in headline");
        assert!(
            dump.contains("header"),
            "the event window must show arrivals:\n{dump}"
        );
    }

    #[test]
    fn coverage_accumulates_across_seeds() {
        let mut cov = Coverage::default();
        for k in 0..12 {
            cov.absorb(&run_seed(CAMPAIGN_BASE_SEED, k));
        }
        assert_eq!(cov.scenarios, 12);
        assert_eq!(cov.failures, 0, "clean models must not diverge");
        assert!(cov.launched > 0 && cov.delivered > 0 && cov.delivered <= cov.launched);
        assert!(cov.latency_within_formula());
    }
}
