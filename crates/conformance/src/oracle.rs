//! The shared oracle: what *must* hold, for every organization and
//! across organizations, when they replay the same scenario.
//!
//! Every violated property becomes a [`SimError::Divergence`] naming the
//! failed check — the value the shrinker minimizes against, so a shrunk
//! reproducer still fails the *same* check as the original.

use crate::driver::{run, Org, RunOutcome};
use crate::scenario::Scenario;
use simkernel::error::SimError;
use simkernel::ids::Cycle;
use std::collections::{BTreeSet, HashMap};

/// Per-scenario statistics the campaign aggregates: coverage counters
/// (did the schedule actually reach the §3.2 corner cases?) and the §3.4
/// latency measurement population.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScenarioStats {
    /// Packets launched (pipelined run).
    pub launched: u64,
    /// Packets delivered (pipelined run).
    pub delivered: u64,
    /// Cycles where a read wave and a write wave contended for the single
    /// initiation port (§3.2 arbitration collision).
    pub rw_collisions: u64,
    /// Reads that fused onto their packet's write wave (§3.3 cut-through).
    pub cut_through_hits: u64,
    /// Cycles where two or more inputs started transmission together.
    pub same_cycle_starts: u64,
    /// Full-buffer backpressure events: credit-starved input cycles plus
    /// buffer-full drops in open mode, summed over organizations.
    pub full_buffer_stalls: u64,
    /// Σ (head latency − 2) over idle-output behavioral departures.
    pub idle_excess_sum: f64,
    /// Number of idle-output behavioral departures.
    pub idle_excess_count: u64,
    /// Σ of the §3.4 formula `(p/4)·(n−1)/n` evaluated at this scenario's
    /// measured load, once per idle-output departure.
    pub idle_formula_sum: f64,
}

/// The §3.4 expected extra cut-through latency at load `p`, `n` ports.
pub fn staggered_initiation_formula(p: f64, n: usize) -> f64 {
    (p / 4.0) * (n as f64 - 1.0) / n as f64
}

fn div(check: &str, detail: String) -> SimError {
    SimError::Divergence {
        check: check.to_string(),
        detail,
    }
}

/// Run all four organizations on `sc` and check the shared oracle.
pub fn check_scenario(sc: &Scenario) -> Result<ScenarioStats, SimError> {
    let runs: Vec<RunOutcome> = Org::ALL.iter().map(|&o| run(sc, o)).collect();
    check_runs(sc, &runs)
}

/// Oracle over already-collected runs (one per organization, in
/// [`Org::ALL`] order).
pub fn check_runs(sc: &Scenario, runs: &[RunOutcome]) -> Result<ScenarioStats, SimError> {
    for r in runs {
        if let Some(e) = &r.error {
            return Err(e.clone());
        }
        check_one(sc, r)?;
    }
    let rtl = &runs[0];
    let bhv = &runs[1];
    // Declared recovery activity legitimately perturbs cross-organization
    // exactness: failover windows shed packets, and an *uncorrectable*
    // upset (a multi-bit hit beyond SEC-DED) falls back to detect-and-
    // drop, removing a packet the clean reference delivers. Corrections
    // alone excuse nothing — a corrections-only armed run still faces the
    // full oracle.
    let recovering = sc.recovery
        && runs.iter().any(|r| {
            r.recovery.windows.count() > 0
                || r.counters.recovery_shed > 0
                || r.counters.ecc_uncorrectable > 0
                || r.counters.corrupt_drops > 0
        });
    if !recovering {
        check_rtl_behavioral_exact(rtl, bhv)?;
        if sc.credited {
            check_delivered_sets_equal(runs)?;
        }
    }
    check_latency(sc, bhv)?;
    let mut stats = ScenarioStats {
        launched: rtl.launches.len() as u64,
        delivered: rtl.deliveries.len() as u64,
        rw_collisions: rtl.counters.rw_collisions,
        cut_through_hits: rtl.counters.fused_reads,
        same_cycle_starts: rtl.same_cycle_starts,
        full_buffer_stalls: runs
            .iter()
            .map(|r| r.stalls + r.counters.dropped_buffer_full)
            .sum(),
        ..ScenarioStats::default()
    };
    accumulate_latency(sc, bhv, &mut stats);
    Ok(stats)
}

/// Properties of a single organization's run.
fn check_one(sc: &Scenario, r: &RunOutcome) -> Result<(), SimError> {
    let s = sc.stages() as Cycle;
    let c = &r.counters;
    let org = r.org;
    if c.arrived != r.launches.len() as u64 {
        return Err(div(
            &format!("{org}-conservation"),
            format!(
                "launched {} but switch counted {} arrivals",
                r.launches.len(),
                c.arrived
            ),
        ));
    }
    if c.departed != r.deliveries.len() as u64 {
        return Err(div(
            &format!("{org}-conservation"),
            format!(
                "switch counted {} departures but {} packets were collected",
                c.departed,
                r.deliveries.len()
            ),
        ));
    }
    // Conservation is never excused: every arrival is delivered or shows
    // up in exactly one loss counter. Policy drops and preemptions are
    // *credited* loss — the policy declared them — but they still have
    // to balance the ledger.
    let accounted = c.departed
        + c.dropped_buffer_full
        + c.latch_overruns
        + c.corrupt_drops
        + c.policy_drops
        + c.policy_preempts;
    if c.arrived != accounted {
        return Err(div(
            &format!("{org}-conservation"),
            format!(
                "{} arrived != {} departed + {} dropped + {} overrun + {} scrubbed \
                 + {} policy-dropped + {} preempted",
                c.arrived,
                c.departed,
                c.dropped_buffer_full,
                c.latch_overruns,
                c.corrupt_drops,
                c.policy_drops,
                c.policy_preempts
            ),
        ));
    }
    // A static pool never invokes the policy counters; any count under
    // the static policy is a model bug, not credited loss.
    if sc.policy.is_static() && (c.policy_drops > 0 || c.policy_preempts > 0) {
        return Err(div(
            &format!("{org}-policy-loss"),
            format!(
                "static policy yet {} policy drops, {} preemptions",
                c.policy_drops, c.policy_preempts
            ),
        ));
    }
    // An armed run with uncorrectable residue may deliver a damaged
    // packet the egress check flags (a multi-bit hit on a cut-through
    // path, past the droppable point) — that is declared, detected
    // degradation, not a model bug.
    let uncorrectable_residue = sc.recovery && c.ecc_uncorrectable > 0;
    if r.payload_failures > 0 && !uncorrectable_residue {
        return Err(div(
            &format!("{org}-payload"),
            format!(
                "{} delivered packets failed payload verification",
                r.payload_failures
            ),
        ));
    }
    // Credited zero-loss, outside declared recovery windows: shedding at
    // admission during a window is the one sanctioned loss (it is a
    // sub-count of `dropped_buffer_full`, so conservation above already
    // covered it).
    if sc.credited && (c.dropped_buffer_full > c.recovery_shed || c.latch_overruns > 0) {
        return Err(div(
            &format!("{org}-zero-loss"),
            format!(
                "credit backpressure active yet {} buffer-full drops ({} excused as \
                 in-window recovery shed), {} overruns",
                c.dropped_buffer_full, c.recovery_shed, c.latch_overruns
            ),
        ));
    }
    // Per-flow FIFO: on every (input, dst) flow, deliveries ordered by
    // wire time must preserve launch order.
    let mut launch_pos: HashMap<u64, usize> = HashMap::new();
    for (k, l) in r.launches.iter().enumerate() {
        launch_pos.insert(l.id, k);
    }
    let flow_of: HashMap<u64, (usize, usize)> = r
        .launches
        .iter()
        .map(|l| (l.id, (l.input, l.dst)))
        .collect();
    let mut per_flow: HashMap<(usize, usize), Vec<(Cycle, u64)>> = HashMap::new();
    for d in &r.deliveries {
        if let Some(&flow) = flow_of.get(&d.id) {
            per_flow.entry(flow).or_default().push((d.first, d.id));
        }
    }
    for ((input, dst), mut seq) in per_flow {
        seq.sort_unstable();
        let mut prev: Option<usize> = None;
        for (first, id) in seq {
            let pos = launch_pos[&id];
            if let Some(p) = prev {
                if pos <= p {
                    return Err(div(
                        &format!("{org}-flow-fifo"),
                        format!(
                            "flow {input}->{dst}: packet {id} (launch #{pos}) delivered at \
                             cycle {first} after a later-launched packet (launch #{p})"
                        ),
                    ));
                }
            }
            prev = Some(pos);
        }
    }
    // Output-link framing: transmissions are contiguous and never overlap.
    let mut per_out: HashMap<usize, Vec<(Cycle, Cycle, u64)>> = HashMap::new();
    for d in &r.deliveries {
        per_out
            .entry(d.output)
            .or_default()
            .push((d.first, d.last, d.id));
    }
    for (out, mut seq) in per_out {
        seq.sort_unstable();
        let mut prev_last: Option<Cycle> = None;
        for (first, last, id) in seq {
            if last != first + s - 1 {
                return Err(div(
                    &format!("{org}-framing"),
                    format!(
                        "output {out}: packet {id} occupied cycles {first}..={last}, \
                         not {s} contiguous words"
                    ),
                ));
            }
            if let Some(pl) = prev_last {
                if first <= pl {
                    return Err(div(
                        &format!("{org}-framing"),
                        format!(
                            "output {out}: packet {id} starts at {first} before the \
                             previous transmission ended at {pl}"
                        ),
                    ));
                }
            }
            prev_last = Some(last);
        }
    }
    Ok(())
}

/// The pipelined RTL and the behavioral model claim *identical* timing
/// semantics: same launches, same per-packet departure intervals, same
/// drops — cycle for cycle.
fn check_rtl_behavioral_exact(rtl: &RunOutcome, bhv: &RunOutcome) -> Result<(), SimError> {
    if rtl.launches != bhv.launches {
        return Err(div(
            "rtl-vs-behavioral",
            format!(
                "launch schedules diverged: rtl made {} launches, behavioral {} \
                 (first difference at index {})",
                rtl.launches.len(),
                bhv.launches.len(),
                rtl.launches
                    .iter()
                    .zip(&bhv.launches)
                    .position(|(a, b)| a != b)
                    .unwrap_or(rtl.launches.len().min(bhv.launches.len()))
            ),
        ));
    }
    let key = |r: &RunOutcome| -> Vec<(u64, usize, Cycle, Cycle)> {
        let mut v: Vec<_> = r
            .deliveries
            .iter()
            .map(|d| (d.id, d.output, d.first, d.last))
            .collect();
        v.sort_unstable();
        v
    };
    let (a, b) = (key(rtl), key(bhv));
    if a != b {
        let detail = a
            .iter()
            .zip(&b)
            .find(|(x, y)| x != y)
            .map(|(x, y)| format!("first mismatch: rtl {x:?} vs behavioral {y:?}"))
            .unwrap_or_else(|| format!("rtl delivered {}, behavioral {}", a.len(), b.len()));
        return Err(div("rtl-vs-behavioral", detail));
    }
    if rtl.counters.dropped_buffer_full != bhv.counters.dropped_buffer_full {
        return Err(div(
            "rtl-vs-behavioral",
            format!(
                "drop counts diverged: rtl {} vs behavioral {}",
                rtl.counters.dropped_buffer_full, bhv.counters.dropped_buffer_full
            ),
        ));
    }
    if rtl.counters.policy_drops != bhv.counters.policy_drops
        || rtl.counters.policy_preempts != bhv.counters.policy_preempts
    {
        return Err(div(
            "rtl-vs-behavioral",
            format!(
                "policy counters diverged: rtl {}+{} vs behavioral {}+{} (drops+preempts)",
                rtl.counters.policy_drops,
                rtl.counters.policy_preempts,
                bhv.counters.policy_drops,
                bhv.counters.policy_preempts
            ),
        ));
    }
    Ok(())
}

/// Under credit backpressure no organization may lose a packet, so all
/// four must deliver exactly the same id set.
fn check_delivered_sets_equal(runs: &[RunOutcome]) -> Result<(), SimError> {
    let sets: Vec<BTreeSet<u64>> = runs
        .iter()
        .map(|r| r.deliveries.iter().map(|d| d.id).collect())
        .collect();
    for (r, set) in runs.iter().zip(&sets).skip(1) {
        if *set != sets[0] {
            let missing: Vec<u64> = sets[0].difference(set).take(4).copied().collect();
            let extra: Vec<u64> = set.difference(&sets[0]).take(4).copied().collect();
            return Err(div(
                &format!("delivered-set-{}", r.org),
                format!(
                    "{} delivered {} packets vs {} by {}: missing {missing:?}, extra {extra:?}",
                    r.org,
                    set.len(),
                    runs[0].org,
                    sets[0].len()
                ),
            ));
        }
    }
    Ok(())
}

/// Per-packet cut-through latency hard bound: a unicast packet that found
/// its output idle must see its first word leave within `[2, S+1]` cycles
/// of its header — at best the fused §3.3 cut-through (`a+2`), at worst a
/// read fused onto a write wave postponed to its `a+S` deadline.
fn check_latency(sc: &Scenario, bhv: &RunOutcome) -> Result<(), SimError> {
    let s = sc.stages() as Cycle;
    for &h in &bhv.idle_head_latencies {
        if h < 2 || h > s + 1 {
            return Err(div(
                "cut-through-latency",
                format!(
                    "idle-output head latency {h} outside the hard bound [2, {}]",
                    s + 1
                ),
            ));
        }
    }
    Ok(())
}

/// Fold this scenario's §3.4 measurement population into `stats`: the
/// campaign compares Σ excess against Σ formula, weighted per departure.
fn accumulate_latency(sc: &Scenario, bhv: &RunOutcome, stats: &mut ScenarioStats) {
    if bhv.launches.is_empty() {
        return;
    }
    let s = sc.stages() as f64;
    let first = bhv.launches.first().expect("non-empty").at;
    let last = bhv.launches.last().expect("non-empty").at;
    let span = ((last + sc.stages() as Cycle) - first).max(1) as f64;
    let p = (bhv.launches.len() as f64 * s / (sc.n as f64 * span)).min(1.0);
    let formula = staggered_initiation_formula(p, sc.n);
    for &h in &bhv.idle_head_latencies {
        stats.idle_excess_sum += (h as f64) - 2.0;
        stats.idle_excess_count += 1;
        stats.idle_formula_sum += formula;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn a_spread_of_generated_scenarios_passes_the_oracle() {
        for seed in 0..8u64 {
            let sc = Scenario::generate(seed);
            let stats = check_scenario(&sc).unwrap_or_else(|e| {
                panic!("seed {seed} diverged: {e}\n{sc}");
            });
            assert_eq!(stats.launched, sc.offers.len() as u64, "seed {seed}");
        }
    }

    #[test]
    fn formula_matches_the_paper_examples() {
        // §3.4: at p = 1, large n, the extra latency tends to 1/4 cycle.
        assert!((staggered_initiation_formula(1.0, 1_000) - 0.25).abs() < 1e-3);
        assert_eq!(staggered_initiation_formula(0.0, 8), 0.0);
    }

    #[test]
    fn seeded_bank_upsets_are_caught_as_divergences() {
        // Bank upsets are only *observable* while a packet resides in the
        // banks — a fused cut-through read samples the write bus and
        // never re-reads the upset word, so low-residency scenarios
        // legitimately mask faults. Across a seed spread with a high
        // upset rate, the oracle must still notice on most scenarios.
        let mut caught = 0;
        for seed in 0..12u64 {
            // Base corpus: fault-detection statistics are pinned to the
            // pre-policy schedule distribution (and fault overlays never
            // combine with non-static policies anyway).
            let sc = Scenario::generate_base(seed).with_fault(0.3, seed ^ 0xFA17);
            if check_scenario(&sc).is_err() {
                caught += 1;
            }
        }
        assert!(caught >= 7, "only {caught}/12 fault overlays detected");
    }

    #[test]
    fn ecc_recovery_restores_conformance_under_upsets() {
        // The same fault overlays that the previous test requires the
        // oracle to *catch* must, with ECC recovery armed, be corrected
        // in place — every organization back in exact agreement with the
        // clean behavioral reference, full oracle strictness included
        // (corrections open no recovery windows).
        let mut corrected = 0u64;
        let mut fully_exact = 0u64;
        for seed in 0..12u64 {
            let mut sc = Scenario::generate_base(seed)
                .with_fault(0.3, seed ^ 0xFA17)
                .with_recovery();
            // Open-loop offers: a packet condemned as uncorrectable never
            // returns its credit, and the conformance driver (unlike the
            // e16 harness) runs no mid-flight credit resync — a credited
            // schedule would wedge on exactly the rare double-hit this
            // test tolerates.
            sc.credited = false;
            let runs: Vec<crate::driver::RunOutcome> =
                Org::ALL.iter().map(|&o| run(&sc, o)).collect();
            check_runs(&sc, &runs).unwrap_or_else(|e| {
                panic!("seed {seed} diverged with recovery armed: {e}\n{sc}");
            });
            // A multi-bit double hit on one word is beyond SEC-DED and
            // legitimately falls back to detect-and-drop; at this rate it
            // must stay the rare exception, not the rule.
            if runs[0].counters.corrupt_drops == 0 && runs[0].counters.ecc_uncorrectable == 0 {
                fully_exact += 1;
            }
            corrected += runs[0].recovery.corrections;
        }
        assert!(corrected > 0, "the overlays never exercised the ECC path");
        assert!(
            fully_exact >= 9,
            "only {fully_exact}/12 armed runs were corrected to full exactness"
        );
    }
}
