//! Greedy counterexample shrinking (delta debugging).
//!
//! Given a scenario that fails the oracle, repeatedly try smaller
//! variants — fewer packets (chunked removal, halving granularity down to
//! single offers), fewer buffer slots, a smaller switch, an earlier time
//! origin — keeping each variant only if it *still fails*. The result is
//! a local minimum: removing any single offer or halving any dimension
//! again makes the failure disappear.
//!
//! Each candidate evaluation replays all four organizations, so the total
//! number of evaluations is capped; within the cap the loop runs to a
//! fixpoint.

use crate::oracle::check_scenario;
use crate::scenario::{Offer, Scenario};
use simkernel::error::SimError;

/// Evaluation budget: candidate scenarios tried before the shrinker
/// settles for the best reproducer found so far.
const BUDGET: usize = 800;

struct Shrinker {
    evals: usize,
}

impl Shrinker {
    /// `Some(error)` if the candidate still fails (and budget remains).
    fn fails(&mut self, cand: &Scenario) -> Option<SimError> {
        if self.evals >= BUDGET {
            return None;
        }
        self.evals += 1;
        check_scenario(cand).err()
    }

    fn out_of_budget(&self) -> bool {
        self.evals >= BUDGET
    }
}

/// Shrink a failing scenario to a minimal reproducer. Returns the
/// smallest scenario found and the divergence it still produces.
///
/// Panics if `sc` does not fail the oracle.
pub fn shrink(sc: &Scenario) -> (Scenario, SimError) {
    let mut sh = Shrinker { evals: 0 };
    let mut best = sc.clone();
    let mut best_err = sh
        .fails(&best)
        .expect("shrink called on a scenario that passes the oracle");
    loop {
        let mut improved = false;
        improved |= shrink_offers(&mut sh, &mut best, &mut best_err);
        improved |= shrink_slots(&mut sh, &mut best, &mut best_err);
        improved |= shrink_ports(&mut sh, &mut best, &mut best_err);
        improved |= shift_origin(&mut sh, &mut best, &mut best_err);
        if !improved || sh.out_of_budget() {
            break;
        }
    }
    (best, best_err)
}

/// Remove offer chunks, halving the granularity down to single offers.
fn shrink_offers(sh: &mut Shrinker, best: &mut Scenario, best_err: &mut SimError) -> bool {
    let mut improved = false;
    let mut gran = best.offers.len().div_ceil(2).max(1);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < best.offers.len() {
            if sh.out_of_budget() {
                return improved;
            }
            let end = (i + gran).min(best.offers.len());
            let mut offers = best.offers.clone();
            offers.drain(i..end);
            let cand = best.with_offers(offers);
            if let Some(e) = sh.fails(&cand) {
                *best = cand;
                *best_err = e;
                removed_any = true;
                improved = true;
                // Same index now points at the next surviving chunk.
            } else {
                i = end;
            }
        }
        if gran == 1 {
            if !removed_any {
                return improved;
            }
            // One more sweep at single-offer granularity.
        } else {
            gran = (gran / 2).max(1);
        }
    }
}

/// Halve the buffer while the failure persists. In credited mode the
/// buffer may not drop below one slot per input, or the zero-loss
/// precondition (reservations ≤ capacity) would no longer hold.
fn shrink_slots(sh: &mut Shrinker, best: &mut Scenario, best_err: &mut SimError) -> bool {
    let floor = if best.credited { best.n } else { 1 };
    let mut improved = false;
    while best.slots / 2 >= floor {
        if sh.out_of_budget() {
            return improved;
        }
        let mut cand = best.clone();
        cand.slots /= 2;
        match sh.fails(&cand) {
            Some(e) => {
                *best = cand;
                *best_err = e;
                improved = true;
            }
            None => break,
        }
    }
    improved
}

/// Halve the switch itself when no surviving offer uses the upper ports.
fn shrink_ports(sh: &mut Shrinker, best: &mut Scenario, best_err: &mut SimError) -> bool {
    let mut improved = false;
    while best.n / 2 >= 1 && best.max_port() < best.n / 2 {
        if sh.out_of_budget() {
            return improved;
        }
        let mut cand = best.clone();
        cand.n /= 2;
        if cand.credited && cand.slots < cand.n {
            break;
        }
        match sh.fails(&cand) {
            Some(e) => {
                *best = cand;
                *best_err = e;
                improved = true;
            }
            None => break,
        }
    }
    improved
}

/// Translate the schedule to start at cycle 0 (cosmetic, but makes
/// reproducers read as self-contained traces).
fn shift_origin(sh: &mut Shrinker, best: &mut Scenario, best_err: &mut SimError) -> bool {
    let Some(base) = best.offers.iter().map(|o| o.at).min() else {
        return false;
    };
    if base == 0 || sh.out_of_budget() {
        return false;
    }
    let offers: Vec<Offer> = best
        .offers
        .iter()
        .map(|o| Offer {
            at: o.at - base,
            ..*o
        })
        .collect();
    let cand = best.with_offers(offers);
    if let Some(e) = sh.fails(&cand) {
        *best = cand;
        *best_err = e;
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "passes the oracle")]
    fn refuses_a_passing_scenario() {
        let sc = Scenario::generate(0);
        let _ = shrink(&sc);
    }
}
