//! Golden-model equivalence: the pipelined memory must return exactly
//! the data a true multi-port memory would, for any legal schedule of
//! wave initiations — the organizations differ in cost and timing, never
//! in contents.
//!
//! Schedules are drawn from `SplitMix64` with fixed seeds (no external
//! property-testing dependency), so every run checks the same population
//! of cases.

use membank::multiport::MultiPortMemory;
use membank::pipelined::{PipelinedMemory, WaveOp};
use simkernel::ids::Addr;
use simkernel::SplitMix64;

/// A random legal schedule: per cycle, at most one initiation.
#[derive(Debug, Clone)]
enum Op {
    Idle,
    Write { addr: usize, seed: u64 },
    Read { addr: usize },
}

/// Weighted draw matching the old strategy: 2 idle : 3 write : 3 read.
fn random_ops(rng: &mut SplitMix64, depth: usize) -> Vec<Op> {
    let len = rng.below_usize(120);
    (0..len)
        .map(|_| match rng.below(8) {
            0 | 1 => Op::Idle,
            2..=4 => Op::Write {
                addr: rng.below_usize(depth),
                seed: rng.next_u64(),
            },
            _ => Op::Read {
                addr: rng.below_usize(depth),
            },
        })
        .collect()
}

#[test]
fn pipelined_matches_multiport_golden() {
    let mut gen = SplitMix64::new(0x5EED_0020);
    for case in 0..128u64 {
        let ops = random_ops(&mut gen, 8);
        let stages = 4;
        let depth = 8;
        let mut pipe = PipelinedMemory::new(stages, depth, 64);
        // Golden model: word-addressed, effectively unlimited ports.
        let mut gold = MultiPortMemory::new(stages * depth, 64, 64);
        // Track, per slot, the value set at the *time each read was
        // initiated* — the pipelined read of slot A initiated at t must
        // return the contents as of t (later writes must not corrupt it,
        // earlier same-cycle rule: reads see pre-initiation contents).
        let mut shadow: Vec<Vec<u64>> = vec![vec![0; stages]; depth];
        let mut expected_reads: Vec<(usize, Vec<u64>)> = Vec::new();
        let mut got_reads: Vec<(usize, Vec<u64>)> = Vec::new();

        for (t, op) in ops.iter().enumerate() {
            gold.begin_cycle(t as u64);
            match op {
                Op::Idle => {}
                Op::Write { addr, seed } => {
                    let words: Vec<u64> = (0..stages as u64)
                        .map(|k| seed.wrapping_mul(31).wrapping_add(k))
                        .collect();
                    // Initiation order within a cycle: a write initiated
                    // at t lands in stage k at t+k; a read initiated at
                    // any t' > t of the same slot sees it (reads trail
                    // writes). Shadow: commit at initiation.
                    shadow[*addr] = words.clone();
                    for (k, w) in words.iter().enumerate() {
                        gold.write(Addr(addr + k * depth), *w)
                            .expect("golden ports");
                    }
                    pipe.initiate(WaveOp::Write {
                        addr: Addr(*addr),
                        words,
                    })
                    .expect("one per cycle");
                }
                Op::Read { addr } => {
                    expected_reads.push((*addr, shadow[*addr].clone()));
                    pipe.initiate(WaveOp::Read { addr: Addr(*addr) })
                        .expect("one per cycle");
                }
            }
            for r in pipe.tick() {
                got_reads.push((r.addr.index(), r.words.clone()));
            }
        }
        for r in pipe.drain() {
            got_reads.push((r.addr.index(), r.words.clone()));
        }
        assert_eq!(got_reads.len(), expected_reads.len(), "case {case}");
        // Reads complete in initiation order (waves can't overtake).
        for (got, want) in got_reads.iter().zip(&expected_reads) {
            assert_eq!(
                got, want,
                "case {case}: pipelined read diverged from golden model"
            );
        }
    }
}

#[test]
fn interleaved_streaming_matches_contents() {
    use membank::interleaved::InterleavedMemory;
    let mut gen = SplitMix64::new(0x5EED_0021);
    for case in 0..128u64 {
        let packets: Vec<u64> = (0..1 + gen.below_usize(15))
            .map(|_| gen.next_u64())
            .collect();
        let words = 4;
        let mut m = InterleavedMemory::new(packets.len(), words, 64);
        let mut banks = Vec::new();
        // Stream every packet in (each to its own bank, all concurrent —
        // the PRIZMA selling point).
        for seed in &packets {
            banks.push((m.allocate().expect("capacity == packets"), *seed));
        }
        for k in 0..words {
            m.begin_cycle(k as u64);
            for (bank, seed) in &banks {
                m.write_word(*bank, k, seed.wrapping_add(k as u64))
                    .expect("distinct banks");
            }
        }
        for k in 0..words {
            m.begin_cycle((words + k) as u64);
            for (bank, seed) in &banks {
                let v = m.read_word(*bank, k).expect("distinct banks");
                assert_eq!(v, seed.wrapping_add(k as u64), "case {case}");
            }
        }
    }
}
