//! Shift-register packet storage — considered and rejected in §5.3.
//!
//! "Implementing the banks as shift-registers would not solve this problem,
//! because one (dynamic) shift-register bit is 4 times larger than one
//! (3-transistor dynamic) RAM bit. Shift-registers would also preclude
//! cut-through." This module implements the organization anyway so the
//! claim can be demonstrated: data is only available after traversing the
//! full register chain (no random access, hence no cut-through), and
//! `vlsimodel` carries the 4× area factor.
//!
//! The *semantics* are a physical word-by-word shift, but the *model*
//! realizes each shift as an O(1) rotation of a circular buffer: moving
//! the head pointer back one slot relabels every word one position later
//! in the chain, which is exactly what copying all of them would do.
//! Validity is a packed bitset (64 slots per machine word) and occupancy
//! is maintained incrementally, so no operation scans the chain.

use simkernel::ids::Cycle;

/// A `length`-word shift register: words pushed in one end emerge,
/// unchanged and in order, exactly `length` cycles later.
#[derive(Debug, Clone)]
pub struct ShiftRegisterBank {
    /// Word storage, addressed physically; logical chain position `i`
    /// lives at physical index `(head + i) % length`.
    slots: Vec<u64>,
    /// Validity bits over *physical* slot indices, packed 64 per word.
    valid: Vec<u64>,
    /// Physical index of logical slot 0 (the input end of the chain).
    head: usize,
    /// Valid words currently in the chain, maintained incrementally.
    occupied: usize,
    cycle: Cycle,
    shifted_this_cycle: bool,
}

impl ShiftRegisterBank {
    /// A chain of `length ≥ 1` word registers.
    pub fn new(length: usize) -> Self {
        assert!(length >= 1);
        ShiftRegisterBank {
            slots: vec![0; length],
            valid: vec![0; length.div_ceil(64)],
            head: 0,
            occupied: 0,
            cycle: 0,
            shifted_this_cycle: false,
        }
    }

    /// Chain length in words.
    pub fn length(&self) -> usize {
        self.slots.len()
    }

    /// Open a new cycle.
    pub fn begin_cycle(&mut self, cycle: Cycle) {
        if cycle != self.cycle {
            self.cycle = cycle;
            self.shifted_this_cycle = false;
        }
    }

    #[inline]
    fn is_valid(&self, phys: usize) -> bool {
        self.valid[phys >> 6] & (1u64 << (phys & 63)) != 0
    }

    #[inline]
    fn set_valid(&mut self, phys: usize, v: bool) {
        let (word, bit) = (phys >> 6, 1u64 << (phys & 63));
        if v {
            self.valid[word] |= bit;
        } else {
            self.valid[word] &= !bit;
        }
    }

    /// Shift once: optionally push a new word in; returns the word falling
    /// out of the far end, if that slot held valid data. At most one shift
    /// per cycle — a shift register has exactly one clocked movement.
    pub fn shift(&mut self, input: Option<u64>) -> Option<u64> {
        assert!(
            !self.shifted_this_cycle,
            "a shift register shifts once per cycle"
        );
        self.shifted_this_cycle = true;
        // The physical slot just before `head` is the logical far end of
        // the chain; after the rotation it is also exactly where the new
        // head lands, so the word falling out and the word pushed in share
        // one physical slot.
        let tail = if self.head == 0 {
            self.slots.len() - 1
        } else {
            self.head - 1
        };
        let out = self.is_valid(tail).then(|| self.slots[tail]);
        if out.is_some() {
            self.occupied -= 1;
        }
        self.head = tail;
        match input {
            Some(w) => {
                self.slots[tail] = w;
                self.set_valid(tail, true);
                self.occupied += 1;
            }
            None => {
                self.set_valid(tail, false);
            }
        }
        out
    }

    /// Words of valid data currently in the chain.
    pub fn occupancy(&self) -> usize {
        debug_assert_eq!(
            self.occupied,
            self.valid
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>(),
            "incremental occupancy out of sync with validity bits"
        );
        self.occupied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_after_full_traversal() {
        let mut s = ShiftRegisterBank::new(4);
        let mut out = Vec::new();
        for c in 0..10u64 {
            s.begin_cycle(c);
            let input = (c < 6).then_some(100 + c);
            if let Some(w) = s.shift(input) {
                out.push(w);
            }
        }
        // Word pushed at cycle c emerges at cycle c + 4.
        assert_eq!(out, vec![100, 101, 102, 103, 104, 105]);
    }

    #[test]
    fn no_random_access_semantics() {
        // The point of §5.3: a word is simply not retrievable before it
        // has traversed the whole chain — the structural reason shift
        // registers preclude cut-through.
        let mut s = ShiftRegisterBank::new(8);
        s.begin_cycle(0);
        assert!(s.shift(Some(42)).is_none());
        for c in 1..8u64 {
            s.begin_cycle(c);
            assert!(s.shift(None).is_none(), "nothing out before cycle 8");
        }
        s.begin_cycle(8);
        assert_eq!(s.shift(None), Some(42));
    }

    #[test]
    #[should_panic(expected = "once per cycle")]
    fn double_shift_panics() {
        let mut s = ShiftRegisterBank::new(2);
        s.begin_cycle(0);
        s.shift(None);
        s.shift(None);
    }

    #[test]
    fn occupancy_tracks_valid() {
        let mut s = ShiftRegisterBank::new(3);
        s.begin_cycle(0);
        s.shift(Some(1));
        assert_eq!(s.occupancy(), 1);
        s.begin_cycle(1);
        s.shift(Some(2));
        assert_eq!(s.occupancy(), 2);
        s.begin_cycle(2);
        s.shift(None);
        assert_eq!(s.occupancy(), 2);
    }

    #[test]
    fn long_chain_wraps_correctly() {
        // Exercise the circular wrap across many multiples of the length,
        // with a chain longer than one validity word.
        let len = 70;
        let mut s = ShiftRegisterBank::new(len);
        let mut out = Vec::new();
        for c in 0..500u64 {
            s.begin_cycle(c);
            // Sparse input: every third cycle carries a word.
            let input = (c % 3 == 0).then_some(c);
            if let Some(w) = s.shift(input) {
                out.push(w);
            }
        }
        // Word pushed at cycle c emerges at c + len; everything pushed
        // before cycle 500 - len has emerged, in order.
        let expect: Vec<u64> = (0..500 - len as u64).filter(|c| c % 3 == 0).collect();
        assert_eq!(out, expect);
        let still_in = (500 - len as u64..500).filter(|c| c % 3 == 0).count();
        assert_eq!(s.occupancy(), still_in);
    }
}
