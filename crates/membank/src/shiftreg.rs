//! Shift-register packet storage — considered and rejected in §5.3.
//!
//! "Implementing the banks as shift-registers would not solve this problem,
//! because one (dynamic) shift-register bit is 4 times larger than one
//! (3-transistor dynamic) RAM bit. Shift-registers would also preclude
//! cut-through." This module implements the organization anyway so the
//! claim can be demonstrated: data is only available after traversing the
//! full register chain (no random access, hence no cut-through), and
//! `vlsimodel` carries the 4× area factor.

use simkernel::ids::Cycle;

/// A `length`-word shift register: words pushed in one end emerge,
/// unchanged and in order, exactly `length` cycles later.
#[derive(Debug, Clone)]
pub struct ShiftRegisterBank {
    slots: Vec<u64>,
    valid: Vec<bool>,
    cycle: Cycle,
    shifted_this_cycle: bool,
}

impl ShiftRegisterBank {
    /// A chain of `length ≥ 1` word registers.
    pub fn new(length: usize) -> Self {
        assert!(length >= 1);
        ShiftRegisterBank {
            slots: vec![0; length],
            valid: vec![false; length],
            cycle: 0,
            shifted_this_cycle: false,
        }
    }

    /// Chain length in words.
    pub fn length(&self) -> usize {
        self.slots.len()
    }

    /// Open a new cycle.
    pub fn begin_cycle(&mut self, cycle: Cycle) {
        if cycle != self.cycle {
            self.cycle = cycle;
            self.shifted_this_cycle = false;
        }
    }

    /// Shift once: optionally push a new word in; returns the word falling
    /// out of the far end, if that slot held valid data. At most one shift
    /// per cycle — a shift register has exactly one clocked movement.
    pub fn shift(&mut self, input: Option<u64>) -> Option<u64> {
        assert!(
            !self.shifted_this_cycle,
            "a shift register shifts once per cycle"
        );
        self.shifted_this_cycle = true;
        let out = self.valid[self.slots.len() - 1].then(|| self.slots[self.slots.len() - 1]);
        for i in (1..self.slots.len()).rev() {
            self.slots[i] = self.slots[i - 1];
            self.valid[i] = self.valid[i - 1];
        }
        match input {
            Some(w) => {
                self.slots[0] = w;
                self.valid[0] = true;
            }
            None => {
                self.valid[0] = false;
            }
        }
        out
    }

    /// Words of valid data currently in the chain.
    pub fn occupancy(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_after_full_traversal() {
        let mut s = ShiftRegisterBank::new(4);
        let mut out = Vec::new();
        for c in 0..10u64 {
            s.begin_cycle(c);
            let input = (c < 6).then_some(100 + c);
            if let Some(w) = s.shift(input) {
                out.push(w);
            }
        }
        // Word pushed at cycle c emerges at cycle c + 4.
        assert_eq!(out, vec![100, 101, 102, 103, 104, 105]);
    }

    #[test]
    fn no_random_access_semantics() {
        // The point of §5.3: a word is simply not retrievable before it
        // has traversed the whole chain — the structural reason shift
        // registers preclude cut-through.
        let mut s = ShiftRegisterBank::new(8);
        s.begin_cycle(0);
        assert!(s.shift(Some(42)).is_none());
        for c in 1..8u64 {
            s.begin_cycle(c);
            assert!(s.shift(None).is_none(), "nothing out before cycle 8");
        }
        s.begin_cycle(8);
        assert_eq!(s.shift(None), Some(42));
    }

    #[test]
    #[should_panic(expected = "once per cycle")]
    fn double_shift_panics() {
        let mut s = ShiftRegisterBank::new(2);
        s.begin_cycle(0);
        s.shift(None);
        s.shift(None);
    }

    #[test]
    fn occupancy_tracks_valid() {
        let mut s = ShiftRegisterBank::new(3);
        s.begin_cycle(0);
        s.shift(Some(1));
        assert_eq!(s.occupancy(), 1);
        s.begin_cycle(1);
        s.shift(Some(2));
        assert_eq!(s.occupancy(), 2);
        s.begin_cycle(2);
        s.shift(None);
        assert_eq!(s.occupancy(), 2);
    }
}
