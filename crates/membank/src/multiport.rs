//! True multi-port memory — the golden reference.
//!
//! §3.1: "True multi-port memory is very expensive, because each storage
//! bit must have multiple word lines and bit-lines." It is, however, the
//! *behavioral ideal* every cheaper organization approximates: any number
//! of concurrent reads and writes per cycle (up to its declared port
//! counts), no bank conflicts ever. The test suites use it as the golden
//! model: a correct pipelined/wide/interleaved buffer must return the same
//! data a multi-port memory would, just with the organization's documented
//! timing.

use simkernel::ids::{Addr, Cycle};
use std::fmt;

/// Error: more concurrent accesses than declared ports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortBudgetExceeded {
    /// Cycle of the violation.
    pub cycle: Cycle,
    /// "read" or "write".
    pub kind: &'static str,
    /// Declared budget.
    pub budget: u32,
}

impl fmt::Display for PortBudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {}: more than {} {} ports used",
            self.cycle, self.budget, self.kind
        )
    }
}

impl std::error::Error for PortBudgetExceeded {}

/// A word-addressed memory with `r` read ports and `w` write ports.
#[derive(Debug, Clone)]
pub struct MultiPortMemory {
    data: Vec<u64>,
    read_ports: u32,
    write_ports: u32,
    cycle: Cycle,
    reads: u32,
    writes: u32,
}

impl MultiPortMemory {
    /// `depth` words with the given port counts.
    pub fn new(depth: usize, read_ports: u32, write_ports: u32) -> Self {
        assert!(depth > 0 && read_ports > 0 && write_ports > 0);
        MultiPortMemory {
            data: vec![0; depth],
            read_ports,
            write_ports,
            cycle: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// Words.
    pub fn depth(&self) -> usize {
        self.data.len()
    }

    /// Open a new cycle.
    pub fn begin_cycle(&mut self, cycle: Cycle) {
        if cycle != self.cycle {
            self.cycle = cycle;
            self.reads = 0;
            self.writes = 0;
        }
    }

    /// Read a word (consumes one read port).
    pub fn read(&mut self, addr: Addr) -> Result<u64, PortBudgetExceeded> {
        if self.reads >= self.read_ports {
            return Err(PortBudgetExceeded {
                cycle: self.cycle,
                kind: "read",
                budget: self.read_ports,
            });
        }
        self.reads += 1;
        Ok(self.data[addr.index()])
    }

    /// Write a word (consumes one write port).
    pub fn write(&mut self, addr: Addr, v: u64) -> Result<(), PortBudgetExceeded> {
        if self.writes >= self.write_ports {
            return Err(PortBudgetExceeded {
                cycle: self.cycle,
                kind: "write",
                budget: self.write_ports,
            });
        }
        self.writes += 1;
        self.data[addr.index()] = v;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_access_within_budget() {
        // A 2n-port memory, as a shared buffer for a 4×4 switch would need.
        let mut m = MultiPortMemory::new(64, 4, 4);
        m.begin_cycle(0);
        for i in 0..4 {
            m.write(Addr(i), i as u64).unwrap();
        }
        for i in 0..4 {
            m.read(Addr(i)).unwrap();
        }
        assert!(m.read(Addr(0)).is_err());
        assert!(m.write(Addr(0), 9).is_err());
    }

    #[test]
    fn budget_resets_per_cycle() {
        let mut m = MultiPortMemory::new(4, 1, 1);
        m.begin_cycle(0);
        m.read(Addr(0)).unwrap();
        assert!(m.read(Addr(0)).is_err());
        m.begin_cycle(1);
        assert!(m.read(Addr(0)).is_ok());
    }

    #[test]
    fn data_roundtrip() {
        let mut m = MultiPortMemory::new(4, 2, 2);
        m.begin_cycle(0);
        m.write(Addr(1), 0xABCD).unwrap();
        m.begin_cycle(1);
        assert_eq!(m.read(Addr(1)).unwrap(), 0xABCD);
    }

    #[test]
    fn error_message() {
        let mut m = MultiPortMemory::new(4, 1, 1);
        m.begin_cycle(7);
        m.read(Addr(0)).unwrap();
        let e = m.read(Addr(0)).unwrap_err();
        assert!(e.to_string().contains("cycle 7"));
    }
}
