//! The pipelined memory (§3.2) as a standalone functional model.
//!
//! A chain of `stages` single-ported banks. One operation *wave* may be
//! initiated per cycle; a wave initiated in cycle `t` accesses bank `k` at
//! the same address in cycle `t + k`. Because every wave advances one stage
//! per cycle, staggered initiations can never collide on a bank — the model
//! asserts this by issuing real accesses to port-checked [`SramBank`]s.
//!
//! This standalone model takes a write wave's data up front and returns a
//! read wave's data on completion; the word-at-a-time interplay with input
//! latches and output registers (which is where "no double buffering" and
//! "automatic cut-through" come from) lives in the `switch-core` RTL model.
//! Use this model when you need *a* pipelined buffer, and `switch-core`
//! when you need *the switch*.

use crate::bank::{PortKind, SramBank};
use simkernel::ids::{Addr, Cycle};
use std::fmt;
use telemetry::{ProbeEvent, ProbeHandle};

/// An operation wave to initiate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaveOp {
    /// Store `words[k]` into bank `k` at `addr` (k-th cycle of the wave).
    Write {
        /// Packet slot to write.
        addr: Addr,
        /// One word per stage.
        words: Vec<u64>,
    },
    /// Read the slot at `addr`; completes `stages` cycles later.
    Read {
        /// Packet slot to read.
        addr: Addr,
    },
}

/// Why an initiation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InitiateError {
    /// A wave was already initiated this cycle (the structural hazard the
    /// arbiter of §3.3 exists to prevent).
    AlreadyInitiated,
    /// A write wave supplied the wrong number of words.
    WordCount {
        /// Words supplied.
        got: usize,
        /// Words required (= number of stages).
        want: usize,
    },
}

impl fmt::Display for InitiateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InitiateError::AlreadyInitiated => {
                write!(f, "a wave was already initiated this cycle")
            }
            InitiateError::WordCount { got, want } => {
                write!(f, "write wave has {got} words, needs exactly {want}")
            }
        }
    }
}

impl std::error::Error for InitiateError {}

/// A finished read wave: the slot's contents, one word per stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedRead {
    /// The slot that was read.
    pub addr: Addr,
    /// Cycle in which the wave was initiated.
    pub initiated: Cycle,
    /// Cycle in which the last stage was read (completion).
    pub completed: Cycle,
    /// The data, `words[k]` from bank `k`.
    pub words: Vec<u64>,
}

#[derive(Debug, Clone)]
enum Body {
    Write(Vec<u64>),
    Read(Vec<u64>),
}

#[derive(Debug, Clone)]
struct ActiveWave {
    addr: Addr,
    start: Cycle,
    body: Body,
}

/// The pipelined shared-buffer memory.
///
/// ```
/// use membank::pipelined::{PipelinedMemory, WaveOp};
/// use simkernel::ids::Addr;
///
/// // 4 stages (4-word packets), 8 slots, 16-bit words.
/// let mut m = PipelinedMemory::new(4, 8, 16);
/// m.initiate(WaveOp::Write { addr: Addr(3), words: vec![1, 2, 3, 4] }).unwrap();
/// m.tick(); // the wave sweeps one stage per cycle…
/// m.initiate(WaveOp::Read { addr: Addr(3) }).unwrap(); // …and a read may chase it
/// let done = m.drain();
/// assert_eq!(done[0].words, vec![1, 2, 3, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct PipelinedMemory {
    banks: Vec<SramBank>,
    active: Vec<ActiveWave>,
    cycle: Cycle,
    pending: Option<ActiveWave>,
    probe: Option<ProbeHandle>,
    /// Reusable per-cycle scratch (hot path: must not allocate).
    scratch_done: Vec<CompletedRead>,
    scratch_still: Vec<ActiveWave>,
    scratch_drain: Vec<CompletedRead>,
}

impl PipelinedMemory {
    /// A pipelined memory of `stages` single-ported banks, each `depth`
    /// slots of `width_bits`-bit words. Total capacity: `depth` packets of
    /// `stages` words.
    pub fn new(stages: usize, depth: usize, width_bits: u32) -> Self {
        assert!(stages >= 1);
        PipelinedMemory {
            banks: (0..stages)
                .map(|_| SramBank::new(depth, width_bits, PortKind::SinglePort))
                .collect(),
            active: Vec::new(),
            cycle: 0,
            pending: None,
            probe: None,
            scratch_done: Vec::new(),
            scratch_still: Vec::new(),
            scratch_drain: Vec::new(),
        }
    }

    /// Attach a probe: each initiation emits
    /// [`ProbeEvent::WaveLaunched`] and each stage sweep
    /// [`ProbeEvent::WaveAdvanced`] — the membank-level view of the
    /// one-stage-per-cycle pipeline.
    pub fn attach_probe(&mut self, probe: ProbeHandle) {
        self.probe = Some(probe);
    }

    /// Number of pipeline stages (banks).
    pub fn stages(&self) -> usize {
        self.banks.len()
    }

    /// Packet slots per bank.
    pub fn depth(&self) -> usize {
        self.banks[0].depth()
    }

    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        (self.stages() * self.depth()) as u64 * self.banks[0].width_bits() as u64
    }

    /// Current cycle (the one the next `tick` will execute).
    pub fn now(&self) -> Cycle {
        self.cycle
    }

    /// Number of waves currently sweeping the banks (including one
    /// initiated this cycle, before `tick`).
    pub fn in_flight(&self) -> usize {
        self.active.len() + usize::from(self.pending.is_some())
    }

    /// Initiate a wave in the current cycle. At most one per cycle.
    pub fn initiate(&mut self, op: WaveOp) -> Result<(), InitiateError> {
        if self.pending.is_some() {
            return Err(InitiateError::AlreadyInitiated);
        }
        let wave = match op {
            WaveOp::Write { addr, words } => {
                if words.len() != self.stages() {
                    return Err(InitiateError::WordCount {
                        got: words.len(),
                        want: self.stages(),
                    });
                }
                ActiveWave {
                    addr,
                    start: self.cycle,
                    body: Body::Write(words),
                }
            }
            WaveOp::Read { addr } => ActiveWave {
                addr,
                start: self.cycle,
                body: Body::Read(Vec::with_capacity(self.stages())),
            },
        };
        if let Some(p) = &self.probe {
            p.emit(
                self.cycle,
                ProbeEvent::WaveLaunched {
                    addr: wave.addr.index(),
                    write: matches!(wave.body, Body::Write(_)),
                },
            );
        }
        self.pending = Some(wave);
        Ok(())
    }

    /// Execute the current cycle: every active wave performs its stage
    /// operation; returns read waves that completed this cycle. Advances
    /// time by one cycle. The returned slice borrows internal scratch
    /// and is valid until the next tick.
    pub fn tick(&mut self) -> &[CompletedRead] {
        if let Some(w) = self.pending.take() {
            self.active.push(w);
        }
        let stages = self.stages();
        let now = self.cycle;
        for b in &mut self.banks {
            b.begin_cycle(now);
        }
        // Reuse the completion and survivor buffers across cycles;
        // `mem::take` sidesteps the simultaneous borrow of the buffers
        // and `&mut self`.
        let mut done = std::mem::take(&mut self.scratch_done);
        done.clear();
        let mut still = std::mem::take(&mut self.scratch_still);
        still.clear();
        for mut w in self.active.drain(..) {
            let k = (now - w.start) as usize;
            debug_assert!(k < stages, "retired wave left in active set");
            if let Some(p) = &self.probe {
                p.emit(
                    now,
                    ProbeEvent::WaveAdvanced {
                        stage: k,
                        addr: w.addr.index(),
                    },
                );
            }
            let bank = &mut self.banks[k];
            match &mut w.body {
                Body::Write(words) => {
                    // The port check is the proof obligation: staggered
                    // initiation must imply conflict-free banks.
                    bank.write(w.addr, words[k])
                        .expect("wave stagger guarantees bank availability");
                }
                Body::Read(out) => {
                    let v = bank
                        .read(w.addr)
                        .expect("wave stagger guarantees bank availability");
                    out.push(v);
                }
            }
            if k + 1 == stages {
                if let Body::Read(words) = w.body {
                    done.push(CompletedRead {
                        addr: w.addr,
                        initiated: w.start,
                        completed: now,
                        words,
                    });
                }
            } else {
                still.push(w);
            }
        }
        // Swap so `scratch_still` keeps the drained-out buffer (and its
        // capacity) for the next cycle.
        std::mem::swap(&mut self.active, &mut still);
        self.scratch_still = still;
        self.cycle += 1;
        self.scratch_done = done;
        &self.scratch_done
    }

    /// Run idle cycles until all in-flight waves complete, returning any
    /// reads that finish. Convenience for tests and examples. The slice
    /// borrows internal scratch and is valid until the next tick.
    pub fn drain(&mut self) -> &[CompletedRead] {
        let mut out = std::mem::take(&mut self.scratch_drain);
        out.clear();
        while self.in_flight() > 0 {
            self.tick();
            out.append(&mut self.scratch_done);
        }
        self.scratch_drain = out;
        &self.scratch_drain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(seed: u64, n: usize) -> Vec<u64> {
        (0..n as u64).map(|k| seed * 1000 + k).collect()
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut m = PipelinedMemory::new(4, 8, 16);
        let data = words(1, 4);
        m.initiate(WaveOp::Write {
            addr: Addr(3),
            words: data.clone(),
        })
        .unwrap();
        for _ in 0..4 {
            assert!(m.tick().is_empty());
        }
        m.initiate(WaveOp::Read { addr: Addr(3) }).unwrap();
        let done = m.drain();
        assert_eq!(done.len(), 1);
        // 16-bit banks mask the stored words.
        let masked: Vec<u64> = data.iter().map(|w| w & 0xFFFF).collect();
        assert_eq!(done[0].words, masked);
        assert_eq!(done[0].completed - done[0].initiated, 3);
    }

    #[test]
    fn one_initiation_per_cycle() {
        let mut m = PipelinedMemory::new(4, 8, 16);
        m.initiate(WaveOp::Read { addr: Addr(0) }).unwrap();
        let err = m.initiate(WaveOp::Read { addr: Addr(1) }).unwrap_err();
        assert_eq!(err, InitiateError::AlreadyInitiated);
        m.tick();
        // Next cycle a new wave may start.
        assert!(m.initiate(WaveOp::Read { addr: Addr(1) }).is_ok());
    }

    #[test]
    fn word_count_checked() {
        let mut m = PipelinedMemory::new(4, 8, 16);
        let err = m
            .initiate(WaveOp::Write {
                addr: Addr(0),
                words: vec![1, 2, 3],
            })
            .unwrap_err();
        assert_eq!(err, InitiateError::WordCount { got: 3, want: 4 });
    }

    #[test]
    fn back_to_back_waves_full_throughput() {
        // The headline property: one wave per cycle indefinitely, no bank
        // conflicts — the shared buffer runs at aggregate throughput
        // `stages` words/cycle.
        let stages = 8;
        let mut m = PipelinedMemory::new(stages, 64, 16);
        // Fill 32 slots, one write wave per cycle.
        for a in 0..32usize {
            m.initiate(WaveOp::Write {
                addr: Addr(a),
                words: words(a as u64, stages),
            })
            .unwrap();
            m.tick();
        }
        // Read all 32 back, one read wave per cycle.
        let mut all = Vec::new();
        for a in 0..32usize {
            m.initiate(WaveOp::Read { addr: Addr(a) }).unwrap();
            all.extend(m.tick().iter().cloned());
        }
        all.extend(m.drain().iter().cloned());
        assert_eq!(all.len(), 32);
        for r in &all {
            let seed = r.addr.index() as u64;
            let expect: Vec<u64> = words(seed, stages).iter().map(|w| w & 0xFFFF).collect();
            assert_eq!(r.words, expect, "slot {}", r.addr);
        }
    }

    #[test]
    fn interleaved_reads_and_writes() {
        // Alternate write/read waves in adjacent cycles; stagger keeps the
        // single-ported banks conflict-free.
        let mut m = PipelinedMemory::new(4, 8, 64);
        m.initiate(WaveOp::Write {
            addr: Addr(0),
            words: words(7, 4),
        })
        .unwrap();
        m.tick();
        // One cycle later, read the same slot: bank 0 was written last
        // cycle, is free this cycle — cut-through-like timing.
        m.initiate(WaveOp::Read { addr: Addr(0) }).unwrap();
        let done = m.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].words, words(7, 4));
    }

    #[test]
    fn read_latency_is_stages() {
        let mut m = PipelinedMemory::new(6, 4, 64);
        m.initiate(WaveOp::Write {
            addr: Addr(0),
            words: words(1, 6),
        })
        .unwrap();
        let _ = m.drain();
        let t0 = m.now();
        m.initiate(WaveOp::Read { addr: Addr(0) }).unwrap();
        let done = m.drain();
        assert_eq!(done[0].initiated, t0);
        assert_eq!(done[0].completed, t0 + 5, "last word read at t0+stages-1");
    }

    #[test]
    fn capacity_accounting() {
        let m = PipelinedMemory::new(16, 256, 16);
        // Telegraphos III: 16 stages × 256 slots × 16 bits = 64 Kbit.
        assert_eq!(m.capacity_bits(), 65_536);
    }

    #[test]
    fn in_flight_tracking() {
        let mut m = PipelinedMemory::new(4, 4, 64);
        assert_eq!(m.in_flight(), 0);
        m.initiate(WaveOp::Read { addr: Addr(0) }).unwrap();
        assert_eq!(m.in_flight(), 1);
        m.tick();
        m.initiate(WaveOp::Read { addr: Addr(1) }).unwrap();
        assert_eq!(m.in_flight(), 2);
        m.drain();
        assert_eq!(m.in_flight(), 0);
    }
}
