//! The pipelined memory (§3.2) as a standalone functional model.
//!
//! A chain of `stages` single-ported banks. One operation *wave* may be
//! initiated per cycle; a wave initiated in cycle `t` accesses bank `k` at
//! the same address in cycle `t + k`. Because every wave advances one stage
//! per cycle, staggered initiations can never collide on a bank — the model
//! asserts this by issuing real accesses to port-checked [`SramBank`]s.
//!
//! This standalone model takes a write wave's data up front and returns a
//! read wave's data on completion; the word-at-a-time interplay with input
//! latches and output registers (which is where "no double buffering" and
//! "automatic cut-through" come from) lives in the `switch-core` RTL model.
//! Use this model when you need *a* pipelined buffer, and `switch-core`
//! when you need *the switch*.

use crate::bank::{EccOutcome, PortKind, SramBank};
use simkernel::ids::{Addr, Cycle};
use std::fmt;
use telemetry::{ProbeEvent, ProbeHandle, RecoveryTag};

/// An operation wave to initiate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaveOp {
    /// Store `words[k]` into bank `k` at `addr` (k-th cycle of the wave).
    Write {
        /// Packet slot to write.
        addr: Addr,
        /// One word per stage.
        words: Vec<u64>,
    },
    /// Read the slot at `addr`; completes `stages` cycles later.
    Read {
        /// Packet slot to read.
        addr: Addr,
    },
}

/// Why an initiation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InitiateError {
    /// A wave was already initiated this cycle (the structural hazard the
    /// arbiter of §3.3 exists to prevent).
    AlreadyInitiated,
    /// A write wave supplied the wrong number of words.
    WordCount {
        /// Words supplied.
        got: usize,
        /// Words required (= number of stages).
        want: usize,
    },
}

impl fmt::Display for InitiateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InitiateError::AlreadyInitiated => {
                write!(f, "a wave was already initiated this cycle")
            }
            InitiateError::WordCount { got, want } => {
                write!(f, "write wave has {got} words, needs exactly {want}")
            }
        }
    }
}

impl std::error::Error for InitiateError {}

/// A finished read wave: the slot's contents, one word per stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedRead {
    /// The slot that was read.
    pub addr: Addr,
    /// Cycle in which the wave was initiated.
    pub initiated: Cycle,
    /// Cycle in which the last stage was read (completion).
    pub completed: Cycle,
    /// The data, `words[k]` from bank `k`.
    pub words: Vec<u64>,
}

#[derive(Debug, Clone)]
enum Body {
    Write(Vec<u64>),
    Read(Vec<u64>),
}

#[derive(Debug, Clone)]
struct ActiveWave {
    addr: Addr,
    start: Cycle,
    body: Body,
}

/// The pipelined shared-buffer memory.
///
/// ```
/// use membank::pipelined::{PipelinedMemory, WaveOp};
/// use simkernel::ids::Addr;
///
/// // 4 stages (4-word packets), 8 slots, 16-bit words.
/// let mut m = PipelinedMemory::new(4, 8, 16);
/// m.initiate(WaveOp::Write { addr: Addr(3), words: vec![1, 2, 3, 4] }).unwrap();
/// m.tick(); // the wave sweeps one stage per cycle…
/// m.initiate(WaveOp::Read { addr: Addr(3) }).unwrap(); // …and a read may chase it
/// let done = m.drain();
/// assert_eq!(done[0].words, vec![1, 2, 3, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct PipelinedMemory {
    banks: Vec<SramBank>,
    /// Active waves as a ring indexed by `start % stages`. A wave lives
    /// exactly `stages` cycles and at most one initiates per cycle, so
    /// live slots never collide, and a wave's body never moves while in
    /// flight (the old drain-and-rebuild shuffled every wave's word
    /// vector through memory each cycle).
    waves: Vec<Option<ActiveWave>>,
    /// Ring occupancy as a machine word: bit `s` set when `waves[s]` is
    /// live. Maintained for `stages ≤ 128`; longer pipelines scan the
    /// ring instead.
    live_mask: u128,
    /// Live entries in the wave ring.
    waves_live: usize,
    cycle: Cycle,
    pending: Option<ActiveWave>,
    probe: Option<ProbeHandle>,
    /// SEC-DED scrubbing armed on every bank (see [`SramBank::enable_ecc`]).
    /// Kept as a plain flag so the disabled case costs one predictable
    /// branch per sweep, nothing more.
    ecc: bool,
    /// Reusable per-cycle scratch (hot path: must not allocate).
    scratch_done: Vec<CompletedRead>,
    scratch_drain: Vec<CompletedRead>,
}

impl PipelinedMemory {
    /// A pipelined memory of `stages` single-ported banks, each `depth`
    /// slots of `width_bits`-bit words. Total capacity: `depth` packets of
    /// `stages` words.
    pub fn new(stages: usize, depth: usize, width_bits: u32) -> Self {
        assert!(stages >= 1);
        PipelinedMemory {
            banks: (0..stages)
                .map(|_| SramBank::new(depth, width_bits, PortKind::SinglePort))
                .collect(),
            waves: vec![None; stages],
            live_mask: 0,
            waves_live: 0,
            cycle: 0,
            pending: None,
            probe: None,
            ecc: false,
            scratch_done: Vec::new(),
            scratch_drain: Vec::new(),
        }
    }

    /// Attach SEC-DED check codes to every bank (idempotent). Read waves
    /// thereafter scrub each word against its code as they sweep,
    /// correcting single-bit upsets in place before the word leaves the
    /// bank.
    pub fn enable_ecc(&mut self) {
        for b in &mut self.banks {
            b.enable_ecc();
        }
        self.ecc = true;
    }

    /// Is ECC scrubbing armed?
    pub fn ecc_enabled(&self) -> bool {
        self.ecc
    }

    /// Cumulative `(corrections, uncorrectable)` over all banks.
    pub fn ecc_totals(&self) -> (u64, u64) {
        self.banks.iter().fold((0, 0), |(c, u), b| {
            (c + b.ecc_corrections(), u + b.ecc_uncorrectable())
        })
    }

    /// Fault injection (testbench only): flip the bits of `mask` in slot
    /// `addr` of the stage-`stage` bank, bypassing the port discipline —
    /// a single-event upset strikes regardless of the access schedule.
    pub fn inject_fault(&mut self, stage: usize, addr: Addr, mask: u64) {
        self.banks[stage].inject_fault(addr, mask);
    }

    /// Attach a probe: each initiation emits
    /// [`ProbeEvent::WaveLaunched`] and each stage sweep
    /// [`ProbeEvent::WaveAdvanced`] — the membank-level view of the
    /// one-stage-per-cycle pipeline.
    pub fn attach_probe(&mut self, probe: ProbeHandle) {
        self.probe = Some(probe);
    }

    /// Number of pipeline stages (banks).
    pub fn stages(&self) -> usize {
        self.banks.len()
    }

    /// Packet slots per bank.
    pub fn depth(&self) -> usize {
        self.banks[0].depth()
    }

    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        (self.stages() * self.depth()) as u64 * self.banks[0].width_bits() as u64
    }

    /// Current cycle (the one the next `tick` will execute).
    pub fn now(&self) -> Cycle {
        self.cycle
    }

    /// Number of waves currently sweeping the banks (including one
    /// initiated this cycle, before `tick`).
    pub fn in_flight(&self) -> usize {
        self.waves_live + usize::from(self.pending.is_some())
    }

    /// Initiate a wave in the current cycle. At most one per cycle.
    pub fn initiate(&mut self, op: WaveOp) -> Result<(), InitiateError> {
        if self.pending.is_some() {
            return Err(InitiateError::AlreadyInitiated);
        }
        let wave = match op {
            WaveOp::Write { addr, words } => {
                if words.len() != self.stages() {
                    return Err(InitiateError::WordCount {
                        got: words.len(),
                        want: self.stages(),
                    });
                }
                ActiveWave {
                    addr,
                    start: self.cycle,
                    body: Body::Write(words),
                }
            }
            WaveOp::Read { addr } => ActiveWave {
                addr,
                start: self.cycle,
                body: Body::Read(Vec::with_capacity(self.stages())),
            },
        };
        if let Some(p) = &self.probe {
            p.emit(
                self.cycle,
                ProbeEvent::WaveLaunched {
                    addr: wave.addr.index(),
                    write: matches!(wave.body, Body::Write(_)),
                },
            );
        }
        self.pending = Some(wave);
        Ok(())
    }

    /// Execute the current cycle: every active wave performs its stage
    /// operation; returns read waves that completed this cycle. Advances
    /// time by one cycle. The returned slice borrows internal scratch
    /// and is valid until the next tick.
    pub fn tick(&mut self) -> &[CompletedRead] {
        let stages = self.stages();
        let now = self.cycle;
        if let Some(w) = self.pending.take() {
            let slot = (w.start % stages as Cycle) as usize;
            debug_assert!(self.waves[slot].is_none(), "wave ring slot collision");
            self.waves[slot] = Some(w);
            self.waves_live += 1;
            if let Some(bit) = 1u128.checked_shl(slot as u32) {
                self.live_mask |= bit;
            }
        }
        // Reuse the completion buffer across cycles; `mem::take`
        // sidesteps the simultaneous borrow of the buffer and `&mut self`.
        let mut done = std::mem::take(&mut self.scratch_done);
        done.clear();
        if self.waves_live > 0 {
            // Walk the ring oldest wave first (the wave started at
            // `now - stages + 1` sits at slot `(now + 1) % stages`), so
            // probe events and completions keep initiation order.
            let first = ((now + 1) % stages as Cycle) as usize;
            if stages <= 128 {
                // Two ascending passes over the occupancy word — slots
                // `first..stages`, then `0..first` — visit live slots in
                // ring order without touching empty ones.
                let low = (1u128 << first) - 1;
                for mut m in [self.live_mask & !low, self.live_mask & low] {
                    while m != 0 {
                        let slot = m.trailing_zeros() as usize;
                        m &= m - 1;
                        self.sweep_slot(slot, now, stages, &mut done);
                    }
                }
            } else {
                let mut slot = first;
                for _ in 0..stages {
                    let this = slot;
                    slot += 1;
                    if slot == stages {
                        slot = 0;
                    }
                    if self.waves[this].is_some() {
                        self.sweep_slot(this, now, stages, &mut done);
                    }
                }
            }
        }
        self.cycle += 1;
        self.scratch_done = done;
        &self.scratch_done
    }

    /// Advance the wave in ring slot `slot` one stage: perform its bank
    /// access for this cycle, and retire it (pushing onto `done` if it
    /// was a read) once it has swept the last stage.
    fn sweep_slot(
        &mut self,
        slot: usize,
        now: Cycle,
        stages: usize,
        done: &mut Vec<CompletedRead>,
    ) {
        let w = self.waves[slot].as_mut().expect("sweep of empty ring slot");
        let k = (now - w.start) as usize;
        debug_assert!(k < stages, "retired wave left in ring");
        if let Some(p) = &self.probe {
            p.emit(
                now,
                ProbeEvent::WaveAdvanced {
                    stage: k,
                    addr: w.addr.index(),
                },
            );
        }
        // Each live wave sits at a distinct stage, so touching only the
        // banks that live waves visit is equivalent to opening the cycle
        // on every bank.
        let bank = &mut self.banks[k];
        bank.begin_cycle(now);
        match &mut w.body {
            Body::Write(words) => {
                // The port check is the proof obligation: staggered
                // initiation must imply conflict-free banks.
                bank.write(w.addr, words[k])
                    .expect("wave stagger guarantees bank availability");
            }
            Body::Read(out) => {
                // Scrub rides the sense amplifiers of the scheduled read:
                // a single-bit upset is repaired before the word leaves
                // the bank, at no extra port cost.
                let scrub = if self.ecc {
                    bank.scrub(w.addr)
                } else {
                    EccOutcome::Clean
                };
                let v = bank
                    .read(w.addr)
                    .expect("wave stagger guarantees bank availability");
                out.push(v);
                match scrub {
                    EccOutcome::Clean => {}
                    EccOutcome::Corrected { bit } => {
                        if let Some(p) = &self.probe {
                            p.emit(
                                now,
                                ProbeEvent::Recovery {
                                    tag: RecoveryTag::EccCorrected,
                                    index: k,
                                    info: u64::from(bit),
                                },
                            );
                        }
                    }
                    EccOutcome::Uncorrectable => {
                        if let Some(p) = &self.probe {
                            p.emit(
                                now,
                                ProbeEvent::Recovery {
                                    tag: RecoveryTag::EccUncorrectable,
                                    index: k,
                                    info: w.addr.index() as u64,
                                },
                            );
                        }
                    }
                }
            }
        }
        if k + 1 == stages {
            let w = self.waves[slot].take().expect("retiring wave vanished");
            self.waves_live -= 1;
            if let Some(bit) = 1u128.checked_shl(slot as u32) {
                self.live_mask &= !bit;
            }
            if let Body::Read(words) = w.body {
                done.push(CompletedRead {
                    addr: w.addr,
                    initiated: w.start,
                    completed: now,
                    words,
                });
            }
        }
    }

    /// Run idle cycles until all in-flight waves complete, returning any
    /// reads that finish. Convenience for tests and examples. The slice
    /// borrows internal scratch and is valid until the next tick.
    pub fn drain(&mut self) -> &[CompletedRead] {
        let mut out = std::mem::take(&mut self.scratch_drain);
        out.clear();
        while self.in_flight() > 0 {
            self.tick();
            out.append(&mut self.scratch_done);
        }
        self.scratch_drain = out;
        &self.scratch_drain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(seed: u64, n: usize) -> Vec<u64> {
        (0..n as u64).map(|k| seed * 1000 + k).collect()
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut m = PipelinedMemory::new(4, 8, 16);
        let data = words(1, 4);
        m.initiate(WaveOp::Write {
            addr: Addr(3),
            words: data.clone(),
        })
        .unwrap();
        for _ in 0..4 {
            assert!(m.tick().is_empty());
        }
        m.initiate(WaveOp::Read { addr: Addr(3) }).unwrap();
        let done = m.drain();
        assert_eq!(done.len(), 1);
        // 16-bit banks mask the stored words.
        let masked: Vec<u64> = data.iter().map(|w| w & 0xFFFF).collect();
        assert_eq!(done[0].words, masked);
        assert_eq!(done[0].completed - done[0].initiated, 3);
    }

    #[test]
    fn one_initiation_per_cycle() {
        let mut m = PipelinedMemory::new(4, 8, 16);
        m.initiate(WaveOp::Read { addr: Addr(0) }).unwrap();
        let err = m.initiate(WaveOp::Read { addr: Addr(1) }).unwrap_err();
        assert_eq!(err, InitiateError::AlreadyInitiated);
        m.tick();
        // Next cycle a new wave may start.
        assert!(m.initiate(WaveOp::Read { addr: Addr(1) }).is_ok());
    }

    #[test]
    fn word_count_checked() {
        let mut m = PipelinedMemory::new(4, 8, 16);
        let err = m
            .initiate(WaveOp::Write {
                addr: Addr(0),
                words: vec![1, 2, 3],
            })
            .unwrap_err();
        assert_eq!(err, InitiateError::WordCount { got: 3, want: 4 });
    }

    #[test]
    fn back_to_back_waves_full_throughput() {
        // The headline property: one wave per cycle indefinitely, no bank
        // conflicts — the shared buffer runs at aggregate throughput
        // `stages` words/cycle.
        let stages = 8;
        let mut m = PipelinedMemory::new(stages, 64, 16);
        // Fill 32 slots, one write wave per cycle.
        for a in 0..32usize {
            m.initiate(WaveOp::Write {
                addr: Addr(a),
                words: words(a as u64, stages),
            })
            .unwrap();
            m.tick();
        }
        // Read all 32 back, one read wave per cycle.
        let mut all = Vec::new();
        for a in 0..32usize {
            m.initiate(WaveOp::Read { addr: Addr(a) }).unwrap();
            all.extend(m.tick().iter().cloned());
        }
        all.extend(m.drain().iter().cloned());
        assert_eq!(all.len(), 32);
        for r in &all {
            let seed = r.addr.index() as u64;
            let expect: Vec<u64> = words(seed, stages).iter().map(|w| w & 0xFFFF).collect();
            assert_eq!(r.words, expect, "slot {}", r.addr);
        }
    }

    #[test]
    fn interleaved_reads_and_writes() {
        // Alternate write/read waves in adjacent cycles; stagger keeps the
        // single-ported banks conflict-free.
        let mut m = PipelinedMemory::new(4, 8, 64);
        m.initiate(WaveOp::Write {
            addr: Addr(0),
            words: words(7, 4),
        })
        .unwrap();
        m.tick();
        // One cycle later, read the same slot: bank 0 was written last
        // cycle, is free this cycle — cut-through-like timing.
        m.initiate(WaveOp::Read { addr: Addr(0) }).unwrap();
        let done = m.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].words, words(7, 4));
    }

    #[test]
    fn read_latency_is_stages() {
        let mut m = PipelinedMemory::new(6, 4, 64);
        m.initiate(WaveOp::Write {
            addr: Addr(0),
            words: words(1, 6),
        })
        .unwrap();
        let _ = m.drain();
        let t0 = m.now();
        m.initiate(WaveOp::Read { addr: Addr(0) }).unwrap();
        let done = m.drain();
        assert_eq!(done[0].initiated, t0);
        assert_eq!(done[0].completed, t0 + 5, "last word read at t0+stages-1");
    }

    #[test]
    fn capacity_accounting() {
        let m = PipelinedMemory::new(16, 256, 16);
        // Telegraphos III: 16 stages × 256 slots × 16 bits = 64 Kbit.
        assert_eq!(m.capacity_bits(), 65_536);
    }

    #[test]
    fn ecc_scrub_repairs_upsets_as_the_read_wave_sweeps() {
        let mut m = PipelinedMemory::new(4, 8, 64);
        m.enable_ecc();
        let data = words(3, 4);
        m.initiate(WaveOp::Write {
            addr: Addr(2),
            words: data.clone(),
        })
        .unwrap();
        let _ = m.drain();
        // One single-event upset per stage bank, all in the stored slot.
        for stage in 0..4 {
            m.inject_fault(stage, Addr(2), 1u64 << (stage * 7));
        }
        m.initiate(WaveOp::Read { addr: Addr(2) }).unwrap();
        let done = m.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].words, data, "every upset corrected in flight");
        assert_eq!(m.ecc_totals(), (4, 0));
    }

    #[test]
    fn ecc_disabled_reads_deliver_upsets_verbatim() {
        let mut m = PipelinedMemory::new(2, 4, 64);
        m.initiate(WaveOp::Write {
            addr: Addr(0),
            words: vec![8, 9],
        })
        .unwrap();
        let _ = m.drain();
        m.inject_fault(0, Addr(0), 1);
        m.initiate(WaveOp::Read { addr: Addr(0) }).unwrap();
        let done = m.drain();
        assert_eq!(done[0].words, vec![9, 9], "no silent correction");
        assert_eq!(m.ecc_totals(), (0, 0));
    }

    #[test]
    fn in_flight_tracking() {
        let mut m = PipelinedMemory::new(4, 4, 64);
        assert_eq!(m.in_flight(), 0);
        m.initiate(WaveOp::Read { addr: Addr(0) }).unwrap();
        assert_eq!(m.in_flight(), 1);
        m.tick();
        m.initiate(WaveOp::Read { addr: Addr(1) }).unwrap();
        assert_eq!(m.in_flight(), 2);
        m.drain();
        assert_eq!(m.in_flight(), 0);
    }
}
