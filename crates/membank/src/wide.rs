//! The wide-memory organization (§3.1, \[KaSC91\]).
//!
//! One memory word = one whole packet (`stages` link words side by side).
//! A single operation per cycle moves an entire packet. The organizational
//! consequences the paper draws (§3.2) — input double-buffering because a
//! packet can only be stored once fully assembled and the memory may be
//! busy at that exact cycle, and a separate cut-through bypass path —
//! live in `baselines::widemem_switch`; this module is just the memory.

use crate::bank::{ecc_code, scrub_word, EccOutcome, PortKind, PortViolation, SramBank};
use simkernel::ids::{Addr, Cycle};

/// ECC sidecar for the wide organization: one SEC-DED code per link word
/// of every slot. Allocated only by [`WideMemory::enable_ecc`].
#[derive(Debug, Clone)]
struct WideEcc {
    codes: Vec<Vec<u8>>,
    corrections: u64,
    uncorrectable: u64,
}

/// A wide memory: `depth` slots, each holding one `packet_words`-word
/// packet, accessed whole-packet-at-a-time, one access per cycle.
#[derive(Debug, Clone)]
pub struct WideMemory {
    /// One logical array; we model the port budget with a 1-word bank and
    /// keep packet data alongside (the discipline, not the bits, is what
    /// the single `SramBank` enforces).
    gate: SramBank,
    slots: Vec<Vec<u64>>,
    packet_words: usize,
    word_bits: u32,
    ecc: Option<Box<WideEcc>>,
}

impl WideMemory {
    /// A wide memory of `depth` packet slots, each `packet_words` link
    /// words of `word_bits` bits.
    pub fn new(depth: usize, packet_words: usize, word_bits: u32) -> Self {
        assert!(packet_words >= 1);
        WideMemory {
            gate: SramBank::new(depth, 1, PortKind::SinglePort),
            slots: vec![vec![0; packet_words]; depth],
            packet_words,
            word_bits,
            ecc: None,
        }
    }

    /// Attach SEC-DED check codes to every link word of every slot.
    /// Idempotent; a memory without ECC pays nothing on the data path.
    pub fn enable_ecc(&mut self) {
        if self.ecc.is_none() {
            self.ecc = Some(Box::new(WideEcc {
                codes: self
                    .slots
                    .iter()
                    .map(|row| row.iter().map(|&w| ecc_code(w)).collect())
                    .collect(),
                corrections: 0,
                uncorrectable: 0,
            }));
        }
    }

    /// Is the array ECC-protected?
    pub fn ecc_enabled(&self) -> bool {
        self.ecc.is_some()
    }

    /// Single-bit upsets corrected in place so far.
    pub fn ecc_corrections(&self) -> u64 {
        self.ecc.as_ref().map_or(0, |e| e.corrections)
    }

    /// Words found corrupted beyond single-error correction.
    pub fn ecc_uncorrectable(&self) -> u64 {
        self.ecc.as_ref().map_or(0, |e| e.uncorrectable)
    }

    /// Scrub every link word of slot `addr` against its code, correcting
    /// single-bit upsets in place. Rides the sense amplifiers of a
    /// scheduled access, so it does not consume the port budget. Returns
    /// `(corrected, uncorrectable)` word counts for this slot.
    pub fn scrub_packet(&mut self, addr: Addr) -> (u32, u32) {
        let Some(ecc) = &mut self.ecc else {
            return (0, 0);
        };
        let row = &mut self.slots[addr.index()];
        let codes = &mut ecc.codes[addr.index()];
        let (mut fixed, mut dead) = (0u32, 0u32);
        for (w, c) in row.iter_mut().zip(codes.iter()) {
            match scrub_word(*w, *c) {
                (EccOutcome::Clean, _) => {}
                (EccOutcome::Corrected { .. }, repaired) => {
                    *w = repaired;
                    fixed += 1;
                }
                (EccOutcome::Uncorrectable, _) => dead += 1,
            }
        }
        ecc.corrections += u64::from(fixed);
        ecc.uncorrectable += u64::from(dead);
        (fixed, dead)
    }

    /// Packet slots.
    pub fn depth(&self) -> usize {
        self.slots.len()
    }

    /// Link words per packet (the memory's width in link words).
    pub fn packet_words(&self) -> usize {
        self.packet_words
    }

    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        (self.depth() * self.packet_words) as u64 * self.word_bits as u64
    }

    /// Open a new cycle.
    pub fn begin_cycle(&mut self, cycle: Cycle) {
        self.gate.begin_cycle(cycle);
    }

    fn mask(&self, v: u64) -> u64 {
        if self.word_bits == 64 {
            v
        } else {
            v & ((1u64 << self.word_bits) - 1)
        }
    }

    /// Store a whole packet at `addr` (one cycle, one access).
    pub fn write_packet(&mut self, addr: Addr, words: &[u64]) -> Result<(), PortViolation> {
        assert_eq!(
            words.len(),
            self.packet_words,
            "wide memory stores whole packets only"
        );
        self.gate.write(addr, 0)?; // consume the port budget
        let masked: Vec<u64> = words.iter().map(|&w| self.mask(w)).collect();
        if let Some(ecc) = &mut self.ecc {
            let codes = &mut ecc.codes[addr.index()];
            codes.clear();
            codes.extend(masked.iter().map(|&w| ecc_code(w)));
        }
        self.slots[addr.index()] = masked;
        Ok(())
    }

    /// Retrieve a whole packet from `addr` (one cycle, one access).
    pub fn read_packet(&mut self, addr: Addr) -> Result<Vec<u64>, PortViolation> {
        self.gate.read(addr)?;
        Ok(self.slots[addr.index()].clone())
    }

    /// Fault injection (testbench only): flip the bits of `mask` in link
    /// word `word_k` of slot `addr`, bypassing the port discipline — a
    /// single-event upset strikes regardless of the access schedule. The
    /// flipped value stays masked to the memory's word width, as a real
    /// upset in a `word_bits`-wide array would be.
    pub fn inject_fault(&mut self, addr: Addr, word_k: usize, mask: u64) {
        assert!(word_k < self.packet_words);
        let cur = self.slots[addr.index()][word_k];
        self.slots[addr.index()][word_k] = self.mask(cur ^ mask);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_packet_roundtrip() {
        let mut m = WideMemory::new(8, 4, 16);
        m.begin_cycle(0);
        m.write_packet(Addr(2), &[1, 2, 3, 0x1FFFF]).unwrap();
        m.begin_cycle(1);
        assert_eq!(m.read_packet(Addr(2)).unwrap(), vec![1, 2, 3, 0xFFFF]);
    }

    #[test]
    fn one_access_per_cycle() {
        let mut m = WideMemory::new(8, 4, 16);
        m.begin_cycle(0);
        m.write_packet(Addr(0), &[0; 4]).unwrap();
        assert!(m.read_packet(Addr(0)).is_err());
        assert!(m.write_packet(Addr(1), &[0; 4]).is_err());
        m.begin_cycle(1);
        assert!(m.read_packet(Addr(0)).is_ok());
    }

    #[test]
    #[should_panic(expected = "whole packets")]
    fn partial_packet_rejected() {
        let mut m = WideMemory::new(8, 4, 16);
        m.begin_cycle(0);
        let _ = m.write_packet(Addr(0), &[1, 2]);
    }

    #[test]
    fn injected_fault_flips_stored_bits() {
        let mut m = WideMemory::new(8, 4, 16);
        m.begin_cycle(0);
        m.write_packet(Addr(3), &[1, 2, 3, 4]).unwrap();
        m.inject_fault(Addr(3), 1, 0b100);
        m.begin_cycle(1);
        assert_eq!(m.read_packet(Addr(3)).unwrap(), vec![1, 6, 3, 4]);
    }

    #[test]
    fn ecc_scrub_repairs_single_bit_slot_upsets() {
        let mut m = WideMemory::new(8, 4, 16);
        m.enable_ecc();
        m.begin_cycle(0);
        m.write_packet(Addr(5), &[0xA, 0xB, 0xC, 0xD]).unwrap();
        m.inject_fault(Addr(5), 2, 0b1000);
        assert_eq!(m.scrub_packet(Addr(5)), (1, 0));
        m.begin_cycle(1);
        assert_eq!(m.read_packet(Addr(5)).unwrap(), vec![0xA, 0xB, 0xC, 0xD]);
        assert_eq!(m.ecc_corrections(), 1);
        // A double upset in one word is detected, not repaired.
        m.inject_fault(Addr(5), 0, 0b11);
        assert_eq!(m.scrub_packet(Addr(5)), (0, 1));
        assert_eq!(m.ecc_uncorrectable(), 1);
    }

    #[test]
    fn capacity_matches_pipelined_equivalent() {
        // Same geometry as the Telegraphos III pipelined buffer.
        let m = WideMemory::new(256, 16, 16);
        assert_eq!(m.capacity_bits(), 65_536);
    }
}
