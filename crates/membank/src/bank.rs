//! A single SRAM array with port-discipline checking.
//!
//! Everything in this crate reduces to arrays of these. The discipline is
//! the physical constraint the paper's organizations are designed around:
//! a single-ported array performs **at most one access per cycle**; a
//! dual-ported array performs at most one read *and* one write — and costs
//! roughly twice the area per bit (see `vlsimodel`).

use simkernel::ids::{Addr, Cycle};
use std::fmt;

/// How many concurrent accesses per cycle the array supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortKind {
    /// One access (read or write) per cycle.
    SinglePort,
    /// One read and one write per cycle (two-port register-file style).
    DualPort,
}

/// A port-discipline violation: the access pattern issued in one cycle is
/// not implementable by the declared array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortViolation {
    /// Cycle of the violation.
    pub cycle: Cycle,
    /// Human-readable description of what was attempted.
    pub detail: String,
}

impl fmt::Display for PortViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port violation at cycle {}: {}", self.cycle, self.detail)
    }
}

impl std::error::Error for PortViolation {}

/// Result of an ECC scrub of one stored word (see [`SramBank::scrub`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccOutcome {
    /// Stored word matched its check code.
    Clean,
    /// A single-bit upset was corrected in place.
    Corrected {
        /// Which data bit was flipped back.
        bit: u32,
    },
    /// The word fails its code in a way single-error correction cannot
    /// repair (an even number of flipped bits, or an impossible syndrome).
    Uncorrectable,
}

/// Per-array ECC state: one SEC-DED check code per word plus correction
/// counters. Allocated only when [`SramBank::enable_ecc`] is called, so a
/// plain bank pays nothing (the recovery subsystem's zero-cost-when-
/// disabled doctrine).
#[derive(Debug, Clone)]
struct EccState {
    /// Check code per word: bits 0..=6 the Hamming syndrome, bit 7 the
    /// overall data parity (the SEC-DED double-error detector).
    code: Vec<u8>,
    corrections: u64,
    uncorrectable: u64,
}

/// The Hamming syndrome of a data word: XOR of the check columns of its
/// set bits. Column for data bit `i` is `i + 1` (distinct and non-zero
/// for all 64 positions, so any single flip yields a unique syndrome).
pub(crate) fn ecc_syndrome(word: u64) -> u8 {
    let mut s = 0u8;
    let mut w = word;
    while w != 0 {
        let i = w.trailing_zeros();
        s ^= (i as u8) + 1;
        w &= w - 1;
    }
    s & 0x7F
}

/// Full SEC-DED check code: syndrome in the low 7 bits, overall parity in
/// bit 7.
pub(crate) fn ecc_code(word: u64) -> u8 {
    ecc_syndrome(word) | (((word.count_ones() & 1) as u8) << 7)
}

/// Scrub one `(word, stored_code)` pair outside an [`SramBank`] (the wide
/// organization keeps packet data in flat rows rather than bank words).
/// Returns the outcome and the possibly-corrected word.
pub(crate) fn scrub_word(word: u64, stored: u8) -> (EccOutcome, u64) {
    let fresh = ecc_code(word);
    if fresh == stored {
        return (EccOutcome::Clean, word);
    }
    let syndrome = (fresh ^ stored) & 0x7F;
    let parity_flip = (fresh ^ stored) & 0x80 != 0;
    if parity_flip && (1..=64).contains(&syndrome) {
        let bit = u32::from(syndrome) - 1;
        (EccOutcome::Corrected { bit }, word ^ (1u64 << bit))
    } else {
        (EccOutcome::Uncorrectable, word)
    }
}

/// One SRAM array of `depth` words of `width_bits` bits each.
///
/// Callers must advance the bank's notion of time with
/// [`SramBank::begin_cycle`] before issuing accesses for that cycle; the
/// bank rejects access patterns its ports cannot sustain.
#[derive(Debug, Clone)]
pub struct SramBank {
    data: Vec<u64>,
    width_bits: u32,
    ports: PortKind,
    cycle: Cycle,
    reads_this_cycle: u32,
    writes_this_cycle: u32,
    total_reads: u64,
    total_writes: u64,
    ecc: Option<Box<EccState>>,
}

impl SramBank {
    /// A bank of `depth` words, `width_bits ≤ 64` bits wide, zero-filled.
    pub fn new(depth: usize, width_bits: u32, ports: PortKind) -> Self {
        assert!(depth > 0, "bank needs at least one word");
        assert!(
            (1..=64).contains(&width_bits),
            "model stores words in u64; width must be 1..=64 bits"
        );
        SramBank {
            data: vec![0; depth],
            width_bits,
            ports,
            cycle: 0,
            reads_this_cycle: 0,
            writes_this_cycle: 0,
            total_reads: 0,
            total_writes: 0,
            ecc: None,
        }
    }

    /// Attach SEC-DED check codes to every word. The code array rides on
    /// the array's sense amplifiers: it is read and updated as part of the
    /// scheduled access, never as a second port operation. Idempotent.
    pub fn enable_ecc(&mut self) {
        if self.ecc.is_none() {
            self.ecc = Some(Box::new(EccState {
                code: self.data.iter().map(|&w| ecc_code(w)).collect(),
                corrections: 0,
                uncorrectable: 0,
            }));
        }
    }

    /// Is the array ECC-protected?
    pub fn ecc_enabled(&self) -> bool {
        self.ecc.is_some()
    }

    /// Single-bit upsets corrected in place so far.
    pub fn ecc_corrections(&self) -> u64 {
        self.ecc.as_ref().map_or(0, |e| e.corrections)
    }

    /// Words found corrupted beyond single-error correction.
    pub fn ecc_uncorrectable(&self) -> u64 {
        self.ecc.as_ref().map_or(0, |e| e.uncorrectable)
    }

    /// Check the word at `addr` against its SEC-DED code, correcting a
    /// single flipped bit in place. Models the transparent correction
    /// logic on the array's read path, so it does not consume the port
    /// budget. No-op ([`EccOutcome::Clean`]) on a bank without ECC.
    pub fn scrub(&mut self, addr: Addr) -> EccOutcome {
        let Some(ecc) = &mut self.ecc else {
            return EccOutcome::Clean;
        };
        let word = self.data[addr.index()];
        let stored = ecc.code[addr.index()];
        let (outcome, fixed) = scrub_word(word, stored);
        match outcome {
            EccOutcome::Clean => {}
            EccOutcome::Corrected { .. } => {
                self.data[addr.index()] = fixed;
                ecc.corrections += 1;
            }
            EccOutcome::Uncorrectable => ecc.uncorrectable += 1,
        }
        outcome
    }

    /// Replace this array's contents (and codes) with `other`'s — the
    /// hot-failover copy that moves a failing bank's rows onto a spare.
    /// Testbench/maintenance path: bypasses the port discipline; the
    /// cycle cost of the copy is modeled by the caller's recovery window.
    pub fn copy_contents_from(&mut self, other: &SramBank) {
        assert_eq!(self.depth(), other.depth(), "failover needs equal depth");
        self.data.copy_from_slice(&other.data);
        if let Some(ecc) = &mut self.ecc {
            ecc.code.clear();
            ecc.code.extend(self.data.iter().map(|&w| ecc_code(w)));
        }
    }

    /// Number of words.
    pub fn depth(&self) -> usize {
        self.data.len()
    }

    /// Word width in bits.
    pub fn width_bits(&self) -> u32 {
        self.width_bits
    }

    /// Port configuration.
    pub fn ports(&self) -> PortKind {
        self.ports
    }

    /// Total accesses performed (for utilization accounting).
    pub fn access_counts(&self) -> (u64, u64) {
        (self.total_reads, self.total_writes)
    }

    /// Mask a value to the declared width (what the physical array would
    /// actually store).
    fn mask(&self, v: u64) -> u64 {
        if self.width_bits == 64 {
            v
        } else {
            v & ((1u64 << self.width_bits) - 1)
        }
    }

    /// Open a new cycle; must be monotonically non-decreasing.
    pub fn begin_cycle(&mut self, cycle: Cycle) {
        debug_assert!(cycle >= self.cycle, "time must not run backwards");
        if cycle != self.cycle {
            self.cycle = cycle;
            self.reads_this_cycle = 0;
            self.writes_this_cycle = 0;
        }
    }

    fn check_read(&self) -> Result<(), PortViolation> {
        let ok = match self.ports {
            PortKind::SinglePort => self.reads_this_cycle + self.writes_this_cycle < 1,
            PortKind::DualPort => self.reads_this_cycle < 1,
        };
        if ok {
            Ok(())
        } else {
            Err(PortViolation {
                cycle: self.cycle,
                detail: format!(
                    "read rejected ({:?}: {} reads, {} writes already this cycle)",
                    self.ports, self.reads_this_cycle, self.writes_this_cycle
                ),
            })
        }
    }

    fn check_write(&self) -> Result<(), PortViolation> {
        let ok = match self.ports {
            PortKind::SinglePort => self.reads_this_cycle + self.writes_this_cycle < 1,
            PortKind::DualPort => self.writes_this_cycle < 1,
        };
        if ok {
            Ok(())
        } else {
            Err(PortViolation {
                cycle: self.cycle,
                detail: format!(
                    "write rejected ({:?}: {} reads, {} writes already this cycle)",
                    self.ports, self.reads_this_cycle, self.writes_this_cycle
                ),
            })
        }
    }

    /// Read the word at `addr` in the current cycle.
    pub fn read(&mut self, addr: Addr) -> Result<u64, PortViolation> {
        self.check_read()?;
        let v = *self
            .data
            .get(addr.index())
            .unwrap_or_else(|| panic!("address {addr} out of range 0..{}", self.depth()));
        self.reads_this_cycle += 1;
        self.total_reads += 1;
        Ok(v)
    }

    /// Write `value` (masked to width) at `addr` in the current cycle.
    pub fn write(&mut self, addr: Addr, value: u64) -> Result<(), PortViolation> {
        self.check_write()?;
        let masked = self.mask(value);
        let depth = self.depth();
        let slot = self
            .data
            .get_mut(addr.index())
            .unwrap_or_else(|| panic!("address {addr} out of range 0..{depth}"));
        *slot = masked;
        if let Some(ecc) = &mut self.ecc {
            ecc.code[addr.index()] = ecc_code(masked);
        }
        self.writes_this_cycle += 1;
        self.total_writes += 1;
        Ok(())
    }

    /// Debug peek that bypasses the port discipline (testbench only).
    pub fn peek(&self, addr: Addr) -> u64 {
        self.data[addr.index()]
    }

    /// Fault injection: flip the bits of `mask` at `addr`, bypassing the
    /// port discipline. Testbench-only — used by the fault-injection
    /// suite to prove that the end-to-end integrity checks detect real
    /// storage corruption (an SEU, a weak cell) rather than vacuously
    /// passing.
    pub fn inject_fault(&mut self, addr: Addr, mask: u64) {
        self.data[addr.index()] ^= mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrips() {
        let mut b = SramBank::new(16, 16, PortKind::SinglePort);
        b.begin_cycle(0);
        b.write(Addr(3), 0xBEEF).unwrap();
        b.begin_cycle(1);
        assert_eq!(b.read(Addr(3)).unwrap(), 0xBEEF);
    }

    #[test]
    fn width_masking() {
        let mut b = SramBank::new(4, 8, PortKind::SinglePort);
        b.begin_cycle(0);
        b.write(Addr(0), 0x1FF).unwrap();
        assert_eq!(b.peek(Addr(0)), 0xFF);
        let mut b64 = SramBank::new(4, 64, PortKind::SinglePort);
        b64.begin_cycle(0);
        b64.write(Addr(0), u64::MAX).unwrap();
        assert_eq!(b64.peek(Addr(0)), u64::MAX);
    }

    #[test]
    fn single_port_rejects_second_access() {
        let mut b = SramBank::new(4, 16, PortKind::SinglePort);
        b.begin_cycle(0);
        b.read(Addr(0)).unwrap();
        assert!(b.read(Addr(1)).is_err());
        assert!(b.write(Addr(1), 1).is_err());
        // New cycle clears the budget.
        b.begin_cycle(1);
        assert!(b.write(Addr(1), 1).is_ok());
    }

    #[test]
    fn dual_port_allows_read_plus_write() {
        let mut b = SramBank::new(4, 16, PortKind::DualPort);
        b.begin_cycle(0);
        b.write(Addr(0), 7).unwrap();
        // Same-cycle read sees the array as of this cycle's write in this
        // functional model (write-first); the RTL models never rely on it.
        b.read(Addr(1)).unwrap();
        assert!(b.read(Addr(2)).is_err(), "second read must fail");
        assert!(b.write(Addr(2), 1).is_err(), "second write must fail");
    }

    #[test]
    fn access_counters() {
        let mut b = SramBank::new(4, 16, PortKind::DualPort);
        for c in 0..10 {
            b.begin_cycle(c);
            b.write(Addr(0), c).unwrap();
            b.read(Addr(0)).unwrap();
        }
        assert_eq!(b.access_counts(), (10, 10));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut b = SramBank::new(4, 16, PortKind::SinglePort);
        b.begin_cycle(0);
        let _ = b.read(Addr(4));
    }

    #[test]
    fn begin_cycle_same_cycle_keeps_budget() {
        let mut b = SramBank::new(4, 16, PortKind::SinglePort);
        b.begin_cycle(5);
        b.read(Addr(0)).unwrap();
        b.begin_cycle(5); // idempotent
        assert!(b.read(Addr(0)).is_err());
    }

    #[test]
    fn ecc_corrects_any_single_bit_upset() {
        let mut b = SramBank::new(4, 64, PortKind::SinglePort);
        b.enable_ecc();
        b.begin_cycle(0);
        b.write(Addr(1), 0xDEAD_BEEF_0123_4567).unwrap();
        for bit in 0..64u32 {
            b.inject_fault(Addr(1), 1u64 << bit);
            assert_eq!(b.scrub(Addr(1)), EccOutcome::Corrected { bit });
            assert_eq!(b.peek(Addr(1)), 0xDEAD_BEEF_0123_4567, "bit {bit}");
        }
        assert_eq!(b.ecc_corrections(), 64);
        assert_eq!(b.ecc_uncorrectable(), 0);
        assert_eq!(b.scrub(Addr(1)), EccOutcome::Clean);
    }

    #[test]
    fn ecc_flags_double_upsets_as_uncorrectable() {
        let mut b = SramBank::new(4, 64, PortKind::SinglePort);
        b.enable_ecc();
        b.begin_cycle(0);
        b.write(Addr(0), 0x55).unwrap();
        b.inject_fault(Addr(0), 0b11); // two flipped bits
        assert_eq!(b.scrub(Addr(0)), EccOutcome::Uncorrectable);
        assert_eq!(b.ecc_uncorrectable(), 1);
        assert_eq!(b.ecc_corrections(), 0);
    }

    #[test]
    fn ecc_codes_track_writes() {
        let mut b = SramBank::new(2, 16, PortKind::SinglePort);
        b.enable_ecc();
        for c in 0..8u64 {
            b.begin_cycle(c);
            b.write(Addr(0), c.wrapping_mul(0x9E37)).unwrap();
            assert_eq!(b.scrub(Addr(0)), EccOutcome::Clean, "cycle {c}");
        }
    }

    #[test]
    fn scrub_without_ecc_is_a_clean_noop() {
        let mut b = SramBank::new(2, 16, PortKind::SinglePort);
        b.begin_cycle(0);
        b.write(Addr(0), 0xAB).unwrap();
        b.inject_fault(Addr(0), 1);
        assert_eq!(b.scrub(Addr(0)), EccOutcome::Clean);
        assert_eq!(b.peek(Addr(0)), 0xAA, "no silent correction without ECC");
    }

    #[test]
    fn failover_copy_carries_contents_and_codes() {
        let mut failing = SramBank::new(4, 64, PortKind::SinglePort);
        failing.enable_ecc();
        failing.begin_cycle(0);
        failing.write(Addr(2), 0x1234).unwrap();
        let mut spare = SramBank::new(4, 64, PortKind::SinglePort);
        spare.enable_ecc();
        spare.copy_contents_from(&failing);
        assert_eq!(spare.peek(Addr(2)), 0x1234);
        assert_eq!(spare.scrub(Addr(2)), EccOutcome::Clean);
    }

    #[test]
    fn violation_display() {
        let mut b = SramBank::new(4, 16, PortKind::SinglePort);
        b.begin_cycle(3);
        b.read(Addr(0)).unwrap();
        let e = b.read(Addr(0)).unwrap_err();
        let s = e.to_string();
        assert!(s.contains("cycle 3") && s.contains("read rejected"), "{s}");
    }
}
