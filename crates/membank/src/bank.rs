//! A single SRAM array with port-discipline checking.
//!
//! Everything in this crate reduces to arrays of these. The discipline is
//! the physical constraint the paper's organizations are designed around:
//! a single-ported array performs **at most one access per cycle**; a
//! dual-ported array performs at most one read *and* one write — and costs
//! roughly twice the area per bit (see `vlsimodel`).

use simkernel::ids::{Addr, Cycle};
use std::fmt;

/// How many concurrent accesses per cycle the array supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortKind {
    /// One access (read or write) per cycle.
    SinglePort,
    /// One read and one write per cycle (two-port register-file style).
    DualPort,
}

/// A port-discipline violation: the access pattern issued in one cycle is
/// not implementable by the declared array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortViolation {
    /// Cycle of the violation.
    pub cycle: Cycle,
    /// Human-readable description of what was attempted.
    pub detail: String,
}

impl fmt::Display for PortViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port violation at cycle {}: {}", self.cycle, self.detail)
    }
}

impl std::error::Error for PortViolation {}

/// One SRAM array of `depth` words of `width_bits` bits each.
///
/// Callers must advance the bank's notion of time with
/// [`SramBank::begin_cycle`] before issuing accesses for that cycle; the
/// bank rejects access patterns its ports cannot sustain.
#[derive(Debug, Clone)]
pub struct SramBank {
    data: Vec<u64>,
    width_bits: u32,
    ports: PortKind,
    cycle: Cycle,
    reads_this_cycle: u32,
    writes_this_cycle: u32,
    total_reads: u64,
    total_writes: u64,
}

impl SramBank {
    /// A bank of `depth` words, `width_bits ≤ 64` bits wide, zero-filled.
    pub fn new(depth: usize, width_bits: u32, ports: PortKind) -> Self {
        assert!(depth > 0, "bank needs at least one word");
        assert!(
            (1..=64).contains(&width_bits),
            "model stores words in u64; width must be 1..=64 bits"
        );
        SramBank {
            data: vec![0; depth],
            width_bits,
            ports,
            cycle: 0,
            reads_this_cycle: 0,
            writes_this_cycle: 0,
            total_reads: 0,
            total_writes: 0,
        }
    }

    /// Number of words.
    pub fn depth(&self) -> usize {
        self.data.len()
    }

    /// Word width in bits.
    pub fn width_bits(&self) -> u32 {
        self.width_bits
    }

    /// Port configuration.
    pub fn ports(&self) -> PortKind {
        self.ports
    }

    /// Total accesses performed (for utilization accounting).
    pub fn access_counts(&self) -> (u64, u64) {
        (self.total_reads, self.total_writes)
    }

    /// Mask a value to the declared width (what the physical array would
    /// actually store).
    fn mask(&self, v: u64) -> u64 {
        if self.width_bits == 64 {
            v
        } else {
            v & ((1u64 << self.width_bits) - 1)
        }
    }

    /// Open a new cycle; must be monotonically non-decreasing.
    pub fn begin_cycle(&mut self, cycle: Cycle) {
        debug_assert!(cycle >= self.cycle, "time must not run backwards");
        if cycle != self.cycle {
            self.cycle = cycle;
            self.reads_this_cycle = 0;
            self.writes_this_cycle = 0;
        }
    }

    fn check_read(&self) -> Result<(), PortViolation> {
        let ok = match self.ports {
            PortKind::SinglePort => self.reads_this_cycle + self.writes_this_cycle < 1,
            PortKind::DualPort => self.reads_this_cycle < 1,
        };
        if ok {
            Ok(())
        } else {
            Err(PortViolation {
                cycle: self.cycle,
                detail: format!(
                    "read rejected ({:?}: {} reads, {} writes already this cycle)",
                    self.ports, self.reads_this_cycle, self.writes_this_cycle
                ),
            })
        }
    }

    fn check_write(&self) -> Result<(), PortViolation> {
        let ok = match self.ports {
            PortKind::SinglePort => self.reads_this_cycle + self.writes_this_cycle < 1,
            PortKind::DualPort => self.writes_this_cycle < 1,
        };
        if ok {
            Ok(())
        } else {
            Err(PortViolation {
                cycle: self.cycle,
                detail: format!(
                    "write rejected ({:?}: {} reads, {} writes already this cycle)",
                    self.ports, self.reads_this_cycle, self.writes_this_cycle
                ),
            })
        }
    }

    /// Read the word at `addr` in the current cycle.
    pub fn read(&mut self, addr: Addr) -> Result<u64, PortViolation> {
        self.check_read()?;
        let v = *self
            .data
            .get(addr.index())
            .unwrap_or_else(|| panic!("address {addr} out of range 0..{}", self.depth()));
        self.reads_this_cycle += 1;
        self.total_reads += 1;
        Ok(v)
    }

    /// Write `value` (masked to width) at `addr` in the current cycle.
    pub fn write(&mut self, addr: Addr, value: u64) -> Result<(), PortViolation> {
        self.check_write()?;
        let masked = self.mask(value);
        let depth = self.depth();
        let slot = self
            .data
            .get_mut(addr.index())
            .unwrap_or_else(|| panic!("address {addr} out of range 0..{depth}"));
        *slot = masked;
        self.writes_this_cycle += 1;
        self.total_writes += 1;
        Ok(())
    }

    /// Debug peek that bypasses the port discipline (testbench only).
    pub fn peek(&self, addr: Addr) -> u64 {
        self.data[addr.index()]
    }

    /// Fault injection: flip the bits of `mask` at `addr`, bypassing the
    /// port discipline. Testbench-only — used by the fault-injection
    /// suite to prove that the end-to-end integrity checks detect real
    /// storage corruption (an SEU, a weak cell) rather than vacuously
    /// passing.
    pub fn inject_fault(&mut self, addr: Addr, mask: u64) {
        self.data[addr.index()] ^= mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrips() {
        let mut b = SramBank::new(16, 16, PortKind::SinglePort);
        b.begin_cycle(0);
        b.write(Addr(3), 0xBEEF).unwrap();
        b.begin_cycle(1);
        assert_eq!(b.read(Addr(3)).unwrap(), 0xBEEF);
    }

    #[test]
    fn width_masking() {
        let mut b = SramBank::new(4, 8, PortKind::SinglePort);
        b.begin_cycle(0);
        b.write(Addr(0), 0x1FF).unwrap();
        assert_eq!(b.peek(Addr(0)), 0xFF);
        let mut b64 = SramBank::new(4, 64, PortKind::SinglePort);
        b64.begin_cycle(0);
        b64.write(Addr(0), u64::MAX).unwrap();
        assert_eq!(b64.peek(Addr(0)), u64::MAX);
    }

    #[test]
    fn single_port_rejects_second_access() {
        let mut b = SramBank::new(4, 16, PortKind::SinglePort);
        b.begin_cycle(0);
        b.read(Addr(0)).unwrap();
        assert!(b.read(Addr(1)).is_err());
        assert!(b.write(Addr(1), 1).is_err());
        // New cycle clears the budget.
        b.begin_cycle(1);
        assert!(b.write(Addr(1), 1).is_ok());
    }

    #[test]
    fn dual_port_allows_read_plus_write() {
        let mut b = SramBank::new(4, 16, PortKind::DualPort);
        b.begin_cycle(0);
        b.write(Addr(0), 7).unwrap();
        // Same-cycle read sees the array as of this cycle's write in this
        // functional model (write-first); the RTL models never rely on it.
        b.read(Addr(1)).unwrap();
        assert!(b.read(Addr(2)).is_err(), "second read must fail");
        assert!(b.write(Addr(2), 1).is_err(), "second write must fail");
    }

    #[test]
    fn access_counters() {
        let mut b = SramBank::new(4, 16, PortKind::DualPort);
        for c in 0..10 {
            b.begin_cycle(c);
            b.write(Addr(0), c).unwrap();
            b.read(Addr(0)).unwrap();
        }
        assert_eq!(b.access_counts(), (10, 10));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut b = SramBank::new(4, 16, PortKind::SinglePort);
        b.begin_cycle(0);
        let _ = b.read(Addr(4));
    }

    #[test]
    fn begin_cycle_same_cycle_keeps_budget() {
        let mut b = SramBank::new(4, 16, PortKind::SinglePort);
        b.begin_cycle(5);
        b.read(Addr(0)).unwrap();
        b.begin_cycle(5); // idempotent
        assert!(b.read(Addr(0)).is_err());
    }

    #[test]
    fn violation_display() {
        let mut b = SramBank::new(4, 16, PortKind::SinglePort);
        b.begin_cycle(3);
        b.read(Addr(0)).unwrap();
        let e = b.read(Addr(0)).unwrap_err();
        let s = e.to_string();
        assert!(s.contains("cycle 3") && s.contains("read rejected"), "{s}");
    }
}
