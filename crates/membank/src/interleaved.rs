//! PRIZMA-style interleaved shared buffer (§3.1, §5.3, \[DeEI95\], \[Turn93\]).
//!
//! `M` small independent single-ported banks; **each packet is stored
//! entirely within one bank, and each bank holds exactly one packet**. A
//! packet streams into its bank one word per cycle (the bank's port allows
//! it), and different banks operate concurrently, so aggregate throughput
//! scales with the number of banks — the scalability property \[DeEI95\]
//! chose this organization for. The cost, which §5.3 quantifies and
//! `vlsimodel::compare` reproduces, is the `n×M` router/selector crossbars
//! and the per-bank address decoders.

use crate::bank::{EccOutcome, PortKind, PortViolation, SramBank};
use simkernel::ids::{Addr, Cycle};

/// Identifies one bank (= one packet slot) of the interleaved buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BankId(pub usize);

/// The interleaved (one-packet-per-bank) shared buffer.
#[derive(Debug, Clone)]
pub struct InterleavedMemory {
    banks: Vec<SramBank>,
    occupied: Vec<bool>,
    free: Vec<BankId>,
    packet_words: usize,
    /// Banks masked out by hot failover: never allocated again.
    retired: Vec<bool>,
    /// Spare banks not yet promoted into the allocation pool.
    spare_pool: Vec<BankId>,
    failovers: u64,
}

impl InterleavedMemory {
    /// `m` banks, each sized for exactly one packet of `packet_words`
    /// words of `word_bits` bits.
    pub fn new(m: usize, packet_words: usize, word_bits: u32) -> Self {
        Self::new_with_spares(m, 0, packet_words, word_bits)
    }

    /// Like [`InterleavedMemory::new`], plus `spares` extra banks held in
    /// reserve for hot failover: nominal capacity stays `m`, and a bank
    /// retired by [`InterleavedMemory::retire`] is replaced from the
    /// reserve (while one lasts) without losing capacity.
    pub fn new_with_spares(m: usize, spares: usize, packet_words: usize, word_bits: u32) -> Self {
        assert!(m >= 1 && packet_words >= 1);
        let total = m + spares;
        InterleavedMemory {
            banks: (0..total)
                .map(|_| SramBank::new(packet_words, word_bits, PortKind::SinglePort))
                .collect(),
            occupied: vec![false; total],
            free: (0..m).rev().map(BankId).collect(),
            packet_words,
            retired: vec![false; total],
            spare_pool: (m..total).map(BankId).collect(),
            failovers: 0,
        }
    }

    /// Number of banks in the nominal allocation pool (= packet capacity
    /// `M`); spares in reserve are not counted until promoted.
    pub fn banks(&self) -> usize {
        self.banks.len() - self.spare_pool.len() - self.retired.iter().filter(|&&r| r).count()
    }

    /// Words per packet.
    pub fn packet_words(&self) -> usize {
        self.packet_words
    }

    /// Banks currently holding a packet.
    pub fn occupied_count(&self) -> usize {
        self.occupied.iter().filter(|&&o| o).count()
    }

    /// Claim a free bank for an incoming packet; `None` when full (the
    /// arriving packet is lost — the loss event of the \[HlKa88\]-style
    /// experiments).
    pub fn allocate(&mut self) -> Option<BankId> {
        let b = self.free.pop()?;
        self.occupied[b.0] = true;
        Some(b)
    }

    /// Release a bank after its packet fully departed. A bank retired
    /// while its last packet was in flight leaves the pool here.
    pub fn release(&mut self, b: BankId) {
        assert!(self.occupied[b.0], "releasing a free bank");
        self.occupied[b.0] = false;
        if !self.retired[b.0] {
            self.free.push(b);
        }
    }

    /// Hot failover: mask bank `b` out of the allocation pool and promote
    /// a spare in its place (while one lasts). An occupied bank drains
    /// its in-flight packet first and retires on release. Returns the
    /// promoted spare, or `None` when the reserve is exhausted (capacity
    /// then degrades by one bank).
    pub fn retire(&mut self, b: BankId) -> Option<BankId> {
        if self.retired[b.0] {
            return None;
        }
        self.retired[b.0] = true;
        self.failovers += 1;
        self.free.retain(|&f| f != b);
        let spare = self.spare_pool.pop();
        if let Some(s) = spare {
            // The spare inherits ECC protection if the pool runs it.
            if self.banks[b.0].ecc_enabled() {
                self.banks[s.0].enable_ecc();
            }
            self.free.push(s);
        }
        spare
    }

    /// Banks masked out by failover so far.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Spare banks still in reserve.
    pub fn spares_remaining(&self) -> usize {
        self.spare_pool.len()
    }

    /// Attach SEC-DED check codes to every bank (idempotent).
    pub fn enable_ecc(&mut self) {
        for b in &mut self.banks {
            b.enable_ecc();
        }
    }

    /// Scrub word `k` of bank `b` against its SEC-DED code, correcting a
    /// single-bit upset in place (no port-budget cost; see
    /// [`SramBank::scrub`]).
    pub fn scrub_word(&mut self, b: BankId, k: usize) -> EccOutcome {
        assert!(k < self.packet_words);
        self.banks[b.0].scrub(Addr(k))
    }

    /// Cumulative single-bit corrections in bank `b`.
    pub fn bank_corrections(&self, b: BankId) -> u64 {
        self.banks[b.0].ecc_corrections()
    }

    /// Cumulative `(corrections, uncorrectable)` over all banks.
    pub fn ecc_totals(&self) -> (u64, u64) {
        self.banks.iter().fold((0, 0), |(c, u), b| {
            (c + b.ecc_corrections(), u + b.ecc_uncorrectable())
        })
    }

    /// Open a new cycle on all banks.
    pub fn begin_cycle(&mut self, cycle: Cycle) {
        for b in &mut self.banks {
            b.begin_cycle(cycle);
        }
    }

    /// Stream word `k` of the packet into bank `b` (one per cycle per bank).
    pub fn write_word(&mut self, b: BankId, k: usize, w: u64) -> Result<(), PortViolation> {
        assert!(k < self.packet_words);
        self.banks[b.0].write(Addr(k), w)
    }

    /// Stream word `k` of the packet out of bank `b`.
    pub fn read_word(&mut self, b: BankId, k: usize) -> Result<u64, PortViolation> {
        assert!(k < self.packet_words);
        self.banks[b.0].read(Addr(k))
    }

    /// Observe word `k` of bank `b` without consuming the bank's port —
    /// the side-channel a checksum scrub uses: real ECC logic reads the
    /// stored bits on dedicated sense lines as part of the (single)
    /// scheduled access, so the check must not count as a second port
    /// operation against the model's discipline.
    pub fn peek_word(&self, b: BankId, k: usize) -> u64 {
        assert!(k < self.packet_words);
        self.banks[b.0].peek(Addr(k))
    }

    /// Fault injection (testbench only): flip the bits of `mask` in word
    /// `k` of bank `b`, bypassing the port discipline — a single-event
    /// upset strikes regardless of the access schedule.
    pub fn inject_fault(&mut self, b: BankId, k: usize, mask: u64) {
        assert!(k < self.packet_words);
        self.banks[b.0].inject_fault(Addr(k), mask);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_roundtrip() {
        let mut m = InterleavedMemory::new(4, 3, 16);
        let b = m.allocate().unwrap();
        for (c, w) in [(0u64, 10u64), (1, 20), (2, 30)] {
            m.begin_cycle(c);
            m.write_word(b, c as usize, w).unwrap();
        }
        for (i, c) in (3u64..6).enumerate() {
            m.begin_cycle(c);
            assert_eq!(m.read_word(b, i).unwrap(), (i as u64 + 1) * 10);
        }
    }

    #[test]
    fn different_banks_concurrent_same_bank_not() {
        let mut m = InterleavedMemory::new(4, 4, 16);
        let a = m.allocate().unwrap();
        let b = m.allocate().unwrap();
        m.begin_cycle(0);
        m.write_word(a, 0, 1).unwrap();
        m.write_word(b, 0, 2).unwrap(); // concurrent: different banks
        assert!(m.write_word(a, 1, 3).is_err(), "same bank twice in a cycle");
    }

    #[test]
    fn peek_does_not_consume_the_port() {
        let mut m = InterleavedMemory::new(2, 2, 16);
        let b = m.allocate().unwrap();
        m.begin_cycle(0);
        m.write_word(b, 0, 0x77).unwrap();
        // Peeking after the write must neither fail nor block the next
        // cycle's scheduled access.
        assert_eq!(m.peek_word(b, 0), 0x77);
        m.begin_cycle(1);
        assert_eq!(m.read_word(b, 0).unwrap(), 0x77);
    }

    #[test]
    fn injected_fault_flips_stored_bits() {
        let mut m = InterleavedMemory::new(2, 2, 16);
        let b = m.allocate().unwrap();
        m.begin_cycle(0);
        m.write_word(b, 0, 0xAB).unwrap();
        m.inject_fault(b, 0, 1);
        m.begin_cycle(1);
        assert_eq!(m.read_word(b, 0).unwrap(), 0xAA);
    }

    #[test]
    fn allocation_exhausts_at_m() {
        let mut m = InterleavedMemory::new(2, 4, 16);
        assert!(m.allocate().is_some());
        assert!(m.allocate().is_some());
        assert!(m.allocate().is_none(), "M packets is the hard capacity");
        assert_eq!(m.occupied_count(), 2);
    }

    #[test]
    fn release_recycles() {
        let mut m = InterleavedMemory::new(1, 4, 16);
        let b = m.allocate().unwrap();
        assert!(m.allocate().is_none());
        m.release(b);
        assert!(m.allocate().is_some());
    }

    #[test]
    fn retire_promotes_a_spare_without_losing_capacity() {
        let mut m = InterleavedMemory::new_with_spares(2, 1, 4, 16);
        m.enable_ecc();
        assert_eq!(m.banks(), 2);
        let a = m.allocate().unwrap();
        m.begin_cycle(0);
        m.write_word(a, 0, 0xF0).unwrap();
        m.inject_fault(a, 0, 1);
        assert!(matches!(m.scrub_word(a, 0), EccOutcome::Corrected { .. }));
        assert_eq!(m.bank_corrections(a), 1);
        // Retire the flaky bank while its packet is still resident: the
        // spare joins the pool now, the bank itself drains first.
        let spare = m.retire(a).expect("one spare in reserve");
        assert_eq!(m.failovers(), 1);
        assert_eq!(m.spares_remaining(), 0);
        assert_eq!(m.banks(), 2, "capacity preserved through failover");
        m.begin_cycle(1);
        assert_eq!(m.read_word(a, 0).unwrap(), 0xF0, "in-flight data survives");
        m.release(a);
        // Two allocations must still succeed, and neither is the retiree.
        let b1 = m.allocate().unwrap();
        let b2 = m.allocate().unwrap();
        assert!(b1 != a && b2 != a, "retired bank never allocated again");
        assert!(b1 == spare || b2 == spare, "spare entered the pool");
        assert!(m.allocate().is_none());
    }

    #[test]
    fn retire_without_spares_degrades_capacity() {
        let mut m = InterleavedMemory::new(2, 4, 16);
        assert!(m.retire(BankId(0)).is_none());
        assert_eq!(m.banks(), 1);
        assert!(m.allocate().is_some());
        assert!(m.allocate().is_none(), "one bank masked out");
    }

    #[test]
    #[should_panic(expected = "releasing a free bank")]
    fn double_release_panics() {
        let mut m = InterleavedMemory::new(2, 4, 16);
        let b = m.allocate().unwrap();
        m.release(b);
        m.release(b);
    }
}
