//! PRIZMA-style interleaved shared buffer (§3.1, §5.3, \[DeEI95\], \[Turn93\]).
//!
//! `M` small independent single-ported banks; **each packet is stored
//! entirely within one bank, and each bank holds exactly one packet**. A
//! packet streams into its bank one word per cycle (the bank's port allows
//! it), and different banks operate concurrently, so aggregate throughput
//! scales with the number of banks — the scalability property \[DeEI95\]
//! chose this organization for. The cost, which §5.3 quantifies and
//! `vlsimodel::compare` reproduces, is the `n×M` router/selector crossbars
//! and the per-bank address decoders.

use crate::bank::{PortKind, PortViolation, SramBank};
use simkernel::ids::{Addr, Cycle};

/// Identifies one bank (= one packet slot) of the interleaved buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BankId(pub usize);

/// The interleaved (one-packet-per-bank) shared buffer.
#[derive(Debug, Clone)]
pub struct InterleavedMemory {
    banks: Vec<SramBank>,
    occupied: Vec<bool>,
    free: Vec<BankId>,
    packet_words: usize,
}

impl InterleavedMemory {
    /// `m` banks, each sized for exactly one packet of `packet_words`
    /// words of `word_bits` bits.
    pub fn new(m: usize, packet_words: usize, word_bits: u32) -> Self {
        assert!(m >= 1 && packet_words >= 1);
        InterleavedMemory {
            banks: (0..m)
                .map(|_| SramBank::new(packet_words, word_bits, PortKind::SinglePort))
                .collect(),
            occupied: vec![false; m],
            free: (0..m).rev().map(BankId).collect(),
            packet_words,
        }
    }

    /// Number of banks (= packet capacity `M`).
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Words per packet.
    pub fn packet_words(&self) -> usize {
        self.packet_words
    }

    /// Banks currently holding a packet.
    pub fn occupied_count(&self) -> usize {
        self.occupied.iter().filter(|&&o| o).count()
    }

    /// Claim a free bank for an incoming packet; `None` when full (the
    /// arriving packet is lost — the loss event of the \[HlKa88\]-style
    /// experiments).
    pub fn allocate(&mut self) -> Option<BankId> {
        let b = self.free.pop()?;
        self.occupied[b.0] = true;
        Some(b)
    }

    /// Release a bank after its packet fully departed.
    pub fn release(&mut self, b: BankId) {
        assert!(self.occupied[b.0], "releasing a free bank");
        self.occupied[b.0] = false;
        self.free.push(b);
    }

    /// Open a new cycle on all banks.
    pub fn begin_cycle(&mut self, cycle: Cycle) {
        for b in &mut self.banks {
            b.begin_cycle(cycle);
        }
    }

    /// Stream word `k` of the packet into bank `b` (one per cycle per bank).
    pub fn write_word(&mut self, b: BankId, k: usize, w: u64) -> Result<(), PortViolation> {
        assert!(k < self.packet_words);
        self.banks[b.0].write(Addr(k), w)
    }

    /// Stream word `k` of the packet out of bank `b`.
    pub fn read_word(&mut self, b: BankId, k: usize) -> Result<u64, PortViolation> {
        assert!(k < self.packet_words);
        self.banks[b.0].read(Addr(k))
    }

    /// Observe word `k` of bank `b` without consuming the bank's port —
    /// the side-channel a checksum scrub uses: real ECC logic reads the
    /// stored bits on dedicated sense lines as part of the (single)
    /// scheduled access, so the check must not count as a second port
    /// operation against the model's discipline.
    pub fn peek_word(&self, b: BankId, k: usize) -> u64 {
        assert!(k < self.packet_words);
        self.banks[b.0].peek(Addr(k))
    }

    /// Fault injection (testbench only): flip the bits of `mask` in word
    /// `k` of bank `b`, bypassing the port discipline — a single-event
    /// upset strikes regardless of the access schedule.
    pub fn inject_fault(&mut self, b: BankId, k: usize, mask: u64) {
        assert!(k < self.packet_words);
        self.banks[b.0].inject_fault(Addr(k), mask);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_roundtrip() {
        let mut m = InterleavedMemory::new(4, 3, 16);
        let b = m.allocate().unwrap();
        for (c, w) in [(0u64, 10u64), (1, 20), (2, 30)] {
            m.begin_cycle(c);
            m.write_word(b, c as usize, w).unwrap();
        }
        for (i, c) in (3u64..6).enumerate() {
            m.begin_cycle(c);
            assert_eq!(m.read_word(b, i).unwrap(), (i as u64 + 1) * 10);
        }
    }

    #[test]
    fn different_banks_concurrent_same_bank_not() {
        let mut m = InterleavedMemory::new(4, 4, 16);
        let a = m.allocate().unwrap();
        let b = m.allocate().unwrap();
        m.begin_cycle(0);
        m.write_word(a, 0, 1).unwrap();
        m.write_word(b, 0, 2).unwrap(); // concurrent: different banks
        assert!(m.write_word(a, 1, 3).is_err(), "same bank twice in a cycle");
    }

    #[test]
    fn peek_does_not_consume_the_port() {
        let mut m = InterleavedMemory::new(2, 2, 16);
        let b = m.allocate().unwrap();
        m.begin_cycle(0);
        m.write_word(b, 0, 0x77).unwrap();
        // Peeking after the write must neither fail nor block the next
        // cycle's scheduled access.
        assert_eq!(m.peek_word(b, 0), 0x77);
        m.begin_cycle(1);
        assert_eq!(m.read_word(b, 0).unwrap(), 0x77);
    }

    #[test]
    fn injected_fault_flips_stored_bits() {
        let mut m = InterleavedMemory::new(2, 2, 16);
        let b = m.allocate().unwrap();
        m.begin_cycle(0);
        m.write_word(b, 0, 0xAB).unwrap();
        m.inject_fault(b, 0, 1);
        m.begin_cycle(1);
        assert_eq!(m.read_word(b, 0).unwrap(), 0xAA);
    }

    #[test]
    fn allocation_exhausts_at_m() {
        let mut m = InterleavedMemory::new(2, 4, 16);
        assert!(m.allocate().is_some());
        assert!(m.allocate().is_some());
        assert!(m.allocate().is_none(), "M packets is the hard capacity");
        assert_eq!(m.occupied_count(), 2);
    }

    #[test]
    fn release_recycles() {
        let mut m = InterleavedMemory::new(1, 4, 16);
        let b = m.allocate().unwrap();
        assert!(m.allocate().is_none());
        m.release(b);
        assert!(m.allocate().is_some());
    }

    #[test]
    #[should_panic(expected = "releasing a free bank")]
    fn double_release_panics() {
        let mut m = InterleavedMemory::new(2, 4, 16);
        let b = m.allocate().unwrap();
        m.release(b);
        m.release(b);
    }
}
