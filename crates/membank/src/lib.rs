//! # membank — memory substrate for VLSI switch buffers
//!
//! The paper's subject is *how to organize the buffer memory of a switch*.
//! This crate implements every organization it discusses, as functional
//! cycle-accurate models with **port-discipline checking**: each model
//! tracks the operations issued to each bank in each cycle and returns an
//! error on anything a real single-ported SRAM array could not do. The
//! models are therefore executable versions of the feasibility arguments in
//! §3 and §5 of the paper:
//!
//! * [`bank::SramBank`] — one SRAM array: single- or dual-ported, at most
//!   one operation per port per cycle;
//! * [`pipelined::PipelinedMemory`] — the paper's contribution (§3.2): a
//!   chain of single-ported banks swept by address *waves*, one wave
//!   initiation per cycle;
//! * [`wide::WideMemory`] — the wide-word organization of \[KaSC91\] (§3.1):
//!   one whole packet per memory word, one operation per cycle;
//! * [`interleaved::InterleavedMemory`] — PRIZMA-style interleaving
//!   (\[DeEI95\], §5.3): one packet per bank, per-bank word streams;
//! * [`multiport::MultiPortMemory`] — the "true multi-port" reference the
//!   paper dismisses as too expensive (§3.1), used here as a golden model
//!   for equivalence tests;
//! * [`shiftreg::ShiftRegisterBank`] — the shift-register alternative
//!   considered and rejected in §5.3.
//!
//! Data words are `u64` (the models are width-agnostic; the physical width
//! in bits is carried as metadata and used by `vlsimodel`, not here).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod interleaved;
pub mod multiport;
pub mod pipelined;
pub mod shiftreg;
pub mod wide;

pub use bank::{EccOutcome, PortKind, PortViolation, SramBank};
pub use interleaved::{BankId, InterleavedMemory};
pub use multiport::MultiPortMemory;
pub use pipelined::{CompletedRead, InitiateError, PipelinedMemory, WaveOp};
pub use wide::WideMemory;
