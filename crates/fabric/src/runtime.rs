//! The fabric runtime: a component graph of switch elements advanced in
//! conservative sync windows, sequentially or sharded across threads.
//!
//! ## Time, links, and the window rule
//!
//! Every link (element-to-element and element-to-terminal) has the same
//! fixed latency `L >= 1`: a cell emitted from an output port at cycle
//! `c` lands on the attached input port (or terminal) at `c + L`.
//! Terminals inject with zero latency — an injection at cycle `c` *is*
//! the arrival at the ingress element at `c` — so an uncontended cell's
//! terminal-to-terminal latency is exactly `hops × L`.
//!
//! Execution advances in windows of width `W = L` (the classic
//! conservative lookahead): an emission inside window `w` (cycle in
//! `[wL, wL+L)`) arrives at cycle `>= wL + L`, i.e. in window `w+1` or
//! later. Therefore once every element has finished window `w`, *all*
//! arrivals for window `w+1` exist — each element can run its next
//! window against a provably complete inbox, with no rollback and no
//! global event queue.
//!
//! ## Determinism at any `--jobs N`
//!
//! The element→shard partition is fixed (`shard(e) = e mod jobs`), but
//! more importantly no result depends on it:
//!
//! - each input port has exactly one driver (topology invariant), so an
//!   element's inbox keys `(cycle, port)` are unique and sorting by them
//!   yields one canonical order no matter which thread produced which
//!   arrival, or how late a mailbox was drained;
//! - each terminal's delivered log is written only by the shard owning
//!   its egress element, in that element's window order — cycle-ordered
//!   because a single output port serializes its emissions;
//! - each terminal's injection stream is an independent
//!   `SplitMix64::stream(seed, t)`, a pure function of `(seed, t)`.
//!
//! The sequential path ([`Fabric::run_with`], also `jobs = 1`) is an
//! independent implementation of the same window rule with no threads,
//! no mailboxes and no atomics; `tests/fabric_determinism.rs` pins the
//! sharded executor byte-identical to it.

use crate::element::{Arrival, ElementKind, Emission, FabricElement};
use crate::topo::{Target, Topology};
use crate::traffic::{TerminalSource, Workload};
use simkernel::cell::Cell;
use simkernel::ids::Cycle;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use telemetry::metrics::Metrics;
use telemetry::probe::Probe;
use telemetry::{GaugeKind, ProbeEvent};

/// How often (in windows) per-element occupancy is sampled.
const DEFAULT_SAMPLE_EVERY: u64 = 64;

/// A multistage network instantiated with real elements.
pub struct Fabric {
    topo: Topology,
    kind: ElementKind,
    latency: u64,
    cell_time: u64,
    sample_every: u64,
    elements: Vec<Box<dyn FabricElement>>,
}

/// Everything one run produced, identical for every `jobs` value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricRun {
    /// Cells injected at terminals.
    pub offered: u64,
    /// Per-terminal delivered log, cycle-ordered: `(delivery cycle, cell)`.
    pub delivered: Vec<Vec<(Cycle, Cell)>>,
    /// Cells dropped inside elements (buffer full), summed.
    pub dropped: u64,
    /// Cells still inside the fabric (element buffers + in-flight links)
    /// when the run ended.
    pub residual: u64,
    /// Per-element accepted-cell counters.
    pub elem_accepted: Vec<u64>,
    /// Per-element dropped-cell counters.
    pub elem_dropped: Vec<u64>,
    /// Per-element occupancy probe series: `(sample cycle, cells held)`.
    pub occ_series: Vec<Vec<(Cycle, u64)>>,
    /// Windows executed.
    pub windows: u64,
    /// Link latency the run used.
    pub latency: u64,
}

impl FabricRun {
    /// Total cells delivered.
    pub fn delivered_total(&self) -> u64 {
        self.delivered.iter().map(|d| d.len() as u64).sum()
    }

    /// All terminal-to-terminal latencies (delivery cycle − birth).
    pub fn latencies(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .delivered
            .iter()
            .flatten()
            .map(|(c, cell)| c - cell.birth)
            .collect();
        v.sort_unstable();
        v
    }

    /// Mean delivered latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        let l = self.latencies();
        if l.is_empty() {
            return 0.0;
        }
        l.iter().sum::<u64>() as f64 / l.len() as f64
    }

    /// 99th-percentile delivered latency in cycles.
    pub fn p99_latency(&self) -> u64 {
        let l = self.latencies();
        if l.is_empty() {
            return 0;
        }
        l[(l.len() - 1) * 99 / 100]
    }

    /// Order-insensitive-free content digest (FNV-1a over every field in
    /// canonical order) — one number that two runs share iff they are
    /// byte-identical in delivered cells, counters and probe series.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x100000001b3);
        };
        mix(self.offered);
        mix(self.dropped);
        mix(self.residual);
        mix(self.windows);
        for log in &self.delivered {
            mix(log.len() as u64);
            for (c, cell) in log {
                mix(*c);
                mix(cell.id.0);
                mix(cell.src.index() as u64);
                mix(cell.dst.index() as u64);
                mix(cell.birth);
            }
        }
        for &a in &self.elem_accepted {
            mix(a);
        }
        for &d in &self.elem_dropped {
            mix(d);
        }
        for s in &self.occ_series {
            mix(s.len() as u64);
            for &(c, v) in s {
                mix(c);
                mix(v);
            }
        }
        h
    }

    /// Replay the run's probe data through the metrics pipeline and
    /// render its JSON: fabric-wide occupancy (summed across elements)
    /// as the occupancy gauge, per-element occupancy as queue-depth
    /// gauges, and per-terminal deliveries as departure events.
    pub fn metrics_json(&self) -> String {
        let n = self.elem_accepted.len().max(self.delivered.len());
        let window = self.occ_series.iter().map(|s| s.len()).max().unwrap_or(1);
        let mut m = Metrics::new(n, window.max(1), 4096);
        // Summed occupancy per sample cycle (all elements share sample
        // cycles; elements missing a sample contribute zero).
        let mut totals: std::collections::BTreeMap<Cycle, u64> = std::collections::BTreeMap::new();
        for s in &self.occ_series {
            for &(c, v) in s {
                *totals.entry(c).or_insert(0) += v;
            }
        }
        for (&c, &v) in &totals {
            m.record(
                c,
                ProbeEvent::Gauge {
                    gauge: GaugeKind::Occupancy,
                    index: 0,
                    value: v,
                },
            );
        }
        for (e, s) in self.occ_series.iter().enumerate() {
            for &(c, v) in s {
                m.record(
                    c,
                    ProbeEvent::Gauge {
                        gauge: GaugeKind::QueueDepth,
                        index: e,
                        value: v,
                    },
                );
            }
        }
        for (t, log) in self.delivered.iter().enumerate() {
            for (c, cell) in log {
                m.record(
                    *c,
                    ProbeEvent::Departed {
                        output: t,
                        id: cell.id.0,
                        birth: cell.birth,
                        latency: c - cell.birth,
                    },
                );
            }
        }
        m.to_json()
    }
}

/// Mutable per-element state of an execution: future arrivals not yet
/// consumed (cells in flight on links).
type Pending = Vec<Vec<Arrival>>;

/// Pull the arrivals due before `to` out of `pending`, sorted by the
/// canonical `(cycle, port)` key, into `due`.
fn extract_due(pending: &mut Vec<Arrival>, to: Cycle, due: &mut Vec<Arrival>) {
    due.clear();
    if pending.is_empty() {
        return;
    }
    let mut kept = 0usize;
    for i in 0..pending.len() {
        let a = pending[i];
        if a.cycle < to {
            due.push(a);
        } else {
            pending[kept] = a;
            kept += 1;
        }
    }
    pending.truncate(kept);
    due.sort_unstable_by_key(|a| (a.cycle, a.port));
}

impl Fabric {
    /// Instantiate `topo` with `kind` elements. Packet-paced kinds
    /// (behavioral, word-level) require a uniform radix — the link
    /// quantum `S = 2k` must match across every hop.
    pub fn new(topo: Topology, kind: ElementKind) -> Self {
        if !matches!(kind, ElementKind::Scalar { .. }) {
            assert!(
                topo.radix.windows(2).all(|w| w[0] == w[1]),
                "{}: packet-paced elements need a uniform radix",
                topo.name
            );
        }
        let cell_time = kind.cell_time(topo.radix.first().copied().unwrap_or(2) as usize);
        let elements = (0..topo.elements())
            .map(|e| kind.build(topo.radix[e] as usize, topo.route[e].clone()))
            .collect();
        Fabric {
            latency: cell_time,
            cell_time,
            sample_every: DEFAULT_SAMPLE_EVERY,
            topo,
            kind,
            elements,
        }
    }

    /// Override the link latency (default: one cell time). The sync
    /// window width always equals the link latency.
    pub fn with_link_latency(mut self, latency: u64) -> Self {
        assert!(latency >= 1, "links take at least one cycle");
        self.latency = latency;
        self
    }

    /// Override the occupancy sampling period (in windows).
    pub fn with_sample_every(mut self, windows: u64) -> Self {
        assert!(windows >= 1);
        self.sample_every = windows;
        self
    }

    /// The topology this fabric instantiates.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The element organization.
    pub fn kind(&self) -> ElementKind {
        self.kind
    }

    /// Cycles per injection slot (the link occupancy of one cell).
    pub fn cell_time(&self) -> u64 {
        self.cell_time
    }

    /// Link latency in cycles (= sync window width).
    pub fn link_latency(&self) -> u64 {
        self.latency
    }

    /// Windows needed to cover `slots` injection slots plus `drain`
    /// drain slots.
    pub fn windows_for(&self, slots: u64, drain: u64) -> u64 {
        ((slots + drain) * self.cell_time).div_ceil(self.latency)
    }

    /// Sequential reference execution: run exactly `windows` windows,
    /// asking `inject` for each window's injections. The closure pushes
    /// `(terminal, cycle, cell)` with `from <= cycle < to`; cells appear
    /// at the terminal's ingress port at `cycle` (zero injection
    /// latency). This is the executor the sharded path is verified
    /// against — plain loops, no threads, no mailboxes.
    pub fn run_with(
        &mut self,
        windows: u64,
        mut inject: impl FnMut(Cycle, Cycle, &mut Vec<(usize, Cycle, Cell)>),
    ) -> FabricRun {
        let nelem = self.topo.elements();
        let l = self.latency;
        let mut pending: Pending = vec![Vec::new(); nelem];
        let mut delivered: Vec<Vec<(Cycle, Cell)>> = vec![Vec::new(); self.topo.endpoints];
        let mut occ_series: Vec<Vec<(Cycle, u64)>> = vec![Vec::new(); nelem];
        let mut offered = 0u64;
        let mut inj: Vec<(usize, Cycle, Cell)> = Vec::new();
        let mut due: Vec<Arrival> = Vec::new();
        let mut outbox: Vec<Emission> = Vec::new();
        for w in 0..windows {
            let (from, to) = (w * l, (w + 1) * l);
            inj.clear();
            inject(from, to, &mut inj);
            for &(t, cycle, cell) in &inj {
                debug_assert!(from <= cycle && cycle < to, "injection outside its window");
                let (e, port) = self.topo.ingress[t];
                pending[e as usize].push(Arrival { cycle, port, cell });
                offered += 1;
            }
            for e in 0..nelem {
                extract_due(&mut pending[e], to, &mut due);
                outbox.clear();
                self.elements[e].run_window(from, to, &due, &mut outbox);
                for em in &outbox {
                    debug_assert!(from <= em.cycle && em.cycle < to, "emission outside window");
                    match self.topo.wiring[e][em.port as usize] {
                        Target::Elem { elem, port } => pending[elem as usize].push(Arrival {
                            cycle: em.cycle + l,
                            port,
                            cell: em.cell,
                        }),
                        Target::Terminal(t) => delivered[t as usize].push((em.cycle + l, em.cell)),
                    }
                }
            }
            if (w + 1) % self.sample_every == 0 {
                for (e, s) in occ_series.iter_mut().enumerate() {
                    s.push((to, self.elements[e].occupancy()));
                }
            }
        }
        let in_links: u64 = pending.iter().map(|p| p.len() as u64).sum();
        self.collect(offered, delivered, occ_series, in_links, windows)
    }

    /// Run `slots` injection slots of `workload` plus `drain` empty
    /// slots, on `jobs` worker threads (1 = the sequential reference).
    /// The result is byte-identical for every `jobs` value.
    pub fn run(&mut self, slots: u64, drain: u64, workload: &Workload, jobs: usize) -> FabricRun {
        let windows = self.windows_for(slots, drain);
        let jobs = jobs.max(1).min(self.topo.elements());
        if jobs == 1 {
            let n = self.topo.endpoints;
            let ct = self.cell_time;
            let mut sources: Vec<TerminalSource> =
                (0..n).map(|t| TerminalSource::new(workload, t)).collect();
            return self.run_with(windows, |from, to, inj| {
                let mut slot = from.div_ceil(ct);
                while slot * ct < to && slot < slots {
                    let cycle = slot * ct;
                    for (t, src) in sources.iter_mut().enumerate() {
                        if let Some(cell) = src.draw(workload, n, cycle) {
                            inj.push((t, cycle, cell));
                        }
                    }
                    slot += 1;
                }
            });
        }
        self.run_sharded(windows, slots, workload, jobs)
    }

    /// The sharded executor: `shard(e) = e mod jobs`, per-shard window
    /// counters instead of a barrier, per-shard-pair mailboxes for
    /// cross-shard link traffic.
    fn run_sharded(
        &mut self,
        windows: u64,
        slots: u64,
        workload: &Workload,
        jobs: usize,
    ) -> FabricRun {
        let nelem = self.topo.elements();
        let n = self.topo.endpoints;
        let l = self.latency;
        let ct = self.cell_time;
        let sample_every = self.sample_every;
        let topo = &self.topo;

        // Partition elements (restored after the scope), terminal
        // sources (by ingress-element shard), and nothing else: wiring
        // and routes are shared read-only.
        let mut shard_elems: Vec<Vec<(usize, Box<dyn FabricElement>)>> =
            (0..jobs).map(|_| Vec::new()).collect();
        for (e, elem) in self.elements.drain(..).enumerate() {
            shard_elems[e % jobs].push((e, elem));
        }
        let mut shard_sources: Vec<Vec<(usize, TerminalSource)>> =
            (0..jobs).map(|_| Vec::new()).collect();
        for t in 0..n {
            let owner = topo.ingress[t].0 as usize % jobs;
            shard_sources[owner].push((t, TerminalSource::new(workload, t)));
        }

        // done[s] = windows shard s has fully published.
        let done: Vec<AtomicU64> = (0..jobs).map(|_| AtomicU64::new(0)).collect();
        // mailboxes[producer][consumer]: (global element, arrival).
        type Mailbox = Mutex<Vec<(u32, Arrival)>>;
        let mailboxes: Vec<Vec<Mailbox>> = (0..jobs)
            .map(|_| (0..jobs).map(|_| Mutex::new(Vec::new())).collect())
            .collect();

        struct ShardOut {
            elems: Vec<(usize, Box<dyn FabricElement>)>,
            delivered: Vec<Vec<(Cycle, Cell)>>,
            occ_series: Vec<(usize, Vec<(Cycle, u64)>)>,
            offered: u64,
            pending_left: u64,
        }

        let outs: Vec<ShardOut> = std::thread::scope(|scope| {
            let handles: Vec<_> = shard_elems
                .into_iter()
                .zip(shard_sources)
                .enumerate()
                .map(|(s, (mut elems, mut sources))| {
                    let done = &done;
                    let mailboxes = &mailboxes;
                    scope.spawn(move || {
                        let nlocal = elems.len();
                        let mut pending: Vec<Vec<Arrival>> = vec![Vec::new(); nlocal];
                        let mut delivered: Vec<Vec<(Cycle, Cell)>> = vec![Vec::new(); n];
                        let mut occ_series: Vec<(usize, Vec<(Cycle, u64)>)> =
                            elems.iter().map(|(e, _)| (*e, Vec::new())).collect();
                        let mut batches: Vec<Vec<(u32, Arrival)>> =
                            (0..jobs).map(|_| Vec::new()).collect();
                        let mut due: Vec<Arrival> = Vec::new();
                        let mut outbox: Vec<Emission> = Vec::new();
                        let mut offered = 0u64;
                        for w in 0..windows {
                            // Conservative wait: peers must have
                            // published window w-1's emissions.
                            for (p, d) in done.iter().enumerate() {
                                if p == s {
                                    continue;
                                }
                                let mut spins = 0u32;
                                while d.load(Ordering::Acquire) < w {
                                    spins = spins.wrapping_add(1);
                                    if spins < 128 {
                                        std::hint::spin_loop();
                                    } else {
                                        std::thread::yield_now();
                                    }
                                }
                            }
                            // Drain inbound mailboxes. A producer already
                            // inside window w may have appended arrivals
                            // for window w+1 — harmless: extraction below
                            // is cycle-gated and the sort key is unique.
                            for (p, row) in mailboxes.iter().enumerate() {
                                if p == s {
                                    continue;
                                }
                                let mut mb = row[s].lock().expect("mailbox poisoned");
                                for (e, a) in mb.drain(..) {
                                    pending[e as usize / jobs].push(a);
                                }
                            }
                            let (from, to) = (w * l, (w + 1) * l);
                            // Inject this window's slots for owned
                            // terminals (ascending t; streams are
                            // per-terminal, so partitioning is invisible).
                            let mut slot = from.div_ceil(ct);
                            while slot * ct < to && slot < slots {
                                let cycle = slot * ct;
                                for (t, src) in sources.iter_mut() {
                                    if let Some(cell) = src.draw(workload, n, cycle) {
                                        let (e, port) = topo.ingress[*t];
                                        offered += 1;
                                        pending[e as usize / jobs].push(Arrival {
                                            cycle,
                                            port,
                                            cell,
                                        });
                                    }
                                }
                                slot += 1;
                            }
                            // Run owned elements in ascending global
                            // index; route emissions.
                            for li in 0..nlocal {
                                let ge = elems[li].0;
                                extract_due(&mut pending[li], to, &mut due);
                                outbox.clear();
                                elems[li].1.run_window(from, to, &due, &mut outbox);
                                for em in &outbox {
                                    match topo.wiring[ge][em.port as usize] {
                                        Target::Elem { elem, port } => {
                                            let a = Arrival {
                                                cycle: em.cycle + l,
                                                port,
                                                cell: em.cell,
                                            };
                                            let ds = elem as usize % jobs;
                                            if ds == s {
                                                pending[elem as usize / jobs].push(a);
                                            } else {
                                                batches[ds].push((elem, a));
                                            }
                                        }
                                        Target::Terminal(t) => {
                                            delivered[t as usize].push((em.cycle + l, em.cell))
                                        }
                                    }
                                }
                            }
                            // Publish cross-shard traffic, then the
                            // window itself.
                            for (p, b) in batches.iter_mut().enumerate() {
                                if p != s && !b.is_empty() {
                                    mailboxes[s][p].lock().expect("mailbox poisoned").append(b);
                                }
                            }
                            if (w + 1) % sample_every == 0 {
                                for (li, (_, series)) in occ_series.iter_mut().enumerate() {
                                    series.push((to, elems[li].1.occupancy()));
                                }
                            }
                            done[s].store(w + 1, Ordering::Release);
                        }
                        let pending_left: u64 = pending.iter().map(|p| p.len() as u64).sum();
                        ShardOut {
                            elems,
                            delivered,
                            occ_series,
                            offered,
                            pending_left,
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fabric worker panicked"))
                .collect()
        });

        // Reassemble elements in global order and merge shard results.
        let mut slots_back: Vec<Option<Box<dyn FabricElement>>> =
            (0..nelem).map(|_| None).collect();
        let mut delivered: Vec<Vec<(Cycle, Cell)>> = vec![Vec::new(); n];
        let mut occ_series: Vec<Vec<(Cycle, u64)>> = vec![Vec::new(); nelem];
        let mut offered = 0u64;
        let mut in_links = 0u64;
        for out in outs {
            for (e, elem) in out.elems {
                slots_back[e] = Some(elem);
            }
            for (t, log) in out.delivered.into_iter().enumerate() {
                if !log.is_empty() {
                    debug_assert!(delivered[t].is_empty(), "terminal delivered on two shards");
                    delivered[t] = log;
                }
            }
            for (e, series) in out.occ_series {
                occ_series[e] = series;
            }
            offered += out.offered;
            in_links += out.pending_left;
        }
        self.elements = slots_back
            .into_iter()
            .map(|e| e.expect("element lost in resharding"))
            .collect();
        // Arrivals published in the final window are never consumed;
        // they are still "on the link".
        for row in &mailboxes {
            for mb in row {
                in_links += mb.lock().expect("mailbox poisoned").len() as u64;
            }
        }
        self.collect(offered, delivered, occ_series, in_links, windows)
    }

    /// Assemble a [`FabricRun`] from an execution's raw outputs plus the
    /// elements' own counters.
    fn collect(
        &self,
        offered: u64,
        delivered: Vec<Vec<(Cycle, Cell)>>,
        occ_series: Vec<Vec<(Cycle, u64)>>,
        in_links: u64,
        windows: u64,
    ) -> FabricRun {
        let elem_accepted: Vec<u64> = self.elements.iter().map(|e| e.accepted()).collect();
        let elem_dropped: Vec<u64> = self.elements.iter().map(|e| e.dropped()).collect();
        let dropped = elem_dropped.iter().sum();
        let buffered: u64 = self.elements.iter().map(|e| e.occupancy()).sum();
        let run = FabricRun {
            offered,
            delivered,
            dropped,
            residual: buffered + in_links,
            elem_accepted,
            elem_dropped,
            occ_series,
            windows,
            latency: self.latency,
        };
        debug_assert_eq!(
            run.offered,
            run.delivered_total() + run.dropped + run.residual,
            "cell conservation violated"
        );
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo;
    use crate::traffic::Pattern;

    fn uniform(seed: u64) -> Workload {
        Workload {
            pattern: Pattern::Uniform,
            load: 0.5,
            seed,
        }
    }

    #[test]
    fn scalar_omega_conserves_and_delivers() {
        let mut f = Fabric::new(topo::omega(2, 4), ElementKind::Scalar { capacity: None });
        let run = f.run(500, 100, &uniform(3), 1);
        assert!(run.offered > 0);
        assert_eq!(run.dropped, 0, "unbounded pools never drop");
        assert_eq!(run.residual, 0, "the drain emptied the fabric");
        assert_eq!(run.offered, run.delivered_total());
        assert_eq!(
            run.offered,
            run.delivered_total() + run.dropped + run.residual
        );
    }

    #[test]
    fn uncontended_latency_is_hops_times_link_latency() {
        for lat in [1, 3] {
            let mut f = Fabric::new(topo::omega(2, 3), ElementKind::Scalar { capacity: None })
                .with_link_latency(lat);
            let windows = f.windows_for(1, 20);
            let run = f.run_with(windows, |from, _to, inj| {
                if from == 0 {
                    inj.push((0, 0, Cell::new(1, 0, 7, 0)));
                }
            });
            assert_eq!(run.delivered_total(), 1);
            let (cycle, cell) = run.delivered[7][0];
            assert_eq!(cycle - cell.birth, 3 * lat, "3 hops at latency {lat}");
        }
    }

    #[test]
    fn sharded_matches_sequential_on_every_topology() {
        for t in [
            topo::omega(2, 4),
            topo::banyan(2, 4),
            topo::clos2(4, 4),
            topo::fat_tree(4),
        ] {
            let name = t.name;
            let mut a = Fabric::new(t.clone(), ElementKind::Scalar { capacity: Some(8) });
            let mut b = Fabric::new(t, ElementKind::Scalar { capacity: Some(8) });
            let ra = a.run(300, 100, &uniform(11), 1);
            let rb = b.run(300, 100, &uniform(11), 3);
            assert_eq!(ra, rb, "{name}: jobs=3 diverged from sequential");
            assert_eq!(ra.digest(), rb.digest());
        }
    }

    #[test]
    fn behavioral_fabric_runs_and_conserves() {
        let mut f = Fabric::new(topo::omega(4, 2), ElementKind::Behavioral { slots: 16 });
        let run = f.run(200, 64, &uniform(5), 1);
        assert!(run.offered > 0);
        assert_eq!(run.residual, 0);
        assert_eq!(run.offered, run.delivered_total() + run.dropped);
        // S = 8 per hop, 2 hops, plus the cut-through pipeline: nothing
        // can beat hops × S cycles end to end.
        assert!(run.latencies().first().copied().unwrap_or(0) >= 16);
    }

    #[test]
    fn behavioral_sharded_matches_sequential() {
        let mut a = Fabric::new(topo::omega(4, 2), ElementKind::Behavioral { slots: 8 });
        let mut b = Fabric::new(topo::omega(4, 2), ElementKind::Behavioral { slots: 8 });
        let ra = a.run(150, 64, &uniform(9), 1);
        let rb = b.run(150, 64, &uniform(9), 4);
        assert_eq!(ra, rb);
    }

    #[test]
    fn word_fabric_delivers_identical_cells() {
        let mut f = Fabric::new(topo::omega(2, 2), ElementKind::WordRtl { slots: 8 });
        let run = f.run(60, 64, &uniform(2), 1);
        assert!(run.offered > 0);
        assert_eq!(run.residual, 0);
        assert_eq!(run.offered, run.delivered_total() + run.dropped);
        for (t, log) in run.delivered.iter().enumerate() {
            for (_, cell) in log {
                assert_eq!(cell.dst.index(), t, "cell delivered to the wrong terminal");
            }
        }
    }

    #[test]
    fn metrics_json_validates() {
        let mut f = Fabric::new(topo::omega(2, 3), ElementKind::Scalar { capacity: Some(8) })
            .with_sample_every(8);
        let run = f.run(400, 100, &uniform(1), 1);
        telemetry::metrics::validate_json(&run.metrics_json()).expect("fabric metrics JSON");
    }
}
