//! Topology builders: explicit component graphs with self-routing tables.
//!
//! A [`Topology`] is a directed graph of switch elements plus the wiring
//! that attaches `endpoints` terminals to its edge. Every element output
//! port drives exactly one link — either another element's input port or
//! a terminal — and every element input port has exactly one driver
//! (an upstream output port or an injecting terminal). That single-writer
//! discipline is what makes the sharded runtime deterministic: arrivals
//! on one port are totally ordered by cycle no matter which thread
//! produced them.
//!
//! Routing is self-routing by precomputed per-element tables:
//! `route[e][dst]` names the local output port a cell for global terminal
//! `dst` takes at element `e`. For the Omega/Banyan builders the table is
//! the classic per-stage destination digit (most significant first); for
//! the folded Clos and fat-tree it is deterministic d-mod-k up-routing
//! followed by longest-prefix down-routing — no randomness, so a cell's
//! path is a pure function of `(src, dst)`.

/// Where an element output port's link lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Input `port` of element `elem`.
    Elem {
        /// Downstream element index.
        elem: u32,
        /// Input port on that element.
        port: u16,
    },
    /// Delivery to terminal `t` (the cell leaves the fabric).
    Terminal(u32),
}

/// A multistage network as an explicit element graph.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Short builder name ("omega", "banyan", "clos2", "fattree").
    pub name: &'static str,
    /// Number of terminals (injection = delivery points).
    pub endpoints: usize,
    /// Per-element port count (all elements are square: n_in = n_out).
    pub radix: Vec<u16>,
    /// `wiring[e][out_port]` — where that output's link lands.
    pub wiring: Vec<Vec<Target>>,
    /// `route[e][dst]` — local output port toward terminal `dst`.
    pub route: Vec<Vec<u16>>,
    /// `ingress[t]` — (element, input port) terminal `t` injects into.
    pub ingress: Vec<(u32, u16)>,
}

impl Topology {
    /// Number of elements in the graph.
    pub fn elements(&self) -> usize {
        self.radix.len()
    }

    /// Largest element radix (sizing for shard-level telemetry sinks).
    pub fn max_radix(&self) -> usize {
        self.radix.iter().copied().max().unwrap_or(0) as usize
    }

    /// Hop count (links traversed, terminal-to-terminal) of the unique
    /// self-routed path from `src` to `dst` — also a routing validity
    /// check: panics if the tables ever loop or mis-deliver.
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        let (mut e, _) = self.ingress[src];
        let mut hops = 0usize;
        loop {
            let out = self.route[e as usize][dst] as usize;
            let target = self.wiring[e as usize][out];
            hops += 1;
            match target {
                Target::Terminal(t) => {
                    assert_eq!(t as usize, dst, "{}: mis-routed {src}->{dst}", self.name);
                    return hops;
                }
                Target::Elem { elem, .. } => {
                    assert!(hops <= self.elements(), "{}: routing loop", self.name);
                    e = elem;
                }
            }
        }
    }

    /// Minimum hop count over all (src, dst) pairs — the floor used by
    /// the link-latency property test.
    pub fn min_hops(&self) -> usize {
        let mut min = usize::MAX;
        for src in 0..self.endpoints {
            for dst in 0..self.endpoints {
                min = min.min(self.hops(src, dst));
            }
        }
        min
    }

    /// Structural audit: every input port has exactly one driver, every
    /// output port a valid target, and every (src, dst) pair routes.
    pub fn validate(&self) {
        let mut drivers: Vec<Vec<u32>> =
            self.radix.iter().map(|&r| vec![0u32; r as usize]).collect();
        let mut delivered: Vec<u32> = vec![0; self.endpoints];
        for (e, outs) in self.wiring.iter().enumerate() {
            assert_eq!(outs.len(), self.radix[e] as usize, "output arity");
            for t in outs {
                match *t {
                    Target::Elem { elem, port } => {
                        drivers[elem as usize][port as usize] += 1;
                    }
                    Target::Terminal(t) => delivered[t as usize] += 1,
                }
            }
        }
        for &(e, p) in &self.ingress {
            drivers[e as usize][p as usize] += 1;
        }
        for (e, d) in drivers.iter().enumerate() {
            for (p, &n) in d.iter().enumerate() {
                assert!(n <= 1, "{}: input {e}:{p} has {n} drivers", self.name);
            }
        }
        for (t, &n) in delivered.iter().enumerate() {
            assert_eq!(n, 1, "{}: terminal {t} has {n} egress links", self.name);
        }
        for src in 0..self.endpoints {
            for dst in 0..self.endpoints {
                self.hops(src, dst);
            }
        }
    }
}

/// Base-`k` digit of `dest` consumed at `stage` (most significant first)
/// in an `stages`-stage network — the paper's self-routing rule.
fn digit(dest: usize, stage: usize, k: usize, stages: usize) -> usize {
    let shift = stages - 1 - stage;
    (dest / k.pow(shift as u32)) % k
}

/// Omega network: `k^stages` terminals, `stages` rows of `k×k` elements,
/// a perfect shuffle into every stage (including stage 0 from the
/// terminals), last-stage outputs wired straight to terminals. Matches
/// `netsim::multistage::OmegaNetwork` wiring exactly — that scalar model
/// is the differential oracle for this builder.
pub fn omega(k: usize, stages: usize) -> Topology {
    assert!(k >= 2 && stages >= 1);
    let n = k.pow(stages as u32);
    let rows = n / k;
    let shuffle = |i: usize| (i * k) % n + (i * k) / n;
    let elem = |s: usize, row: usize| (s * rows + row) as u32;
    let mut wiring = vec![Vec::new(); stages * rows];
    let mut route = vec![Vec::new(); stages * rows];
    for s in 0..stages {
        for row in 0..rows {
            let e = elem(s, row) as usize;
            route[e] = (0..n).map(|dst| digit(dst, s, k, stages) as u16).collect();
            wiring[e] = (0..k)
                .map(|j| {
                    let p = row * k + j;
                    if s + 1 == stages {
                        Target::Terminal(p as u32)
                    } else {
                        let q = shuffle(p);
                        Target::Elem {
                            elem: elem(s + 1, q / k),
                            port: (q % k) as u16,
                        }
                    }
                })
                .collect();
        }
    }
    let ingress = (0..n)
        .map(|t| {
            let q = shuffle(t);
            (elem(0, q / k), (q % k) as u16)
        })
        .collect();
    Topology {
        name: "omega",
        endpoints: n,
        radix: vec![k as u16; stages * rows],
        wiring,
        route,
        ingress,
    }
}

/// Banyan (k-ary butterfly): same `k^stages` terminal count and the same
/// MSB-first digit routing as [`omega`], but the stage-`s` element groups
/// lines sharing every base-`k` digit *except* place `stages-1-s`, with
/// identity wiring between stages. Consuming one digit in place per
/// stage transforms the line index into the destination index — the
/// routing is correct by construction.
pub fn banyan(k: usize, stages: usize) -> Topology {
    assert!(k >= 2 && stages >= 1);
    let n = k.pow(stages as u32);
    let rows = n / k;
    // At stage s, the line index p maps to element row r and port c by
    // extracting digit place j = stages-1-s.
    let split = |p: usize, s: usize| {
        let j = stages - 1 - s;
        let w = k.pow(j as u32);
        let c = (p / w) % k;
        let r = (p / (w * k)) * w + p % w;
        (r, c)
    };
    let join = |r: usize, c: usize, s: usize| {
        let j = stages - 1 - s;
        let w = k.pow(j as u32);
        (r / w) * (w * k) + c * w + r % w
    };
    let elem = |s: usize, row: usize| (s * rows + row) as u32;
    let mut wiring = vec![Vec::new(); stages * rows];
    let mut route = vec![Vec::new(); stages * rows];
    for s in 0..stages {
        for row in 0..rows {
            let e = elem(s, row) as usize;
            route[e] = (0..n).map(|dst| digit(dst, s, k, stages) as u16).collect();
            wiring[e] = (0..k)
                .map(|c| {
                    let p = join(row, c, s);
                    if s + 1 == stages {
                        Target::Terminal(p as u32)
                    } else {
                        let (r2, c2) = split(p, s + 1);
                        Target::Elem {
                            elem: elem(s + 1, r2),
                            port: c2 as u16,
                        }
                    }
                })
                .collect();
        }
    }
    let ingress = (0..n)
        .map(|t| {
            let (r, c) = split(t, 0);
            (elem(0, r), c as u16)
        })
        .collect();
    Topology {
        name: "banyan",
        endpoints: n,
        radix: vec![k as u16; stages * rows],
        wiring,
        route,
        ingress,
    }
}

/// Folded two-tier Clos (leaf-spine): `leaves` leaf elements with `down`
/// endpoint ports and `down` uplinks each, `down` spine elements of
/// radix `leaves`. Up-routing is deterministic d-mod-k (spine = `dst %
/// down`); down-routing follows the destination's leaf. Same-leaf
/// traffic turns around in one hop.
pub fn clos2(leaves: usize, down: usize) -> Topology {
    assert!(leaves >= 2 && down >= 1);
    let n = leaves * down;
    let spines = down;
    let nelem = leaves + spines;
    let mut radix = vec![(2 * down) as u16; leaves];
    radix.extend(vec![leaves as u16; spines]);
    let mut wiring = vec![Vec::new(); nelem];
    let mut route = vec![Vec::new(); nelem];
    for l in 0..leaves {
        wiring[l] = (0..2 * down)
            .map(|j| {
                if j < down {
                    Target::Terminal((l * down + j) as u32)
                } else {
                    Target::Elem {
                        elem: (leaves + (j - down)) as u32,
                        port: l as u16,
                    }
                }
            })
            .collect();
        route[l] = (0..n)
            .map(|dst| {
                if dst / down == l {
                    (dst % down) as u16
                } else {
                    (down + dst % spines) as u16
                }
            })
            .collect();
    }
    for s in 0..spines {
        let e = leaves + s;
        wiring[e] = (0..leaves)
            .map(|l| Target::Elem {
                elem: l as u32,
                port: (down + s) as u16,
            })
            .collect();
        route[e] = (0..n).map(|dst| (dst / down) as u16).collect();
    }
    let ingress = (0..n)
        .map(|t| ((t / down) as u32, (t % down) as u16))
        .collect();
    Topology {
        name: "clos2",
        endpoints: n,
        radix,
        wiring,
        route,
        ingress,
    }
}

/// Three-tier k-ary fat-tree (k even): k pods of k/2 edge + k/2
/// aggregation switches, (k/2)² cores, `k³/4` endpoints, all elements
/// radix k. Up-routing is two-level d-mod-k (edge picks the aggregation
/// by `dst % (k/2)`, aggregation picks the core by `(dst/(k/2)) % (k/2)`),
/// down-routing follows the destination pod/edge/host digits.
pub fn fat_tree(k: usize) -> Topology {
    assert!(k >= 2 && k.is_multiple_of(2), "fat-tree radix must be even");
    let h = k / 2;
    let n = k * h * h;
    let edge = |p: usize, i: usize| (p * h + i) as u32;
    let agg = |p: usize, j: usize| (k * h + p * h + j) as u32;
    let core = |j: usize, y: usize| (2 * k * h + j * h + y) as u32;
    let nelem = 2 * k * h + h * h;
    let pod_of = |dst: usize| dst / (h * h);
    let edge_of = |dst: usize| (dst / h) % h;
    let host_of = |dst: usize| dst % h;
    let mut wiring = vec![Vec::new(); nelem];
    let mut route = vec![Vec::new(); nelem];
    for p in 0..k {
        for i in 0..h {
            let e = edge(p, i) as usize;
            wiring[e] = (0..k)
                .map(|port| {
                    if port < h {
                        Target::Terminal((p * h * h + i * h + port) as u32)
                    } else {
                        Target::Elem {
                            elem: agg(p, port - h),
                            port: i as u16,
                        }
                    }
                })
                .collect();
            route[e] = (0..n)
                .map(|dst| {
                    if pod_of(dst) == p && edge_of(dst) == i {
                        host_of(dst) as u16
                    } else {
                        (h + dst % h) as u16
                    }
                })
                .collect();
        }
        for j in 0..h {
            let e = agg(p, j) as usize;
            wiring[e] = (0..k)
                .map(|port| {
                    if port < h {
                        Target::Elem {
                            elem: edge(p, port),
                            port: (h + j) as u16,
                        }
                    } else {
                        Target::Elem {
                            elem: core(j, port - h),
                            port: p as u16,
                        }
                    }
                })
                .collect();
            route[e] = (0..n)
                .map(|dst| {
                    if pod_of(dst) == p {
                        edge_of(dst) as u16
                    } else {
                        (h + (dst / h) % h) as u16
                    }
                })
                .collect();
        }
    }
    for j in 0..h {
        for y in 0..h {
            let e = core(j, y) as usize;
            wiring[e] = (0..k)
                .map(|p| Target::Elem {
                    elem: agg(p, j),
                    port: (h + y) as u16,
                })
                .collect();
            route[e] = (0..n).map(|dst| pod_of(dst) as u16).collect();
        }
    }
    let ingress = (0..n)
        .map(|t| (edge(pod_of(t), edge_of(t)), host_of(t) as u16))
        .collect();
    Topology {
        name: "fattree",
        endpoints: n,
        radix: vec![k as u16; nelem],
        wiring,
        route,
        ingress,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omega_routes_every_pair() {
        for (k, s) in [(2, 3), (2, 6), (4, 2), (4, 3)] {
            let t = omega(k, s);
            assert_eq!(t.endpoints, k.pow(s as u32));
            t.validate();
            assert_eq!(t.min_hops(), s, "omega path length is the stage count");
        }
    }

    #[test]
    fn banyan_routes_every_pair() {
        for (k, s) in [(2, 3), (2, 6), (4, 2), (4, 3)] {
            let t = banyan(k, s);
            t.validate();
            assert_eq!(t.min_hops(), s);
        }
    }

    #[test]
    fn clos_routes_every_pair() {
        for (leaves, down) in [(4, 4), (8, 8), (16, 16)] {
            let t = clos2(leaves, down);
            assert_eq!(t.endpoints, leaves * down);
            t.validate();
            assert_eq!(t.min_hops(), 1, "same-leaf traffic turns in one hop");
            assert_eq!(t.hops(0, t.endpoints - 1), 3, "cross-leaf = up, over, down");
        }
    }

    #[test]
    fn fat_tree_routes_every_pair() {
        for k in [4, 8] {
            let t = fat_tree(k);
            assert_eq!(t.endpoints, k * k * k / 4);
            t.validate();
            assert_eq!(t.min_hops(), 1, "same-edge traffic turns in one hop");
            assert_eq!(
                t.hops(0, t.endpoints - 1),
                5,
                "inter-pod = edge, agg, core, agg, edge"
            );
        }
    }

    #[test]
    fn banyan_differs_from_omega_in_wiring_only() {
        let o = omega(2, 3);
        let b = banyan(2, 3);
        assert_eq!(o.route, b.route, "both consume MSB-first digits");
        assert_ne!(
            o.wiring, b.wiring,
            "shuffle vs butterfly inter-stage wiring"
        );
    }
}
