//! Sharded fabric runtime: multistage networks of real switch elements.
//!
//! The paper closes by positioning its pipelined-memory shared-buffer
//! switch as a *building block* for larger multistage switches and
//! networks. This crate is that composition layer: a component-graph
//! runtime where every node is a real switch element — the cell-level
//! behavioral pipelined-memory switch, a word-level RTL organization, or
//! the scalar shared-buffer baseline — and every edge is a fixed-latency
//! link carrying [`simkernel::cell::Cell`]s.
//!
//! - [`topo`] — explicit topology builders (omega, banyan, two-tier
//!   folded Clos, three-tier fat-tree) with precomputed self-routing
//!   tables and a single-driver-per-port structural audit;
//! - [`element`] — the [`element::FabricElement`] adapters wrapping each
//!   `core` organization behind one windowed interface;
//! - [`runtime`] — the conservative-sync executor: sequential reference
//!   and a thread-sharded path that is bit-exact with it for any worker
//!   count (see `runtime` docs for the window rule and the determinism
//!   argument);
//! - [`traffic`] — per-terminal seeded workloads (uniform, permutation,
//!   hotspot) whose streams are pure functions of `(seed, terminal)`.
//!
//! ```
//! use fabric::{Fabric, ElementKind, Pattern, Workload, topo};
//!
//! let mut f = Fabric::new(topo::omega(4, 3), ElementKind::Behavioral { slots: 16 });
//! let run = f.run(
//!     200, // injection slots
//!     64,  // drain slots
//!     &Workload { pattern: Pattern::Uniform, load: 0.6, seed: 7 },
//!     4,   // worker threads — the result is identical for any value
//! );
//! assert_eq!(run.offered, run.delivered_total() + run.dropped + run.residual);
//! ```

pub mod element;
pub mod runtime;
pub mod topo;
pub mod traffic;

pub use element::{Arrival, ElementKind, Emission, FabricElement};
pub use runtime::{Fabric, FabricRun};
pub use topo::{Target, Topology};
pub use traffic::{Pattern, TerminalSource, Workload};
