//! Element adapters: every `core` organization behind one windowed
//! interface.
//!
//! A fabric node is anything that can consume cell arrivals on its input
//! ports and produce cell emissions on its output ports, advanced one
//! *sync window* at a time. The runtime guarantees the adapter two
//! invariants, both consequences of the topology's single-driver
//! discipline and the conservative window rule (lookahead = link
//! latency, see `runtime`):
//!
//! 1. `inbox` holds **every** arrival with `from <= cycle < to`, sorted
//!    by `(cycle, port)` — no late arrival for this window can exist
//!    anywhere in the system when `run_window` is called;
//! 2. `(cycle, port)` pairs are unique: an input port sees at most one
//!    cell per cycle, and for the packet-paced organizations (behavioral
//!    and word-level, where a cell occupies a link for `S` cycles)
//!    consecutive arrivals on one port are at least `S` cycles apart.
//!
//! In return the adapter promises that every emission it reports has
//! `from <= cycle < to` — emissions are published exactly once, in the
//! window in which they happen, so a downstream element (whose matching
//! arrival lands at `cycle + latency`, i.e. in a *later* window) can
//! never observe a gap.
//!
//! Three adapters ship:
//!
//! - [`ScalarElement`] — the slot-level shared-buffer element, bit-exact
//!   with `netsim::multistage::OmegaNetwork`'s private element (enqueue
//!   all arrivals in port order with a pool-capacity check, then pop one
//!   cell per output per cycle). A cell costs one cycle per hop.
//! - [`BehavioralElement`] — a real [`BehavioralSwitch`] per node: the
//!   paper's pipelined-memory switch at cell level, with cut-through,
//!   read-priority arbitration and the shared slot pool. The clock is
//!   the switch's word clock; a cell occupies a link for `S = 2k` cycles.
//! - [`WordElement`] — a word-level RTL organization per node
//!   ([`PipelinedSwitch`], [`WideMemorySwitchRtl`] or
//!   [`InterleavedSwitch`]): cells are expanded into synthesized
//!   `S`-word packets at the input links and re-identified from the
//!   delivered headers at the output links, so every control *and data*
//!   word of every hop is simulated.

use simkernel::cell::{Cell, Packet};
use simkernel::horizon::{advance_to_batched, note_executed, note_skipped};
use simkernel::ids::Cycle;
use std::collections::{HashMap, VecDeque};
use switch_core::behavioral::BehavioralSwitch;
use switch_core::config::SwitchConfig;
use switch_core::ibank::{InterleavedSwitch, InterleavedSwitchConfig};
use switch_core::rtl::{OutputCollector, PipelinedSwitch};
use switch_core::widemem::{WideMemorySwitchRtl, WideSwitchConfig};

/// A cell landing on an element input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Cycle the cell arrives (header cycle for packet-paced elements).
    pub cycle: Cycle,
    /// Local input port.
    pub port: u16,
    /// The cell.
    pub cell: Cell,
}

/// A cell leaving an element output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Emission {
    /// Cycle the cell departs (tail cycle for packet-paced elements).
    pub cycle: Cycle,
    /// Local output port.
    pub port: u16,
    /// The cell.
    pub cell: Cell,
}

/// One fabric node: a switch element advanced window by window.
pub trait FabricElement: Send {
    /// Simulate cycles `[from, to)`. `inbox` is the complete, `(cycle,
    /// port)`-sorted arrival set for the window; emissions (all with
    /// `from <= cycle < to`) are appended to `outbox`.
    fn run_window(&mut self, from: Cycle, to: Cycle, inbox: &[Arrival], outbox: &mut Vec<Emission>);

    /// Cells currently buffered inside the element.
    fn occupancy(&self) -> u64;

    /// Cells queued toward local output `j`.
    fn queue_depth(&self, j: usize) -> u64;

    /// Cells accepted into the buffer so far.
    fn accepted(&self) -> u64;

    /// Cells dropped (buffer full) so far.
    fn dropped(&self) -> u64;

    /// True when the element holds no cells and no in-flight words.
    fn is_idle(&self) -> bool;
}

/// Which organization every node of a fabric instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementKind {
    /// Slot-level shared-buffer element (1 cycle per cell per hop);
    /// `None` = unbounded pool, like the omega oracle's default.
    Scalar {
        /// Shared pool capacity in cells.
        capacity: Option<usize>,
    },
    /// Cell-level behavioral pipelined-memory switch (paper defaults:
    /// cut-through, read priority, static pool).
    Behavioral {
        /// Shared pool capacity in packet slots.
        slots: usize,
    },
    /// Word-level pipelined-memory RTL (every bank wave simulated).
    WordRtl {
        /// Shared pool capacity in packet slots.
        slots: usize,
    },
    /// Word-level wide-memory (fig. 3) RTL.
    WordWide {
        /// Shared pool capacity in packet slots.
        slots: usize,
    },
    /// Word-level interleaved-bank RTL (one packet per bank).
    WordIbank {
        /// Bank count (= packet slots).
        banks: usize,
    },
}

impl ElementKind {
    /// Short report label.
    pub fn label(&self) -> &'static str {
        match self {
            ElementKind::Scalar { .. } => "scalar",
            ElementKind::Behavioral { .. } => "behavioral",
            ElementKind::WordRtl { .. } => "word-rtl",
            ElementKind::WordWide { .. } => "word-wide",
            ElementKind::WordIbank { .. } => "word-ibank",
        }
    }

    /// Cycles one cell occupies a link at radix `k`: 1 for the scalar
    /// element, the packet quantum `S = 2k` for the word-clocked
    /// organizations.
    pub fn cell_time(&self, k: usize) -> u64 {
        match self {
            ElementKind::Scalar { .. } => 1,
            _ => 2 * k as u64,
        }
    }

    /// Build one element of radix `k` with routing table `route`
    /// (`route[dst]` = local output port toward global terminal `dst`).
    pub fn build(&self, k: usize, route: Vec<u16>) -> Box<dyn FabricElement> {
        match *self {
            ElementKind::Scalar { capacity } => Box::new(ScalarElement::new(k, capacity, route)),
            ElementKind::Behavioral { slots } => Box::new(BehavioralElement::new(k, slots, route)),
            ElementKind::WordRtl { slots } => Box::new(WordElement::new(
                WordCore::Rtl(PipelinedSwitch::new(SwitchConfig::symmetric(k, slots))),
                k,
                route,
            )),
            ElementKind::WordWide { slots } => Box::new(WordElement::new(
                WordCore::Wide(WideMemorySwitchRtl::new(WideSwitchConfig::fig3(k, slots))),
                k,
                route,
            )),
            ElementKind::WordIbank { banks } => Box::new(WordElement::new(
                WordCore::Ibank(InterleavedSwitch::new(InterleavedSwitchConfig::symmetric(
                    k, banks,
                ))),
                k,
                route,
            )),
        }
    }
}

// ---------------------------------------------------------------------
// Scalar element
// ---------------------------------------------------------------------

/// Slot-level shared-buffer element, the scalar baseline: behaviorally
/// identical (and pinned by test to be bit-identical in a fabric) to the
/// private element inside `netsim::multistage::OmegaNetwork`.
pub struct ScalarElement {
    route: Vec<u16>,
    queues: Vec<VecDeque<Cell>>,
    pool: usize,
    capacity: Option<usize>,
    accepted: u64,
    dropped: u64,
    /// Next cycle to simulate (fast-forward cursor).
    cursor: Cycle,
}

impl ScalarElement {
    /// A `k×k` element with shared pool `capacity` (`None` = unbounded).
    pub fn new(k: usize, capacity: Option<usize>, route: Vec<u16>) -> Self {
        ScalarElement {
            route,
            queues: vec![VecDeque::new(); k],
            pool: 0,
            capacity,
            accepted: 0,
            dropped: 0,
            cursor: 0,
        }
    }
}

impl FabricElement for ScalarElement {
    fn run_window(
        &mut self,
        from: Cycle,
        to: Cycle,
        inbox: &[Arrival],
        outbox: &mut Vec<Emission>,
    ) {
        debug_assert!(self.cursor <= from);
        self.cursor = self.cursor.max(from);
        let mut next = 0usize; // inbox read pointer
        while self.cursor < to {
            // Fast-forward: with an empty pool nothing can depart, so an
            // arrival-free span is dead time — jump straight to the next
            // arrival (or the window end).
            if self.pool == 0 {
                let target = inbox.get(next).map_or(to, |a| a.cycle.min(to));
                if target > self.cursor {
                    note_skipped(target - self.cursor);
                    self.cursor = target;
                    if self.cursor >= to {
                        break;
                    }
                }
            }
            let c = self.cursor;
            // Enqueue this cycle's arrivals in port order (inbox sort),
            // dropping on a full pool — exactly the oracle's admission.
            while let Some(a) = inbox.get(next).filter(|a| a.cycle == c) {
                if self.capacity.is_some_and(|cap| self.pool >= cap) {
                    self.dropped += 1;
                } else {
                    self.accepted += 1;
                    self.queues[self.route[a.cell.dst.index()] as usize].push_back(a.cell);
                    self.pool += 1;
                }
                next += 1;
            }
            // One departure per output per cycle.
            for (j, q) in self.queues.iter_mut().enumerate() {
                if let Some(cell) = q.pop_front() {
                    self.pool -= 1;
                    outbox.push(Emission {
                        cycle: c,
                        port: j as u16,
                        cell,
                    });
                }
            }
            note_executed(1);
            self.cursor = c + 1;
        }
        debug_assert_eq!(next, inbox.len(), "arrival beyond the window");
    }

    fn occupancy(&self) -> u64 {
        self.pool as u64
    }

    fn queue_depth(&self, j: usize) -> u64 {
        self.queues[j].len() as u64
    }

    fn accepted(&self) -> u64 {
        self.accepted
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn is_idle(&self) -> bool {
        self.pool == 0
    }
}

// ---------------------------------------------------------------------
// Behavioral element
// ---------------------------------------------------------------------

/// A real pipelined-memory switch per node, at cell level.
///
/// The switch assigns its own internal packet ids (sequential over
/// accepted packets, in input-port order within a cycle); the adapter
/// mirrors the static-pool admission rule — `occupancy == slots` checked
/// per input in port order, frees never happening between arrivals of
/// one cycle — to predict those ids and map them back to the fabric
/// [`Cell`]s, asserting agreement with the switch's own counters.
pub struct BehavioralElement {
    sw: BehavioralSwitch,
    route: Vec<u16>,
    slots: usize,
    /// Switch-internal packet id -> the fabric cell it carries.
    in_flight: HashMap<u64, Cell>,
    /// Mirrored admission counter (must track `sw.arrived`).
    accepted: u64,
    offers: Vec<Option<usize>>,
}

impl BehavioralElement {
    /// A `k×k` behavioral switch with `slots` packet slots, paper-default
    /// policies.
    pub fn new(k: usize, slots: usize, route: Vec<u16>) -> Self {
        assert!(k <= 32, "behavioral elements encode dst as a u32 mask");
        BehavioralElement {
            sw: BehavioralSwitch::new(SwitchConfig::symmetric(k, slots)),
            route,
            slots,
            in_flight: HashMap::new(),
            accepted: 0,
            offers: vec![None; k],
        }
    }
}

// SAFETY: the only non-`Send` state in `BehavioralSwitch` is its probe
// handle (`Option<Rc<RefCell<dyn Probe>>>`). This adapter constructs the
// switch itself, never attaches a probe and exposes no way to, so the
// field is always `None` — there is no `Rc` to race on.
unsafe impl Send for BehavioralElement {}

impl FabricElement for BehavioralElement {
    fn run_window(
        &mut self,
        from: Cycle,
        to: Cycle,
        inbox: &[Arrival],
        outbox: &mut Vec<Emission>,
    ) {
        debug_assert!(simkernel::Horizon::now(&self.sw) <= from);
        let mut next = 0usize;
        while next < inbox.len() {
            let c = inbox[next].cycle;
            debug_assert!(c < to);
            // Event-horizon hop to the arrival cycle (idle elements skip
            // their dead time inside the window here).
            advance_to_batched(&mut self.sw, c);
            // Mirror admission over this cycle's arrivals, in port order.
            let mut occ = self.sw.occupancy();
            for o in self.offers.iter_mut() {
                *o = None;
            }
            while let Some(a) = inbox.get(next).filter(|a| a.cycle == c) {
                let i = a.port as usize;
                debug_assert!(self.sw.input_free(i), "fabric pacing violated");
                self.offers[i] = Some(self.route[a.cell.dst.index()] as usize);
                if occ == self.slots {
                    // The switch will drop it; nothing to track.
                } else {
                    occ += 1;
                    self.accepted += 1;
                    self.in_flight.insert(self.accepted, a.cell);
                }
                next += 1;
            }
            self.sw.tick(&self.offers);
            debug_assert_eq!(
                self.sw.arrived, self.accepted,
                "admission mirror diverged from the switch"
            );
        }
        advance_to_batched(&mut self.sw, to);
        // Departures committed during this window all completed at
        // `done < to` (the previous window ended with a drained log).
        for d in self.sw.departures() {
            debug_assert!(from <= d.done && d.done < to);
            let cell = self
                .in_flight
                .remove(&d.id)
                .expect("departure for an untracked packet");
            outbox.push(Emission {
                cycle: d.done,
                port: d.output as u16,
                cell,
            });
        }
        self.sw.forget_departures();
    }

    fn occupancy(&self) -> u64 {
        self.sw.occupancy() as u64
    }

    fn queue_depth(&self, j: usize) -> u64 {
        self.sw.queue_len(j) as u64
    }

    fn accepted(&self) -> u64 {
        self.accepted
    }

    fn dropped(&self) -> u64 {
        self.sw.dropped
    }

    fn is_idle(&self) -> bool {
        self.sw.is_quiescent()
    }
}

// ---------------------------------------------------------------------
// Word-level element
// ---------------------------------------------------------------------

/// The word-level cores a [`WordElement`] can wrap. One core lives per
/// fabric node behind the element's own `Box`, so the size spread
/// between organizations costs nothing per tick.
#[allow(clippy::large_enum_variant)]
pub enum WordCore {
    /// Pipelined-memory RTL (the paper's organization).
    Rtl(PipelinedSwitch),
    /// Wide-memory (fig. 3) RTL.
    Wide(WideMemorySwitchRtl),
    /// Interleaved-bank (fig. 4) RTL.
    Ibank(InterleavedSwitch),
}

impl WordCore {
    fn tick(&mut self, wire_in: &[Option<u64>]) -> &[Option<u64>] {
        match self {
            WordCore::Rtl(sw) => sw.tick(wire_in),
            WordCore::Wide(sw) => sw.tick(wire_in),
            WordCore::Ibank(sw) => sw.tick(wire_in),
        }
    }

    fn counters(&self) -> switch_core::events::SwitchCounters {
        match self {
            WordCore::Rtl(sw) => sw.counters(),
            WordCore::Wide(sw) => sw.counters(),
            WordCore::Ibank(sw) => sw.counters(),
        }
    }

    fn is_quiescent(&self) -> bool {
        match self {
            WordCore::Rtl(sw) => sw.is_quiescent(),
            WordCore::Wide(sw) => sw.is_quiescent(),
            WordCore::Ibank(sw) => sw.is_quiescent(),
        }
    }
}

/// A word-level RTL switch per node: cells become `S`-word synthesized
/// packets on the input links and are recovered from delivered headers
/// on the output links. Every cycle of the window is simulated densely —
/// the word cores own their per-cycle wave machinery, so there is no
/// safe multi-cycle skip to exploit here.
pub struct WordElement {
    core: WordCore,
    route: Vec<u16>,
    s: usize,
    /// Per input: the packet currently being clocked onto the wire and
    /// the index of its next word.
    active: Vec<Option<(Packet, usize)>>,
    collector: OutputCollector,
    /// Local packet id -> fabric cell. Entries for packets the core
    /// drops internally are leaked by design (bounded by the drop count;
    /// the map is reconciled against `counters().dropped_buffer_full`).
    in_flight: HashMap<u64, Cell>,
    next_id: u64,
    cursor: Cycle,
    wire: Vec<Option<u64>>,
}

impl WordElement {
    /// Wrap `core` as a `k×k` fabric node.
    pub fn new(core: WordCore, k: usize, route: Vec<u16>) -> Self {
        let s = 2 * k;
        WordElement {
            core,
            route,
            s,
            active: vec![None; k],
            collector: OutputCollector::new(k, s),
            in_flight: HashMap::new(),
            next_id: 1,
            cursor: 0,
            wire: vec![None; k],
        }
    }
}

// SAFETY: as for `BehavioralElement` — the word cores' probe handles are
// the only non-`Send` state, and this adapter never attaches one.
unsafe impl Send for WordElement {}

impl FabricElement for WordElement {
    fn run_window(
        &mut self,
        from: Cycle,
        to: Cycle,
        inbox: &[Arrival],
        outbox: &mut Vec<Emission>,
    ) {
        debug_assert!(self.cursor <= from);
        self.cursor = self.cursor.max(from);
        let mut next = 0usize;
        while self.cursor < to {
            let c = self.cursor;
            while let Some(a) = inbox.get(next).filter(|a| a.cycle == c) {
                let i = a.port as usize;
                debug_assert!(self.active[i].is_none(), "fabric pacing violated");
                let id = self.next_id;
                self.next_id += 1;
                self.in_flight.insert(id, a.cell);
                let dst = self.route[a.cell.dst.index()] as usize;
                self.active[i] = Some((Packet::synth(id, i, dst, self.s, c), 0));
                next += 1;
            }
            for (i, slot) in self.active.iter_mut().enumerate() {
                self.wire[i] = match slot {
                    Some((pkt, w)) => {
                        let word = pkt.words[*w];
                        *w += 1;
                        if *w == pkt.size_words {
                            *slot = None;
                        }
                        Some(word)
                    }
                    None => None,
                };
            }
            let out = self.core.tick(&self.wire);
            self.collector.observe(c, out);
            note_executed(1);
            self.cursor = c + 1;
        }
        debug_assert_eq!(next, inbox.len(), "arrival beyond the window");
        for p in self.collector.take() {
            debug_assert!(from <= p.last_cycle && p.last_cycle < to);
            let cell = self
                .in_flight
                .remove(&p.id)
                .expect("delivery for an untracked packet");
            outbox.push(Emission {
                cycle: p.last_cycle,
                port: p.output.index() as u16,
                cell,
            });
        }
    }

    fn occupancy(&self) -> u64 {
        // Dropped packets arrived but will never depart — exclude them
        // or residual accounting would double-count every loss.
        let ctr = self.core.counters();
        ctr.arrived - ctr.departed - ctr.dropped_buffer_full
    }

    fn queue_depth(&self, _j: usize) -> u64 {
        0 // word cores expose aggregate occupancy only
    }

    fn accepted(&self) -> u64 {
        self.core.counters().arrived
    }

    fn dropped(&self) -> u64 {
        self.core.counters().dropped_buffer_full
    }

    fn is_idle(&self) -> bool {
        self.core.is_quiescent() && self.active.iter().all(|a| a.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity_route(n: usize) -> Vec<u16> {
        (0..n).map(|d| d as u16).collect()
    }

    #[test]
    fn scalar_element_matches_oracle_semantics() {
        // Two same-cycle arrivals for one output: one departs at the
        // arrival cycle, the other one cycle later.
        let mut e = ScalarElement::new(2, None, identity_route(2));
        let inbox = [
            Arrival {
                cycle: 3,
                port: 0,
                cell: Cell::new(1, 0, 1, 0),
            },
            Arrival {
                cycle: 3,
                port: 1,
                cell: Cell::new(2, 1, 1, 0),
            },
        ];
        let mut out = Vec::new();
        e.run_window(0, 8, &inbox, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].cycle, out[0].cell.id.0), (3, 1));
        assert_eq!((out[1].cycle, out[1].cell.id.0), (4, 2));
        assert!(e.is_idle());
        assert_eq!(e.accepted(), 2);
    }

    #[test]
    fn scalar_element_drops_on_full_pool_in_port_order() {
        let mut e = ScalarElement::new(2, Some(1), identity_route(2));
        let inbox = [
            Arrival {
                cycle: 0,
                port: 0,
                cell: Cell::new(1, 0, 0, 0),
            },
            Arrival {
                cycle: 0,
                port: 1,
                cell: Cell::new(2, 1, 0, 0),
            },
        ];
        let mut out = Vec::new();
        e.run_window(0, 4, &inbox, &mut out);
        assert_eq!(e.dropped(), 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].cell.id.0, 1, "port 0 wins the last slot");
    }

    #[test]
    fn behavioral_element_forwards_and_tracks_ids() {
        let k = 4;
        let s = 2 * k as u64;
        let mut e = BehavioralElement::new(k, 16, identity_route(k));
        let mut out = Vec::new();
        // One cell in window 0, nothing else: it must emerge with the
        // switch's cut-through latency, carrying the same cell identity.
        e.run_window(
            0,
            s,
            &[Arrival {
                cycle: 0,
                port: 2,
                cell: Cell::new(77, 2, 3, 0),
            }],
            &mut out,
        );
        while out.is_empty() {
            let from = simkernel::Horizon::now(&e.sw);
            e.run_window(from, from + s, &[], &mut out);
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].cell.id.0, 77);
        assert_eq!(out[0].port, 3);
        assert!(out[0].cycle >= s, "a full packet takes S cycles");
        assert!(e.is_idle());
    }

    #[test]
    fn behavioral_element_mirror_survives_drops() {
        // 2x2, one slot: two same-cycle arrivals, the second must be
        // predicted dropped and the mirror stay in lockstep.
        let k = 2;
        let s = 2 * k as u64;
        let mut e = BehavioralElement::new(k, 1, identity_route(k));
        let mut out = Vec::new();
        e.run_window(
            0,
            s,
            &[
                Arrival {
                    cycle: 0,
                    port: 0,
                    cell: Cell::new(1, 0, 0, 0),
                },
                Arrival {
                    cycle: 0,
                    port: 1,
                    cell: Cell::new(2, 1, 0, 0),
                },
            ],
            &mut out,
        );
        for w in 1..6 {
            e.run_window(w * s, (w + 1) * s, &[], &mut out);
        }
        assert_eq!(e.dropped(), 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].cell.id.0, 1);
        assert!(e.is_idle());
    }

    #[test]
    fn word_element_delivers_the_same_cell() {
        let k = 2;
        let s = 2 * k as u64;
        let mut e = ElementKind::WordRtl { slots: 8 }.build(k, identity_route(k));
        let mut out = Vec::new();
        e.run_window(
            0,
            s,
            &[Arrival {
                cycle: 0,
                port: 1,
                cell: Cell::new(9, 1, 0, 0),
            }],
            &mut out,
        );
        let mut from = s;
        while out.is_empty() && from < 20 * s {
            e.run_window(from, from + s, &[], &mut out);
            from += s;
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].cell.id.0, 9);
        assert_eq!(out[0].port, 0);
        assert!(e.is_idle());
        assert_eq!(e.accepted(), 1);
    }
}
