//! Fabric workloads: per-terminal Bernoulli injection with the classic
//! spatial patterns.
//!
//! Every terminal owns an independent [`SplitMix64`] stream
//! (`SplitMix64::stream(seed, t)`), so the offered schedule at terminal
//! `t` is a pure function of `(seed, t)` — independent of how terminals
//! are partitioned across worker shards, which is what makes the
//! sharded runtime's injection bit-identical to the sequential one.

use simkernel::cell::Cell;
use simkernel::ids::Cycle;
use simkernel::SplitMix64;

/// Spatial traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Uniform random destinations.
    Uniform,
    /// Fixed permutation: terminal `t` always sends to `(t + n/2) % n`.
    Permutation,
    /// Hotspot: with probability `hot_frac` the cell targets terminal 0,
    /// else a uniform destination.
    Hotspot {
        /// Fraction of traffic converging on terminal 0.
        hot_frac: f64,
    },
}

impl Pattern {
    /// All report shapes, in order (hotspot at the canonical 25 %).
    pub const ALL: [Pattern; 3] = [
        Pattern::Uniform,
        Pattern::Permutation,
        Pattern::Hotspot { hot_frac: 0.25 },
    ];

    /// Stable report label.
    pub fn label(&self) -> &'static str {
        match self {
            Pattern::Uniform => "uniform",
            Pattern::Permutation => "permutation",
            Pattern::Hotspot { .. } => "hotspot",
        }
    }
}

/// A seeded offered-traffic description.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Spatial pattern.
    pub pattern: Pattern,
    /// Per-terminal injection probability per slot.
    pub load: f64,
    /// Base seed (terminal `t` uses stream `t`).
    pub seed: u64,
}

/// One terminal's injection stream.
#[derive(Debug, Clone)]
pub struct TerminalSource {
    t: usize,
    rng: SplitMix64,
    seq: u64,
}

impl TerminalSource {
    /// The stream for terminal `t` under `w`.
    pub fn new(w: &Workload, t: usize) -> Self {
        TerminalSource {
            t,
            rng: SplitMix64::stream(w.seed, t as u64),
            seq: 0,
        }
    }

    /// Draw slot `birth`'s injection decision: `Some(cell)` with
    /// probability `load`. Cell ids are `(t << 40) | seq` — globally
    /// unique and small enough for the word-level header encoding.
    pub fn draw(&mut self, w: &Workload, n: usize, birth: Cycle) -> Option<Cell> {
        if !self.rng.chance(w.load) {
            return None;
        }
        let dst = match w.pattern {
            Pattern::Uniform => self.rng.below_usize(n),
            Pattern::Permutation => (self.t + n / 2) % n,
            Pattern::Hotspot { hot_frac } => {
                if self.rng.chance(hot_frac) {
                    0
                } else {
                    self.rng.below_usize(n)
                }
            }
        };
        self.seq += 1;
        Some(Cell::new(
            ((self.t as u64) << 40) | self.seq,
            self.t,
            dst,
            birth,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_per_terminal_pure() {
        let w = Workload {
            pattern: Pattern::Uniform,
            load: 0.5,
            seed: 7,
        };
        let draw_all = |ts: &mut [TerminalSource]| -> Vec<Option<Cell>> {
            ts.iter_mut().map(|s| s.draw(&w, 16, 0)).collect()
        };
        // Drawing terminal 3 alone yields the same cells as drawing all
        // 16 — the streams never interleave.
        let mut all: Vec<TerminalSource> = (0..16).map(|t| TerminalSource::new(&w, t)).collect();
        let full = draw_all(&mut all);
        let mut lone = TerminalSource::new(&w, 3);
        assert_eq!(lone.draw(&w, 16, 0), full[3]);
    }

    #[test]
    fn permutation_is_a_fixed_mapping() {
        let w = Workload {
            pattern: Pattern::Permutation,
            load: 1.0,
            seed: 1,
        };
        let mut s = TerminalSource::new(&w, 5);
        for slot in 0..10u64 {
            let c = s.draw(&w, 16, slot).expect("load 1.0 always injects");
            assert_eq!(c.dst.index(), 13);
            assert_eq!(c.src.index(), 5);
        }
    }
}
