//! Process-wide watchdog budget and expiry ledger.
//!
//! Every drain loop in the workspace needs a cycle budget, and the `expt`
//! CLI needs one knob (`--watchdog <cycles>`) that reaches all of them
//! without threading a parameter through every campaign signature. This
//! module is that knob: a process-global budget override plus a counter
//! of watchdog expiries, so the CLI can both tighten the leash and report
//! honestly when the leash was hit.
//!
//! The globals are plain atomics: campaigns run their points on worker
//! threads (`sweep::map`), and an expiry noted on any worker must be
//! visible to the main thread's exit-code decision.

use std::sync::atomic::{AtomicU64, Ordering};

/// 0 means "no override installed" — callers fall back to their default.
static LIMIT: AtomicU64 = AtomicU64::new(0);
static EXPIRIES: AtomicU64 = AtomicU64::new(0);

/// Install a process-wide drain budget override (cycles). Passing 0
/// removes the override.
pub fn set_limit(cycles: u64) {
    LIMIT.store(cycles, Ordering::Relaxed);
}

/// The installed budget override, or `default` when none is installed.
pub fn limit_or(default: u64) -> u64 {
    match LIMIT.load(Ordering::Relaxed) {
        0 => default,
        n => n,
    }
}

/// Is a budget override installed?
pub fn limit_is_set() -> bool {
    LIMIT.load(Ordering::Relaxed) != 0
}

/// Record one watchdog expiry (a drain that exhausted its budget and, if
/// escalation was attempted, stayed wedged through it).
pub fn note_expiry() {
    EXPIRIES.fetch_add(1, Ordering::Relaxed);
}

/// Watchdog expiries recorded so far in this process.
pub fn expiries() -> u64 {
    EXPIRIES.load(Ordering::Relaxed)
}

/// Expiries since the given baseline — the CLI snapshots `expiries()`
/// before a run and asks for the delta after.
pub fn expiries_since(baseline: u64) -> u64 {
    expiries().saturating_sub(baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the whole module: the globals are process-wide,
    // so independent #[test]s would race each other's stores.
    #[test]
    fn override_and_ledger_roundtrip() {
        assert_eq!(limit_or(40_000), 40_000, "no override installed yet");
        assert!(!limit_is_set());
        set_limit(500);
        assert!(limit_is_set());
        assert_eq!(limit_or(40_000), 500);
        set_limit(0);
        assert_eq!(limit_or(7), 7, "override removable");

        let base = expiries();
        note_expiry();
        note_expiry();
        assert_eq!(expiries_since(base), 2);
    }
}
