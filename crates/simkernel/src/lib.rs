//! # simkernel — cycle-accurate synchronous simulation kernel
//!
//! This crate is the substrate every other crate in the workspace builds on.
//! It models *synchronous digital hardware* the way an RTL designer thinks
//! about it:
//!
//! * time advances in integer [`Cycle`]s of a single clock;
//! * state lives in [`reg::Reg`] registers with **two-phase** semantics —
//!   combinational logic computes `next` values during a cycle, and a clock
//!   edge ([`reg::Reg::tick`]) commits them atomically;
//! * anything that owns registers implements [`Clocked`] and is ticked once
//!   per cycle by a [`sim::Simulator`];
//! * randomness comes only from the seedable, reproducible
//!   [`rng::SplitMix64`], so every simulation in the workspace is
//!   deterministic given its seed.
//!
//! The kernel also carries the small vocabulary types shared across the
//! workspace ([`ids`], [`cell`]) and the [`wave`] bookkeeping used by the
//! pipelined-memory model of the paper: a *wave* is an operation that starts
//! at pipeline stage 0 in some cycle and visits stage `k` exactly `k` cycles
//! later — the central mechanism of Katevenis et al., SIGCOMM 1995.
//!
//! ## Design notes
//!
//! The kernel is deliberately synchronous and single-threaded: the paper's
//! claims are *cycle-level logical* properties (wave chasing, cut-through
//! timing, staggered initiation), and a deterministic synchronous model is
//! both the most faithful and the most testable way to express them. There
//! is no event queue — every component is evaluated every *active* cycle,
//! exactly as every flip-flop in a chip sees every clock edge. Idle spans
//! are the exception: the [`horizon`] fast-forward kernel lets a model
//! report the earliest cycle at which its state can change so drivers can
//! jump the clock across dead time in O(1), bit-exactly equivalent to
//! dense stepping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod error;
pub mod horizon;
pub mod ids;
pub mod reg;
pub mod rng;
pub mod sim;
pub mod trace;
pub mod watchdog;
pub mod wave;

pub use cell::{Cell, CellId, Packet, PacketId};
pub use error::{run_until_quiescent, run_until_quiescent_escalating, SimError};
pub use horizon::{advance_to, advance_to_batched, BatchTick, Horizon};
pub use ids::{Addr, Cycle, PortId, StageId};
pub use reg::Reg;
pub use rng::{split_seed, SplitMix64};
pub use sim::{Clocked, Simulator};
pub use trace::{Trace, TraceEntry};
pub use wave::{Wave, WaveKind};
