//! Two-phase registers: the flip-flops of the simulator.
//!
//! An RTL design separates *combinational* evaluation (compute what every
//! register will hold next) from the *clock edge* (all registers update
//! simultaneously). Getting this wrong — letting one component see another's
//! already-updated state within the same cycle — is the classic source of
//! "works in simulation, impossible in hardware" bugs. [`Reg`] makes the
//! separation explicit: reads always return the value committed at the last
//! clock edge; writes go to a shadow `next` and take effect only at
//! [`Reg::tick`].

/// A clocked register holding a value of type `T`.
///
/// * [`Reg::get`] / `Deref`-like access returns the *current* (committed)
///   value.
/// * [`Reg::set`] schedules a value for the next clock edge.
/// * [`Reg::tick`] commits: `cur ← next`. If no `set` happened since the
///   last edge the register holds its value (like a flip-flop with a
///   load-enable that wasn't asserted).
/// ```
/// use simkernel::Reg;
///
/// let mut q = Reg::new(0u32);
/// q.set(7);                 // combinational phase: schedule next value
/// assert_eq!(*q.get(), 0);  // downstream logic still sees the old value
/// q.tick();                 // clock edge
/// assert_eq!(*q.get(), 7);
/// ```
#[derive(Debug, Clone)]
pub struct Reg<T: Clone> {
    cur: T,
    next: Option<T>,
}

impl<T: Clone> Reg<T> {
    /// A register with reset value `v`.
    pub fn new(v: T) -> Self {
        Reg { cur: v, next: None }
    }

    /// The committed value (what downstream logic sees this cycle).
    #[inline]
    pub fn get(&self) -> &T {
        &self.cur
    }

    /// Schedule `v` to be committed at the next clock edge. Calling `set`
    /// twice in one cycle models two drivers racing for the same flip-flop;
    /// the later call wins, matching "last assignment wins" RTL semantics,
    /// but [`Reg::set_checked`] is available where a double drive is a bug.
    #[inline]
    pub fn set(&mut self, v: T) {
        self.next = Some(v);
    }

    /// Like [`Reg::set`] but panics if the register was already driven this
    /// cycle — use for buses where a double drive means a real conflict.
    pub fn set_checked(&mut self, v: T) {
        assert!(
            self.next.is_none(),
            "register driven twice in one cycle (bus conflict)"
        );
        self.next = Some(v);
    }

    /// True if some driver has scheduled a value this cycle.
    #[inline]
    pub fn is_driven(&self) -> bool {
        self.next.is_some()
    }

    /// Clock edge: commit the pending value, if any.
    #[inline]
    pub fn tick(&mut self) {
        if let Some(v) = self.next.take() {
            self.cur = v;
        }
    }

    /// Peek at the pending value (for assertions in tests; real
    /// combinational logic must not read this).
    pub fn pending(&self) -> Option<&T> {
        self.next.as_ref()
    }
}

impl<T: Clone + Default> Default for Reg<T> {
    fn default() -> Self {
        Reg::new(T::default())
    }
}

/// A fixed-depth shift register: value written this cycle appears at the
/// output `depth` cycles later. This is exactly the "control signals for
/// subsequent stages are delayed versions of the former" structure of
/// fig. 5 in the paper.
#[derive(Debug, Clone)]
pub struct DelayLine<T: Clone + Default> {
    slots: Vec<Reg<T>>,
}

impl<T: Clone + Default> DelayLine<T> {
    /// A delay line of `depth ≥ 1` stages, reset to `T::default()`.
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 1, "delay line needs at least one stage");
        DelayLine {
            slots: (0..depth).map(|_| Reg::default()).collect(),
        }
    }

    /// Number of stages.
    pub fn depth(&self) -> usize {
        self.slots.len()
    }

    /// Drive the input of the line for this cycle.
    pub fn push(&mut self, v: T) {
        self.slots[0].set(v);
    }

    /// The committed value at stage `k` (0 = one cycle of delay after the
    /// `push` that produced it, k = `k+1` cycles of delay).
    pub fn stage(&self, k: usize) -> &T {
        self.slots[k].get()
    }

    /// The committed output of the final stage.
    pub fn output(&self) -> &T {
        self.slots.last().expect("non-empty").get()
    }

    /// Clock edge: every stage latches the previous stage's committed value;
    /// stage 0 latches the pushed input (or `T::default()` if none was
    /// pushed, modeling a control pipeline that idles with NOPs).
    pub fn tick(&mut self) {
        // Propagate from the far end backwards so each stage reads the
        // *committed* value of its predecessor.
        for k in (1..self.slots.len()).rev() {
            let v = self.slots[k - 1].get().clone();
            self.slots[k].set(v);
        }
        if !self.slots[0].is_driven() {
            self.slots[0].set(T::default());
        }
        for s in &mut self.slots {
            s.tick();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_holds_until_tick() {
        let mut r = Reg::new(1u32);
        r.set(2);
        assert_eq!(*r.get(), 1, "value must not change before the edge");
        r.tick();
        assert_eq!(*r.get(), 2);
    }

    #[test]
    fn reg_holds_without_drive() {
        let mut r = Reg::new(7u32);
        r.tick();
        r.tick();
        assert_eq!(*r.get(), 7);
    }

    #[test]
    fn last_set_wins() {
        let mut r = Reg::new(0u32);
        r.set(1);
        r.set(2);
        r.tick();
        assert_eq!(*r.get(), 2);
    }

    #[test]
    #[should_panic(expected = "bus conflict")]
    fn set_checked_panics_on_double_drive() {
        let mut r = Reg::new(0u32);
        r.set_checked(1);
        r.set_checked(2);
    }

    #[test]
    fn delay_line_delays_by_depth() {
        let mut dl = DelayLine::<u32>::new(3);
        // Push 10, then idle. 10 should appear at the output after 3 ticks.
        dl.push(10);
        dl.tick(); // now at stage 0
        assert_eq!(*dl.stage(0), 10);
        assert_eq!(*dl.output(), 0);
        dl.tick(); // stage 1
        assert_eq!(*dl.stage(1), 10);
        dl.tick(); // stage 2 == output
        assert_eq!(*dl.output(), 10);
        dl.tick(); // flushed out, replaced by default
        assert_eq!(*dl.output(), 0);
    }

    #[test]
    fn delay_line_streams_back_to_back() {
        let mut dl = DelayLine::<u32>::new(2);
        let mut out = Vec::new();
        for v in 1..=5u32 {
            dl.push(v);
            dl.tick();
            out.push(*dl.output());
        }
        // depth-2: first pushed value appears after 2 ticks.
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn delay_line_idles_with_default() {
        let mut dl = DelayLine::<u32>::new(2);
        dl.push(9);
        for _ in 0..5 {
            dl.tick();
        }
        assert_eq!(*dl.output(), 0, "NOPs must flush the pipeline");
    }
}
