//! Packet and cell types shared across the workspace.
//!
//! Two granularities coexist:
//!
//! * [`Cell`] — the unit of the *cell-level* (behavioral) models used for
//!   statistical experiments: one fixed-size packet abstracted to a single
//!   token that occupies one buffer slot and one transmission slot. This is
//!   the granularity of the queueing literature the paper cites
//!   (\[KaHM87\], \[HlKa88\], \[AOST93\]).
//! * [`Packet`] — the unit of the *word-level* RTL models: a framed sequence
//!   of `size_words` link words, word 0 carrying the routing header. This is
//!   the granularity at which the pipelined memory itself operates.

use crate::ids::{Cycle, PortId};

/// Globally unique identity of a cell within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub u64);

/// Globally unique identity of a packet within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

/// A fixed-size cell for slotted, cell-level switch models.
///
/// Time for these models is slotted: one slot = the time to transmit one
/// cell on one link. Latency is measured in slots from `birth` to the slot
/// in which the cell completes transmission on its output link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Unique id (for conservation / ordering checks).
    pub id: CellId,
    /// Input port on which the cell arrived.
    pub src: PortId,
    /// Output port the cell is destined to.
    pub dst: PortId,
    /// Slot in which the cell arrived at the switch.
    pub birth: Cycle,
}

impl Cell {
    /// Construct a cell.
    pub fn new(id: u64, src: usize, dst: usize, birth: Cycle) -> Self {
        Cell {
            id: CellId(id),
            src: PortId(src),
            dst: PortId(dst),
            birth,
        }
    }

    /// Latency in slots if the cell departs at `now` (inclusive counting:
    /// a cell that departs in its arrival slot has latency 0).
    pub fn latency_at(&self, now: Cycle) -> u64 {
        now.saturating_sub(self.birth)
    }
}

/// A multi-word packet for the word-level RTL models.
///
/// On the wire a packet is `size_words` consecutive link words; the header
/// (word 0) carries the destination. The RTL models move real 16-bit-ish
/// data words (stored as `u64` payloads) so that data-integrity checks can
/// verify the buffer end to end, not just the control path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// Input port of arrival.
    pub src: PortId,
    /// Destination output port.
    pub dst: PortId,
    /// Number of link words (must be a multiple of the switch quantum).
    pub size_words: usize,
    /// Cycle in which word 0 appears on the input link.
    pub birth: Cycle,
    /// Payload words (length `size_words`); word 0 is the header.
    pub words: Vec<u64>,
}

impl Packet {
    /// Build a packet with a synthesized payload: word 0 is a header
    /// encoding `dst` and `id`, subsequent words are a deterministic
    /// function of `(id, index)` so corruption is detectable.
    pub fn synth(id: u64, src: usize, dst: usize, size_words: usize, birth: Cycle) -> Self {
        assert!(size_words >= 1, "packet must have at least a header word");
        let mut words = Vec::with_capacity(size_words);
        words.push(Self::encode_header(dst, id));
        for k in 1..size_words {
            words.push(Self::payload_word(id, k));
        }
        Packet {
            id: PacketId(id),
            src: PortId(src),
            dst: PortId(dst),
            size_words,
            birth,
            words,
        }
    }

    /// Header encoding: destination port in the low 8 bits, packet id
    /// above. The value `0xFF` in the low byte is the multicast escape
    /// (see [`Packet::encode_header_multicast`]), so unicast destinations
    /// are limited to `0..=254`.
    pub fn encode_header(dst: usize, id: u64) -> u64 {
        debug_assert!(dst < 255, "header encodes unicast dst in 0..=254");
        (id << 8) | dst as u64
    }

    /// Inverse of [`Packet::encode_header`] (unicast headers only).
    pub fn decode_header(header: u64) -> (usize, u64) {
        debug_assert!(
            header & 0xff != 0xff,
            "multicast header decoded with the unicast decoder"
        );
        ((header & 0xff) as usize, header >> 8)
    }

    /// Multicast header: low byte `0xFF`, then a 16-bit output bitmask,
    /// then the id. Limits multicast switches to 16 outputs — ample for
    /// the paper's 4×4 / 8×8 / 16×16 geometries.
    pub fn encode_header_multicast(mask: u16, id: u64) -> u64 {
        debug_assert!(mask != 0, "multicast to nobody");
        (id << 24) | ((mask as u64) << 8) | 0xff
    }

    /// Decode any header into `(output bitmask, id)`: unicast headers
    /// yield a one-bit mask. A (corrupted) unicast destination too large
    /// for the mask decodes to the empty mask — an invalid header the
    /// switch's framing check rejects — rather than tripping a shift
    /// overflow in the decoder.
    pub fn decode_header_any(header: u64) -> (u32, u64) {
        if header & 0xff == 0xff {
            (((header >> 8) & 0xffff) as u32, header >> 24)
        } else {
            let dst = (header & 0xff) as u32;
            (1u32.checked_shl(dst).unwrap_or(0), header >> 8)
        }
    }

    /// Build a multicast packet with the same synthetic payload scheme as
    /// [`Packet::synth`]. The `dst` field records the lowest destination;
    /// use [`Packet::decode_header_any`] on word 0 for the full set.
    pub fn synth_multicast(
        id: u64,
        src: usize,
        mask: u16,
        size_words: usize,
        birth: Cycle,
    ) -> Self {
        assert!(size_words >= 1 && mask != 0);
        let mut words = Vec::with_capacity(size_words);
        words.push(Self::encode_header_multicast(mask, id));
        for k in 1..size_words {
            words.push(Self::payload_word(id, k));
        }
        Packet {
            id: PacketId(id),
            src: PortId(src),
            dst: PortId(mask.trailing_zeros() as usize),
            size_words,
            birth,
            words,
        }
    }

    /// The deterministic payload word `k` of packet `id` (k ≥ 1).
    pub fn payload_word(id: u64, k: usize) -> u64 {
        // SplitMix-style mix keeps words distinct across packets and
        // positions, which makes any mis-wired datapath fail loudly.
        let mut z = id
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(k as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^ (z >> 27)
    }

    /// Check that `words` round-trips: header decodes to `(dst, id)` and
    /// every payload word matches [`Packet::payload_word`].
    pub fn verify_integrity(&self) -> bool {
        if self.words.len() != self.size_words {
            return false;
        }
        let (dst, id) = Self::decode_header(self.words[0]);
        if dst != self.dst.index() || id != self.id.0 {
            return false;
        }
        self.words[1..]
            .iter()
            .enumerate()
            .all(|(i, &w)| w == Self::payload_word(self.id.0, i + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrupted_oversized_dst_decodes_to_empty_mask() {
        // A wire bit-flip can push the unicast dst byte past the mask
        // width; the decoder must yield the invalid empty mask, not
        // overflow the shift.
        let (mask, id) = Packet::decode_header_any((7 << 8) | 0x40);
        assert_eq!(mask, 0);
        assert_eq!(id, 7);
    }

    #[test]
    fn cell_latency() {
        let c = Cell::new(1, 0, 2, 100);
        assert_eq!(c.latency_at(100), 0);
        assert_eq!(c.latency_at(105), 5);
        // No underflow when asked about a slot before birth.
        assert_eq!(c.latency_at(99), 0);
    }

    #[test]
    fn header_roundtrip() {
        for dst in 0..8 {
            for id in [0u64, 1, 255, 1 << 40] {
                let h = Packet::encode_header(dst, id);
                assert_eq!(Packet::decode_header(h), (dst, id));
                assert_eq!(Packet::decode_header_any(h), (1 << dst, id));
            }
        }
    }

    #[test]
    fn multicast_header_roundtrip() {
        for mask in [0b1u16, 0b1010, 0xffff] {
            for id in [0u64, 7, 1 << 30] {
                let h = Packet::encode_header_multicast(mask, id);
                assert_eq!(Packet::decode_header_any(h), (mask as u32, id));
            }
        }
    }

    #[test]
    fn synth_multicast_payload_matches_unicast_scheme() {
        let m = Packet::synth_multicast(9, 0, 0b110, 4, 0);
        let u = Packet::synth(9, 0, 1, 4, 0);
        assert_eq!(m.words[1..], u.words[1..], "same payload scheme");
        assert_eq!(m.dst.index(), 1, "lowest destination recorded");
    }

    #[test]
    fn synth_packet_verifies() {
        let p = Packet::synth(42, 1, 3, 8, 7);
        assert!(p.verify_integrity());
        assert_eq!(p.words.len(), 8);
    }

    #[test]
    fn corruption_detected() {
        let mut p = Packet::synth(42, 1, 3, 8, 7);
        p.words[5] ^= 1;
        assert!(!p.verify_integrity());
        let mut q = Packet::synth(42, 1, 3, 8, 7);
        q.words[0] ^= 0x100; // flip a bit of the id field
        assert!(!q.verify_integrity());
    }

    #[test]
    fn payload_words_distinct_across_packets() {
        assert_ne!(Packet::payload_word(1, 1), Packet::payload_word(2, 1));
        assert_ne!(Packet::payload_word(1, 1), Packet::payload_word(1, 2));
    }
}
