//! Wave bookkeeping for pipelined memories.
//!
//! The defining idea of the paper (§3.2): an operation initiated at memory
//! stage `M0` in cycle `t` is repeated, with identical address and link
//! binding, at stage `Mk` in cycle `t + k`. We call the whole sweep a
//! *wave*. This module provides the pure arithmetic of waves — which stage
//! a wave occupies at a cycle, whether two waves ever collide on a stage —
//! so both the RTL model and its tests can reason about them.

use crate::ids::{Addr, Cycle, PortId, StageId};

/// What a wave does at each stage it visits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaveKind {
    /// Store an incoming packet: at stage `k`, write input-latch word `k`
    /// of the bound incoming link into the bank at the wave's address.
    Write,
    /// Retrieve an outgoing packet: at stage `k`, read the bank at the
    /// wave's address into output register `k`, to be transmitted on the
    /// bound outgoing link one cycle later.
    Read,
}

/// One operation wave sweeping the bank chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wave {
    /// Read or write.
    pub kind: WaveKind,
    /// Cycle in which the wave performs its stage-0 operation.
    pub start: Cycle,
    /// Buffer address used at *every* stage (one packet slot).
    pub addr: Addr,
    /// The link bound to the wave: incoming link for writes, outgoing link
    /// for reads.
    pub link: PortId,
    /// Number of stages the wave visits (the switch's `stages`).
    pub stages: usize,
}

impl Wave {
    /// The stage this wave operates on during `cycle`, if it is active then.
    pub fn stage_at(&self, cycle: Cycle) -> Option<StageId> {
        if cycle < self.start {
            return None;
        }
        let k = (cycle - self.start) as usize;
        (k < self.stages).then_some(StageId(k))
    }

    /// The cycle at which this wave operates on stage `k`.
    pub fn cycle_at(&self, k: StageId) -> Option<Cycle> {
        (k.index() < self.stages).then(|| self.start + k.index() as Cycle)
    }

    /// Cycle of the last stage operation.
    pub fn end(&self) -> Cycle {
        self.start + (self.stages as Cycle) - 1
    }

    /// True while the wave still has stage operations to perform at or
    /// after `cycle`.
    pub fn active_at(&self, cycle: Cycle) -> bool {
        cycle >= self.start && cycle <= self.end()
    }

    /// Two waves collide iff they would ever use the same stage in the same
    /// cycle. Because every wave moves right one stage per cycle, this
    /// happens exactly when they start in the same cycle — the key property
    /// that makes "one initiation per cycle" a sufficient safety rule.
    pub fn collides_with(&self, other: &Wave) -> bool {
        self.start == other.start
    }
}

/// A set of in-flight waves with collision checking; the RTL model keeps
/// one of these as its ground truth for assertions.
#[derive(Debug, Default, Clone)]
pub struct WaveLog {
    waves: Vec<Wave>,
}

impl WaveLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admit a wave; panics if it collides with any in-flight wave
    /// (a violated "one initiation per cycle" invariant).
    pub fn launch(&mut self, w: Wave) {
        for existing in &self.waves {
            assert!(
                !existing.collides_with(&w),
                "wave collision: {existing:?} vs {w:?}"
            );
        }
        self.waves.push(w);
    }

    /// Remove waves fully completed before `cycle`.
    pub fn retire_before(&mut self, cycle: Cycle) {
        self.waves.retain(|w| w.end() >= cycle);
    }

    /// Waves active in `cycle`, together with the stage each occupies.
    pub fn active(&self, cycle: Cycle) -> impl Iterator<Item = (&Wave, StageId)> {
        self.waves
            .iter()
            .filter_map(move |w| w.stage_at(cycle).map(|s| (w, s)))
    }

    /// Number of tracked waves.
    pub fn len(&self) -> usize {
        self.waves.len()
    }

    /// True if no waves are tracked.
    pub fn is_empty(&self) -> bool {
        self.waves.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(kind: WaveKind, start: Cycle) -> Wave {
        Wave {
            kind,
            start,
            addr: Addr(0),
            link: PortId(0),
            stages: 4,
        }
    }

    #[test]
    fn stage_progression() {
        let w = wave(WaveKind::Read, 10);
        assert_eq!(w.stage_at(9), None);
        assert_eq!(w.stage_at(10), Some(StageId(0)));
        assert_eq!(w.stage_at(12), Some(StageId(2)));
        assert_eq!(w.stage_at(13), Some(StageId(3)));
        assert_eq!(w.stage_at(14), None);
        assert_eq!(w.end(), 13);
    }

    #[test]
    fn cycle_at_inverts_stage_at() {
        let w = wave(WaveKind::Write, 5);
        for k in 0..4 {
            let c = w.cycle_at(StageId(k)).unwrap();
            assert_eq!(w.stage_at(c), Some(StageId(k)));
        }
        assert_eq!(w.cycle_at(StageId(4)), None);
    }

    #[test]
    fn same_start_collides_different_start_does_not() {
        let a = wave(WaveKind::Read, 3);
        let b = wave(WaveKind::Write, 3);
        let c = wave(WaveKind::Write, 4);
        assert!(a.collides_with(&b));
        assert!(!a.collides_with(&c));
    }

    #[test]
    fn staggered_waves_never_share_a_stage() {
        // Exhaustively check the claim behind `collides_with`: waves with
        // different starts never occupy the same stage in the same cycle.
        let a = wave(WaveKind::Read, 7);
        let b = wave(WaveKind::Write, 9);
        for c in 0..30 {
            if let (Some(sa), Some(sb)) = (a.stage_at(c), b.stage_at(c)) {
                assert_ne!(sa, sb, "cycle {c}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "wave collision")]
    fn log_rejects_collision() {
        let mut log = WaveLog::new();
        log.launch(wave(WaveKind::Read, 1));
        log.launch(wave(WaveKind::Write, 1));
    }

    #[test]
    fn log_retires_completed() {
        let mut log = WaveLog::new();
        log.launch(wave(WaveKind::Read, 0)); // ends at 3
        log.launch(wave(WaveKind::Write, 2)); // ends at 5
        log.retire_before(4);
        assert_eq!(log.len(), 1);
        log.retire_before(6);
        assert!(log.is_empty());
    }

    #[test]
    fn active_reports_stage() {
        let mut log = WaveLog::new();
        log.launch(wave(WaveKind::Read, 0));
        log.launch(wave(WaveKind::Write, 1));
        let active: Vec<StageId> = log.active(2).map(|(_, s)| s).collect();
        assert_eq!(active, vec![StageId(2), StageId(1)]);
    }
}
