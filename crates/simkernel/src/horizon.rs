//! Event-horizon fast-forward: skip idle cycles without touching state.
//!
//! The kernel's narrative has always been "every flip-flop sees every
//! clock edge" — and for *active* cycles that remains true. But the
//! low-load regions of the experiment grids and the inter-burst gaps of
//! the conformance fuzzer spend most of their wall time clocking a
//! switch in which nothing can happen: no word on any wire, no wave in
//! any bank, no pending write, no queued read. Classic discrete-event
//! simulators never pay for those cycles — they keep an event calendar
//! and jump straight to the next scheduled event.
//!
//! [`Horizon`] grafts that idea onto the synchronous models without an
//! event queue: each model *derives* its event horizon from the state it
//! already holds (next transmission-done cycle, next eligible pending
//! write, next output-initiation slot), and [`advance_to`] jumps the
//! clock there in O(1) instead of ticking through the gap. The contract
//! is conservative by construction, so the fast path can change wall
//! time only — never a departure cycle, a counter, or an RNG draw.
//!
//! ## The contract
//!
//! With **no input offered** over `[now, e)`:
//!
//! * `next_event() == None` — the model is quiescent and will remain so
//!   forever under idle input; any jump is safe.
//! * `next_event() == Some(e)` with `e > now` — every cycle in
//!   `[now, e)` is pure bookkeeping: ticking through them with idle
//!   input would change nothing observable except the cycle counter.
//!   `jump_to(t)` for `t <= e` must leave the model in exactly the
//!   state dense idle ticking to `t` would have.
//! * `next_event() == Some(e)` with `e <= now` — state may change this
//!   cycle; the driver must dense-tick.
//!
//! Answering *early* (`Some(now)` when a longer skip was legal) costs
//! performance, never correctness; answering *late* is a model bug —
//! the equivalence property test (`tests/fast_forward.rs` in
//! `switch-core`) hunts exactly that by comparing dense and
//! fast-forwarded runs over randomized bursty schedules.
//!
//! Parallelism stays in the bench harness (DESIGN.md §6); time-skipping
//! lives here in the kernel, because only the model knows which cycles
//! are skippable and only the kernel owns the vocabulary of time.

use crate::ids::Cycle;
use std::sync::atomic::{AtomicU64, Ordering};

// Process-wide fast-forward efficiency counters, mirroring the sweep
// engine's points counter: worker threads from every sweep fold into the
// same pair, and `expt` reports skipped vs executed per experiment by
// differencing around each run.
static FF_SKIPPED: AtomicU64 = AtomicU64::new(0);
static FF_EXECUTED: AtomicU64 = AtomicU64::new(0);

/// Record `n` cycles skipped by a fast-forward jump.
pub fn note_skipped(n: u64) {
    FF_SKIPPED.fetch_add(n, Ordering::Relaxed);
}

/// Record `n` cycles executed densely under a fast-forward driver.
pub fn note_executed(n: u64) {
    FF_EXECUTED.fetch_add(n, Ordering::Relaxed);
}

/// Total cycles skipped by fast-forward jumps since process start.
pub fn ff_skipped() -> u64 {
    FF_SKIPPED.load(Ordering::Relaxed)
}

/// Total cycles executed densely under fast-forward drivers since
/// process start.
pub fn ff_executed() -> u64 {
    FF_EXECUTED.load(Ordering::Relaxed)
}

/// A model that can report its event horizon and jump over dead time.
///
/// See the module docs for the exact contract. Implementations must be
/// *conservative*: when in doubt, return `Some(self.now())` — that
/// degrades to dense stepping, which is always correct.
pub trait Horizon {
    /// The current cycle (the one the next dense tick would execute).
    fn now(&self) -> Cycle;

    /// The earliest future cycle at which, under idle input, the model's
    /// observable state can change. `None` means quiescent forever.
    fn next_event(&self) -> Option<Cycle>;

    /// Jump the clock to `target` without evaluating the intervening
    /// cycles. Only legal when `next_event()` permits it (`None`, or
    /// `Some(e)` with `target <= e`); callers go through [`advance_to`]
    /// or [`drain`], which enforce this.
    fn jump_to(&mut self, target: Cycle);
}

/// Advance `m` to exactly `target`, fast-forwarding across idle spans
/// and calling `dense_tick` (which must advance the clock by one cycle
/// with idle input) whenever the model reports an imminent event.
///
/// Bit-exact with dense stepping by the [`Horizon`] contract; the only
/// observable difference is wall time. Skipped/executed cycle counts
/// fold into the process-wide efficiency counters.
pub fn advance_to<M: Horizon>(m: &mut M, target: Cycle, mut dense_tick: impl FnMut(&mut M)) {
    while m.now() < target {
        let now = m.now();
        let stop = match m.next_event() {
            None => target,
            Some(e) if e > now => e.min(target),
            Some(_) => {
                dense_tick(m);
                debug_assert!(m.now() > now, "dense_tick must advance the clock");
                note_executed(m.now() - now);
                continue;
            }
        };
        note_skipped(stop - now);
        m.jump_to(stop);
    }
}

/// Drain `m` to quiescence under a watchdog, fast-forwarding across the
/// idle spans. The fast-path counterpart of
/// [`run_until_quiescent`](crate::error::run_until_quiescent): returns
/// the cycle at which the model went quiescent, or
/// [`SimError::Watchdog`](crate::error::SimError::Watchdog) if `limit`
/// cycles pass (dense *or* skipped) without quiescence.
pub fn drain<M: Horizon>(
    m: &mut M,
    limit: u64,
    what: &str,
    mut dense_tick: impl FnMut(&mut M),
) -> Result<Cycle, crate::error::SimError> {
    let start = m.now();
    loop {
        let now = m.now();
        let stop = match m.next_event() {
            None => return Ok(now),
            Some(e) if e > now => e,
            Some(_) => {
                if now - start >= limit {
                    return Err(crate::error::SimError::Watchdog {
                        limit,
                        context: what.to_string(),
                    });
                }
                dense_tick(m);
                debug_assert!(m.now() > now, "dense_tick must advance the clock");
                note_executed(m.now() - now);
                continue;
            }
        };
        // A skip is bounded by the watchdog budget too: a model whose
        // horizon recedes forever must still trip the watchdog rather
        // than spin.
        let stop = stop.min(start + limit);
        if stop == now {
            return Err(crate::error::SimError::Watchdog {
                limit,
                context: what.to_string(),
            });
        }
        note_skipped(stop - now);
        m.jump_to(stop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy model: one "packet" that completes at a fixed cycle.
    struct Toy {
        now: Cycle,
        done_at: Option<Cycle>,
        ticked: Vec<Cycle>,
    }

    impl Horizon for Toy {
        fn now(&self) -> Cycle {
            self.now
        }
        fn next_event(&self) -> Option<Cycle> {
            match self.done_at {
                None => None,
                Some(d) if d > self.now => Some(d),
                Some(_) => Some(self.now),
            }
        }
        fn jump_to(&mut self, target: Cycle) {
            self.now = target;
        }
    }

    fn toy_tick(t: &mut Toy) {
        t.ticked.push(t.now);
        if t.done_at == Some(t.now) {
            t.done_at = None;
        }
        t.now += 1;
    }

    #[test]
    fn advance_skips_to_event_then_ticks() {
        let mut t = Toy {
            now: 0,
            done_at: Some(100),
            ticked: Vec::new(),
        };
        advance_to(&mut t, 200, toy_tick);
        assert_eq!(t.now, 200);
        // Only the event cycle itself was dense-ticked.
        assert_eq!(t.ticked, vec![100]);
        assert_eq!(t.done_at, None);
    }

    #[test]
    fn advance_lands_exactly_on_target_before_event() {
        let mut t = Toy {
            now: 0,
            done_at: Some(100),
            ticked: Vec::new(),
        };
        advance_to(&mut t, 40, toy_tick);
        assert_eq!(t.now, 40);
        assert!(t.ticked.is_empty());
        assert_eq!(t.done_at, Some(100));
    }

    #[test]
    fn drain_returns_quiescence_cycle() {
        let mut t = Toy {
            now: 7,
            done_at: Some(19),
            ticked: Vec::new(),
        };
        let q = drain(&mut t, 1000, "toy", toy_tick).unwrap();
        assert_eq!(q, 20);
        assert_eq!(t.ticked, vec![19]);
    }

    #[test]
    fn drain_watchdog_fires_on_wedged_model() {
        struct Wedged(Cycle);
        impl Horizon for Wedged {
            fn now(&self) -> Cycle {
                self.0
            }
            fn next_event(&self) -> Option<Cycle> {
                Some(self.0)
            }
            fn jump_to(&mut self, t: Cycle) {
                self.0 = t;
            }
        }
        let err = drain(&mut Wedged(0), 25, "wedged toy", |w| w.0 += 1).unwrap_err();
        match err {
            crate::error::SimError::Watchdog { limit, context } => {
                assert_eq!(limit, 25);
                assert_eq!(context, "wedged toy");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn drain_watchdog_bounds_receding_horizon() {
        // A model whose horizon always sits `limit + 1` ahead: each skip
        // is clamped to the budget and the watchdog still fires.
        struct Receding(Cycle);
        impl Horizon for Receding {
            fn now(&self) -> Cycle {
                self.0
            }
            fn next_event(&self) -> Option<Cycle> {
                Some(self.0 + 1_000_000)
            }
            fn jump_to(&mut self, t: Cycle) {
                self.0 = t;
            }
        }
        let err = drain(&mut Receding(0), 50, "receding", |_| {}).unwrap_err();
        assert!(matches!(
            err,
            crate::error::SimError::Watchdog { limit: 50, .. }
        ));
    }

    #[test]
    fn counters_accumulate() {
        let s0 = ff_skipped();
        let e0 = ff_executed();
        let mut t = Toy {
            now: 0,
            done_at: Some(10),
            ticked: Vec::new(),
        };
        advance_to(&mut t, 20, toy_tick);
        assert_eq!(ff_skipped() - s0, 19); // [0,10) and [11,20)
        assert_eq!(ff_executed() - e0, 1); // cycle 10
    }
}
