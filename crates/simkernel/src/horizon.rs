//! Event-horizon fast-forward: skip idle cycles without touching state.
//!
//! The kernel's narrative has always been "every flip-flop sees every
//! clock edge" — and for *active* cycles that remains true. But the
//! low-load regions of the experiment grids and the inter-burst gaps of
//! the conformance fuzzer spend most of their wall time clocking a
//! switch in which nothing can happen: no word on any wire, no wave in
//! any bank, no pending write, no queued read. Classic discrete-event
//! simulators never pay for those cycles — they keep an event calendar
//! and jump straight to the next scheduled event.
//!
//! [`Horizon`] grafts that idea onto the synchronous models without an
//! event queue: each model *derives* its event horizon from the state it
//! already holds (next transmission-done cycle, next eligible pending
//! write, next output-initiation slot), and [`advance_to`] jumps the
//! clock there in O(1) instead of ticking through the gap. The contract
//! is conservative by construction, so the fast path can change wall
//! time only — never a departure cycle, a counter, or an RNG draw.
//!
//! ## The contract
//!
//! With **no input offered** over `[now, e)`:
//!
//! * `next_event() == None` — the model is quiescent and will remain so
//!   forever under idle input; any jump is safe.
//! * `next_event() == Some(e)` with `e > now` — every cycle in
//!   `[now, e)` is pure bookkeeping: ticking through them with idle
//!   input would change nothing observable except the cycle counter.
//!   `jump_to(t)` for `t <= e` must leave the model in exactly the
//!   state dense idle ticking to `t` would have.
//! * `next_event() == Some(e)` with `e <= now` — state may change this
//!   cycle; the driver must dense-tick.
//!
//! Answering *early* (`Some(now)` when a longer skip was legal) costs
//! performance, never correctness; answering *late* is a model bug —
//! the equivalence property test (`tests/fast_forward.rs` in
//! `switch-core`) hunts exactly that by comparing dense and
//! fast-forwarded runs over randomized bursty schedules.
//!
//! Parallelism stays in the bench harness (DESIGN.md §6); time-skipping
//! lives here in the kernel, because only the model knows which cycles
//! are skippable and only the kernel owns the vocabulary of time.

use crate::ids::Cycle;
use std::sync::atomic::{AtomicU64, Ordering};

// Process-wide fast-forward efficiency counters, mirroring the sweep
// engine's points counter: worker threads from every sweep fold into the
// same pair, and `expt` reports skipped vs executed per experiment by
// differencing around each run.
static FF_SKIPPED: AtomicU64 = AtomicU64::new(0);
static FF_EXECUTED: AtomicU64 = AtomicU64::new(0);

/// Record `n` cycles skipped by a fast-forward jump.
pub fn note_skipped(n: u64) {
    FF_SKIPPED.fetch_add(n, Ordering::Relaxed);
}

/// Record `n` cycles executed densely under a fast-forward driver.
pub fn note_executed(n: u64) {
    FF_EXECUTED.fetch_add(n, Ordering::Relaxed);
}

/// Total cycles skipped by fast-forward jumps since process start.
pub fn ff_skipped() -> u64 {
    FF_SKIPPED.load(Ordering::Relaxed)
}

/// Total cycles executed densely under fast-forward drivers since
/// process start.
pub fn ff_executed() -> u64 {
    FF_EXECUTED.load(Ordering::Relaxed)
}

/// Skip windows at or below this width are not worth a jump: the
/// horizon query plus the jump bookkeeping cost more than just ticking
/// through. [`advance_to`] and [`advance_to_batched`] dense-step such
/// windows (including the event cycle itself) in one run, with a single
/// counter update — this is what removes the 95%-load regression where
/// per-cycle horizon bookkeeping made fast-forward *slower* than plain
/// dense stepping.
pub const DENSE_FALLTHROUGH: u64 = 4;

/// A model whose idle cycles can be executed as one fused batch.
///
/// `tick_idle_batch(n)` must be observably identical to `n` single
/// dense ticks with idle input — same grants, same counters, same
/// probe events, same departures — but may hoist per-tick wrapper work
/// (argument scans, per-cycle pacing decrements, assertions) out of the
/// loop. This is the multi-cycle entry point of the bit-parallel dense
/// path: between arbitration decisions control cannot change, so the
/// batch body is just the fused per-cycle kernel.
pub trait BatchTick {
    /// Run `n` cycles with idle input as one fused batch.
    fn tick_idle_batch(&mut self, n: u64);
}

/// A model that can report its event horizon and jump over dead time.
///
/// See the module docs for the exact contract. Implementations must be
/// *conservative*: when in doubt, return `Some(self.now())` — that
/// degrades to dense stepping, which is always correct.
pub trait Horizon {
    /// The current cycle (the one the next dense tick would execute).
    fn now(&self) -> Cycle;

    /// The earliest future cycle at which, under idle input, the model's
    /// observable state can change. `None` means quiescent forever.
    fn next_event(&self) -> Option<Cycle>;

    /// Jump the clock to `target` without evaluating the intervening
    /// cycles. Only legal when `next_event()` permits it (`None`, or
    /// `Some(e)` with `target <= e`); callers go through [`advance_to`]
    /// or [`drain`], which enforce this.
    fn jump_to(&mut self, target: Cycle);
}

/// Advance `m` to exactly `target`, fast-forwarding across idle spans
/// and calling `dense_tick` (which must advance the clock by one cycle
/// with idle input) whenever the model reports an imminent event.
///
/// Bit-exact with dense stepping by the [`Horizon`] contract; the only
/// observable difference is wall time. Skipped/executed cycle counts
/// fold into the process-wide efficiency counters.
pub fn advance_to<M: Horizon>(m: &mut M, target: Cycle, mut dense_tick: impl FnMut(&mut M)) {
    while m.now() < target {
        let now = m.now();
        let stop = match m.next_event() {
            None => target,
            Some(e) if e > now + DENSE_FALLTHROUGH => e.min(target),
            Some(e) => {
                // Near-zero skip window: fall through to dense stepping
                // across the window *and* the event cycle, with one
                // counter update for the whole run instead of per-cycle
                // horizon bookkeeping.
                let run_end = target.min(e.max(now) + 1);
                while m.now() < run_end {
                    dense_tick(m);
                }
                debug_assert!(m.now() > now, "dense_tick must advance the clock");
                note_executed(m.now() - now);
                continue;
            }
        };
        note_skipped(stop - now);
        m.jump_to(stop);
    }
}

/// [`advance_to`] for models with a fused idle-batch path: dense runs go
/// through [`BatchTick::tick_idle_batch`] instead of a per-cycle tick
/// closure, so the near-window fall-through executes without any
/// per-cycle driver overhead. On a saturated model the horizon demands
/// dense stepping almost every cycle; consecutive dense rounds escalate
/// the batch length (up to 8× [`DENSE_FALLTHROUGH`]) so the horizon
/// query itself drops out of the per-cycle cost. Escalation only ever
/// *executes* cycles it might instead have skipped — never skips cycles
/// it should have executed — so bit-exactness is unconditional.
pub fn advance_to_batched<M: Horizon + BatchTick>(m: &mut M, target: Cycle) {
    let mut streak: u64 = 0;
    while m.now() < target {
        let now = m.now();
        let stop = match m.next_event() {
            None => target,
            Some(e) if e > now + DENSE_FALLTHROUGH => {
                streak = 0;
                e.min(target)
            }
            Some(e) => {
                let mut run_end = target.min(e.max(now) + 1);
                if streak >= 2 {
                    let escalated = DENSE_FALLTHROUGH * streak.min(8);
                    run_end = run_end.max(target.min(now + escalated));
                }
                streak += 1;
                m.tick_idle_batch(run_end - now);
                debug_assert!(m.now() == run_end, "tick_idle_batch must advance n cycles");
                note_executed(run_end - now);
                continue;
            }
        };
        note_skipped(stop - now);
        m.jump_to(stop);
    }
}

/// Drain `m` to quiescence under a watchdog, fast-forwarding across the
/// idle spans. The fast-path counterpart of
/// [`run_until_quiescent`](crate::error::run_until_quiescent): returns
/// the cycle at which the model went quiescent, or
/// [`SimError::Watchdog`](crate::error::SimError::Watchdog) if `limit`
/// cycles pass (dense *or* skipped) without quiescence.
pub fn drain<M: Horizon>(
    m: &mut M,
    limit: u64,
    what: &str,
    mut dense_tick: impl FnMut(&mut M),
) -> Result<Cycle, crate::error::SimError> {
    let start = m.now();
    loop {
        let now = m.now();
        let stop = match m.next_event() {
            None => return Ok(now),
            Some(e) if e > now => e,
            Some(_) => {
                if now - start >= limit {
                    return Err(crate::error::SimError::Watchdog {
                        limit,
                        context: what.to_string(),
                    });
                }
                dense_tick(m);
                debug_assert!(m.now() > now, "dense_tick must advance the clock");
                note_executed(m.now() - now);
                continue;
            }
        };
        // A skip is bounded by the watchdog budget too: a model whose
        // horizon recedes forever must still trip the watchdog rather
        // than spin.
        let stop = stop.min(start + limit);
        if stop == now {
            return Err(crate::error::SimError::Watchdog {
                limit,
                context: what.to_string(),
            });
        }
        note_skipped(stop - now);
        m.jump_to(stop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy model: one "packet" that completes at a fixed cycle.
    struct Toy {
        now: Cycle,
        done_at: Option<Cycle>,
        ticked: Vec<Cycle>,
    }

    impl Horizon for Toy {
        fn now(&self) -> Cycle {
            self.now
        }
        fn next_event(&self) -> Option<Cycle> {
            match self.done_at {
                None => None,
                Some(d) if d > self.now => Some(d),
                Some(_) => Some(self.now),
            }
        }
        fn jump_to(&mut self, target: Cycle) {
            self.now = target;
        }
    }

    fn toy_tick(t: &mut Toy) {
        t.ticked.push(t.now);
        if t.done_at == Some(t.now) {
            t.done_at = None;
        }
        t.now += 1;
    }

    #[test]
    fn advance_skips_to_event_then_ticks() {
        let mut t = Toy {
            now: 0,
            done_at: Some(100),
            ticked: Vec::new(),
        };
        advance_to(&mut t, 200, toy_tick);
        assert_eq!(t.now, 200);
        // Only the event cycle itself was dense-ticked.
        assert_eq!(t.ticked, vec![100]);
        assert_eq!(t.done_at, None);
    }

    #[test]
    fn advance_lands_exactly_on_target_before_event() {
        let mut t = Toy {
            now: 0,
            done_at: Some(100),
            ticked: Vec::new(),
        };
        advance_to(&mut t, 40, toy_tick);
        assert_eq!(t.now, 40);
        assert!(t.ticked.is_empty());
        assert_eq!(t.done_at, Some(100));
    }

    #[test]
    fn drain_returns_quiescence_cycle() {
        let mut t = Toy {
            now: 7,
            done_at: Some(19),
            ticked: Vec::new(),
        };
        let q = drain(&mut t, 1000, "toy", toy_tick).unwrap();
        assert_eq!(q, 20);
        assert_eq!(t.ticked, vec![19]);
    }

    #[test]
    fn drain_watchdog_fires_on_wedged_model() {
        struct Wedged(Cycle);
        impl Horizon for Wedged {
            fn now(&self) -> Cycle {
                self.0
            }
            fn next_event(&self) -> Option<Cycle> {
                Some(self.0)
            }
            fn jump_to(&mut self, t: Cycle) {
                self.0 = t;
            }
        }
        let err = drain(&mut Wedged(0), 25, "wedged toy", |w| w.0 += 1).unwrap_err();
        match err {
            crate::error::SimError::Watchdog { limit, context } => {
                assert_eq!(limit, 25);
                assert_eq!(context, "wedged toy");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn drain_watchdog_bounds_receding_horizon() {
        // A model whose horizon always sits `limit + 1` ahead: each skip
        // is clamped to the budget and the watchdog still fires.
        struct Receding(Cycle);
        impl Horizon for Receding {
            fn now(&self) -> Cycle {
                self.0
            }
            fn next_event(&self) -> Option<Cycle> {
                Some(self.0 + 1_000_000)
            }
            fn jump_to(&mut self, t: Cycle) {
                self.0 = t;
            }
        }
        let err = drain(&mut Receding(0), 50, "receding", |_| {}).unwrap_err();
        assert!(matches!(
            err,
            crate::error::SimError::Watchdog { limit: 50, .. }
        ));
    }

    impl BatchTick for Toy {
        fn tick_idle_batch(&mut self, n: u64) {
            for _ in 0..n {
                toy_tick(self);
            }
        }
    }

    #[test]
    fn batched_matches_per_cycle_driver() {
        let mut a = Toy {
            now: 0,
            done_at: Some(100),
            ticked: Vec::new(),
        };
        let mut b = Toy {
            now: 0,
            done_at: Some(100),
            ticked: Vec::new(),
        };
        advance_to(&mut a, 200, toy_tick);
        advance_to_batched(&mut b, 200);
        assert_eq!(a.now, b.now);
        assert_eq!(a.ticked, b.ticked);
        assert_eq!(a.done_at, b.done_at);
    }

    #[test]
    fn batched_escalates_on_saturated_model() {
        // A model that is never skippable: the horizon demands dense
        // stepping every cycle. The batched driver must still execute
        // every cycle exactly once, but in escalating runs so the
        // horizon query drops out of the per-cycle cost.
        struct Saturated {
            now: Cycle,
            batches: Vec<u64>,
        }
        impl Horizon for Saturated {
            fn now(&self) -> Cycle {
                self.now
            }
            fn next_event(&self) -> Option<Cycle> {
                Some(self.now)
            }
            fn jump_to(&mut self, t: Cycle) {
                self.now = t;
            }
        }
        impl BatchTick for Saturated {
            fn tick_idle_batch(&mut self, n: u64) {
                self.batches.push(n);
                self.now += n;
            }
        }
        let mut m = Saturated {
            now: 0,
            batches: Vec::new(),
        };
        advance_to_batched(&mut m, 1000);
        assert_eq!(m.now, 1000);
        assert_eq!(m.batches.iter().sum::<u64>(), 1000);
        // Escalation caps runs at 8 × DENSE_FALLTHROUGH, so the driver
        // consulted the horizon far less than once per cycle.
        assert!(m.batches.len() < 1000 / DENSE_FALLTHROUGH as usize + 8);
        assert!(m.batches.iter().all(|&n| n <= 8 * DENSE_FALLTHROUGH));
    }

    #[test]
    fn near_window_falls_through_to_dense() {
        // Event 2 cycles ahead: within DENSE_FALLTHROUGH, so advance_to
        // must dense-step the window and the event cycle rather than
        // jump. (The ticked vec is the proof: a jump would leave cycles
        // 0 and 1 out of it.)
        let mut t = Toy {
            now: 0,
            done_at: Some(2),
            ticked: Vec::new(),
        };
        advance_to(&mut t, 3, toy_tick);
        assert_eq!(t.now, 3);
        assert_eq!(t.ticked, vec![0, 1, 2]);
    }

    #[test]
    fn counters_accumulate() {
        let s0 = ff_skipped();
        let e0 = ff_executed();
        let mut t = Toy {
            now: 0,
            done_at: Some(10),
            ticked: Vec::new(),
        };
        advance_to(&mut t, 20, toy_tick);
        assert_eq!(ff_skipped() - s0, 19); // [0,10) and [11,20)
        assert_eq!(ff_executed() - e0, 1); // cycle 10
    }
}
