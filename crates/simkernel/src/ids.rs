//! Small vocabulary types shared by every crate in the workspace.
//!
//! These are deliberately thin newtypes: they cost nothing at runtime but
//! keep "port 3" from being confused with "address 3" or "stage 3" at
//! compile time — the classic off-by-one-dimension bugs of switch
//! simulators.

use std::fmt;

/// Simulation time, measured in clock cycles of the switch core.
///
/// The paper assumes a single clock domain in which the memory cycle time
/// equals the link cycle time (one word per link per cycle), so a single
/// `u64` cycle counter suffices for the whole system.
pub type Cycle = u64;

/// Identifies one switch port (an incoming or an outgoing link).
///
/// Ports are numbered `0..n`. Whether a `PortId` names an input or an output
/// is determined by context (the switch structs keep them in separate
/// fields); the type exists to distinguish ports from addresses and stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub usize);

impl PortId {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for PortId {
    fn from(i: usize) -> Self {
        PortId(i)
    }
}

/// Identifies one pipeline stage (one memory bank) of the pipelined memory.
///
/// An `n_in × n_out` switch has `n_in + n_out` stages, numbered left to
/// right `0..stages`; an operation wave visits stage `k` exactly `k` cycles
/// after it was initiated at stage 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StageId(pub usize);

impl StageId {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

impl From<usize> for StageId {
    fn from(i: usize) -> Self {
        StageId(i)
    }
}

/// A buffer address: one row of the shared buffer, i.e. one packet slot.
///
/// All words of one packet are stored *at the same address* in every memory
/// stage (§3.2 of the paper), so a single `Addr` identifies a whole packet
/// slot across the bank chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub usize);

impl Addr {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl From<usize> for Addr {
    fn from(i: usize) -> Self {
        Addr(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtypes_roundtrip() {
        assert_eq!(PortId::from(7).index(), 7);
        assert_eq!(StageId::from(3).index(), 3);
        assert_eq!(Addr::from(200).index(), 200);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PortId(2).to_string(), "p2");
        assert_eq!(StageId(5).to_string(), "M5");
        assert_eq!(Addr(9).to_string(), "a9");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(PortId(1) < PortId(2));
        assert!(Addr(0) < Addr(10));
        assert!(StageId(3) > StageId(2));
    }
}
