//! The simulation driver: a single synchronous clock domain.
//!
//! A [`Simulator`] owns nothing but the clock; models implement [`Clocked`]
//! and are stepped by the driver. Separating the drive loop from the models
//! keeps models directly unit-testable (tests call `tick` by hand) while
//! giving experiments a uniform run/warmup/measure structure.

use crate::ids::Cycle;

/// A synchronous component: evaluated once per clock cycle.
///
/// The contract mirrors hardware: during `tick(cycle)` the component reads
/// only *committed* state (its own registers' current values and its inputs
/// as sampled at the cycle boundary), computes, and commits its next state
/// before returning. Whole-system composition is correct as long as
/// components exchange data through values passed explicitly per cycle
/// (ports), not by reaching into each other mid-cycle.
pub trait Clocked {
    /// Advance one clock cycle.
    fn tick(&mut self, cycle: Cycle);
}

/// A minimal clock-domain driver with warmup/measurement phases.
#[derive(Debug, Default)]
pub struct Simulator {
    cycle: Cycle,
}

impl Simulator {
    /// A simulator at cycle 0.
    pub fn new() -> Self {
        Simulator { cycle: 0 }
    }

    /// Current cycle (the next one to be executed).
    pub fn now(&self) -> Cycle {
        self.cycle
    }

    /// Run `f` once per cycle for `cycles` cycles. `f` receives the cycle
    /// number; returning `false` stops the run early. Returns the number of
    /// cycles actually executed.
    pub fn run_for(&mut self, cycles: Cycle, mut f: impl FnMut(Cycle) -> bool) -> Cycle {
        let mut executed = 0;
        for _ in 0..cycles {
            let c = self.cycle;
            self.cycle += 1;
            executed += 1;
            if !f(c) {
                break;
            }
        }
        executed
    }

    /// Run until `f` returns `false` or `limit` cycles elapse; returns
    /// `true` if `f` stopped the run (converged) and `false` on limit.
    pub fn run_until(&mut self, limit: Cycle, mut f: impl FnMut(Cycle) -> bool) -> bool {
        for _ in 0..limit {
            let c = self.cycle;
            self.cycle += 1;
            if !f(c) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    struct Counter {
        value: Reg<u64>,
    }

    impl Clocked for Counter {
        fn tick(&mut self, _cycle: Cycle) {
            let v = *self.value.get();
            self.value.set(v + 1);
            self.value.tick();
        }
    }

    #[test]
    fn run_for_executes_exactly() {
        let mut sim = Simulator::new();
        let mut c = Counter { value: Reg::new(0) };
        let ran = sim.run_for(10, |cy| {
            c.tick(cy);
            true
        });
        assert_eq!(ran, 10);
        assert_eq!(*c.value.get(), 10);
        assert_eq!(sim.now(), 10);
    }

    #[test]
    fn run_for_stops_early() {
        let mut sim = Simulator::new();
        let ran = sim.run_for(100, |cy| cy < 4);
        assert_eq!(ran, 5, "the cycle returning false still counts");
    }

    #[test]
    fn run_until_reports_convergence() {
        let mut sim = Simulator::new();
        assert!(sim.run_until(100, |cy| cy < 7));
        let mut sim2 = Simulator::new();
        assert!(!sim2.run_until(5, |_| true));
    }

    #[test]
    fn cycles_accumulate_across_runs() {
        let mut sim = Simulator::new();
        sim.run_for(5, |_| true);
        sim.run_for(5, |_| true);
        assert_eq!(sim.now(), 10);
    }
}
