//! Typed simulation errors and the structured quiescence watchdog.
//!
//! The early testbenches drained their switches with ad-hoc `guard`
//! counters: `while !sw.is_quiescent() && guard < N { … }`. A hang (a
//! stuck wave, a leaked buffer slot, a lost credit) silently truncated
//! the run and surfaced — if at all — as a confusing downstream
//! assertion. Under fault injection that is unacceptable: a fault that
//! wedges the switch must be a *first-class, typed outcome*, exactly as
//! a watchdog timer on real switch silicon turns a hang into a visible
//! reset event instead of a dead box.
//!
//! [`run_until_quiescent`] is the shared drain loop: it steps the
//! simulation until the caller reports quiescence or a cycle budget is
//! exhausted, and a budget overrun is a [`SimError::Watchdog`] carrying
//! enough context to diagnose the hang. The other variants give the
//! credit-audit and datapath-integrity machinery the same typed-failure
//! vocabulary.

use std::fmt;

/// A typed, structured simulation failure.
///
/// Every fault-campaign outcome that is not "detected and survived"
/// lands here: hangs trip the watchdog, credit-conservation violations
/// that cannot be resynced report as leaks, and integrity cross-check
/// failures (a corrupted packet delivered without being counted) report
/// as integrity faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The simulation failed to reach quiescence within its cycle budget.
    Watchdog {
        /// The cycle budget that was exhausted.
        limit: u64,
        /// What was being drained (for the error message).
        context: String,
    },
    /// Credit conservation is violated: the sender believes more credits
    /// are outstanding than the ground truth can account for (credits
    /// were lost on the return wire), or fewer (credits were returned
    /// twice).
    CreditLeak {
        /// Credits the sender's counter says are outstanding.
        expected_outstanding: u32,
        /// Credits actually consumed and unreturned per ground truth.
        actual_outstanding: u32,
        /// Which link / sender (for the error message).
        context: String,
    },
    /// A datapath-integrity invariant failed: corruption escaped the
    /// detection machinery, or a cross-check between the testbench
    /// ledger and the switch counters disagreed.
    IntegrityFault {
        /// Human-readable description of the violated invariant.
        detail: String,
    },
    /// Two models that are claimed equivalent disagreed on an observable
    /// (a departure schedule, a delivered-packet set, a FIFO order). The
    /// conformance fuzzer reports every oracle failure through this
    /// variant so campaign tooling can treat divergences uniformly with
    /// hangs and leaks.
    Divergence {
        /// Which oracle check failed (e.g. `"rtl-vs-behavioral"`).
        check: String,
        /// Human-readable description of the disagreement.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Watchdog { limit, context } => {
                write!(f, "watchdog: {context} not quiescent after {limit} cycles")
            }
            SimError::CreditLeak {
                expected_outstanding,
                actual_outstanding,
                context,
            } => write!(
                f,
                "credit leak on {context}: sender counts {expected_outstanding} \
                 outstanding, ground truth {actual_outstanding}"
            ),
            SimError::IntegrityFault { detail } => write!(f, "integrity fault: {detail}"),
            SimError::Divergence { check, detail } => {
                write!(f, "divergence [{check}]: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Drain a simulation to quiescence under a watchdog.
///
/// `step` is called once per cycle with the drain-cycle index; it must
/// advance the simulation by one cycle and return `true` once the model
/// is quiescent (checked *before* stepping, so an already-quiescent
/// model is not ticked at all). Returns the number of drain cycles
/// executed, or [`SimError::Watchdog`] if `limit` cycles pass without
/// quiescence — replacing the silent `guard`-counter loops that used to
/// truncate hung runs without a trace.
///
/// ```
/// use simkernel::error::{run_until_quiescent, SimError};
///
/// let mut remaining = 3u32;
/// let spent = run_until_quiescent(10, "toy drain", |_cycle| {
///     if remaining == 0 {
///         return true;
///     }
///     remaining -= 1;
///     false
/// })
/// .unwrap();
/// assert_eq!(spent, 3);
///
/// let hang = run_until_quiescent(10, "wedged model", |_| false);
/// assert!(matches!(hang, Err(SimError::Watchdog { limit: 10, .. })));
/// ```
pub fn run_until_quiescent(
    limit: u64,
    what: &str,
    mut step: impl FnMut(u64) -> bool,
) -> Result<u64, SimError> {
    for cycle in 0..limit {
        if step(cycle) {
            return Ok(cycle);
        }
    }
    Err(SimError::Watchdog {
        limit,
        context: what.to_string(),
    })
}

/// Drain with watchdog *escalation*: when the budget runs out, give the
/// caller's `resync` hook a chance to un-wedge the model (drop a stuck
/// wave, resynchronize credits, force a drain path) before declaring the
/// hang fatal.
///
/// `resync(attempt)` is called with the 0-based escalation attempt and
/// returns `true` if it took a corrective action worth retrying after;
/// each `true` buys one more full `limit`-cycle drain, up to `escalations`
/// attempts. A hang that survives every escalation is a
/// [`SimError::Watchdog`] and is recorded in the process-wide
/// [`crate::watchdog`] expiry ledger. Returns
/// `(total drain cycles, escalations used)` on success.
pub fn run_until_quiescent_escalating(
    limit: u64,
    what: &str,
    mut step: impl FnMut(u64) -> bool,
    mut resync: impl FnMut(u32) -> bool,
    escalations: u32,
) -> Result<(u64, u32), SimError> {
    let mut spent = 0u64;
    for attempt in 0..=escalations {
        match run_until_quiescent(limit, what, &mut step) {
            Ok(cycles) => return Ok((spent + cycles, attempt)),
            Err(_) => {
                spent += limit;
                if attempt == escalations || !resync(attempt) {
                    break;
                }
            }
        }
    }
    crate::watchdog::note_expiry();
    Err(SimError::Watchdog {
        limit: spent,
        context: what.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_immediately_runs_zero_cycles() {
        let mut ticks = 0;
        let spent = run_until_quiescent(100, "noop", |_| {
            ticks += 1;
            true
        })
        .unwrap();
        assert_eq!(spent, 0);
        assert_eq!(ticks, 1, "step called once, model never advanced");
    }

    #[test]
    fn watchdog_fires_at_limit() {
        let mut ticks = 0u64;
        let err = run_until_quiescent(42, "hung model", |_| {
            ticks += 1;
            false
        })
        .unwrap_err();
        assert_eq!(ticks, 42);
        match err {
            SimError::Watchdog { limit, context } => {
                assert_eq!(limit, 42);
                assert_eq!(context, "hung model");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn cycle_index_is_passed_through() {
        let mut seen = Vec::new();
        let _ = run_until_quiescent(4, "index check", |c| {
            seen.push(c);
            false
        });
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn escalation_resync_rescues_a_wedged_drain() {
        // Model wedges until the resync hook clears a fault flag. Both
        // closures touch the flag, hence the `Cell`.
        let wedged = std::cell::Cell::new(true);
        let mut remaining = 2u32;
        let (spent, used) = run_until_quiescent_escalating(
            5,
            "rescuable drain",
            |_| {
                if wedged.get() {
                    return false;
                }
                if remaining == 0 {
                    return true;
                }
                remaining -= 1;
                false
            },
            |attempt| {
                assert_eq!(attempt, 0);
                wedged.set(false);
                true
            },
            2,
        )
        .unwrap();
        assert_eq!(used, 1, "one escalation consumed");
        assert_eq!(spent, 5 + 2, "first budget burned, then a real drain");
    }

    #[test]
    fn escalation_exhaustion_is_a_watchdog_with_total_budget() {
        let base = crate::watchdog::expiries();
        let err =
            run_until_quiescent_escalating(4, "hopeless", |_| false, |_| true, 2).unwrap_err();
        match err {
            SimError::Watchdog { limit, context } => {
                assert_eq!(limit, 12, "three full budgets spent");
                assert_eq!(context, "hopeless");
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert_eq!(crate::watchdog::expiries_since(base), 1);
    }

    #[test]
    fn resync_declining_ends_escalation_early() {
        let mut calls = 0u32;
        let err = run_until_quiescent_escalating(
            3,
            "unrescuable",
            |_| false,
            |_| {
                calls += 1;
                false
            },
            5,
        )
        .unwrap_err();
        assert_eq!(calls, 1, "resync consulted once, declined");
        assert!(matches!(err, SimError::Watchdog { limit: 3, .. }));
    }

    #[test]
    fn display_forms() {
        let w = SimError::Watchdog {
            limit: 7,
            context: "drain".into(),
        };
        assert!(w.to_string().contains("7 cycles"));
        let l = SimError::CreditLeak {
            expected_outstanding: 4,
            actual_outstanding: 2,
            context: "input 1".into(),
        };
        assert!(l.to_string().contains("input 1"));
        let i = SimError::IntegrityFault {
            detail: "silent corruption".into(),
        };
        assert!(i.to_string().contains("silent corruption"));
        let d = SimError::Divergence {
            check: "rtl-vs-behavioral".into(),
            detail: "departure schedules differ".into(),
        };
        assert!(d.to_string().contains("rtl-vs-behavioral"));
        assert!(d.to_string().contains("schedules differ"));
    }
}
