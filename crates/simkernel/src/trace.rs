//! Cycle-stamped event traces.
//!
//! Traces serve two purposes in this workspace: (1) the fig. 5 reproduction
//! prints a literal cycle-by-cycle control-signal table from a trace, and
//! (2) tests assert on exact event timing (e.g. "the cut-through word left
//! on the output link exactly 2 cycles after it arrived").

use crate::ids::Cycle;
use std::fmt;

/// One trace record: an event of type `E` observed at a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry<E> {
    /// Cycle at which the event was observed.
    pub cycle: Cycle,
    /// The event payload.
    pub event: E,
}

/// An append-only, optionally bounded event trace.
///
/// When constructed with a capacity, the trace keeps only the most recent
/// `capacity` entries (a flight recorder); unbounded traces keep everything
/// (for short directed tests).
#[derive(Debug, Clone)]
pub struct Trace<E> {
    entries: Vec<TraceEntry<E>>,
    capacity: Option<usize>,
    dropped: u64,
    enabled: bool,
}

impl<E> Default for Trace<E> {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl<E> Trace<E> {
    /// A trace that keeps every entry.
    pub fn unbounded() -> Self {
        Trace {
            entries: Vec::new(),
            capacity: None,
            dropped: 0,
            enabled: true,
        }
    }

    /// A flight-recorder trace keeping only the last `capacity` entries.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "bounded trace needs capacity > 0");
        Trace {
            entries: Vec::with_capacity(capacity),
            capacity: Some(capacity),
            dropped: 0,
            enabled: true,
        }
    }

    /// A disabled trace: records nothing, costs (almost) nothing. Used by
    /// long statistical runs where tracing would dominate runtime.
    pub fn disabled() -> Self {
        Trace {
            entries: Vec::new(),
            capacity: None,
            dropped: 0,
            enabled: false,
        }
    }

    /// Whether this trace records events.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event.
    pub fn record(&mut self, cycle: Cycle, event: E) {
        if !self.enabled {
            self.dropped += 1;
            return;
        }
        if let Some(cap) = self.capacity {
            if self.entries.len() == cap {
                self.entries.remove(0);
                self.dropped += 1;
            }
        }
        self.entries.push(TraceEntry { cycle, event });
    }

    /// All retained entries, oldest first.
    pub fn entries(&self) -> &[TraceEntry<E>] {
        &self.entries
    }

    /// Number of events not retained (evicted or disabled).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained entries at a given cycle.
    pub fn at(&self, cycle: Cycle) -> impl Iterator<Item = &E> {
        self.entries
            .iter()
            .filter(move |e| e.cycle == cycle)
            .map(|e| &e.event)
    }

    /// First retained entry matching a predicate.
    pub fn find(&self, mut pred: impl FnMut(&E) -> bool) -> Option<&TraceEntry<E>> {
        self.entries.iter().find(|e| pred(&e.event))
    }

    /// Drop all retained entries (counters keep accumulating).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl<E: fmt::Display> Trace<E> {
    /// Render the trace as a simple `cycle: event` listing.
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut s = String::new();
        for e in &self.entries {
            let _ = writeln!(s, "{:>8}: {}", e.cycle, e.event);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_keeps_all() {
        let mut t = Trace::unbounded();
        for c in 0..100u64 {
            t.record(c, c * 2);
        }
        assert_eq!(t.entries().len(), 100);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn bounded_evicts_oldest() {
        let mut t = Trace::bounded(3);
        for c in 0..5u64 {
            t.record(c, c);
        }
        assert_eq!(t.dropped(), 2);
        let kept: Vec<u64> = t.entries().iter().map(|e| e.event).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.record(1, "x");
        assert!(t.entries().is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn at_filters_by_cycle() {
        let mut t = Trace::unbounded();
        t.record(5, "a");
        t.record(5, "b");
        t.record(6, "c");
        let at5: Vec<&&str> = t.at(5).collect();
        assert_eq!(at5.len(), 2);
    }

    #[test]
    fn find_locates_entry() {
        let mut t = Trace::unbounded();
        t.record(1, 10);
        t.record(2, 20);
        assert_eq!(t.find(|e| *e == 20).unwrap().cycle, 2);
        assert!(t.find(|e| *e == 99).is_none());
    }

    #[test]
    fn render_formats_lines() {
        let mut t = Trace::unbounded();
        t.record(3, "hello");
        assert!(t.render().contains("3: hello"));
    }
}
