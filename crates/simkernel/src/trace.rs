//! Cycle-stamped event traces.
//!
//! `Trace<E>` is the single storage engine behind every event stream in
//! the workspace: the telemetry crate's flight recorder wraps a bounded
//! trace, its metrics pipeline stores ring-buffered time series as
//! `Trace<u64>`, and directed tests assert on exact event timing (e.g.
//! "the cut-through word left on the output link exactly 2 cycles after
//! it arrived").
//!
//! Bounded traces are O(1) ring buffers: when full, recording one event
//! evicts exactly the oldest retained entry and increments the drop
//! counter, so `recorded() == len() + dropped()` holds at all times —
//! the accounting a post-mortem dump relies on to say "window shows the
//! last K of N events".

use crate::ids::Cycle;
use std::collections::VecDeque;
use std::fmt;

/// One trace record: an event of type `E` observed at a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry<E> {
    /// Cycle at which the event was observed.
    pub cycle: Cycle,
    /// The event payload.
    pub event: E,
}

/// An append-only, optionally bounded event trace.
///
/// When constructed with a capacity, the trace keeps only the most recent
/// `capacity` entries (a flight recorder); unbounded traces keep everything
/// (for short directed tests).
#[derive(Debug, Clone)]
pub struct Trace<E> {
    entries: VecDeque<TraceEntry<E>>,
    capacity: Option<usize>,
    dropped: u64,
    recorded: u64,
    enabled: bool,
}

impl<E> Default for Trace<E> {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl<E> Trace<E> {
    /// A trace that keeps every entry.
    pub fn unbounded() -> Self {
        Trace {
            entries: VecDeque::new(),
            capacity: None,
            dropped: 0,
            recorded: 0,
            enabled: true,
        }
    }

    /// A flight-recorder trace keeping only the last `capacity` entries.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "bounded trace needs capacity > 0");
        Trace {
            entries: VecDeque::with_capacity(capacity),
            capacity: Some(capacity),
            dropped: 0,
            recorded: 0,
            enabled: true,
        }
    }

    /// A disabled trace: records nothing, costs (almost) nothing. Used by
    /// long statistical runs where tracing would dominate runtime.
    pub fn disabled() -> Self {
        Trace {
            entries: VecDeque::new(),
            capacity: None,
            dropped: 0,
            recorded: 0,
            enabled: false,
        }
    }

    /// Whether this trace records events.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event. O(1): a full bounded trace evicts its oldest
    /// entry (ring-buffer pop) rather than shifting the whole backlog.
    pub fn record(&mut self, cycle: Cycle, event: E) {
        self.recorded += 1;
        if !self.enabled {
            self.dropped += 1;
            return;
        }
        if let Some(cap) = self.capacity {
            if self.entries.len() == cap {
                self.entries.pop_front();
                self.dropped += 1;
            }
        }
        self.entries.push_back(TraceEntry { cycle, event });
    }

    /// Retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry<E>> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total events ever offered to [`Trace::record`], retained or not.
    /// Invariant: `recorded() == len() as u64 + dropped()`.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Number of events not retained (evicted or disabled).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained entries at a given cycle.
    pub fn at(&self, cycle: Cycle) -> impl Iterator<Item = &E> {
        self.entries
            .iter()
            .filter(move |e| e.cycle == cycle)
            .map(|e| &e.event)
    }

    /// First retained entry matching a predicate.
    pub fn find(&self, mut pred: impl FnMut(&E) -> bool) -> Option<&TraceEntry<E>> {
        self.entries.iter().find(|e| pred(&e.event))
    }

    /// Drop all retained entries (counters keep accumulating).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl<E: fmt::Display> Trace<E> {
    /// Render the trace as a simple `cycle: event` listing.
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut s = String::new();
        for e in &self.entries {
            let _ = writeln!(s, "{:>8}: {}", e.cycle, e.event);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_keeps_all() {
        let mut t = Trace::unbounded();
        for c in 0..100u64 {
            t.record(c, c * 2);
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.recorded(), 100);
    }

    #[test]
    fn bounded_evicts_oldest_and_accounts_exactly() {
        // A bounded flight recorder must report drops *exactly*: after N
        // records into a capacity-K ring, dropped == N - K, the retained
        // window is the most recent K entries in order, and the total
        // offered count reconciles: recorded == len + dropped.
        let mut t = Trace::bounded(3);
        for c in 0..10u64 {
            t.record(c, c);
        }
        assert_eq!(t.dropped(), 7);
        assert_eq!(t.len(), 3);
        assert_eq!(t.recorded(), 10);
        assert_eq!(t.recorded(), t.len() as u64 + t.dropped());
        let kept: Vec<u64> = t.iter().map(|e| e.event).collect();
        assert_eq!(kept, vec![7, 8, 9]);
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.record(1, "x");
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.recorded(), 1);
    }

    #[test]
    fn at_filters_by_cycle() {
        let mut t = Trace::unbounded();
        t.record(5, "a");
        t.record(5, "b");
        t.record(6, "c");
        let at5: Vec<&&str> = t.at(5).collect();
        assert_eq!(at5.len(), 2);
    }

    #[test]
    fn find_locates_entry() {
        let mut t = Trace::unbounded();
        t.record(1, 10);
        t.record(2, 20);
        assert_eq!(t.find(|e| *e == 20).unwrap().cycle, 2);
        assert!(t.find(|e| *e == 99).is_none());
    }

    #[test]
    fn render_formats_lines() {
        let mut t = Trace::unbounded();
        t.record(3, "hello");
        assert!(t.render().contains("3: hello"));
    }
}
