//! Deterministic pseudo-random number generation for simulations.
//!
//! Every stochastic choice in the workspace (traffic arrivals, destination
//! draws, tie-breaking in arbiters) flows through [`SplitMix64`], a small,
//! fast, well-mixed generator that is seedable and fully reproducible. The
//! goal is not cryptographic quality but *bit-exact reruns*: a simulation
//! with the same seed produces the same cycle-by-cycle behavior on every
//! platform, which the test suite and the experiment harness rely on.
//!
//! SplitMix64 is the standard seeding generator of the xoshiro family
//! (Steele, Lea, Flood 2014); its 64-bit state passes BigCrush when used as
//! here.

/// A SplitMix64 generator.
///
/// ```
/// use simkernel::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // bit-exact reproducibility
/// let die = a.below(6) + 1;
/// assert!((1..=6).contains(&die));
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Different seeds yield statistically
    /// independent streams for practical simulation purposes.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent child stream, useful for giving each input
    /// port its own generator so per-port traffic is independent.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0x6a09_e667_f3bc_c909)
    }

    /// Generator for the `stream`-th independent stream of `base` — see
    /// [`split_seed`]. Unlike [`SplitMix64::fork`], this is a pure
    /// function of `(base, stream)`: any worker can derive stream `k`
    /// without observing streams `0..k`, which is what makes parallel
    /// parameter sweeps bit-identical regardless of scheduling order.
    pub fn stream(base: u64, stream: u64) -> SplitMix64 {
        SplitMix64::new(split_seed(base, stream))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Uses Lemire's multiply-shift with a
    /// rejection step, so the distribution is exactly uniform.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire 2018: "Fast Random Integer Generation in an Interval".
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform usize in `[0, bound)`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.next_f64() < p
    }

    /// Geometric draw: number of failures before the first success with
    /// success probability `p ∈ (0, 1]`; i.e. `P(X = k) = (1-p)^k · p`.
    /// Used for on/off burst lengths.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric needs p in (0,1]");
        if p >= 1.0 {
            return 0;
        }
        // Inversion: floor(ln(U) / ln(1-p)).
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Uniform choice from a non-empty slice (by reference, so the
    /// caller's table of candidate parameters needs no cloning). The
    /// conformance scenario generator draws port counts, buffer depths
    /// and load levels from fixed menus with this.
    pub fn choose<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        assert!(!options.is_empty(), "choose from an empty slice");
        &options[self.below_usize(options.len())]
    }

    /// A random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.below_usize(i + 1);
            v.swap(i, j);
        }
        v
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = self.below_usize(i + 1);
            v.swap(i, j);
        }
    }
}

/// Seed-split: the seed of the `stream`-th independent child stream of
/// `base`.
///
/// Equivalent to taking the `stream + 1`-th output of
/// `SplitMix64::new(base)`, computed in O(1) by jumping the additive
/// state directly (`state = base + stream·γ`); the outputs of a
/// SplitMix64 sequence are well-mixed and mutually independent for
/// simulation purposes. Used by the experiment sweep engine to give
/// every grid point its own reproducible RNG stream independent of
/// worker count and execution order.
pub fn split_seed(base: u64, stream: u64) -> u64 {
    let mut g = SplitMix64::new(base.wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
    g.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_vector() {
        // Reference values from the canonical SplitMix64 (seed 0).
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(g.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(g.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_uniform_enough() {
        let mut g = SplitMix64::new(123);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[g.below_usize(8)] += 1;
        }
        // Each bucket should hold ~10000; allow ±5%.
        for &c in &counts {
            assert!((9500..=10500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn chance_matches_probability() {
        let mut g = SplitMix64::new(9);
        let n = 100_000;
        let hits = (0..n).filter(|_| g.chance(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn geometric_mean_matches() {
        let mut g = SplitMix64::new(11);
        let p = 0.25;
        let n = 50_000;
        let total: u64 = (0..n).map(|_| g.geometric(p)).sum();
        let mean = total as f64 / n as f64;
        let expect = (1.0 - p) / p; // = 3.0
        assert!((mean - expect).abs() < 0.1, "observed mean {mean}");
    }

    #[test]
    fn geometric_p_one_is_zero() {
        let mut g = SplitMix64::new(3);
        for _ in 0..100 {
            assert_eq!(g.geometric(1.0), 0);
        }
    }

    #[test]
    fn choose_covers_all_options_uniformly() {
        let mut g = SplitMix64::new(31);
        let menu = [2usize, 4, 8, 16];
        let mut counts = [0u32; 4];
        for _ in 0..8_000 {
            let v = *g.choose(&menu);
            counts[menu.iter().position(|&m| m == v).unwrap()] += 1;
        }
        for &c in &counts {
            assert!((1800..=2200).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn choose_empty_panics() {
        let mut g = SplitMix64::new(1);
        let empty: [u8; 0] = [];
        g.choose(&empty);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut g = SplitMix64::new(5);
        for n in [1usize, 2, 5, 16] {
            let p = g.permutation(n);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn split_seed_matches_sequential_draws() {
        // Stream k's seed is the (k+1)-th output of the base generator —
        // the O(1) state jump must agree with actually stepping it.
        let base = 0xFEED_FACE;
        let mut g = SplitMix64::new(base);
        for k in 0..16 {
            assert_eq!(split_seed(base, k), g.next_u64(), "stream {k}");
        }
    }

    #[test]
    fn split_streams_are_independent() {
        let mut a = SplitMix64::stream(42, 0);
        let mut b = SplitMix64::stream(42, 1);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
        // And reproducible.
        let mut a2 = SplitMix64::stream(42, 0);
        let mut a3 = SplitMix64::stream(42, 0);
        for _ in 0..100 {
            assert_eq!(a2.next_u64(), a3.next_u64());
        }
    }

    #[test]
    fn fork_streams_diverge() {
        let mut parent = SplitMix64::new(77);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
