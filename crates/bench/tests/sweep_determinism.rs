//! The sweep engine's central guarantee: results are bit-identical for
//! every worker count. E1 (a real simulation sweep — saturation
//! bisections over switch sizes) is run at `--jobs` 1, 4 and 8 and the
//! rows compared field-for-field; the rendered report must also match
//! byte-for-byte.

use bench_harness::{e01, sweep};

#[test]
fn e1_rows_identical_across_worker_counts() {
    let run = |jobs: usize| {
        sweep::set_jobs(jobs);
        let rows = e01::rows(true);
        sweep::set_jobs(0);
        rows
    };
    let seq = run(1);
    assert!(!seq.is_empty());
    for jobs in [4usize, 8] {
        let par = run(jobs);
        assert_eq!(
            seq.len(),
            par.len(),
            "row count changed under --jobs {jobs}"
        );
        for (a, b) in seq.iter().zip(&par) {
            // Field-exact: the floats must be the same bits, not merely
            // close — the engine promises bit-identical execution.
            assert_eq!(a.n, b.n, "grid order changed under --jobs {jobs}");
            assert_eq!(
                a.measured.to_bits(),
                b.measured.to_bits(),
                "n={}: measured diverged under --jobs {jobs}",
                a.n
            );
            assert_eq!(a.theory.to_bits(), b.theory.to_bits());
        }
    }
}

#[test]
fn e1_report_identical_bytes_across_worker_counts() {
    let render = |jobs: usize| {
        sweep::set_jobs(jobs);
        let s = bench_harness::run_experiment("e1", true).expect("e1 exists");
        sweep::set_jobs(0);
        s
    };
    let seq = render(1);
    assert_eq!(seq, render(8), "rendered report diverged under --jobs 8");
}
