//! Single-cycle cost of the behavioral switch's hot path — the loop the
//! allocation-hoisting work targets. Unlike `behavioral.rs` (which
//! sweeps sizes), this pins the steady-state per-tick cost at a
//! representative operating point, including the mask-translation path
//! (`tick`) and the direct mask path (`tick_masks`), so regressions in
//! either show up as cycles/second.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simkernel::SplitMix64;
use switch_core::behavioral::BehavioralSwitch;
use switch_core::config::SwitchConfig;

fn bench_behavioral_cycle(c: &mut Criterion) {
    let n = 16;
    let mut g = c.benchmark_group("behavioral_cycle_n16");
    g.throughput(Throughput::Elements(1));

    g.bench_function("tick_load_0.4", |b| {
        let mut sw = BehavioralSwitch::new(SwitchConfig::symmetric(n, 4 * n));
        let mut rng = SplitMix64::new(7);
        let mut arr = vec![None; n];
        b.iter(|| {
            for (i, a) in arr.iter_mut().enumerate() {
                *a = (sw.input_free(i) && rng.chance(0.4)).then(|| rng.below_usize(n));
            }
            std::hint::black_box(sw.tick(&arr).len())
        });
    });

    g.bench_function("tick_masks_load_0.4", |b| {
        let mut sw = BehavioralSwitch::new(SwitchConfig::symmetric(n, 4 * n));
        let mut rng = SplitMix64::new(7);
        let mut arr: Vec<Option<u32>> = vec![None; n];
        b.iter(|| {
            for (i, a) in arr.iter_mut().enumerate() {
                *a = (sw.input_free(i) && rng.chance(0.4)).then(|| 1u32 << rng.below_usize(n));
            }
            std::hint::black_box(sw.tick_masks(&arr).len())
        });
    });

    g.bench_function("tick_idle", |b| {
        // Pure overhead floor: no arrivals, drained switch.
        let mut sw = BehavioralSwitch::new(SwitchConfig::symmetric(n, 4 * n));
        let arr = vec![None; n];
        b.iter(|| std::hint::black_box(sw.tick(&arr).len()));
    });

    g.finish();
}

criterion_group!(benches, bench_behavioral_cycle);
criterion_main!(benches);
