//! Microbenchmarks of the word-level RTL switch: cost of one simulated
//! clock cycle across switch sizes and loads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use switch_core::config::SwitchConfig;
use switch_core::rtl::PipelinedSwitch;
use traffic::{DestDist, PacketFeeder};

fn bench_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtl_tick");
    for &n in &[2usize, 4, 8, 16] {
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("n", n), &n, |b, &n| {
            let cfg = SwitchConfig::symmetric(n, 64);
            let s = cfg.stages();
            let mut sw = PipelinedSwitch::new(cfg);
            let mut feeders: Vec<PacketFeeder> = (0..n)
                .map(|i| PacketFeeder::random(i, s, 0.8, DestDist::uniform(n), 7, n as u64))
                .collect();
            let mut wire = vec![None; n];
            b.iter(|| {
                for (i, f) in feeders.iter_mut().enumerate() {
                    wire[i] = f.tick(sw.now());
                }
                std::hint::black_box(sw.tick(&wire).len())
            });
        });
    }
    g.finish();
}

fn bench_idle_vs_loaded(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtl_load");
    for &load in &[0.0f64, 0.5, 1.0] {
        g.bench_with_input(
            BenchmarkId::new("load", format!("{load:.1}")),
            &load,
            |b, &load| {
                let n = 8;
                let cfg = SwitchConfig::symmetric(n, 64);
                let s = cfg.stages();
                let mut sw = PipelinedSwitch::new(cfg);
                let mut feeders: Vec<PacketFeeder> = (0..n)
                    .map(|i| PacketFeeder::random(i, s, load, DestDist::uniform(n), 3, n as u64))
                    .collect();
                let mut wire = vec![None; n];
                b.iter(|| {
                    for (i, f) in feeders.iter_mut().enumerate() {
                        wire[i] = f.tick(sw.now());
                    }
                    std::hint::black_box(sw.tick(&wire).len())
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_tick, bench_idle_vs_loaded);
criterion_main!(benches);
