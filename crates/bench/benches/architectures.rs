//! Slot cost of every baseline architecture at 16×16, load 0.8 — the
//! compute budget behind experiments E1/E3/E4/E15.

use baselines::model::CellSwitch;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simkernel::cell::Cell;
use simkernel::SplitMix64;

fn zoo() -> Vec<(&'static str, Box<dyn CellSwitch>)> {
    use baselines::*;
    let n = 16;
    vec![
        (
            "input_fifo",
            Box::new(InputFifoSwitch::new(n, None, 1)) as Box<dyn CellSwitch>,
        ),
        (
            "voq_islip",
            Box::new(VoqSwitch::new(n, None, IslipScheduler::new(n, 4))),
        ),
        (
            "voq_pim",
            Box::new(VoqSwitch::new(n, None, PimScheduler::new(4, 2))),
        ),
        ("output_queued", Box::new(OutputQueuedSwitch::new(n, None))),
        ("shared", Box::new(SharedBufferSwitch::new(n, Some(256)))),
        ("crosspoint", Box::new(CrosspointSwitch::new(n, None))),
        ("knockout", Box::new(KnockoutSwitch::new(n, 8, None, 3))),
        (
            "speedup2",
            Box::new(SpeedupSwitch::new(n, 2, None, None, 5)),
        ),
    ]
}

fn bench_architectures(c: &mut Criterion) {
    let mut g = c.benchmark_group("arch_slot");
    for (name, mut model) in zoo() {
        let n = model.ports();
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            let mut rng = SplitMix64::new(9);
            let mut out = vec![None; n];
            let mut now = 0u64;
            let mut id = 0u64;
            b.iter(|| {
                let arr: Vec<Option<Cell>> = (0..n)
                    .map(|i| {
                        rng.chance(0.8).then(|| {
                            id += 1;
                            Cell::new(id, i, rng.below_usize(n), now)
                        })
                    })
                    .collect();
                model.tick(now, &arr, &mut out);
                now += 1;
                std::hint::black_box(out.iter().flatten().count())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_architectures);
criterion_main!(benches);
