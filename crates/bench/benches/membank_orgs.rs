//! Memory-organization microbenchmarks: cycle cost of the pipelined,
//! wide, interleaved and multiport functional models.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use membank::bank::{PortKind, SramBank};
use membank::interleaved::InterleavedMemory;
use membank::multiport::MultiPortMemory;
use membank::pipelined::{PipelinedMemory, WaveOp};
use membank::wide::WideMemory;
use simkernel::ids::Addr;

const STAGES: usize = 16;
const DEPTH: usize = 256;

fn bench_pipelined(c: &mut Criterion) {
    let mut g = c.benchmark_group("membank");
    g.throughput(Throughput::Elements(STAGES as u64));
    g.bench_function("pipelined_wave_cycle", |b| {
        let mut m = PipelinedMemory::new(STAGES, DEPTH, 16);
        let words: Vec<u64> = (0..STAGES as u64).collect();
        let mut addr = 0usize;
        let mut write = true;
        b.iter(|| {
            let op = if write {
                WaveOp::Write {
                    addr: Addr(addr % DEPTH),
                    words: words.clone(),
                }
            } else {
                WaveOp::Read {
                    addr: Addr(addr % DEPTH),
                }
            };
            m.initiate(op).expect("one per cycle");
            write = !write;
            addr += 1;
            std::hint::black_box(m.tick().len())
        });
    });
    g.bench_function("wide_packet_cycle", |b| {
        let mut m = WideMemory::new(DEPTH, STAGES, 16);
        let words: Vec<u64> = (0..STAGES as u64).collect();
        let mut cyc = 0u64;
        let mut addr = 0usize;
        b.iter(|| {
            m.begin_cycle(cyc);
            if cyc.is_multiple_of(2) {
                m.write_packet(Addr(addr % DEPTH), &words).expect("free");
            } else {
                std::hint::black_box(m.read_packet(Addr(addr % DEPTH)).expect("free"));
                addr += 1;
            }
            cyc += 1;
        });
    });
    g.bench_function("interleaved_word_cycle", |b| {
        let mut m = InterleavedMemory::new(DEPTH, STAGES, 16);
        let bank = m.allocate().expect("free bank");
        let mut cyc = 0u64;
        b.iter(|| {
            m.begin_cycle(cyc);
            let k = (cyc as usize) % STAGES;
            m.write_word(bank, k, cyc).expect("one per bank per cycle");
            cyc += 1;
        });
    });
    g.bench_function("multiport_16ops_cycle", |b| {
        let mut m = MultiPortMemory::new(DEPTH, 8, 8);
        let mut cyc = 0u64;
        b.iter(|| {
            m.begin_cycle(cyc);
            for i in 0..8 {
                m.write(Addr(i), cyc).expect("8 write ports");
                std::hint::black_box(m.read(Addr(i)).expect("8 read ports"));
            }
            cyc += 1;
        });
    });
    g.bench_function("sram_bank_rw", |b| {
        let mut bank = SramBank::new(DEPTH, 16, PortKind::DualPort);
        let mut cyc = 0u64;
        b.iter(|| {
            bank.begin_cycle(cyc);
            bank.write(Addr((cyc as usize) % DEPTH), cyc).expect("port");
            std::hint::black_box(bank.read(Addr((cyc as usize) % DEPTH)).expect("port"));
            cyc += 1;
        });
    });
    g.finish();
}

criterion_group!(benches, bench_pipelined);
criterion_main!(benches);
