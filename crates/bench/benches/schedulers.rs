//! Scheduler cost: one matching computation per slot is the hardware
//! complexity §2.1 warns about ("a more complicated scheduler is
//! needed"); here it is software cost across sizes.

use baselines::sched::{IslipScheduler, PimScheduler, Rr2dScheduler, Scheduler};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simkernel::SplitMix64;

fn bench_schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler_matching");
    for &n in &[8usize, 16, 32] {
        let mut rng = SplitMix64::new(7);
        let requests: Vec<bool> = (0..n * n).map(|_| rng.chance(0.6)).collect();
        g.bench_with_input(BenchmarkId::new("pim4", n), &n, |b, &n| {
            let mut s = PimScheduler::new(4, 1);
            let mut m = vec![None; n];
            b.iter(|| {
                s.schedule(n, &requests, &mut m);
                std::hint::black_box(m.iter().flatten().count())
            });
        });
        g.bench_with_input(BenchmarkId::new("islip4", n), &n, |b, &n| {
            let mut s = IslipScheduler::new(n, 4);
            let mut m = vec![None; n];
            b.iter(|| {
                s.schedule(n, &requests, &mut m);
                std::hint::black_box(m.iter().flatten().count())
            });
        });
        g.bench_with_input(BenchmarkId::new("rr2d", n), &n, |b, &n| {
            let mut s = Rr2dScheduler::new();
            let mut m = vec![None; n];
            b.iter(|| {
                s.schedule(n, &requests, &mut m);
                std::hint::black_box(m.iter().flatten().count())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
