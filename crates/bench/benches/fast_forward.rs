//! Fast-forward vs dense stepping — the event-horizon kernel's payoff
//! curve. Each group replays the same precomputed arrival schedule
//! (bit-identical departures by the `simkernel::Horizon` contract) once
//! by ticking every cycle and once through the kernel, at 10 % / 50 % /
//! 95 % offered load. The speedup collapses toward 1× as load rises and
//! idle spans vanish; the low-load point is where statistical sweeps
//! like E6 live.

use bench_harness::perf::{behavioral_dense, behavioral_ff};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simkernel::SplitMix64;
use switch_core::config::SwitchConfig;

/// The e06-style schedule at load `p` (same busy-counter replication of
/// the dense loop's RNG draw order as `bench_harness::perf`).
fn schedule(n: usize, p: f64, total: u64, seed: u64) -> Vec<(u64, usize, usize)> {
    let s = SwitchConfig::symmetric(n, 4 * n.max(8)).stages();
    let q = p / (p + s as f64 * (1.0 - p));
    let mut rng = SplitMix64::new(seed);
    let mut busy = vec![0usize; n];
    let mut sched = Vec::new();
    for t in 0..total {
        for (i, b) in busy.iter_mut().enumerate() {
            if *b == 0 {
                if rng.chance(q) {
                    sched.push((t, i, rng.below_usize(n)));
                    *b = s - 1;
                }
            } else {
                *b -= 1;
            }
        }
    }
    sched
}

fn bench_fast_forward(c: &mut Criterion) {
    let n = 8;
    let total = 50_000u64;
    for &load in &[0.10, 0.50, 0.95] {
        let mut g = c.benchmark_group(format!("fast_forward_load_{:.0}pct", load * 100.0));
        g.throughput(Throughput::Elements(total));
        let sched = schedule(n, load, total, 0xFF + (load * 100.0) as u64);
        g.bench_with_input(BenchmarkId::new("dense", total), &sched, |b, sched| {
            b.iter(|| std::hint::black_box(behavioral_dense(n, sched, total)));
        });
        g.bench_with_input(
            BenchmarkId::new("fast_forward", total),
            &sched,
            |b, sched| {
                b.iter(|| std::hint::black_box(behavioral_ff(n, sched, total)));
            },
        );
        g.finish();
    }
}

criterion_group!(benches, bench_fast_forward);
criterion_main!(benches);
