//! Microbenchmarks of the cell-level behavioral switch — the model the
//! statistical experiments run on, so cycles/second here bounds every
//! E3/E6/E15-style study.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simkernel::SplitMix64;
use switch_core::behavioral::BehavioralSwitch;
use switch_core::config::SwitchConfig;

fn bench_behavioral(c: &mut Criterion) {
    let mut g = c.benchmark_group("behavioral_tick");
    for &n in &[4usize, 8, 16, 32] {
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("n", n), &n, |b, &n| {
            let mut sw = BehavioralSwitch::new(SwitchConfig::symmetric(n, 4 * n));
            let mut rng = SplitMix64::new(1);
            let mut arr = vec![None; n];
            b.iter(|| {
                for (i, a) in arr.iter_mut().enumerate() {
                    *a = (sw.input_free(i) && rng.chance(0.1)).then(|| rng.below_usize(n));
                }
                std::hint::black_box(sw.tick(&arr).len())
            });
        });
    }
    g.finish();
}

fn bench_rtl_vs_behavioral(c: &mut Criterion) {
    // The speed gap that justifies having two models at all.
    let mut g = c.benchmark_group("model_gap_n8");
    g.bench_function("behavioral", |b| {
        let n = 8;
        let mut sw = BehavioralSwitch::new(SwitchConfig::symmetric(n, 32));
        let mut rng = SplitMix64::new(1);
        let mut arr = vec![None; n];
        b.iter(|| {
            for (i, a) in arr.iter_mut().enumerate() {
                *a = (sw.input_free(i) && rng.chance(0.05)).then(|| rng.below_usize(n));
            }
            std::hint::black_box(sw.tick(&arr).len())
        });
    });
    g.bench_function("rtl", |b| {
        use switch_core::rtl::PipelinedSwitch;
        use traffic::{DestDist, PacketFeeder};
        let n = 8;
        let cfg = SwitchConfig::symmetric(n, 32);
        let s = cfg.stages();
        let mut sw = PipelinedSwitch::new(cfg);
        let mut feeders: Vec<PacketFeeder> = (0..n)
            .map(|i| PacketFeeder::random(i, s, 0.8, DestDist::uniform(n), 3, n as u64))
            .collect();
        let mut wire = vec![None; n];
        b.iter(|| {
            for (i, f) in feeders.iter_mut().enumerate() {
                wire[i] = f.tick(sw.now());
            }
            std::hint::black_box(sw.tick(&wire).len())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_behavioral, bench_rtl_vs_behavioral);
criterion_main!(benches);
