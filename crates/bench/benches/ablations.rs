//! Ablations of the paper's design choices (DESIGN.md §5), measured as
//! end-to-end simulated performance differences rather than wall-clock:
//! each bench runs a fixed simulation and reports its wall time, and the
//! simulated quality metric is printed once at setup so `cargo bench`
//! output shows both.

use criterion::{criterion_group, criterion_main, Criterion};
use simkernel::SplitMix64;
use switch_core::arbiter::ArbiterPolicy;
use switch_core::behavioral::BehavioralSwitch;
use switch_core::config::SwitchConfig;

/// Run the behavioral switch at moderate uniform load (0.4 — the §3.4
/// regime where policy differences are visible; at saturation every
/// policy queues identically) and return (utilization, mean head
/// latency).
fn quality(cfg: SwitchConfig, cycles: u64) -> (f64, f64) {
    let n = cfg.n_in;
    let s = cfg.stages() as f64;
    let mut sw = BehavioralSwitch::new(cfg);
    let mut rng = SplitMix64::new(11);
    let load = 0.4;
    let q = load / (load + s * (1.0 - load));
    let mut arr = vec![None; n];
    for _ in 0..cycles {
        for (i, a) in arr.iter_mut().enumerate() {
            *a = (sw.input_free(i) && rng.chance(q)).then(|| rng.below_usize(n));
        }
        sw.tick(&arr);
    }
    let departed = sw.departures().len() as f64;
    let util = departed * (2 * n) as f64 / (cycles as f64 * n as f64);
    let lat = sw
        .departures()
        .iter()
        .map(|d| d.head_latency() as f64)
        .sum::<f64>()
        / departed.max(1.0);
    (util, lat)
}

fn ablate_arbiter(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_arbiter");
    for (name, policy) in [
        ("read_priority_paper", ArbiterPolicy::ReadPriority),
        ("write_priority", ArbiterPolicy::WritePriority),
        ("alternate", ArbiterPolicy::Alternate),
    ] {
        let mut cfg = SwitchConfig::symmetric(8, 64);
        cfg.arbiter = policy;
        let (util, lat) = quality(cfg.clone(), 50_000);
        println!("[ablate_arbiter/{name}] utilization={util:.4} head_latency={lat:.2}");
        g.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(quality(cfg.clone(), 2_000)))
        });
    }
    g.finish();
}

fn ablate_cut_through(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_cut_through");
    for (name, ct, fused) in [
        ("fused_paper", true, true),
        ("unfused", true, false),
        ("store_and_forward", false, false),
    ] {
        let mut cfg = SwitchConfig::symmetric(8, 64);
        cfg.cut_through = ct;
        cfg.fused_cut_through = fused;
        let (util, lat) = quality(cfg.clone(), 50_000);
        println!("[ablate_cut_through/{name}] utilization={util:.4} head_latency={lat:.2}");
        g.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(quality(cfg.clone(), 2_000)))
        });
    }
    g.finish();
}

fn ablate_half_quantum(c: &mut Criterion) {
    use switch_core::halfq::HalfQuantumBuffer;
    let mut g = c.benchmark_group("ablate_half_quantum");
    g.bench_function("halfq_cycle", |b| {
        let n = 8;
        let mut buf = HalfQuantumBuffer::new(n, 64, 64);
        let mut stored = std::collections::VecDeque::new();
        let mut seed = 0u64;
        b.iter(|| {
            if let Some(&h) = stored.front() {
                if buf.fetch(h).is_ok() {
                    stored.pop_front();
                }
            }
            if let Ok(h) = buf.store((0..n as u64).map(|k| seed + k).collect()) {
                stored.push_back(h);
            }
            seed += 1;
            std::hint::black_box(buf.tick().len())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    ablate_arbiter,
    ablate_cut_through,
    ablate_half_quantum
);
criterion_main!(benches);
