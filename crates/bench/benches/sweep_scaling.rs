//! Scaling of the deterministic sweep engine: the same fixed grid of
//! independent simulation points executed with 1/2/4/8 workers. On a
//! multi-core host, points/second should scale close to linearly until
//! the core count is reached; on a single-core host the curve is flat —
//! the interesting check there is that the parallel paths add no
//! overhead beyond thread spawn.

use bench_harness::sweep;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simkernel::SplitMix64;

/// One grid point: a small self-contained RNG-driven workload, shaped
/// like the real experiments (own stream, hundreds of microseconds).
fn point_work(stream: u64) -> u64 {
    let mut g = SplitMix64::stream(0xBE7C, stream);
    let mut acc = 0u64;
    for _ in 0..200_000 {
        acc = acc.wrapping_add(g.next_u64() >> 32);
    }
    acc
}

fn bench_sweep_scaling(c: &mut Criterion) {
    let points: Vec<u64> = (0..16).collect();
    let mut g = c.benchmark_group("sweep_scaling");
    g.throughput(Throughput::Elements(points.len() as u64));
    for &workers in &[1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                sweep::set_jobs(workers);
                b.iter(|| {
                    let out = sweep::map(&points, |&p| point_work(p));
                    std::hint::black_box(out.len())
                });
                sweep::set_jobs(0);
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sweep_scaling);
criterion_main!(benches);
