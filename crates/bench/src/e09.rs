//! E9 — Telegraphos II floorplan accounting (§4.2, fig. 6).

use crate::table;
use vlsimodel::floorplan::telegraphos_ii_floorplan;

/// Render the report.
pub fn run(_quick: bool) -> String {
    let fp = telegraphos_ii_floorplan();
    let body = vec![
        vec![
            "8 SRAM megacells (256x16)".to_string(),
            format!("{:.1}", fp.sram_mm2),
            "11".to_string(),
        ],
        vec![
            "peripheral datapath".to_string(),
            format!("{:.1}", fp.peripheral_mm2),
            "15".to_string(),
        ],
        vec![
            "memory-bus routing".to_string(),
            format!("{:.1}", fp.routing_mm2),
            "5.5".to_string(),
        ],
        vec![
            "TOTAL shared buffer".to_string(),
            format!("{:.1}", fp.total_mm2()),
            "32".to_string(),
        ],
    ];
    let mut s = table::render(
        "E9: Telegraphos II shared-buffer floorplan, 0.7um std-cell (paper §4.2 fig 6; chip 8.5x8.5 mm2)",
        &["block", "model mm2", "paper mm2"],
        &body,
    );
    s.push_str("\nModel constants are calibrated to the compiled-SRAM macro (1.5x0.9 mm2)\nand the reported peripheral/routing areas; see vlsimodel::tech docs.\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper() {
        let fp = telegraphos_ii_floorplan();
        assert!((fp.total_mm2() - 32.0).abs() < 2.5);
    }
}
