//! E15 — the full architecture sweep (figs. 1–2, §2).
//!
//! Every buffering architecture the paper surveys, run under the same
//! uniform iid workload: measured saturation throughput plus latency and
//! loss at a common operating point. This is the quantitative backdrop
//! of the paper's §2 argument in one table.

use crate::{sweep, table};
use baselines::block_crosspoint::BlockCrosspointSwitch;
use baselines::crosspoint::CrosspointSwitch;
use baselines::harness::{carried_at_load, run as harness_run, RunStats};
use baselines::input_fifo::InputFifoSwitch;
use baselines::knockout::KnockoutSwitch;
use baselines::model::CellSwitch;
use baselines::output_queued::OutputQueuedSwitch;
use baselines::sched::{IslipScheduler, PimScheduler, Rr2dScheduler};
use baselines::shared::{PrizmaSwitch, SharedBufferSwitch, WideMemorySwitch};
use baselines::speedup::SpeedupSwitch;
use baselines::voq::VoqSwitch;
use stats::saturation_search;
use traffic::{Bernoulli, DestDist};

/// One architecture's measurements.
#[derive(Debug, Clone)]
pub struct E15Row {
    /// Architecture label.
    pub arch: String,
    /// Measured saturation throughput (unbounded buffers).
    pub saturation: f64,
    /// Mean latency at load 0.5 (slots).
    pub latency_half: f64,
    /// Loss at load 0.9 with ~4 cells/port of buffer.
    pub loss_tight: f64,
}

/// Factory closure for one architecture. `Send + Sync` so the zoo can be
/// measured in parallel, one sweep point per architecture.
type ModelFactory = Box<dyn Fn(Option<usize>) -> Box<dyn CellSwitch> + Send + Sync>;

/// The architecture zoo: name → factory(buffer-per-port-ish).
pub fn zoo(n: usize) -> Vec<(String, ModelFactory)> {
    let mk = |f: ModelFactory| f;
    vec![
        (
            "input FIFO [KaHM87]".into(),
            mk(Box::new(move |cap| {
                Box::new(InputFifoSwitch::new(n, cap, 1))
            })),
        ),
        (
            "VOQ + PIM [AOST93]".into(),
            mk(Box::new(move |cap| {
                Box::new(VoqSwitch::new(n, cap, PimScheduler::new(4, 2)))
            })),
        ),
        (
            "VOQ + iSLIP".into(),
            mk(Box::new(move |cap| {
                Box::new(VoqSwitch::new(n, cap, IslipScheduler::new(n, 4)))
            })),
        ),
        (
            "VOQ + 2DRR [LaSe95]".into(),
            mk(Box::new(move |cap| {
                Box::new(VoqSwitch::new(n, cap, Rr2dScheduler::new()))
            })),
        ),
        (
            "speedup-2 fabric [PaBr93]".into(),
            mk(Box::new(move |cap| {
                Box::new(SpeedupSwitch::new(n, 2, cap, cap, 3))
            })),
        ),
        (
            "crosspoint".into(),
            mk(Box::new(move |cap| Box::new(CrosspointSwitch::new(n, cap)))),
        ),
        (
            "output queueing".into(),
            mk(Box::new(move |cap| {
                Box::new(OutputQueuedSwitch::new(n, cap))
            })),
        ),
        (
            "SHARED buffering (paper)".into(),
            mk(Box::new(move |cap| {
                Box::new(SharedBufferSwitch::new(n, cap.map(|c| c * n)))
            })),
        ),
        (
            "block-crosspoint g=2".into(),
            mk(Box::new(move |cap| {
                Box::new(BlockCrosspointSwitch::new(n, 2, cap.map(|c| c * n / 4)))
            })),
        ),
        (
            "knockout L=8 [YeHA87]".into(),
            mk(Box::new(move |cap| {
                Box::new(KnockoutSwitch::new(n, 8, cap, 4))
            })),
        ),
        (
            "wide memory [KaSC91]".into(),
            mk(Box::new(move |cap| {
                Box::new(WideMemorySwitch::new(n, cap.map(|c| c * n), true))
            })),
        ),
        (
            "PRIZMA M=4n [DeEI95]".into(),
            mk(Box::new(move |_| Box::new(PrizmaSwitch::new(n, 4 * n)))),
        ),
    ]
}

/// Measure one architecture.
pub fn measure(name: &str, factory: &ModelFactory, n: usize, slots: u64) -> E15Row {
    // Work-conserving architectures carry everything up to load 1.0 —
    // there is no saturation point below it to bisect for.
    let hi = 0.995;
    let carried_hi = carried_at_load(|| factory(None), n, hi, slots, 0xE15);
    let saturation = if carried_hi >= hi - 0.02 {
        hi
    } else {
        saturation_search(0.30, hi, 0.02, 0.01, |load| {
            carried_at_load(|| factory(None), n, load, slots, 0xE15)
        })
        .estimate()
    };
    let latency_half = {
        let mut m = factory(None);
        let mut src = Bernoulli::new(n, 0.5, DestDist::uniform(n), 0xE15);
        harness_run(m.as_mut(), &mut src, slots, slots / 5).mean_latency
    };
    let loss_tight = {
        let mut m = factory(Some(4));
        let mut src = Bernoulli::new(n, 0.9, DestDist::uniform(n), 0xE15);
        let s: RunStats = harness_run(m.as_mut(), &mut src, slots, slots / 5);
        s.loss
    };
    E15Row {
        arch: name.to_string(),
        saturation,
        latency_half,
        loss_tight,
    }
}

/// All rows: one parallel sweep point per architecture.
pub fn rows(quick: bool) -> Vec<E15Row> {
    let n = if quick { 8 } else { 16 };
    let slots = if quick { 15_000 } else { 80_000 };
    sweep::map(&zoo(n), |(name, f)| measure(name, f, n, slots))
}

/// Render the report.
pub fn run(quick: bool) -> String {
    let n = if quick { 8 } else { 16 };
    let body: Vec<Vec<String>> = rows(quick)
        .iter()
        .map(|r| {
            vec![
                r.arch.clone(),
                table::f3(r.saturation),
                format!("{:.2}", r.latency_half),
                format!("{:.1e}", r.loss_tight),
            ]
        })
        .collect();
    let mut s = table::render(
        &format!(
            "E15: architecture sweep, {n}x{n}, uniform iid (figs 1-2) — saturation / latency@0.5 / loss@0.9 with ~4 cells/port"
        ),
        &["architecture", "saturation", "latency@0.5", "loss@0.9 tight"],
        &body,
    );
    s.push_str(
        "\nExpected shape (paper §2): input FIFO ~0.59-0.62; scheduled VOQ, speedup-2,\n\
         crosspoint, output and shared queueing ~1.0. NOTE: the loss column's budget\n\
         is per QUEUE, so total memory differs wildly across architectures (e.g.\n\
         crosspoint holds n^2 queues = 16x the shared pool's total here) — that is\n\
         itself the paper's §2.1 point about crosspoint memory cost. E3 is the\n\
         equal-total comparison, where shared buffering dominates.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name_frag: &str, rows: &[E15Row]) -> E15Row {
        rows.iter()
            .find(|r| r.arch.contains(name_frag))
            .unwrap_or_else(|| panic!("{name_frag} missing"))
            .clone()
    }

    #[test]
    fn headline_shape_holds() {
        let rows = rows(true);
        let fifo = row("input FIFO", &rows);
        let shared = row("SHARED", &rows);
        let oq = row("output queueing", &rows);
        assert!(
            fifo.saturation < 0.70,
            "input FIFO saturates low: {}",
            fifo.saturation
        );
        assert!(
            shared.saturation > 0.95,
            "shared saturates ~1: {}",
            shared.saturation
        );
        assert!(
            oq.saturation > 0.95,
            "output queueing saturates ~1: {}",
            oq.saturation
        );
        // Best memory utilization: shared loses less than output queueing
        // at the same per-port budget.
        assert!(
            shared.loss_tight <= oq.loss_tight,
            "shared loss {} vs OQ {}",
            shared.loss_tight,
            oq.loss_tight
        );
    }

    #[test]
    fn voq_schedulers_beat_fifo() {
        let rows = rows(true);
        let fifo = row("input FIFO", &rows);
        for sched in ["PIM", "iSLIP", "2DRR"] {
            let v = row(sched, &rows);
            assert!(
                v.saturation > fifo.saturation + 0.1,
                "{sched} ({}) must clearly beat FIFO ({})",
                v.saturation,
                fifo.saturation
            );
        }
    }
}
