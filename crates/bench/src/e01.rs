//! E1 — input FIFO queueing saturation (§2.1, \[KaHM87\]).
//!
//! "A switch with equal input and output throughput, with fixed (small)
//! packet size, and with independent, randomly destined packet traffic,
//! saturates at about 60 % of the link capacity" — precisely `2 − √2 ≈
//! 0.586` as `n → ∞` \[KaHM87\]. The known finite-`n` values (Karol et
//! al., Table I) are: n=2: 0.7500, n=4: 0.6553, n=8: 0.6184, n=16:
//! 0.6013, n=32: 0.5930, n→∞: 0.5858.

use crate::{sweep, table};
use baselines::harness::carried_at_load;
use baselines::input_fifo::InputFifoSwitch;
use stats::saturation_search;

/// One row of the saturation table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E1Row {
    /// Switch size.
    pub n: usize,
    /// Measured saturation throughput (fraction of link capacity).
    pub measured: f64,
    /// \[KaHM87\] analytical value.
    pub theory: f64,
}

/// Known analytical saturation throughputs from \[KaHM87\].
pub fn karol_table(n: usize) -> f64 {
    match n {
        1 => 1.0,
        2 => 0.7500,
        3 => 0.6825,
        4 => 0.6553,
        5 => 0.6399,
        6 => 0.6302,
        7 => 0.6234,
        8 => 0.6184,
        16 => 0.6013,
        32 => 0.5930,
        _ => 2.0 - std::f64::consts::SQRT_2, // 0.5858 asymptote
    }
}

/// Measure the saturation load of an `n×n` input-FIFO switch.
pub fn measure(n: usize, slots: u64, seed: u64) -> f64 {
    saturation_search(0.30, 0.99, 0.02, 0.005, |load| {
        carried_at_load(
            || Box::new(InputFifoSwitch::new(n, None, seed)),
            n,
            load,
            slots,
            seed,
        )
    })
    .estimate()
}

/// Run the experiment. Each switch size is one sweep point (a whole
/// saturation bisection), executed through the parallel engine.
pub fn rows(quick: bool) -> Vec<E1Row> {
    let (sizes, slots): (&[usize], u64) = if quick {
        (&[4, 8], 15_000)
    } else {
        (&[2, 4, 8, 16, 32], 60_000)
    };
    sweep::map(sizes, |&n| E1Row {
        n,
        measured: measure(n, slots, 0xE1),
        theory: karol_table(n),
    })
}

/// Render the report.
pub fn run(quick: bool) -> String {
    let rows = rows(quick);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                table::f3(r.measured),
                table::f3(r.theory),
                format!("{:+.1}%", 100.0 * (r.measured - r.theory) / r.theory),
            ]
        })
        .collect();
    let mut s = table::render(
        "E1: input FIFO queueing saturation vs [KaHM87] (paper §2.1: \"saturates at about 60%\", asymptote 0.586)",
        &["n", "measured", "theory", "err"],
        &body,
    );
    s.push_str(
        "\nHOL blocking: the measured saturation must fall toward 2-sqrt(2)=0.586 as n grows.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_matches_karol_within_tolerance() {
        for r in rows(true) {
            let err = (r.measured - r.theory).abs() / r.theory;
            assert!(
                err < 0.05,
                "n={}: measured {} vs theory {}",
                r.n,
                r.measured,
                r.theory
            );
        }
    }

    #[test]
    fn karol_values_decrease_toward_asymptote() {
        let mut prev = karol_table(1);
        for n in [2, 4, 8, 16, 32, 1000] {
            let v = karol_table(n);
            assert!(v < prev);
            prev = v;
        }
        assert!((karol_table(usize::MAX) - 0.5858).abs() < 1e-3);
    }
}
