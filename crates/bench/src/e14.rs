//! E14 — pipelined vs PRIZMA interleaved shared buffer (§5.3).

use crate::table;
use vlsimodel::compare::{prizma_crossbar_ratio, shift_register_vs_dram3t_bit};

/// Render the report.
pub fn run(_quick: bool) -> String {
    let mut body = Vec::new();
    for (n, m) in [(8usize, 256usize), (8, 64), (8, 16), (16, 256)] {
        body.push(vec![
            format!("{n}x{n}"),
            m.to_string(),
            format!("{}", 2 * n),
            format!("{:.1}x", prizma_crossbar_ratio(n, m)),
        ]);
    }
    let mut s = table::render(
        "E14: PRIZMA router/selector crossbar cost (∝ n·M) vs pipelined datapath (∝ n·2n) — paper §5.3",
        &["switch", "M banks", "2n", "PRIZMA/pipelined"],
        &body,
    );
    s.push_str(&format!(
        "\nTelegraphos III geometry (2n=16, M=256): {}x — the paper's '16 times more'.\n\
         Shift-register banks would not help: one dynamic shift-register bit is {}x\n\
         a 3-transistor dynamic RAM bit, and shift registers preclude cut-through\n\
         (demonstrated executably by membank::shiftreg).\n",
        prizma_crossbar_ratio(8, 256),
        shift_register_vs_dram3t_bit()
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_x_at_paper_geometry() {
        assert_eq!(prizma_crossbar_ratio(8, 256), 16.0);
    }
}
