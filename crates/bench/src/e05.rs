//! E5 — the fig. 5 control-signal wave table (§3.2–3.3).
//!
//! Drives the 2×2 RTL switch of figure 4 with directed packets and prints
//! the literal cycle-by-cycle table of figure 5: what every memory stage
//! (M0..M3) is doing, what is on every link wire, and where the waves
//! are. The printed trace *is* the reproduction of the figure; the tests
//! pin the timing facts the paper derives from it (write wave chases the
//! arrival wave, cut-through is automatic, staggered initiation).

use simkernel::cell::Packet;
use switch_core::config::SwitchConfig;
use switch_core::rtl::{OutputCollector, PipelinedSwitch, StageCtrl};
use telemetry::{SharedRecorder, TelemetryConfig};

/// One rendered cycle of the scenario.
#[derive(Debug, Clone)]
pub struct E5Cycle {
    /// Cycle number.
    pub cycle: u64,
    /// Word on each input wire.
    pub wires_in: Vec<Option<u64>>,
    /// Control at each stage (from [`PipelinedSwitch::stage_controls`]).
    pub controls: Vec<String>,
    /// Word on each output wire.
    pub wires_out: Vec<Option<u64>>,
}

/// The directed scenario: packet A (input 0 → output 1) headers at cycle
/// 0; packet B (input 1 → output 1, colliding) headers at cycle 0 too;
/// packet C (input 0 → output 0) headers at cycle 4.
pub fn scenario() -> (
    Vec<E5Cycle>,
    PipelinedSwitch,
    Vec<switch_core::rtl::DeliveredPacket>,
    SharedRecorder,
) {
    let cfg = SwitchConfig::symmetric(2, 8);
    let s = cfg.stages();
    let (mut sw, rec) = PipelinedSwitch::with_telemetry(cfg, &TelemetryConfig::unbounded());
    let rec = rec.expect("unbounded() always enables a recorder");
    let a = Packet::synth(0xA, 0, 1, s, 0);
    let b = Packet::synth(0xB, 1, 1, s, 0);
    let c_pkt = Packet::synth(0xC, 0, 0, s, 4);
    let mut col = OutputCollector::new(2, s);
    let mut cycles = Vec::new();
    for t in 0..24u64 {
        let w0 = if t < 4 {
            Some(a.words[t as usize])
        } else if t < 8 {
            Some(c_pkt.words[(t - 4) as usize])
        } else {
            None
        };
        let w1 = (t < 4).then(|| b.words[t as usize]);
        let wires_in = vec![w0, w1];
        let now = sw.now();
        let out = sw.tick(&wires_in).to_vec();
        col.observe(now, &out);
        cycles.push(E5Cycle {
            cycle: now,
            wires_in,
            controls: sw
                .stage_controls()
                .iter()
                .map(|c| match c {
                    StageCtrl::Nop => "-".to_string(),
                    StageCtrl::Write { addr, link } => format!("W{} i{}", addr.index(), link),
                    StageCtrl::Read { addr, link } => format!("R{} o{}", addr.index(), link),
                    StageCtrl::Fused {
                        addr,
                        input,
                        output,
                    } => format!("W{}+R i{} o{}", addr.index(), input, output),
                })
                .collect(),
            wires_out: out.to_vec(),
        });
    }
    let delivered = col.take();
    (cycles, sw, delivered, rec)
}

/// Render the report.
pub fn run(_quick: bool) -> String {
    let (cycles, _sw, delivered, rec) = scenario();
    let mut s = String::from(
        "E5: fig. 5 control-signal table — 2x2 switch, 4-word packets.\n\
         A: in0->out1 @0;  B: in1->out1 @0 (collides with A);  C: in0->out0 @4.\n\n",
    );
    s.push_str("cyc |   in0    in1 |        M0        M1        M2        M3 |  out0   out1\n");
    s.push_str(&"-".repeat(86));
    s.push('\n');
    let fmt_w = |w: &Option<u64>| match w {
        Some(v) => format!("{:>6}", format!("{:04x}", v & 0xFFFF)),
        None => "     .".to_string(),
    };
    for c in &cycles {
        s.push_str(&format!(
            "{:>3} | {} {} | {} | {} {}\n",
            c.cycle,
            fmt_w(&c.wires_in[0]),
            fmt_w(&c.wires_in[1]),
            c.controls
                .iter()
                .map(|x| format!("{x:>9}"))
                .collect::<Vec<_>>()
                .join(" "),
            fmt_w(&c.wires_out[0]),
            fmt_w(&c.wires_out[1]),
        ));
    }
    s.push_str("\nEvent trace (probe stream):\n");
    s.push_str(&rec.render());
    s.push_str(&format!(
        "\nDelivered: {} packets, all payloads intact: {}.\n\
         Paper claims checked: write wave starts 1 cycle after the header and chases\n\
         the arrival wave (no double buffering); the first packet's read is FUSED with\n\
         its write wave (automatic cut-through, first word out at a+2); the collided\n\
         packet B queues and departs back-to-back after A.\n",
        delivered.len(),
        delivered.iter().all(|d| d.verify_payload()),
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::ProbeEvent;

    #[test]
    fn control_signals_are_delayed_copies() {
        // The defining fig. 5 property: stage k's control at cycle t+k
        // equals stage 0's at cycle t.
        let (cycles, _, _, _) = scenario();
        for t in 0..cycles.len() {
            let m0 = &cycles[t].controls[0];
            for k in 1..4 {
                if t + k < cycles.len() {
                    assert_eq!(
                        &cycles[t + k].controls[k],
                        m0,
                        "stage {k} at cycle {} must repeat M0 of cycle {t}",
                        t + k
                    );
                }
            }
        }
    }

    #[test]
    fn cut_through_fused_and_collision_staggered() {
        let (_, sw, delivered, _) = scenario();
        let ctr = sw.counters();
        assert_eq!(ctr.arrived, 3);
        assert_eq!(ctr.departed, 3);
        assert_eq!(ctr.latch_overruns, 0);
        assert!(ctr.fused_reads >= 2, "A and C cut through fused");
        // A's first word leaves at cycle 2 (a=0, fused at 1, out at 2).
        let a = delivered.iter().find(|d| d.id == 0xA).expect("A delivered");
        assert_eq!(a.first_cycle, 2);
        // B queues behind A on output 1 and follows back-to-back.
        let b = delivered.iter().find(|d| d.id == 0xB).expect("B delivered");
        assert_eq!(b.first_cycle, a.last_cycle + 1);
        // All payloads intact.
        assert!(delivered.iter().all(|d| d.verify_payload()));
    }

    #[test]
    fn tail_transmission_never_precedes_arrival() {
        // §3.3: "transmission of the packet's tail will only be attempted
        // after that tail has arrived into the switch".
        let (_, _sw, delivered, rec) = scenario();
        let entries = rec.entries();
        for d in &delivered {
            // Arrival of word k of packet X with header at cycle h is
            // h + k; tail arrives h + 3.
            let birth = entries
                .iter()
                .find_map(|e| match &e.event {
                    ProbeEvent::HeaderArrived { id, .. } if *id == d.id => Some(e.cycle),
                    _ => None,
                })
                .expect("header event");
            assert!(
                d.last_cycle > birth + 3,
                "packet {:x}: tail sent at {} but arrived at {}",
                d.id,
                d.last_cycle,
                birth + 3
            );
        }
    }
}
