//! X1 (extension) — hotspot traffic across architectures.
//!
//! The paper's §2 comparisons assume uniform destinations. Hotspot
//! traffic (a fraction of all cells converge on one output) is the
//! classic stressor of buffer *sharing*: a shared pool donates everyone's
//! idle memory to the hot output, while partitioned organizations
//! overflow their hot partition early. This experiment quantifies that
//! advantage — the same §2.2 argument, under less friendly traffic.

use crate::{sweep, table};
use baselines::crosspoint::CrosspointSwitch;
use baselines::harness::run as harness_run;
use baselines::model::CellSwitch;
use baselines::output_queued::OutputQueuedSwitch;
use baselines::shared::SharedBufferSwitch;
use traffic::{Bernoulli, DestDist};

/// One (architecture, hotspot fraction) measurement.
#[derive(Debug, Clone)]
pub struct X1Row {
    /// Architecture.
    pub arch: &'static str,
    /// Fraction of traffic concentrated on output 0.
    pub hot_frac: f64,
    /// Loss with the common total budget.
    pub loss: f64,
    /// Mean latency.
    pub latency: f64,
}

/// Measure one point: total buffer budget fixed at `total` cells.
fn measure(
    arch: &'static str,
    mut model: Box<dyn CellSwitch>,
    n: usize,
    load: f64,
    hot_frac: f64,
    slots: u64,
) -> X1Row {
    let mut src = Bernoulli::new(n, load, DestDist::hotspot(n, 0, hot_frac), 0x11);
    let s = harness_run(model.as_mut(), &mut src, slots, slots / 5);
    X1Row {
        arch,
        hot_frac,
        loss: s.loss,
        latency: s.mean_latency,
    }
}

/// All rows: shared (plain and thresholded) vs output-queued vs
/// crosspoint at the same total memory (64 cells for a 16×16 switch).
///
/// Hotspot fractions are chosen around the hot output's stability point
/// (at load 0.6, n=16 the hot output saturates near hf ≈ 0.04): below it
/// sharing wins outright; above it the *unfenced* pool exhibits buffer
/// hogging — the hot queue swallows the whole pool and everyone drops —
/// which the per-output threshold repairs.
pub fn rows(quick: bool) -> Vec<X1Row> {
    let n = 16;
    let total = 64usize;
    let load = 0.6;
    let slots = if quick { 40_000 } else { 200_000 };
    // The grid is (hotspot fraction × architecture); the model is built
    // *inside* the worker so every point is a self-contained simulation.
    const ARCHS: [&str; 4] = [
        "shared, unfenced",
        "shared + threshold",
        "output-queued",
        "crosspoint",
    ];
    let mut points = Vec::new();
    for &hf in &[0.0, 0.03, 0.2] {
        for arch in ARCHS {
            points.push((arch, hf));
        }
    }
    sweep::map(&points, |&(arch, hf)| {
        let model: Box<dyn CellSwitch> = match arch {
            "shared, unfenced" => Box::new(SharedBufferSwitch::new(n, Some(total))),
            "shared + threshold" => {
                Box::new(SharedBufferSwitch::new(n, Some(total)).with_threshold(total / 4))
            }
            "output-queued" => Box::new(OutputQueuedSwitch::new(n, Some(total / n))),
            _ => Box::new(CrosspointSwitch::new(n, Some(total / (n * n) + 1))),
        };
        measure(arch, model, n, load, hf, slots)
    })
}

/// Render the report.
pub fn run(quick: bool) -> String {
    let body: Vec<Vec<String>> = rows(quick)
        .iter()
        .map(|r| {
            vec![
                r.arch.to_string(),
                format!("{:.2}", r.hot_frac),
                format!("{:.2e}", r.loss),
                format!("{:.2}", r.latency),
            ]
        })
        .collect();
    let mut s = table::render(
        "X1 (extension): hotspot traffic, 16x16 @ 0.6 load, equal TOTAL memory (64 cells)",
        &["architecture", "hot frac", "loss", "latency"],
        &body,
    );
    s.push_str(
        "\nBelow the hot output's saturation, sharing wins: the pool donates idle\n\
         outputs' memory to the hot one. Once the hot output is OVERSUBSCRIBED\n\
         (hf = 0.2 here), the unfenced pool exhibits buffer hogging — the hot queue\n\
         swallows all 64 cells and cold traffic drops too — while per-output\n\
         thresholds (total/4 here) restore isolation at shared-memory cost. The\n\
         Telegraphos answer is different but equivalent in effect: per-link credits\n\
         bound each source's pool usage (tests/credit_flow.rs).\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(rows: &[X1Row], arch: &str, hf: f64) -> X1Row {
        rows.iter()
            .find(|r| r.arch.starts_with(arch) && (r.hot_frac - hf).abs() < 1e-9)
            .unwrap()
            .clone()
    }

    #[test]
    fn sharing_wins_below_hot_saturation() {
        let rows = rows(true);
        let sh = at(&rows, "shared, unfenced", 0.03);
        let oq = at(&rows, "output", 0.03);
        assert!(
            sh.loss <= oq.loss,
            "stable hotspot: shared ({:.2e}) must lose no more than \
             output-queued ({:.2e})",
            sh.loss,
            oq.loss
        );
    }

    #[test]
    fn hogging_appears_when_oversubscribed_and_threshold_fixes_it() {
        let rows = rows(true);
        let unfenced = at(&rows, "shared, unfenced", 0.2);
        let fenced = at(&rows, "shared + threshold", 0.2);
        let oq = at(&rows, "output", 0.2);
        assert!(
            unfenced.loss > oq.loss,
            "unfenced sharing must exhibit hogging under oversubscription"
        );
        assert!(
            fenced.loss <= oq.loss * 1.1,
            "thresholded sharing ({:.2e}) must match or beat output \
             queueing ({:.2e})",
            fenced.loss,
            oq.loss
        );
    }
}
