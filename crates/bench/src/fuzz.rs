//! Differential conformance fuzz campaign (`expt fuzz`).
//!
//! Fans [`conformance::run_seed`] out over the deterministic sweep
//! engine: scenario `k` is a pure function of `(base, k)`, workers
//! collect `(index, verdict)` pairs, and the merged report is
//! byte-identical for every `--jobs` value — the property CI checks by
//! diffing a `--jobs 1` run against a `--jobs 8` run.
//!
//! The campaign fails (non-zero exit) if any scenario diverges, if the
//! §3.2/§3.3 corner-case coverage counters stayed at zero, if the
//! aggregate §3.4 latency drifted outside the formula envelope, or if
//! the end-to-end shrinker self-test — a seeded bank-upset fault that
//! must be detected and minimized — does not produce a small reproducer.

use conformance::{run_seed, Coverage, Scenario, SeedOutcome};
use simkernel::split_seed;
use std::fmt::Write as _;

use crate::sweep;

/// Default campaign width when `--seeds` is not given.
pub const DEFAULT_SEEDS: u64 = 256;

/// Default base seed (`--base` overrides; the whole campaign is a pure
/// function of it).
pub const DEFAULT_BASE: u64 = conformance::engine::CAMPAIGN_BASE_SEED;

/// Seed-stream offset for the shrinker self-test so its fault scenarios
/// never collide with campaign indices.
const SELF_TEST_STREAM: u64 = 1 << 32;

/// Largest reproducer the shrinker self-test accepts.
pub const SELF_TEST_MAX_OFFERS: usize = 4;

/// Find a deterministic fault overlay that the oracle detects: scan
/// fault seeds derived from `base` until a seeded bank-upset campaign
/// over a generated scenario diverges. Returns the failing scenario.
pub fn detected_fault_scenario(base: u64) -> Option<Scenario> {
    (0..64u64).find_map(|k| {
        // Base corpus: fault overlays never combine with the policy
        // dimension (recovery shedding and policy admission would mask
        // each other), so the self-test stays on pre-policy scenarios.
        let sc = Scenario::generate_base(split_seed(base, SELF_TEST_STREAM + k)).with_fault(0.3, k);
        conformance::check_scenario(&sc).err().map(|_| sc)
    })
}

/// Run the campaign; returns `(report, all_gates_passed)`.
pub fn campaign(seeds: u64, base: u64) -> (String, bool) {
    let indices: Vec<u64> = (0..seeds).collect();
    let reports = sweep::map(&indices, |&k| run_seed(base, k));
    let mut cov = Coverage::default();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Differential conformance fuzz: {seeds} seeds, base {base:#018x}\n"
    );
    let _ = writeln!(
        out,
        "Four organizations per scenario (pipelined RTL, behavioral, wide\n\
         memory, interleaved banks), one shared oracle; scenario k is\n\
         generated from split_seed(base, k).\n"
    );
    for r in &reports {
        cov.absorb(r);
        if let SeedOutcome::Fail(f) = &r.outcome {
            let _ = writeln!(
                out,
                "--- seed index {} (scenario seed {:#018x}) ---\n{f}\n",
                r.index, r.scenario_seed
            );
        }
    }
    let _ = writeln!(out, "{}", cov.summary());

    // End-to-end shrinker self-test: prove the detect-and-minimize path
    // works by injecting a fault the campaign's clean seeds never see.
    let mut shrinker_ok = false;
    match detected_fault_scenario(base) {
        Some(sc) => {
            let (shrunk, err) = conformance::shrink(&sc);
            shrinker_ok = shrunk.offers.len() <= SELF_TEST_MAX_OFFERS;
            let _ = writeln!(
                out,
                "\nshrinker self-test: seeded bank-upset on scenario seed {:#018x}\n\
                   detected as: {err}\n\
                   reproducer:  {} of {} offers survive shrinking (gate: <= {})",
                sc.seed,
                shrunk.offers.len(),
                sc.offers.len(),
                SELF_TEST_MAX_OFFERS,
            );
        }
        None => {
            let _ = writeln!(
                out,
                "\nshrinker self-test: NO detectable fault overlay found in 64 tries"
            );
        }
    }

    let gates = [
        ("zero divergences", cov.failures == 0),
        ("corner-case coverage", cov.corner_cases_reached()),
        ("sec3.4 latency envelope", cov.latency_within_formula()),
        ("shrinker self-test", shrinker_ok),
    ];
    let _ = writeln!(out);
    let mut ok = true;
    for (name, passed) in gates {
        ok &= passed;
        let _ = writeln!(
            out,
            "gate {:<26} {}",
            name,
            if passed { "PASS" } else { "FAIL" }
        );
    }
    (out, ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_passes_and_is_reproducible() {
        let (a, ok) = campaign(8, DEFAULT_BASE);
        assert!(ok, "8-seed campaign failed its gates:\n{a}");
        let (b, _) = campaign(8, DEFAULT_BASE);
        assert_eq!(a, b, "report must be byte-identical across runs");
    }

    #[test]
    fn self_test_scenario_is_found_and_detected() {
        let sc = detected_fault_scenario(DEFAULT_BASE).expect("no detectable fault in 64 tries");
        assert!(conformance::check_scenario(&sc).is_err());
    }
}
