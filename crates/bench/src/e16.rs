//! E16 — deterministic fault-injection campaign (extension; not in the
//! paper).
//!
//! The paper's argument for the pipelined memory is an argument about
//! silicon; real switch silicon must also *survive* faults: SRAM
//! single-event upsets, bit errors and dropped words on the links, lost
//! credit returns, stuck control signals. This campaign injects each of
//! those fault classes at scheduled rates into the word-level RTL model —
//! hardened with a checksum scrub at read initiation, an egress payload
//! check (the modeled link CRC) and tolerant framing — and measures
//! *detection coverage*: the fraction of effective faults that end in a
//! typed outcome (detected-and-dropped, flagged-at-egress, or
//! credit-resync) rather than silent corruption.
//!
//! Every campaign point is bit-reproducible: traffic draws from
//! `SplitMix64::stream(seed, TRAFFIC_STREAM)`, the fault schedule from
//! `stream(seed, FAULT_STREAM)` ([`switch_core::faultsim`]), and the grid
//! runs through [`sweep::map`] — identical output for any `--jobs`.

use crate::{sweep, table};
use simkernel::cell::Packet;
use simkernel::rng::split_seed;
use simkernel::SplitMix64;
use std::collections::{HashMap, HashSet};
use switch_core::config::SwitchConfig;
use switch_core::credit::CreditedInput;
use switch_core::faultsim::{FaultAction, FaultKind, FaultPlan, WireFaults, TRAFFIC_STREAM};
use switch_core::rtl::{OutputCollector, PipelinedSwitch};

/// One campaign point: a fault class at a per-cycle rate (`kind = None`
/// is the fault-free baseline every row is judged against).
#[derive(Debug, Clone, Copy)]
pub struct CampaignSpec {
    /// Fault class, `None` for the baseline.
    pub kind: Option<FaultKind>,
    /// Per-cycle injection probability.
    pub rate: f64,
    /// Active traffic cycles (drain is on top, under the watchdog).
    pub cycles: u64,
    /// Point RNG seed (split into traffic and fault streams).
    pub seed: u64,
}

/// Measured outcome of one campaign point.
#[derive(Debug, Clone)]
pub struct CampaignRow {
    /// Fault-class label ("fault-free" for the baseline).
    pub kind: String,
    /// Per-cycle injection probability.
    pub rate: f64,
    /// Packets launched into the switch (after wire-level whole drops).
    pub sent: u64,
    /// Delivered on the addressed output with a bit-exact payload.
    pub delivered_ok: u64,
    /// Delivered on the wrong output (header flipped to another valid
    /// destination — detectable only by a link CRC covering the header,
    /// which the ledger stands in for).
    pub misrouted: u64,
    /// Delivered under an id the ledger never launched.
    pub spurious: u64,
    /// Never emerged (eaten on the wire, or detected and dropped).
    pub lost: u64,
    /// Effective faults (kind-specific; see module docs / footnote).
    pub effective: u64,
    /// Faults that ended in a typed detection.
    pub detected: u64,
    /// `detected / effective` (1.0 when nothing effective struck).
    pub coverage: f64,
    /// Packets condemned and dropped pre-transmission.
    pub corrupt_drops: u64,
    /// Deliveries flagged by the egress check.
    pub corrupt_delivered: u64,
    /// Bank writes suppressed by stuck control.
    pub writes_suppressed: u64,
    /// Credit returns lost / recovered by audit-resync (credit rows).
    pub credits_lost: u64,
    /// Credits restored by [`CreditedInput::resync`].
    pub credits_recovered: u64,
    /// Credit-audit invariant violations caught.
    pub leaks_detected: u64,
    /// The post-traffic drain reached quiescence under the watchdog.
    pub drained: bool,
}

/// Campaign geometry: 4×4 (8 stages), 16 slots (small enough that a
/// random upset has a fair chance of striking live data), store-and-
/// forward, full integrity machinery. Store-and-forward because only a
/// fully written slot can be scrubbed — the cut-through trade-off the
/// report footnote spells out.
fn campaign_config() -> SwitchConfig {
    let mut cfg = SwitchConfig::symmetric(4, 16);
    cfg.cut_through = false;
    cfg.fused_cut_through = false;
    cfg.integrity.checksum = true;
    cfg.integrity.payload_check = true;
    cfg.integrity.harden = true;
    cfg
}

/// Run one campaign point.
pub fn run_point(spec: &CampaignSpec) -> CampaignRow {
    let cfg = campaign_config();
    let n = cfg.n_in;
    let s = cfg.stages();
    let credited = spec.kind == Some(FaultKind::CreditLoss);
    let mut plan = match spec.kind {
        Some(kind) => FaultPlan::generate(kind, spec.rate, spec.cycles, &cfg, spec.seed),
        None => FaultPlan::default(),
    };
    let mut sw = PipelinedSwitch::new(cfg.clone());
    let mut wf = WireFaults::new(n, s);
    let mut col = OutputCollector::new(n, s);

    let mut trng = SplitMix64::stream(spec.seed, TRAFFIC_STREAM);
    let mut rngs: Vec<SplitMix64> = (0..n).map(|_| trng.fork()).collect();
    // Credit allotment: an equal share of the shared buffer per link, so
    // fault-free credited flow never sees a buffer-full drop.
    let mut senders: Vec<CreditedInput<Packet>> = (0..n)
        .map(|_| CreditedInput::new((cfg.slots / n) as u32, 2))
        .collect();
    let mut armed_credit_loss = vec![0u64; n];
    let mut streams: Vec<Option<(Packet, usize)>> = vec![None; n];
    let mut ledger: HashMap<u64, (usize, usize)> = HashMap::new(); // id -> (src, dst)
    let mut launched = vec![0u64; n];
    let mut delivered_from = vec![0u64; n];
    let mut next_id = 1u64;
    let start_p = 0.12; // idle→new-packet probability ≈ 0.5 offered load

    let mut sent = 0u64;
    let mut delivered_ok = 0u64;
    let mut misrouted = 0u64;
    let mut spurious = 0u64;
    let mut bad_delivered = 0u64;
    let mut upset_hits: HashSet<u64> = HashSet::new();
    let mut credits_lost = 0u64;
    let mut credits_recovered = 0u64;
    let mut leaks_detected = 0u64;
    const AUDIT_PERIOD: u64 = 200;

    let mut wire = vec![None; n];
    let mut due_faults: Vec<switch_core::faultsim::Fault> = Vec::new();
    let mut step = |sw: &mut PipelinedSwitch,
                    streams: &mut [Option<(Packet, usize)>],
                    rngs: &mut [SplitMix64],
                    senders: &mut [CreditedInput<Packet>],
                    plan: &mut FaultPlan,
                    generate: bool| {
        let now = sw.now();
        // 1. Injection: storage/control faults to the switch hooks, wire
        //    faults to the mangler, credit losses to the armed counters.
        plan.take_due_into(now, &mut due_faults);
        for f in due_faults.drain(..) {
            match f.action {
                FaultAction::BankUpset { stage, slot, mask } => {
                    if let Some(id) = sw.inject_bank_fault(stage, slot, mask) {
                        upset_hits.insert(id);
                    }
                }
                FaultAction::StuckWrite { stage, duration } => {
                    sw.force_stuck_write(stage, now + duration);
                }
                FaultAction::CreditLoss { input } => {
                    armed_credit_loss[input] += 1;
                }
                wire_fault => wf.schedule(wire_fault),
            }
        }
        // 2. Traffic: start or continue one packet per input.
        for i in 0..n {
            if streams[i].is_none() {
                if credited {
                    if generate && rngs[i].chance(start_p) {
                        let dst = rngs[i].below_usize(n);
                        let p = Packet::synth(next_id, i, dst, s, now);
                        ledger.insert(next_id, (i, dst));
                        next_id += 1;
                        senders[i].offer(p);
                    }
                    if let Some(p) = senders[i].poll(now) {
                        launched[i] += 1;
                        sent += 1;
                        streams[i] = Some((p, 0));
                    }
                } else if generate && rngs[i].chance(start_p) {
                    let dst = rngs[i].below_usize(n);
                    let p = Packet::synth(next_id, i, dst, s, now);
                    ledger.insert(next_id, (i, dst));
                    next_id += 1;
                    sent += 1;
                    streams[i] = Some((p, 0));
                }
            }
            let mut word = None;
            let mut tail = false;
            if let Some((p, k)) = streams[i].as_mut() {
                word = Some(p.words[*k]);
                *k += 1;
                tail = *k == s;
            }
            if tail {
                streams[i] = None;
            }
            wire[i] = word;
        }
        // 3. Wire faults strike between generator and input pins.
        wf.apply(&mut wire);
        let out = sw.tick(&wire);
        col.observe(now, out);
        // 4. End-to-end ledger accounting + credit returns.
        for d in col.take() {
            match ledger.get(&d.id) {
                None => spurious += 1,
                Some(&(src, dst)) => {
                    if d.output.index() != dst {
                        misrouted += 1;
                    } else if d.verify_payload() {
                        delivered_ok += 1;
                    } else {
                        bad_delivered += 1;
                    }
                    delivered_from[src] += 1;
                    if credited {
                        if armed_credit_loss[src] > 0 {
                            armed_credit_loss[src] -= 1;
                            credits_lost += 1;
                        } else {
                            senders[src].return_credit(now);
                        }
                    }
                }
            }
        }
        // 5. Periodic credit audit against ground truth; resync on leak
        //    (the recovery a real credit protocol gets from an absolute
        //    count message).
        if credited && now % AUDIT_PERIOD == AUDIT_PERIOD - 1 {
            for i in 0..n {
                let actual = (launched[i] - delivered_from[i]) as u32;
                if senders[i].audit(actual, "campaign link").is_err() {
                    leaks_detected += 1;
                    credits_recovered += u64::from(senders[i].resync(actual));
                }
            }
        }
    };

    for _ in 0..spec.cycles {
        step(
            &mut sw,
            &mut streams,
            &mut rngs,
            &mut senders,
            &mut plan,
            true,
        );
    }
    // Drain under the structured watchdog: no new traffic, faults done;
    // in-flight packets finish, credited backlogs flush (audits keep
    // running, so lost credits cannot wedge the drain). The CLI
    // `--watchdog` flag overrides the default budget.
    let drain_budget = simkernel::watchdog::limit_or(40_000);
    let drained = simkernel::run_until_quiescent(drain_budget, "campaign drain", |_| {
        let backlog: usize = senders.iter().map(|c| c.backlog()).sum();
        if sw.is_quiescent() && streams.iter().all(Option::is_none) && backlog == 0 {
            return true;
        }
        step(
            &mut sw,
            &mut streams,
            &mut rngs,
            &mut senders,
            &mut plan,
            false,
        );
        false
    })
    .is_ok();
    if !drained {
        // Surface the hang in the process-wide ledger so the CLI's
        // `--watchdog` reporting can fail the run gracefully.
        simkernel::watchdog::note_expiry();
    }

    let ctr = sw.counters();
    // Effective faults and typed detections, per class (footnoted in the
    // report):
    //  bank-upset   eff = distinct live packets hit; det = scrub drops +
    //               egress flags (a hit after read initiation).
    //  wire-corrupt eff = packets corrupted on the wire; det = ingress/
    //               egress detections + ledger-visible misroutes.
    //  wire-drop    eff = packets eaten or truncated; det = hardened-
    //               framing drops + whole-packet erasures (sequence-
    //               visible: nothing of the packet ever arrives).
    //  credit-loss  eff = returns lost; det = credits recovered by
    //               audit-resync.
    //  stuck-write  eff = damaged packets observed end to end (detected
    //               + silently corrupted); det shows the scrub caught
    //               every stale word.
    let integrity = ctr.corrupt_drops + ctr.corrupt_delivered;
    let (effective, detected) = match spec.kind {
        None => (0, integrity),
        Some(FaultKind::BankUpset) => (upset_hits.len() as u64, integrity),
        Some(FaultKind::WireCorrupt) => (wf.corrupted_packets, integrity + misrouted),
        Some(FaultKind::WireDrop) => (
            wf.dropped_packets + wf.truncated_packets,
            ctr.corrupt_drops + wf.dropped_packets,
        ),
        Some(FaultKind::CreditLoss) => (credits_lost, credits_recovered),
        Some(FaultKind::StuckWrite) => (ctr.corrupt_drops + bad_delivered, integrity),
    };
    let coverage = if effective == 0 {
        1.0
    } else {
        detected as f64 / effective as f64
    };
    let accounted = delivered_ok + misrouted + bad_delivered;
    CampaignRow {
        kind: spec
            .kind
            .map(|k| k.label().to_string())
            .unwrap_or_else(|| "fault-free".to_string()),
        rate: spec.rate,
        sent,
        delivered_ok,
        misrouted,
        spurious,
        lost: sent.saturating_sub(accounted),
        effective,
        detected,
        coverage,
        corrupt_drops: ctr.corrupt_drops,
        corrupt_delivered: ctr.corrupt_delivered,
        writes_suppressed: ctr.writes_suppressed,
        credits_lost,
        credits_recovered,
        leaks_detected,
        drained,
    }
}

/// The campaign grid: a fault-free baseline plus every fault class at
/// each rate, seeds split per point.
pub fn specs(quick: bool) -> Vec<CampaignSpec> {
    let smoke = sweep::smoke();
    let cycles = if smoke {
        1_500
    } else if quick {
        4_000
    } else {
        30_000
    };
    let rates: &[f64] = if smoke { &[0.01] } else { &[0.002, 0.01] };
    let base_seed = 0xE16;
    let mut specs = vec![CampaignSpec {
        kind: None,
        rate: 0.0,
        cycles,
        seed: split_seed(base_seed, 0),
    }];
    for kind in FaultKind::ALL {
        for &rate in rates {
            let idx = specs.len() as u64;
            specs.push(CampaignSpec {
                kind: Some(kind),
                rate,
                cycles,
                seed: split_seed(base_seed, idx),
            });
        }
    }
    specs
}

/// Run the whole campaign through the deterministic sweep engine.
pub fn rows(quick: bool) -> Vec<CampaignRow> {
    let points = specs(quick);
    sweep::map(&points, run_point)
}

/// Render the report.
pub fn run(quick: bool) -> String {
    let rows = rows(quick);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kind.clone(),
                format!("{:.3}", r.rate),
                r.sent.to_string(),
                r.delivered_ok.to_string(),
                r.misrouted.to_string(),
                r.spurious.to_string(),
                r.lost.to_string(),
                r.effective.to_string(),
                r.detected.to_string(),
                format!("{:.3}", r.coverage),
                format!("{}/{}", r.credits_recovered, r.credits_lost),
                if r.drained { "ok" } else { "HANG" }.to_string(),
            ]
        })
        .collect();
    let mut s = table::render(
        "E16: fault-injection campaign (extension) — 4x4 store-and-forward, checksum scrub +\n\
         egress check + hardened framing + credit audit",
        &[
            "fault",
            "rate",
            "sent",
            "ok",
            "mis",
            "spur",
            "lost",
            "eff",
            "det",
            "cover",
            "cr rec/lost",
            "drain",
        ],
        &body,
    );
    s.push_str(
        "\nExtension beyond the paper: each row injects one fault class at the given per-cycle\n\
         rate from its own SplitMix64 stream (bit-reproducible at any --jobs). 'eff' counts\n\
         faults that could reach a reader; 'det' their typed detections — scrub drops at read\n\
         initiation, egress (link-CRC) flags, hardened-framing drops, credit audit resyncs.\n\
         Residue: a wire bit-flip that rewrites the header to another *valid* output misroutes\n\
         without tripping the payload machinery ('mis'); only a link CRC covering the header\n\
         (the ledger's stand-in here) catches it. Whole packets eaten at the header ('lost')\n\
         are erasures, visible to sequence/credit accounting, not to the datapath.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_properties() {
        let rows = rows(true);
        let base = &rows[0];
        assert_eq!(base.kind, "fault-free");
        assert_eq!(
            base.detected, 0,
            "zero false positives on the fault-free baseline"
        );
        assert_eq!(base.misrouted + base.spurious + base.lost, 0);
        assert_eq!(base.delivered_ok, base.sent);
        let live_upsets: u64 = rows
            .iter()
            .filter(|r| r.kind == "bank-upset")
            .map(|r| r.effective)
            .sum();
        assert!(live_upsets > 0, "campaign must land live upsets");
        for r in &rows {
            assert!(r.drained, "{} rate {}: drain hung", r.kind, r.rate);
            assert_eq!(r.spurious, 0, "{}: spurious delivery", r.kind);
            if r.kind == "bank-upset" {
                assert!(
                    r.coverage >= 0.99,
                    "bank-upset coverage {} < 0.99",
                    r.coverage
                );
            }
            if r.kind == "credit-loss" {
                assert_eq!(
                    r.credits_recovered, r.credits_lost,
                    "audit-resync must recover every lost credit"
                );
                assert_eq!(
                    r.delivered_ok, r.sent,
                    "throughput must recover after resync"
                );
                if r.credits_lost > 0 {
                    assert!(r.leaks_detected > 0, "audit must fire on loss");
                }
            }
            if r.kind == "stuck-write" {
                assert_eq!(
                    r.coverage, 1.0,
                    "no stale word may reach a reader undetected"
                );
            }
        }
    }

    #[test]
    fn points_are_bit_reproducible() {
        let spec = specs(true)[1];
        let a = run_point(&spec);
        let b = run_point(&spec);
        assert_eq!(a.sent, b.sent);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.coverage, b.coverage);
    }
}
