//! X4 (extension) — how far does the pipelined organization scale?
//!
//! §3.5's scalability discussion, quantified. "Since the above quantum is
//! proportional to both link throughput and number of links, some
//! designers consider this as a non-scalable architecture. However …
//! chip I/O throughput rather than memory cycle time is the bottleneck."
//! This experiment sweeps the port count and tabulates every §3.5
//! quantity: the packet-size quantum, the aggregate buffer throughput a
//! single pipelined memory must sustain, the chip I/O pin-throughput the
//! links demand, and the (quadratic) peripheral area — showing where each
//! constraint binds first.

use crate::{sweep, table};
use vlsimodel::periph::{peripheral_area_mm2, Organization};
use vlsimodel::tech::Technology;

/// One port-count row of the scaling study.
#[derive(Debug, Clone, Copy)]
pub struct X4Row {
    /// Ports per side.
    pub n: usize,
    /// Packet-size quantum in bytes (`2n·w` bits).
    pub quantum_bytes: u32,
    /// Aggregate buffer throughput at the technology's cycle, Gb/s.
    pub buffer_gbps: f64,
    /// Chip I/O throughput demanded by the links (2n links at the
    /// per-link rate), Gb/s.
    pub chip_io_gbps: f64,
    /// Peripheral datapath area, mm² (full custom).
    pub periph_mm2: f64,
    /// Half-quantum (§3.5 split) in bytes.
    pub half_quantum_bytes: u32,
}

/// Sweep `n` at Telegraphos III technology and word width.
pub fn rows() -> Vec<X4Row> {
    let tech = Technology::es2_100_full_custom();
    let w = 16u32;
    sweep::map(&[2usize, 4, 8, 16, 32], |&n| {
        let stages = 2 * n as u32;
        let quantum_bits = stages * w;
        let per_link = tech.link_gbps(w, true);
        X4Row {
            n,
            quantum_bytes: quantum_bits / 8,
            buffer_gbps: quantum_bits as f64 / tech.cycle_worst_ns,
            chip_io_gbps: 2.0 * n as f64 * per_link,
            periph_mm2: peripheral_area_mm2(Organization::Pipelined, n, w, 256, &tech),
            half_quantum_bytes: quantum_bits / 16,
        }
    })
}

/// Render the report.
pub fn run(_quick: bool) -> String {
    let body: Vec<Vec<String>> = rows()
        .iter()
        .map(|r| {
            vec![
                format!("{}x{}", r.n, r.n),
                r.quantum_bytes.to_string(),
                r.half_quantum_bytes.to_string(),
                format!("{:.1}", r.buffer_gbps),
                format!("{:.1}", r.chip_io_gbps),
                format!("{:.1}", r.periph_mm2),
            ]
        })
        .collect();
    let mut s = table::render(
        "X4 (extension): pipelined-buffer scaling at 1.0um full custom, 16-bit words (paper §3.5's scalability argument)",
        &["switch", "quantum B", "half-q B", "buffer Gb/s", "chip I/O Gb/s", "periph mm2"],
        &body,
    );
    s.push_str(
        "\nBuffer throughput equals chip I/O demand by construction (the buffer is\n\
         sized to the links), so the memory is NEVER the binding constraint —\n\
         §3.5's point. What binds first as n grows: chip I/O pins (Gb/s column)\n\
         and the quadratic peripheral area; the quantum stays modest (the §3.5\n\
         half-quantum split keeps a 16x16 switch at a 32-byte effective quantum,\n\
         below an ATM cell). Past that, block-crosspoint partitioning (§2.2)\n\
         continues the scaling with pipelined buffers as the blocks.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_throughput_tracks_io_demand() {
        for r in rows() {
            assert!(
                (r.buffer_gbps - r.chip_io_gbps).abs() < 1e-9,
                "buffer sized exactly to the links at n={}",
                r.n
            );
        }
    }

    #[test]
    fn quantum_linear_area_quadratic() {
        let r = rows();
        let q_ratio = r[3].quantum_bytes as f64 / r[1].quantum_bytes as f64; // 16x16 vs 4x4
        let a_ratio = r[3].periph_mm2 / r[1].periph_mm2;
        assert!((q_ratio - 4.0).abs() < 1e-9, "quantum ∝ n");
        assert!(a_ratio > 9.0, "area ≈ n²: {a_ratio}");
    }

    #[test]
    fn half_quantum_keeps_16x16_under_atm_cell() {
        let r16 = rows().into_iter().find(|r| r.n == 16).unwrap();
        assert!(u64::from(r16.half_quantum_bytes) < 53, "below an ATM cell");
    }
}
