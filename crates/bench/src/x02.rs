//! X2 (extension) — bursty on/off traffic across architectures.
//!
//! §2.1's observation that saturation "occurs sooner" when "the traffic
//! is bursty and the bursts are larger than the buffers", applied to the
//! slot-level architectures: loss vs burst length at fixed load and
//! fixed total memory.

use crate::{sweep, table};
use baselines::harness::run as harness_run;
use baselines::input_fifo::InputFifoSwitch;
use baselines::model::CellSwitch;
use baselines::output_queued::OutputQueuedSwitch;
use baselines::shared::SharedBufferSwitch;
use traffic::{BurstyOnOff, DestDist};

/// One (architecture, burst length) measurement.
#[derive(Debug, Clone)]
pub struct X2Row {
    /// Architecture.
    pub arch: &'static str,
    /// Mean burst length in cells.
    pub mean_burst: f64,
    /// Measured loss.
    pub loss: f64,
    /// Measured p99 latency.
    pub p99: u64,
}

fn measure(
    arch: &'static str,
    mut model: Box<dyn CellSwitch>,
    n: usize,
    load: f64,
    mean_burst: f64,
    slots: u64,
) -> X2Row {
    let mut src = BurstyOnOff::new(n, load, mean_burst, DestDist::uniform(n), 0x22);
    let s = harness_run(model.as_mut(), &mut src, slots, slots / 5);
    X2Row {
        arch,
        mean_burst,
        loss: s.loss,
        p99: s.p99_latency.unwrap_or(0),
    }
}

/// Sweep burst lengths at equal total memory: the grid is
/// (burst length × architecture), models built inside the workers.
pub fn rows(quick: bool) -> Vec<X2Row> {
    let n = 16;
    let total = 128usize;
    let load = 0.6;
    let slots = if quick { 40_000 } else { 300_000 };
    const ARCHS: [&str; 4] = [
        "shared, unfenced",
        "shared + threshold",
        "output-queued",
        "input-fifo",
    ];
    let mut points = Vec::new();
    for &b in &[1.0, 8.0, 32.0] {
        for arch in ARCHS {
            points.push((arch, b));
        }
    }
    sweep::map(&points, |&(arch, b)| {
        let model: Box<dyn CellSwitch> = match arch {
            "shared, unfenced" => Box::new(SharedBufferSwitch::new(n, Some(total))),
            "shared + threshold" => {
                Box::new(SharedBufferSwitch::new(n, Some(total)).with_threshold(total / 4))
            }
            "output-queued" => Box::new(OutputQueuedSwitch::new(n, Some(total / n))),
            _ => Box::new(InputFifoSwitch::new(n, Some(total / n), 7)),
        };
        measure(arch, model, n, load, b, slots)
    })
}

/// Render the report.
pub fn run(quick: bool) -> String {
    let body: Vec<Vec<String>> = rows(quick)
        .iter()
        .map(|r| {
            vec![
                r.arch.to_string(),
                format!("{:.0}", r.mean_burst),
                format!("{:.2e}", r.loss),
                r.p99.to_string(),
            ]
        })
        .collect();
    let mut s = table::render(
        "X2 (extension): bursty on/off traffic, 16x16 @ 0.6 load, equal TOTAL memory (128 cells)",
        &["architecture", "mean burst", "loss", "p99 latency"],
        &body,
    );
    s.push_str(
        "\nBursts longer than a partition are the §2.1 failure mode; the shared pool\n\
         absorbs a burst whole. But at long bursts MANY simultaneous bursts collide\n\
         and the unfenced pool is hogged by the deepest queues (cold outputs drop\n\
         too); a per-output threshold (total/4) keeps sharing's absorption while\n\
         fencing the hogs — matching or beating the partitioned designs everywhere.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burstiness_hurts_partitions_thresholded_sharing_stays_best() {
        let rows = rows(true);
        let loss_of = |arch: &str, b: f64| {
            rows.iter()
                .find(|r| r.arch.starts_with(arch) && (r.mean_burst - b).abs() < 1e-9)
                .unwrap()
                .loss
        };
        // Loss grows with burst length for the partitioned designs.
        assert!(loss_of("output", 32.0) > loss_of("output", 1.0));
        // At short bursts plain sharing dominates.
        assert!(loss_of("shared, unfenced", 1.0) <= loss_of("output", 1.0));
        // At long bursts the fenced pool matches or beats partitions.
        assert!(
            loss_of("shared + threshold", 32.0) <= loss_of("output", 32.0) * 1.1,
            "thresholded: {:.2e}, output-queued: {:.2e}",
            loss_of("shared + threshold", 32.0),
            loss_of("output", 32.0)
        );
    }
}
