//! X5 (extension) — switches as building blocks for multistage fabrics.
//!
//! The paper's opening sentence: switches "are used to build
//! interconnection networks for large-scale parallel computers \[and\]
//! gigabit local area networks". This experiment composes shared-buffer
//! elements into omega networks (64 terminals = 6 stages of 2×2, or 3
//! stages of 4×4) and measures delivered throughput and latency vs
//! offered load — including the effect of element buffer depth, the
//! fabric-level echo of the paper's buffer-sizing argument.
//!
//! The measurement runs on the `fabric` component-graph runtime (scalar
//! elements, link latency 1); the original scalar `OmegaNetwork` model
//! survives as its differential oracle — [`measure_legacy`] drives the
//! identical offered schedule through it, and a test pins every grid
//! row byte-identical between the two before the registry trusts the
//! fabric path.

use crate::{sweep, table};
use fabric::{topo, ElementKind, Fabric};
use netsim::multistage::OmegaNetwork;
use simkernel::cell::Cell;
use simkernel::SplitMix64;

/// One operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct X5Row {
    /// Element radix k (fabric is k^stages terminals).
    pub k: usize,
    /// Per-element pool capacity (`None` = unbounded).
    pub element_pool: Option<usize>,
    /// Offered load per terminal.
    pub offered: f64,
    /// Carried load per terminal.
    pub carried: f64,
    /// Mean end-to-end latency (slots).
    pub latency: f64,
    /// Loss fraction.
    pub loss: f64,
}

/// Post-injection drain ticks (kept from the original model so the
/// fabric path reproduces its rows bit for bit: the legacy driver's last
/// tick is `slots + 199`, so cells leaving the final stage later than
/// `slots + 198` were never counted — the fabric run stops at the same
/// horizon).
const DRAIN: u64 = 200;

/// Drive one fabric at one load on the component-graph runtime.
pub fn measure(
    k: usize,
    stages: usize,
    element_pool: Option<usize>,
    load: f64,
    slots: u64,
    seed: u64,
) -> X5Row {
    let mut fab = Fabric::new(
        topo::omega(k, stages),
        ElementKind::Scalar {
            capacity: element_pool,
        },
    );
    let n = fab.topology().endpoints;
    // One generator shared across terminals, exactly the legacy driver's
    // draw order: per slot, terminal-ascending (injection gate, then
    // destination).
    let mut rng = SplitMix64::new(seed);
    let mut offered = 0u64;
    let mut id = 0u64;
    let run = fab.run_with(slots + DRAIN - 1, |from, _to, inj| {
        if from < slots {
            for t in 0..n {
                if rng.chance(load) {
                    offered += 1;
                    id += 1;
                    inj.push((t, from, Cell::new(id, t, rng.below_usize(n), from)));
                }
            }
        }
    });
    debug_assert_eq!(run.offered, offered);
    X5Row {
        k,
        element_pool,
        offered: offered as f64 / (slots * n as u64) as f64,
        carried: run.delivered_total() as f64 / (slots * n as u64) as f64,
        latency: run.mean_latency(),
        loss: run.dropped as f64 / offered.max(1) as f64,
    }
}

/// The original scalar-`OmegaNetwork` measurement — the differential
/// oracle [`measure`] is pinned against.
pub fn measure_legacy(
    k: usize,
    stages: usize,
    element_pool: Option<usize>,
    load: f64,
    slots: u64,
    seed: u64,
) -> X5Row {
    let mut net = OmegaNetwork::new(k, stages, element_pool);
    let n = net.terminals();
    let mut rng = SplitMix64::new(seed);
    let mut offered = 0u64;
    let mut id = 0u64;
    let mut arr: Vec<Option<Cell>> = vec![None; n];
    for now in 0..slots {
        for (t, a) in arr.iter_mut().enumerate() {
            *a = rng.chance(load).then(|| {
                offered += 1;
                id += 1;
                Cell::new(id, t, rng.below_usize(n), now)
            });
        }
        net.tick(now, &arr);
    }
    let idle = vec![None; n];
    for now in slots..slots + DRAIN {
        net.tick(now, &idle);
    }
    let delivered = net.delivered().len() as u64;
    X5Row {
        k,
        element_pool,
        offered: offered as f64 / (slots * n as u64) as f64,
        carried: delivered as f64 / (slots * n as u64) as f64,
        latency: net.mean_latency(),
        loss: net.dropped() as f64 / offered.max(1) as f64,
    }
}

/// The (element, pool, load) grid behind the report table.
fn grid() -> Vec<(usize, usize, Option<usize>, f64)> {
    let mut points = Vec::new();
    for &(k, stages) in &[(2usize, 6usize), (4, 3)] {
        for &pool in &[Some(4usize), None] {
            for &load in &[0.3, 0.6, 0.9] {
                points.push((k, stages, pool, load));
            }
        }
    }
    points
}

/// Sweep loads for 64-terminal fabrics of 2×2 and 4×4 elements: the
/// (element, pool, load) grid runs through the parallel engine.
pub fn rows(quick: bool) -> Vec<X5Row> {
    let slots = if quick { 10_000 } else { 60_000 };
    sweep::map(&grid(), |&(k, stages, pool, load)| {
        measure(k, stages, pool, load, slots, 0x55)
    })
}

/// Render the report.
pub fn run(quick: bool) -> String {
    let body: Vec<Vec<String>> = rows(quick)
        .iter()
        .map(|r| {
            vec![
                format!("{0}x{0}", r.k),
                match r.element_pool {
                    Some(p) => p.to_string(),
                    None => "inf".into(),
                },
                format!("{:.2}", r.offered),
                format!("{:.3}", r.carried),
                format!("{:.1}", r.latency),
                format!("{:.1e}", r.loss),
            ]
        })
        .collect();
    let mut s = table::render(
        "X5 (extension): 64-terminal omega fabrics of shared-buffer elements (paper intro: switches as building blocks)",
        &["element", "pool", "offered", "carried", "latency", "loss"],
        &body,
    );
    s.push_str(
        "\nLarger (4x4) elements need fewer stages -> lower latency at the same\n\
         terminal count; tiny per-element pools lose cells under internal\n\
         contention exactly as the single-switch sizing experiments (E3) predict.\n\
         Uniform traffic through an omega network concentrates internally, so\n\
         per-element buffering is what makes the composition work — the paper's\n\
         buffered-building-block thesis at fabric scale.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_load_all_carried() {
        let r = measure(2, 6, None, 0.3, 8_000, 1);
        assert!(
            (r.carried - r.offered).abs() / r.offered < 0.05,
            "unbounded fabric must carry light load: {r:?}"
        );
        assert_eq!(r.loss, 0.0);
    }

    #[test]
    fn fewer_stages_less_latency() {
        let deep = measure(2, 6, None, 0.3, 8_000, 2);
        let shallow = measure(4, 3, None, 0.3, 8_000, 2);
        assert!(
            shallow.latency < deep.latency,
            "3-stage fabric ({}) must beat 6-stage ({})",
            shallow.latency,
            deep.latency
        );
    }

    #[test]
    fn tiny_pools_lose_under_pressure() {
        let tight = measure(2, 6, Some(1), 0.9, 8_000, 3);
        let roomy = measure(2, 6, Some(16), 0.9, 8_000, 3);
        assert!(
            tight.loss > roomy.loss,
            "1-cell elements ({}) must lose more than 16-cell ({})",
            tight.loss,
            roomy.loss
        );
    }

    /// The registry-switch gate: every grid row from the fabric runtime
    /// must be byte-identical (every f64 bit) to the legacy scalar
    /// `OmegaNetwork` path under the identical offered schedule.
    #[test]
    fn fabric_rows_byte_identical_to_legacy() {
        for &(k, stages, pool, load) in &grid() {
            let f = measure(k, stages, pool, load, 4_000, 0x55);
            let l = measure_legacy(k, stages, pool, load, 4_000, 0x55);
            assert!(
                f == l
                    && f.offered.to_bits() == l.offered.to_bits()
                    && f.carried.to_bits() == l.carried.to_bits()
                    && f.latency.to_bits() == l.latency.to_bits()
                    && f.loss.to_bits() == l.loss.to_bits(),
                "fabric diverged from the scalar oracle at \
                 k={k} stages={stages} pool={pool:?} load={load}:\n  fabric {f:?}\n  legacy {l:?}"
            );
        }
    }
}
