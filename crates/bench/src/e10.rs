//! E10 — word-line RC delay: pipelined vs wide memory (§4.3, fig. 7).

use crate::{sweep, table};
use vlsimodel::rc::{decoder_vs_pipe_register, word_line_delay_ns, RcLine};
use vlsimodel::tech::Technology;

/// One geometry row.
#[derive(Debug, Clone, Copy)]
pub struct E10Row {
    /// Total word-line span in storage cells.
    pub cells: usize,
    /// Unsplit delay (ns).
    pub unsplit_ns: f64,
    /// Split into per-stage blocks (ns).
    pub split_ns: f64,
}

/// Sweep word-line spans for an n×n, w-bit configuration.
pub fn rows() -> Vec<E10Row> {
    let t = Technology::es2_100_full_custom();
    let line = RcLine {
        r_ohm_per_um: t.r_ohm_per_um,
        c_ff_per_um: t.c_ff_per_um,
    };
    let w = 16usize;
    sweep::map(&[1usize, 2, 4, 8, 16], |&stages| {
        let cells = stages * w;
        E10Row {
            cells,
            unsplit_ns: word_line_delay_ns(cells, t.cell_pitch_um, line),
            split_ns: line.split_elmore_ns(cells as f64 * t.cell_pitch_um, stages),
        }
    })
}

/// Render the report.
pub fn run(_quick: bool) -> String {
    let body: Vec<Vec<String>> = rows()
        .iter()
        .map(|r| {
            vec![
                r.cells.to_string(),
                format!("{:.3}", r.unsplit_ns),
                format!("{:.3}", r.split_ns),
                format!("{:.0}x", r.unsplit_ns / r.split_ns.max(1e-12)),
            ]
        })
        .collect();
    let mut s = table::render(
        "E10: word-line Elmore delay vs span (1.0um full custom, 16-bit stages) — fig 7",
        &["cells spanned", "one line ns", "split/stage ns", "penalty"],
        &body,
    );
    let (dec, reg) = decoder_vs_pipe_register(256);
    s.push_str(&format!(
        "\nWide memory's word line spans all stages (rightmost row); splitting it per\n\
         stage restores speed but costs a decoder per block — fig 7(b) replaces those\n\
         with decoded-address pipeline registers, {:.1}x smaller ({:.0} vs {:.0} units\n\
         for a 256-row bank), which is the paper's §4.4 measurement.\n",
        dec / reg,
        dec,
        reg
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_is_quadratic_in_stage_count() {
        let r = rows();
        let last = r.last().unwrap();
        assert!((last.unsplit_ns / last.split_ns - 256.0).abs() < 1.0);
    }

    #[test]
    fn wide_line_material_vs_16ns_cycle() {
        let r = rows();
        assert!(r.last().unwrap().unsplit_ns > 16.0);
        assert!(r[0].unsplit_ns < 0.5);
    }
}
