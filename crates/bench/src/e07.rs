//! E7 — the packet-size quantum (§3.5): throughput arithmetic and the
//! half-quantum dual-memory organization, demonstrated functionally.

use crate::table;
use switch_core::halfq::HalfQuantumBuffer;
use vlsimodel::quantum::quantum_table;

/// Functional demo: run the two-half buffer at one write + one read per
/// cycle for `cycles` cycles; returns (reads completed, writes stored).
pub fn halfq_demo(n: usize, cycles: u64) -> (u64, u64) {
    let mut b = HalfQuantumBuffer::new(n, 64, 64);
    let mut stored: std::collections::VecDeque<switch_core::halfq::PacketHandle> =
        std::collections::VecDeque::new();
    let mut writes = 0u64;
    let mut reads = 0u64;
    let words = |seed: u64| (0..n as u64).map(|k| seed * 1000 + k).collect::<Vec<_>>();
    for i in 0..cycles {
        if let Some(&h) = stored.front() {
            if b.fetch(h).is_ok() {
                stored.pop_front();
            }
        }
        if let Ok(h) = b.store(words(i)) {
            stored.push_back(h);
            writes += 1;
        }
        reads += b.tick().len() as u64;
    }
    reads += b.drain().len() as u64;
    (reads, writes)
}

/// Render the report.
pub fn run(quick: bool) -> String {
    let rows = quantum_table(&[32, 64, 128], 5.0, 16);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.quantum_bytes.to_string(),
                r.buffer_width_bits.to_string(),
                format!("{:.1}", r.aggregate_gbps),
                format!("{:.2}", r.per_link_gbps),
            ]
        })
        .collect();
    let mut s = table::render(
        "E7: packet-size quantum vs buffer throughput at 5 ns cycle (paper §3.5: '50 to 200 Gbits/s')",
        &["quantum B", "width bits", "aggregate Gb/s", "per-link Gb/s (16+16)"],
        &body,
    );
    let cycles = if quick { 2_000 } else { 50_000 };
    let n = 8;
    let (reads, writes) = halfq_demo(n, cycles);
    s.push_str(&format!(
        "\nHalf-quantum organization (two pipelined memories of n={n} stages,\n\
         packets of {n} words): sustained {writes} writes and {reads} reads over\n\
         {cycles} cycles — one write AND one read initiation per cycle, double the\n\
         single-memory budget, as §3.5 requires for half-size packets.\n",
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halfq_sustains_one_read_and_write_per_cycle() {
        let cycles = 3_000;
        let (reads, writes) = halfq_demo(8, cycles);
        assert!(writes as f64 > 0.99 * cycles as f64, "writes {writes}");
        assert!(reads as f64 > 0.98 * cycles as f64, "reads {reads}");
    }

    #[test]
    fn quantum_numbers_match_paper() {
        let rows = quantum_table(&[32, 128], 5.0, 16);
        assert!((rows[0].aggregate_gbps - 51.2).abs() < 0.1);
        assert!((rows[1].aggregate_gbps - 204.8).abs() < 0.1);
    }
}
