//! Minimal fixed-width table rendering for experiment reports.

/// Render a table: header row + data rows, columns padded to content.
pub fn render(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        assert_eq!(r.len(), cols, "row width mismatch");
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut s = String::new();
    s.push_str(title);
    s.push('\n');
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", c, width = widths[i]));
        }
        line
    };
    let hdr: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    s.push_str(&fmt_row(&hdr));
    s.push('\n');
    s.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    s.push('\n');
    for r in rows {
        s.push_str(&fmt_row(r));
        s.push('\n');
    }
    s
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let out = render(
            "T",
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(out.contains("T\n"));
        assert!(out.lines().count() >= 4);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn checks_width() {
        render("T", &["a"], &[vec!["1".into(), "2".into()]]);
    }
}
