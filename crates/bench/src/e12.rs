//! E12 — input vs shared buffering silicon (§5.1, fig. 9).
//!
//! Both designs have total buffer width `2nw`; the shared buffer needs
//! two crossbar-sized datapath blocks where input buffering needs one
//! crossbar plus a comparable scheduler; so the comparison reduces to the
//! buffer heights needed for equal performance, `H_s < H_i`. We obtain
//! the heights from the E3-style loss-equalization simulation and feed
//! them into the fig. 9 area model.

use crate::{sweep, table};
use baselines::sched::IslipScheduler;
use baselines::shared::SharedBufferSwitch;
use baselines::voq::VoqSwitch;
use vlsimodel::floorplan::Fig9Comparison;

/// Buffer cells per port needed for loss ≤ target at the given load,
/// for the shared buffer and for (non-FIFO, VOQ) input buffering. The
/// two bisections are independent — one sweep point each.
pub fn heights(n: usize, load: f64, target: f64, slots: u64, seed: u64) -> (u64, u64) {
    let sizes = sweep::map(&[false, true], |&voq| {
        if voq {
            crate::e03::size_for_loss(
                |b| Box::new(VoqSwitch::new(n, Some(b), IslipScheduler::new(n, 4))),
                n,
                load,
                target,
                1,
                256,
                slots,
                seed,
            )
            .0
        } else {
            crate::e03::size_for_loss(
                |b| Box::new(SharedBufferSwitch::new(n, Some(b))),
                n,
                load,
                target,
                4,
                1024,
                slots,
                seed,
            )
            .0
        }
    });
    let (shared_total, per_input) = (sizes[0], sizes[1]);
    // Heights in cells per port: shared spread over 2n ports of width w…
    // fig. 9 measures height over the common 2nw width, so per-port
    // height = total / n for both sides.
    ((per_input) as u64, (shared_total / n).max(1) as u64)
}

/// Render the report.
pub fn run(quick: bool) -> String {
    let n = 16;
    let (target, slots) = if quick {
        (1e-2, 50_000)
    } else {
        (1e-3, 400_000)
    };
    let (h_i, h_s) = heights(n, 0.8, target, slots, 0xE12);
    let cmp = Fig9Comparison::new(n, 16, h_i, h_s);
    let body = vec![
        vec![
            "buffer width (cells)".into(),
            cmp.buffer_width_cells.to_string(),
            cmp.buffer_width_cells.to_string(),
        ],
        vec!["height H (cells)".into(), h_i.to_string(), h_s.to_string()],
        vec![
            "storage area (cell units)".into(),
            cmp.buffer_area_input().to_string(),
            cmp.buffer_area_shared().to_string(),
        ],
        vec![
            "crossbar-size blocks".into(),
            format!("{} (xbar + scheduler)", cmp.blocks_input),
            format!("{} (in + out datapath)", cmp.blocks_shared),
        ],
        vec![
            "total area (cell units)".into(),
            format!("{:.0}", cmp.total_area(false, 0.5)),
            format!("{:.0}", cmp.total_area(true, 0.5)),
        ],
    ];
    let mut s = table::render(
        &format!(
            "E12: input vs shared buffering silicon at equal loss ({target:.0e} @ 16x16, load 0.8) — paper §5.1 fig 9"
        ),
        &["quantity", "input buffering", "shared buffering"],
        &body,
    );
    s.push_str(
        "\nPaper: 'the single crossbar and the scheduler of the input buffers occupy\n\
         comparable area with the two crossbars of the shared buffer, while H_s < H_i\n\
         for similar performance. Thus shared buffering has better cost-performance.'\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_needs_less_height() {
        let (h_i, h_s) = heights(16, 0.8, 1e-2, 40_000, 3);
        assert!(
            h_s < h_i,
            "H_s ({h_s}) must be below H_i ({h_i}) for equal loss"
        );
    }

    #[test]
    fn shared_total_area_wins() {
        let (h_i, h_s) = heights(16, 0.8, 1e-2, 40_000, 3);
        let cmp = Fig9Comparison::new(16, 16, h_i, h_s);
        assert!(cmp.total_area(true, 0.5) < cmp.total_area(false, 0.5));
    }
}
