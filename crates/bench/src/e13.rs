//! E13 — pipelined vs wide-memory peripheral area (§5.2).

use crate::table;
use vlsimodel::compare::wide_vs_pipelined;
use vlsimodel::tech::Technology;

/// Render the report.
pub fn run(_quick: bool) -> String {
    let tech = Technology::es2_100_full_custom();
    let (wide, pipe, savings) = wide_vs_pipelined(8, 16, 256, &tech);
    let body = vec![
        vec![
            "wide memory ([KaSC91] adjusted)".into(),
            format!("{wide:.1}"),
            "13".into(),
        ],
        vec![
            "pipelined (Telegraphos III)".into(),
            format!("{pipe:.1}"),
            "9".into(),
        ],
        vec![
            "pipelined savings".into(),
            format!("{:.0}%", savings * 100.0),
            "~30%".into(),
        ],
    ];
    let mut s = table::render(
        "E13: peripheral circuitry area, wide vs pipelined shared buffer at Telegraphos III parameters (paper §5.2)",
        &["organization", "model mm2", "paper mm2"],
        &body,
    );
    s.push_str(
        "\nThe wide organization pays for double input buffering and the cut-through\n\
         bypass; the pipelined organization eliminates both (§3.2-3.3).\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_about_thirty_percent() {
        let (_, _, savings) = wide_vs_pipelined(8, 16, 256, &Technology::es2_100_full_custom());
        assert!((0.2..0.4).contains(&savings), "savings {savings}");
    }
}
