//! # bench-harness — regenerating every table and figure of the paper
//!
//! One module per experiment, numbered as in DESIGN.md §4. Each module
//! exposes a `run(quick) -> String` that performs the simulation /
//! model evaluation and renders the paper-shaped table, plus typed row
//! structs so integration tests can assert on the numbers rather than
//! parse text. `quick = true` shrinks run lengths for CI; the `expt`
//! binary defaults to full runs.
//!
//! Experiment grids execute through the deterministic parallel engine
//! in [`sweep`]: every module submits its independent points to
//! [`sweep::map`], which fans them out over a worker pool (`expt
//! --jobs N`, default all cores) and returns rows in canonical grid
//! order — bit-identical to a sequential run (`expt --seq`).
//!
//! | Module | Paper locus | Claim regenerated |
//! |--------|------------|-------------------|
//! | [`e01`] | §2.1 \[KaHM87\] | input FIFO saturates ≈ 58.6 % |
//! | [`e02`] | §2.1 \[Dally90\] | wormhole 1-lane saturation, lanes recover |
//! | [`e03`] | §2.2 \[HlKa88\] | buffer sizes for loss 10⁻³: shared ≪ output ≪ smoothing |
//! | [`e04`] | §2.2 \[AOST93\] | scheduled input buffering ≈ 2× latency of output queueing |
//! | [`e05`] | §3.2–3.3 fig 5 | control-signal wave table, cut-through timing |
//! | [`e06`] | §3.4 | staggered-initiation latency = (p/4)(n−1)/n |
//! | [`e07`] | §3.5 | quantum/throughput table + half-quantum demo |
//! | [`e08`] | §4 | Telegraphos I/II/III configuration table |
//! | [`e09`] | §4.2 fig 6 | Telegraphos II floorplan accounting |
//! | [`e10`] | §4.3 fig 7 | word-line RC: pipelined vs wide |
//! | [`e11`] | §4.4 fig 8 | Telegraphos III headline numbers |
//! | [`e12`] | §5.1 fig 9 | input vs shared buffering silicon |
//! | [`e13`] | §5.2 | wide vs pipelined peripheral area |
//! | [`e14`] | §5.3 | PRIZMA crossbar cost ratio |
//! | [`e15`] | §2 figs 1–2 | architecture throughput/latency sweep |
//! | [`e16`] | extension | fault-injection campaign: detection coverage |
//! | [`e17`] | extension | chaos campaign: recovery ladder, MTTR, degraded throughput |
//! | [`e18`] | extension | buffer-sharing policy lab: admission policies under incast/hotspot/on-off |
//! | [`e19`] | extension | fabric scaling: component-graph networks of real elements, 64–1024 endpoints |

#![forbid(unsafe_code)]

pub mod e01;
pub mod e02;
pub mod e03;
pub mod e04;
pub mod e05;
pub mod e06;
pub mod e07;
pub mod e08;
pub mod e09;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;
pub mod e15;
pub mod e16;
pub mod e17;
pub mod e18;
pub mod e19;
pub mod fuzz;
pub mod perf;
pub mod sweep;
pub mod table;
pub mod tracecmd;
pub mod x01;
pub mod x02;
pub mod x03;
pub mod x04;
pub mod x05;

/// All paper experiment ids, in order.
pub const ALL: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "x1", "x2", "x3", "x4", "x5",
];

/// Run one experiment by id ("e1".."e15"); `quick` shrinks run lengths.
pub fn run_experiment(id: &str, quick: bool) -> Option<String> {
    Some(match id {
        "e1" => e01::run(quick),
        "e2" => e02::run(quick),
        "e3" => e03::run(quick),
        "e4" => e04::run(quick),
        "e5" => e05::run(quick),
        "e6" => e06::run(quick),
        "e7" => e07::run(quick),
        "e8" => e08::run(quick),
        "e9" => e09::run(quick),
        "e10" => e10::run(quick),
        "e11" => e11::run(quick),
        "e12" => e12::run(quick),
        "e13" => e13::run(quick),
        "e14" => e14::run(quick),
        "e15" => e15::run(quick),
        "e16" => e16::run(quick),
        "e17" => e17::run(quick),
        "e18" => e18::run(quick),
        "e19" => e19::run(quick),
        "x1" => x01::run(quick),
        "x2" => x02::run(quick),
        "x3" => x03::run(quick),
        "x4" => x04::run(quick),
        "x5" => x05::run(quick),
        _ => return None,
    })
}
