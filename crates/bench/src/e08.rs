//! E8 — the Telegraphos prototype family (§4): configuration table plus a
//! functional run of each configuration on the RTL model.

use crate::table;
use simkernel::SplitMix64;
use switch_core::config::SwitchConfig;
use switch_core::rtl::{OutputCollector, PipelinedSwitch};
use traffic::{DestDist, PacketFeeder};
use vlsimodel::telegraphos::{telegraphos_table, Prototype};

/// Functional check of one prototype geometry on the word-level RTL
/// model: random traffic at `load`, returns (packets delivered, all
/// payloads intact, latch overruns).
pub fn functional_run(p: &Prototype, load: f64, cycles: u64, seed: u64) -> (usize, bool, u64) {
    let mut cfg = SwitchConfig::symmetric(p.n, p.slots.min(64));
    cfg.word_bits = p.word_bits;
    let s = cfg.stages();
    let n = cfg.n_in;
    let mut sw = PipelinedSwitch::new(cfg);
    let mut feeders: Vec<PacketFeeder> = (0..n)
        .map(|i| PacketFeeder::random(i, s, load, DestDist::uniform(n), seed, n as u64))
        .collect();
    let mut col = OutputCollector::new(n, s);
    let mut wire = vec![None; n];
    for _ in 0..cycles {
        for (i, f) in feeders.iter_mut().enumerate() {
            wire[i] = f.tick(sw.now());
        }
        let now = sw.now();
        let out = sw.tick(&wire);
        col.observe(now, out);
    }
    // Drain: stop generating, let in-flight packets finish on the wire,
    // then idle the switch until quiescent.
    for f in feeders.iter_mut() {
        f.halt();
    }
    simkernel::run_until_quiescent(10_000, "telegraphos functional drain", |_| {
        if sw.is_quiescent() {
            return true;
        }
        for (i, f) in feeders.iter_mut().enumerate() {
            wire[i] = f.tick(sw.now());
        }
        let now = sw.now();
        let out = sw.tick(&wire);
        col.observe(now, out);
        false
    })
    .expect("switch failed to drain — hang caught by the watchdog");
    let delivered = col.take();
    let intact = delivered.iter().all(|d| d.verify_payload());
    let _ = SplitMix64::new(seed);
    (delivered.len(), intact, sw.counters().latch_overruns)
}

/// Render the report.
pub fn run(quick: bool) -> String {
    let cycles = if quick { 5_000 } else { 50_000 };
    let mut body = Vec::new();
    for p in telegraphos_table() {
        p.validate();
        let (delivered, intact, overruns) = functional_run(&p, 0.8, cycles, 0xE8);
        body.push(vec![
            p.name.to_string(),
            format!("{}x{}", p.n, p.n),
            format!("{}", p.word_bits),
            p.stages.to_string(),
            p.packet_bytes.to_string(),
            format!("{}", p.capacity_bits() / 1024),
            format!("{:.3}", p.link_gbps_worst()),
            format!("{:.1}", p.aggregate_gbps_worst()),
            delivered.to_string(),
            format!("{intact}/{overruns}"),
        ]);
    }
    let mut s = table::render(
        "E8: the Telegraphos prototypes (§4) — paper parameters + functional RTL run at load 0.8",
        &[
            "prototype",
            "size",
            "w",
            "stages",
            "pkt B",
            "buf Kbit",
            "Gb/s link",
            "Gb/s aggr",
            "delivered",
            "intact/overruns",
        ],
        &body,
    );
    s.push_str(
        "\nPaper rates: I = 107 Mb/s (13.3 MHz x 8b), II = 400 Mb/s (16b/40ns),\n\
         III = 1 Gb/s worst case (16b/16ns), 64 Kbit buffer. 'intact' = every\n\
         delivered payload bit-exact; 'overruns' must be 0.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_prototypes_run_clean_on_rtl() {
        for p in telegraphos_table() {
            let (delivered, intact, overruns) = functional_run(&p, 0.8, 4_000, 7);
            assert!(delivered > 50, "{}: only {delivered} delivered", p.name);
            assert!(intact, "{}: payload corruption", p.name);
            assert_eq!(overruns, 0, "{}: latch overruns", p.name);
        }
    }

    #[test]
    fn capacity_64_kbit_for_iii() {
        let p = vlsimodel::telegraphos::Prototype::telegraphos_iii();
        assert_eq!(p.capacity_bits(), 65_536);
    }
}
