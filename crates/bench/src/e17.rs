//! E17 — chaos campaign: the recovery ladder under fault-rate × load
//! (extension; not in the paper).
//!
//! E16 measured *detection* coverage; this campaign measures *recovery*.
//! Every point runs an organization with the full recovery ladder armed
//! ([`RecoveryConfig::full`]: SEC-DED ECC, spare banks, failover after a
//! correction threshold) and reports what graceful degradation actually
//! cost:
//!
//! - **MTTR** — mean length (cycles) of the declared recovery windows
//!   ([`switch_core::recovery::RecoveryWindows::mean_len`]);
//! - **in-window loss** — packets shed at admission inside a window plus
//!   frames the link-retry machinery abandoned (`shed + give-ups`), the
//!   loss the conformance oracle excuses as *declared*;
//! - **degraded-mode throughput** — deliveries per kilocycle after the
//!   switch first entered permanent degraded mode (spares exhausted).
//!
//! Three memory organizations face the same single-bit-upset process
//! (the behavioral model has no memory words, hence no ECC story):
//! pipelined RTL (spare bank *columns*), wide memory (spare *rows*) and
//! interleaved banks (spare whole banks). The pipelined RTL additionally
//! faces the two wire-fault classes behind a Go-Back-N link-retry pair
//! ([`RetrySender`]/[`RetryReceiver`]): corrupt frames fail the header
//! CRC and are NAK-replayed; dropped frames are caught by the receiver
//! timeout; a hard-dead frame is abandoned after the replay bound.
//!
//! Upsets here are *single-bit by construction* (drawn from their own
//! `FAULT_STREAM`), so ECC can do its job; uncorrectable words still
//! arise organically when two strikes accumulate on one word.
//! Everything is bit-reproducible at any `--jobs` through
//! [`sweep::map`]. Drains run under the escalating watchdog
//! ([`simkernel::run_until_quiescent_escalating`]): one resync attempt
//! (discard link backlog) buys a second budget before the expiry lands
//! in the process-wide ledger the `expt --watchdog` flag reports.

use crate::{sweep, table};
use membank::interleaved::BankId;
use simkernel::cell::Packet;
use simkernel::ids::{Addr, Cycle};
use simkernel::rng::split_seed;
use simkernel::SplitMix64;
use std::cell::RefCell;
use std::collections::VecDeque;
use switch_core::config::SwitchConfig;
use switch_core::faultsim::{FAULT_STREAM, TRAFFIC_STREAM};
use switch_core::ibank::{InterleavedSwitch, InterleavedSwitchConfig};
use switch_core::recovery::{
    RecoveryConfig, RecoveryReport, RecoveryWindows, RetryConfig, RetryReceiver, RetrySender,
    RxVerdict,
};
use switch_core::rtl::{integrity_checksum, OutputCollector, PipelinedSwitch};
use switch_core::widemem::{WideMemorySwitchRtl, WideSwitchConfig};

/// Organizations under chaos (the behavioral model stores no words, so
/// it has nothing for ECC to correct).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosOrg {
    /// Pipelined-memory RTL: spare bank columns.
    Pipelined,
    /// Wide-memory organization: spare rows.
    Wide,
    /// Interleaved one-packet-per-bank: spare whole banks.
    Interleaved,
}

impl ChaosOrg {
    /// All organizations, in reporting order.
    pub const ALL: [ChaosOrg; 3] = [ChaosOrg::Pipelined, ChaosOrg::Wide, ChaosOrg::Interleaved];

    /// Stable report label.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosOrg::Pipelined => "pipelined",
            ChaosOrg::Wide => "wide",
            ChaosOrg::Interleaved => "interleaved",
        }
    }
}

/// Fault process of one campaign point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// Per-cycle single-bit upset somewhere in the buffer memory.
    BankUpset,
    /// Per-frame bit corruption on the input wire (link retry replays).
    WireCorrupt,
    /// Whole frames eaten on the input wire (receiver timeout NAKs).
    WireDrop,
}

impl ChaosFault {
    /// Stable report label.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosFault::BankUpset => "bank-upset",
            ChaosFault::WireCorrupt => "wire-corrupt",
            ChaosFault::WireDrop => "wire-drop",
        }
    }
}

/// One campaign point.
#[derive(Debug, Clone, Copy)]
pub struct ChaosSpec {
    /// Organization under chaos.
    pub org: ChaosOrg,
    /// Fault process.
    pub fault: ChaosFault,
    /// Per-cycle (bank-upset) or per-word-on-the-wire (wire faults)
    /// strike probability.
    pub rate: f64,
    /// Offered per-input load.
    pub load: f64,
    /// Active traffic cycles (drain on top, under the watchdog).
    pub cycles: u64,
    /// Point RNG seed (split into traffic and fault streams).
    pub seed: u64,
}

/// Measured outcome of one campaign point.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Organization label.
    pub org: String,
    /// Fault-class label.
    pub fault: String,
    /// Strike probability.
    pub rate: f64,
    /// Offered load.
    pub load: f64,
    /// Packets launched into the switch (post-link for wire rows).
    pub sent: u64,
    /// Delivered on the addressed output with a bit-exact payload.
    pub delivered: u64,
    /// Single-bit upsets ECC corrected in place.
    pub corrections: u64,
    /// Words corrupted beyond single-error correction.
    pub uncorrectable: u64,
    /// Banks/rows hot-swapped or retired.
    pub failovers: u64,
    /// Distinct recovery episodes (merged windows + retry episodes).
    pub episodes: u64,
    /// Mean time to recover, cycles (None: no episode ever opened).
    pub mttr: Option<f64>,
    /// Declared in-window loss: admission shed + retry give-ups.
    pub in_window_loss: u64,
    /// Frames retransmitted by the link (wire rows).
    pub retries: u64,
    /// Frames abandoned after the replay bound (wire rows).
    pub give_ups: u64,
    /// Did the switch end in permanent degraded mode?
    pub degraded: bool,
    /// Deliveries per kilocycle after entering degraded mode.
    pub degraded_tput: Option<f64>,
    /// Deliveries per kilocycle over the whole run.
    pub tput: f64,
    /// The post-traffic drain reached quiescence under the watchdog
    /// (after at most one resync escalation).
    pub drained: bool,
}

/// Campaign geometry: 4×4 (8 stages), 16 slots, 2 spares, failover after
/// 4 corrections on one bank. Store-and-forward with the full integrity
/// machinery, mirroring E16, so uncorrectable residue is detect-dropped
/// rather than delivered.
const N: usize = 4;
const SLOTS: usize = 16;
const SPARES: usize = 2;
const THRESHOLD: u64 = 4;

fn recovery() -> RecoveryConfig {
    RecoveryConfig::full(SPARES, THRESHOLD)
}

fn rtl_config() -> SwitchConfig {
    let mut cfg = SwitchConfig::symmetric(N, SLOTS);
    cfg.cut_through = false;
    cfg.fused_cut_through = false;
    cfg.integrity.checksum = true;
    cfg.integrity.payload_check = true;
    cfg.integrity.harden = true;
    cfg.with_recovery(recovery())
}

/// The three organizations behind one tick interface.
enum ChaosSwitch {
    Pipelined(Box<PipelinedSwitch>),
    Wide(Box<WideMemorySwitchRtl>),
    Interleaved(Box<InterleavedSwitch>),
}

impl ChaosSwitch {
    fn build(org: ChaosOrg) -> ChaosSwitch {
        match org {
            ChaosOrg::Pipelined => {
                ChaosSwitch::Pipelined(Box::new(PipelinedSwitch::new(rtl_config())))
            }
            ChaosOrg::Wide => ChaosSwitch::Wide(Box::new(WideMemorySwitchRtl::new(
                WideSwitchConfig::fig3(N, SLOTS).with_recovery(recovery()),
            ))),
            ChaosOrg::Interleaved => ChaosSwitch::Interleaved(Box::new(InterleavedSwitch::new(
                InterleavedSwitchConfig::symmetric(N, SLOTS).with_recovery(recovery()),
            ))),
        }
    }

    fn tick(&mut self, wire: &[Option<u64>]) -> &[Option<u64>] {
        match self {
            ChaosSwitch::Pipelined(sw) => sw.tick(wire),
            ChaosSwitch::Wide(sw) => sw.tick(wire),
            ChaosSwitch::Interleaved(sw) => sw.tick(wire),
        }
    }

    fn now(&self) -> Cycle {
        match self {
            ChaosSwitch::Pipelined(sw) => sw.now(),
            ChaosSwitch::Wide(sw) => sw.now(),
            ChaosSwitch::Interleaved(sw) => sw.now(),
        }
    }

    fn is_quiescent(&self) -> bool {
        match self {
            ChaosSwitch::Pipelined(sw) => sw.is_quiescent(),
            ChaosSwitch::Wide(sw) => sw.is_quiescent(),
            ChaosSwitch::Interleaved(sw) => sw.is_quiescent(),
        }
    }

    fn is_degraded(&self) -> bool {
        match self {
            ChaosSwitch::Pipelined(sw) => sw.is_degraded(),
            ChaosSwitch::Wide(sw) => sw.is_degraded(),
            ChaosSwitch::Interleaved(sw) => sw.is_degraded(),
        }
    }

    fn recovery_report(&self) -> RecoveryReport {
        match self {
            ChaosSwitch::Pipelined(sw) => sw.recovery_report(),
            ChaosSwitch::Wide(sw) => sw.recovery_report(),
            ChaosSwitch::Interleaved(sw) => sw.recovery_report(),
        }
    }

    /// One single-bit upset somewhere in this organization's buffer
    /// memory (spare region included — a promoted spare carries live
    /// data too).
    fn upset(&mut self, g: &mut SplitMix64) {
        let s = 2 * N;
        let mask = 1u64 << g.below_usize(64);
        match self {
            ChaosSwitch::Pipelined(sw) => {
                let stage = g.below_usize(s);
                let slot = Addr(g.below_usize(SLOTS));
                sw.inject_bank_fault(stage, slot, mask);
            }
            ChaosSwitch::Wide(sw) => {
                let row = Addr(g.below_usize(SLOTS + SPARES));
                let k = g.below_usize(s);
                sw.inject_memory_fault(row, k, mask);
            }
            ChaosSwitch::Interleaved(sw) => {
                let b = BankId(g.below_usize(SLOTS + SPARES));
                let k = g.below_usize(s);
                sw.inject_bank_fault(b, k, mask);
            }
        }
    }
}

/// One input's link-retry station (wire-fault rows only): frames queue
/// behind the Go-Back-N window, cross the faulty wire, and only in-order
/// CRC-clean frames reach the switch's input pins.
struct LinkStation {
    tx: RetrySender,
    rx: RetryReceiver,
    /// Generated frames not yet admitted to the send window.
    backlog: VecDeque<Vec<u64>>,
    /// Frames the receiver accepted, waiting for the input wire.
    accepted: VecDeque<Vec<u64>>,
}

impl LinkStation {
    fn new() -> LinkStation {
        LinkStation {
            tx: RetrySender::new(RetryConfig::default()),
            rx: RetryReceiver::new(),
            backlog: VecDeque::new(),
            accepted: VecDeque::new(),
        }
    }

    /// Move one frame across the wire this cycle (replays take priority
    /// over new data, as Go-Back-N requires). `struck` decides whether
    /// the wire mangles this crossing; `drop` picks the wire-drop flavor
    /// (frame eaten) over wire-corrupt (one bit flipped).
    fn transfer(&mut self, struck: bool, drop: bool, windows: &mut RecoveryWindows, now: Cycle) {
        let s = 2 * N as u64;
        let frame = match self.tx.next_replay() {
            Some(f) => Some(f),
            None => {
                if self.tx.can_send() && !self.backlog.is_empty() {
                    let words = self.backlog.pop_front().expect("checked non-empty");
                    let seq = self.tx.send(words.clone());
                    Some((seq, words))
                } else {
                    None
                }
            }
        };
        let Some((seq, words)) = frame else { return };
        if struck && drop {
            // The wire ate the whole frame: the receiver's timeout (the
            // gap detector) NAKs the sequence it is still waiting for.
            let RxVerdict::Nak(want) = self.rx.timeout() else {
                unreachable!("timeout always NAKs")
            };
            windows.open(now, s);
            self.nak(want);
            return;
        }
        // A single flipped bit always trips the rotate-xor fold, so the
        // header CRC comparison is exactly "was this frame struck".
        let crc = integrity_checksum(words.iter().copied());
        let crc_ok = if struck {
            let mut mangled = words.clone();
            let w = (seq as usize) % mangled.len();
            mangled[w] ^= 1 << (seq % 64);
            integrity_checksum(mangled.iter().copied()) == crc
        } else {
            true
        };
        match self.rx.receive(seq, crc_ok) {
            RxVerdict::Accept => {
                self.tx.ack(seq);
                self.accepted.push_back(words);
            }
            RxVerdict::Duplicate => self.tx.ack(seq),
            RxVerdict::Nak(want) => {
                windows.open(now, s);
                self.nak(want);
            }
        }
    }

    /// Forward a NAK to the sender; frames it abandons at the replay
    /// bound are skipped on the receiver so the link keeps moving.
    fn nak(&mut self, want: u64) {
        let before = self.tx.give_ups;
        self.tx.nak(want);
        for _ in before..self.tx.give_ups {
            let expected = self.rx.expected();
            self.rx.skip(expected);
        }
    }

    fn idle(&self) -> bool {
        self.backlog.is_empty() && self.accepted.is_empty() && self.tx.outstanding() == 0
    }
}

/// Run one campaign point.
pub fn run_point(spec: &ChaosSpec) -> ChaosRow {
    let s = 2 * N;
    let wire_faults = spec.fault != ChaosFault::BankUpset;
    let mut sw = ChaosSwitch::build(spec.org);
    let mut col = OutputCollector::new(N, s);
    let mut trng = SplitMix64::stream(spec.seed, TRAFFIC_STREAM);
    let mut rngs: Vec<SplitMix64> = (0..N).map(|_| trng.fork()).collect();
    let mut frng = SplitMix64::stream(spec.seed, FAULT_STREAM);
    // Per-cycle header probability yielding busy-fraction `load` when
    // each start occupies the wire for S cycles.
    let q = if spec.load >= 1.0 {
        1.0
    } else {
        spec.load / (spec.load + s as f64 * (1.0 - spec.load))
    };
    // A frame spends S words on the wire, so its strike probability is
    // the per-word rate compounded over the frame (capped well short of
    // certain loss so the replay bound is exercised, not saturated).
    let frame_rate = (spec.rate * s as f64).min(0.5);

    // RefCell: the drain step and the resync escalation both need the
    // link stations, and `run_until_quiescent_escalating` holds both
    // closures at once.
    let links: RefCell<Vec<LinkStation>> =
        RefCell::new((0..N).map(|_| LinkStation::new()).collect());
    let mut streams: Vec<Option<(Packet, usize)>> = vec![None; N];
    let mut wire: Vec<Option<u64>> = vec![None; N];
    let mut retry_windows = RecoveryWindows::new();

    let mut sent = 0u64;
    let mut delivered = 0u64;
    let mut delivered_degraded = 0u64;
    let mut degraded_at: Option<Cycle> = None;
    let mut next_id = 1u64;

    let mut step = |sw: &mut ChaosSwitch,
                    streams: &mut [Option<(Packet, usize)>],
                    links: &mut [LinkStation],
                    rngs: &mut [SplitMix64],
                    frng: &mut SplitMix64,
                    generate: bool| {
        let now = sw.now();
        // 1. Faults: one potential strike per cycle.
        if !wire_faults && frng.chance(spec.rate) {
            sw.upset(frng);
        }
        // 2. Traffic, per input.
        for i in 0..N {
            if wire_faults {
                if generate && rngs[i].chance(q) {
                    let p = Packet::synth(next_id, i, rngs[i].below_usize(N), s, now);
                    next_id += 1;
                    links[i].backlog.push_back(p.words);
                }
                let struck = frng.chance(frame_rate);
                let drop = spec.fault == ChaosFault::WireDrop;
                links[i].transfer(struck, drop, &mut retry_windows, now);
                if streams[i].is_none() {
                    if let Some(words) = links[i].accepted.pop_front() {
                        sent += 1;
                        let mut p = Packet::synth(0, 0, 0, s, now);
                        p.words = words;
                        streams[i] = Some((p, 0));
                    }
                }
            } else if streams[i].is_none() && generate && rngs[i].chance(q) {
                let p = Packet::synth(next_id, i, rngs[i].below_usize(N), s, now);
                next_id += 1;
                sent += 1;
                streams[i] = Some((p, 0));
            }
            let mut word = None;
            let mut tail = false;
            if let Some((p, k)) = streams[i].as_mut() {
                word = Some(p.words[*k]);
                *k += 1;
                tail = *k == s;
            }
            if tail {
                streams[i] = None;
            }
            wire[i] = word;
        }
        // 3. One switch cycle; deliveries split around the degrade edge.
        let out = sw.tick(&wire);
        col.observe(now, out);
        if degraded_at.is_none() && sw.is_degraded() {
            degraded_at = Some(now);
        }
        for d in col.take() {
            if d.verify_payload() {
                delivered += 1;
                if degraded_at.is_some() {
                    delivered_degraded += 1;
                }
            }
        }
    };

    for _ in 0..spec.cycles {
        step(
            &mut sw,
            &mut streams,
            &mut links.borrow_mut(),
            &mut rngs,
            &mut frng,
            true,
        );
    }
    // Drain under the escalating watchdog: the single resync attempt
    // discards undelivered link backlog (the drain-and-resync rung of
    // the ladder) and buys one more full budget; a hang that survives it
    // lands in the process-wide expiry ledger (`expt --watchdog`).
    let budget = simkernel::watchdog::limit_or(40_000);
    let mut resync_shed = 0u64;
    let drained = simkernel::run_until_quiescent_escalating(
        budget,
        "chaos drain",
        |_| {
            let mut ls = links.borrow_mut();
            let links_idle = !wire_faults || ls.iter().all(LinkStation::idle);
            if sw.is_quiescent() && streams.iter().all(Option::is_none) && links_idle {
                return true;
            }
            step(&mut sw, &mut streams, &mut ls, &mut rngs, &mut frng, false);
            false
        },
        |_| {
            let mut dropped = 0u64;
            for l in links.borrow_mut().iter_mut() {
                dropped += (l.backlog.len() + l.accepted.len()) as u64;
                l.backlog.clear();
                l.accepted.clear();
            }
            resync_shed += dropped;
            dropped > 0
        },
        1,
    )
    .is_ok();

    let end = sw.now();
    let report = sw.recovery_report();
    let links = links.into_inner();
    let (retries, give_ups): (u64, u64) = links
        .iter()
        .map(|l| (l.tx.retries, l.tx.give_ups))
        .fold((0, 0), |(r, g), (tr, tg)| (r + tr, g + tg));
    let episodes = (report.windows.count() + retry_windows.count()) as u64;
    let mttr = (episodes > 0).then(|| {
        (report.windows.total_cycles() + retry_windows.total_cycles()) as f64 / episodes as f64
    });
    let per_kcycle = |count: u64, cycles: u64| {
        if cycles == 0 {
            0.0
        } else {
            count as f64 * 1000.0 / cycles as f64
        }
    };
    ChaosRow {
        org: spec.org.label().to_string(),
        fault: spec.fault.label().to_string(),
        rate: spec.rate,
        load: spec.load,
        sent,
        delivered,
        corrections: report.corrections,
        uncorrectable: report.uncorrectable,
        failovers: report.failovers,
        episodes,
        mttr,
        in_window_loss: report.shed + give_ups + resync_shed,
        retries,
        give_ups,
        degraded: sw.is_degraded(),
        degraded_tput: degraded_at.map(|at| per_kcycle(delivered_degraded, end - at)),
        tput: per_kcycle(delivered, end),
        drained,
    }
}

/// The campaign grid: every organization under the single-bit-upset
/// process across rate × load, plus the two wire-fault classes behind
/// the link-retry pair on the pipelined RTL.
pub fn specs(quick: bool) -> Vec<ChaosSpec> {
    let smoke = sweep::smoke();
    let cycles = if smoke {
        1_500
    } else if quick {
        4_000
    } else {
        30_000
    };
    let rates: &[f64] = if smoke { &[0.01] } else { &[0.002, 0.01] };
    let loads: &[f64] = if smoke { &[0.6] } else { &[0.5, 0.9] };
    let base_seed = 0xE17;
    let mut specs = Vec::new();
    for org in ChaosOrg::ALL {
        for &rate in rates {
            for &load in loads {
                let idx = specs.len() as u64;
                specs.push(ChaosSpec {
                    org,
                    fault: ChaosFault::BankUpset,
                    rate,
                    load,
                    cycles,
                    seed: split_seed(base_seed, idx),
                });
            }
        }
    }
    for fault in [ChaosFault::WireCorrupt, ChaosFault::WireDrop] {
        for &rate in rates {
            let idx = specs.len() as u64;
            specs.push(ChaosSpec {
                org: ChaosOrg::Pipelined,
                fault,
                rate,
                load: loads[0],
                cycles,
                seed: split_seed(base_seed, idx),
            });
        }
    }
    specs
}

/// Run the whole campaign through the deterministic sweep engine.
pub fn rows(quick: bool) -> Vec<ChaosRow> {
    let points = specs(quick);
    sweep::map(&points, run_point)
}

/// Render the report.
pub fn run(quick: bool) -> String {
    let rows = rows(quick);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.org.clone(),
                r.fault.clone(),
                format!("{:.3}", r.rate),
                format!("{:.1}", r.load),
                r.sent.to_string(),
                r.delivered.to_string(),
                r.corrections.to_string(),
                r.uncorrectable.to_string(),
                r.failovers.to_string(),
                r.episodes.to_string(),
                r.mttr.map_or("-".to_string(), |m| format!("{m:.1}")),
                r.in_window_loss.to_string(),
                format!("{}/{}", r.retries, r.give_ups),
                match (r.degraded, r.degraded_tput) {
                    (true, Some(t)) => format!("{t:.1}"),
                    _ => "-".to_string(),
                },
                format!("{:.1}", r.tput),
                if r.drained { "ok" } else { "HANG" }.to_string(),
            ]
        })
        .collect();
    let mut s = table::render(
        "E17: chaos campaign (extension) — recovery ladder under fault-rate x load:\n\
         ECC correction, spare-bank failover, link retry, graceful degradation",
        &[
            "org",
            "fault",
            "rate",
            "load",
            "sent",
            "deliv",
            "corr",
            "uncor",
            "fo",
            "epis",
            "mttr",
            "loss-w",
            "retry/aband",
            "degr-tput",
            "tput",
            "drain",
        ],
        &body,
    );
    s.push_str(
        "\nEvery row arms the full recovery ladder (SEC-DED ECC, 2 spare banks, failover after\n\
         4 corrections on one bank). 'corr' upsets were repaired in place; 'uncor' words were\n\
         beyond SEC-DED (two strikes on one word) and detect-dropped; 'fo' banks/rows were\n\
         hot-swapped or retired. 'epis' counts distinct recovery episodes and 'mttr' their\n\
         mean length in cycles — failover settle windows plus link-replay episodes. 'loss-w'\n\
         is the declared in-window loss (admission shed + abandoned frames) the conformance\n\
         oracle excuses; loss never occurs outside a declared window. 'degr-tput' is\n\
         deliveries per kilocycle after spares ran out and the switch entered permanent\n\
         degraded mode ('-' when it never did); 'tput' the whole-run figure.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_campaign_properties() {
        let rows = rows(true);
        assert!(rows.len() >= 5, "grid covers every organization");
        let corrections: u64 = rows.iter().map(|r| r.corrections).sum();
        assert!(corrections > 0, "campaign must land correctable upsets");
        for r in &rows {
            assert!(
                r.drained,
                "{} {} rate {}: drain hung",
                r.org, r.fault, r.rate
            );
            assert!(r.delivered <= r.sent, "{} {}: conservation", r.org, r.fault);
            assert!(r.delivered > 0, "{} {}: nothing delivered", r.org, r.fault);
            if r.fault == "bank-upset" {
                assert_eq!(r.retries + r.give_ups, 0, "no link machinery armed");
            }
        }
        let retried: u64 = rows
            .iter()
            .filter(|r| r.fault != "bank-upset")
            .map(|r| r.retries)
            .sum();
        assert!(retried > 0, "wire rows must exercise the replay path");
        let episodes: u64 = rows
            .iter()
            .filter(|r| r.fault != "bank-upset")
            .map(|r| r.episodes)
            .sum();
        assert!(episodes > 0, "replays declare recovery episodes");
        for r in rows.iter().filter(|r| r.episodes > 0) {
            let mttr = r.mttr.expect("episodes imply a measurable MTTR");
            assert!(mttr >= 1.0, "windows are at least one cycle long");
        }
    }

    #[test]
    fn points_are_bit_reproducible() {
        for spec in [specs(true)[0], *specs(true).last().expect("non-empty")] {
            let a = run_point(&spec);
            let b = run_point(&spec);
            assert_eq!(a.sent, b.sent);
            assert_eq!(a.delivered, b.delivered);
            assert_eq!(a.corrections, b.corrections);
            assert_eq!(a.retries, b.retries);
            assert_eq!(a.episodes, b.episodes);
        }
    }
}
