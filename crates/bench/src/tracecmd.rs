//! `expt trace <experiment>` — run an experiment with telemetry attached
//! and export the probe stream as a GTKWave-loadable VCD waveform plus a
//! metrics JSON document.
//!
//! Two experiments have trace harnesses:
//!
//! * `e5` — the directed fig. 5 scenario on the 2×2 RTL switch. The VCD
//!   carries the per-stage control codes (`m<k>_ctrl`), and the report
//!   includes the fig. 5 control-signal table *derived from the probe
//!   stream* ([`telemetry::vcd::fig5_view`]) — the same table `expt e5`
//!   prints from the switch's own `stage_controls`, reconstructed here
//!   purely from telemetry.
//! * `e6` — a short random-traffic run on the behavioral model (n = 4,
//!   40 % offered load), with a bounded [`telemetry::Recorder`] and the
//!   [`telemetry::metrics::Metrics`] pipeline fanned out over one stream
//!   ([`telemetry::fanout`]).
//!
//! Both exports are validated structurally before they are handed back
//! (`vcd::validate`, `metrics::validate_json`), so `--smoke` is just a
//! run with the file writes skipped.

use simkernel::trace::TraceEntry;
use simkernel::SplitMix64;
use std::fmt::Write as _;
use switch_core::behavioral::BehavioralSwitch;
use switch_core::config::SwitchConfig;
use telemetry::metrics::{validate_json, Metrics};
use telemetry::vcd::{self, Topo};
use telemetry::{fanout, Probe, ProbeEvent, Recorder, Shared};

/// Flight-recorder window when `--last N` is not given.
pub const DEFAULT_WINDOW: usize = 4096;

/// Behavioral cycles driven by the e6 trace harness (short on purpose:
/// a trace is a window into the run, not a statistics campaign).
const E6_CYCLES: u64 = 2_000;

/// Everything one traced run produces.
#[derive(Debug)]
pub struct TraceOutput {
    /// Human-readable report (stdout).
    pub report: String,
    /// The VCD document (`--vcd` destination).
    pub vcd: String,
    /// The metrics JSON document (`--metrics` destination).
    pub metrics: String,
}

/// Intermediate product of one experiment's trace harness.
struct Traced {
    entries: Vec<TraceEntry<ProbeEvent>>,
    topo: Topo,
    metrics_json: String,
    report: String,
}

/// Keep only the last `window` entries (the `--last N` semantics).
fn clamp_window(entries: &mut Vec<TraceEntry<ProbeEvent>>, window: usize) {
    if entries.len() > window {
        entries.drain(..entries.len() - window);
    }
}

/// The fig. 5 scenario, traced: `e05::scenario` already runs with an
/// unbounded recorder attached; the window is applied to the recorded
/// stream, and metrics are derived by replaying it through the pipeline.
fn trace_e5(window: usize) -> Traced {
    let (_cycles, sw, delivered, rec) = crate::e05::scenario();
    let mut entries = rec.entries();
    clamp_window(&mut entries, window);
    let cfg = SwitchConfig::symmetric(2, 8);
    let topo = Topo {
        n_in: 2,
        n_out: 2,
        stages: cfg.stages(),
    };
    let mut m = Metrics::new(topo.n_out, window, 64);
    for e in &entries {
        m.record(e.cycle, e.event);
    }
    let ctr = sw.counters();
    let mut report = format!(
        "trace e5: fig. 5 directed scenario (2x2 RTL switch)\n\
         packets: {} arrived, {} departed, {} delivered intact; {} probe events in window\n\n\
         fig. 5 control-signal table, derived from the probe stream:\n",
        ctr.arrived,
        ctr.departed,
        delivered.iter().filter(|d| d.verify_payload()).count(),
        entries.len(),
    );
    report.push_str(&vcd::fig5_view(entries.iter(), topo.stages));
    Traced {
        entries,
        topo,
        metrics_json: m.to_json(),
        report,
    }
}

/// A short random-traffic behavioral run with recorder + metrics fanned
/// out over one probe stream — the live-pipeline demonstration.
fn trace_e6(window: usize) -> Traced {
    let n = 4;
    let cfg = SwitchConfig::symmetric(n, 4 * n);
    let s = cfg.stages();
    let mut sw = BehavioralSwitch::new(cfg);
    let rec = Shared::new(Recorder::bounded(window));
    let met = Shared::new(Metrics::new(n, window, 512));
    sw.attach_probe(fanout(vec![rec.handle(), met.handle()]));

    // e06-style arrivals at 40 % offered load: per-input busy counters,
    // one header probability draw per idle input per cycle.
    let p = 0.4;
    let q = p / (p + s as f64 * (1.0 - p));
    let mut rng = SplitMix64::new(0xE6);
    let mut busy = vec![0usize; n];
    let mut arr: Vec<Option<usize>> = vec![None; n];
    for _ in 0..E6_CYCLES {
        arr.fill(None);
        for (i, b) in busy.iter_mut().enumerate() {
            if *b == 0 {
                if rng.chance(q) {
                    arr[i] = Some(rng.below_usize(n));
                    *b = s - 1;
                }
            } else {
                *b -= 1;
            }
        }
        sw.tick(&arr);
    }
    arr.fill(None);
    let mut guard = 0;
    while !sw.is_quiescent() && guard < 100 * s {
        sw.tick(&arr);
        guard += 1;
    }

    let entries = rec.entries();
    let (departed, collisions, json) = met.with(|m| (m.departed(), m.rw_collisions(), m.to_json()));
    let mut report = format!(
        "trace e6: behavioral switch, n={n}, 40% offered load, {E6_CYCLES} cycles\n\
         probe stream fanned out to a bounded recorder (window {window}) and the metrics pipeline\n"
    );
    let _ = writeln!(
        report,
        "metrics: {departed} departed, {collisions} rw-arbitration collisions, \
         {} events in window",
        entries.len()
    );
    Traced {
        entries,
        topo: Topo {
            n_in: n,
            n_out: n,
            stages: s,
        },
        metrics_json: json,
        report,
    }
}

/// Run the trace harness for `id` (`e5`/`e05`/`e6`/`e06`). Both exports
/// are structurally validated before returning, so a caller that only
/// wants the self-test (`--smoke`) can discard the output.
pub fn run(id: &str, last: Option<usize>) -> Result<TraceOutput, String> {
    let window = last.unwrap_or(DEFAULT_WINDOW).max(1);
    let traced = match id {
        "e5" | "e05" => trace_e5(window),
        "e6" | "e06" => trace_e6(window),
        other => {
            return Err(format!(
                "'{other}' has no trace harness (traceable experiments: e5, e6)"
            ))
        }
    };
    let doc = vcd::export(traced.entries.iter(), &traced.topo);
    let (signals, changes) =
        vcd::validate(&doc).map_err(|e| format!("exported VCD failed validation: {e}"))?;
    validate_json(&traced.metrics_json)
        .map_err(|e| format!("metrics JSON failed validation: {e}"))?;
    let mut report = traced.report;
    let _ = writeln!(
        report,
        "\nVCD export: {signals} signals, {changes} value changes (validated)"
    );
    Ok(TraceOutput {
        report,
        vcd: doc,
        metrics: traced.metrics_json,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_trace_reconstructs_fig5_from_the_probe_stream() {
        let out = run("e5", None).expect("e5 traces");
        // The fused cut-through cell of the paper's table, rebuilt from
        // BankAccess events alone.
        assert!(out.report.contains("W0+R i0 o1"), "{}", out.report);
        assert!(out.vcd.contains("m0_ctrl"), "per-stage control signals");
        assert!(out.metrics.contains("\"departed\": 3"), "{}", out.metrics);
    }

    #[test]
    fn e6_trace_exports_validated_vcd_and_metrics() {
        let out = run("e6", Some(512)).expect("e6 traces");
        let (signals, changes) = vcd::validate(&out.vcd).expect("VCD well-formed");
        assert!(signals > 0 && changes > 0);
        validate_json(&out.metrics).expect("metrics well-formed");
        assert!(out.report.contains("departed"));
    }

    #[test]
    fn last_window_bounds_the_stream() {
        let big = run("e6", Some(4096)).expect("wide window");
        let small = run("e6", Some(16)).expect("narrow window");
        assert!(small.vcd.len() < big.vcd.len(), "window must clamp the VCD");
    }

    #[test]
    fn unknown_ids_are_rejected() {
        assert!(run("e1", None).is_err());
        assert!(run("bench", None).is_err());
    }
}
