//! Tracked perf-regression harness (`expt bench [--gate]`).
//!
//! Measures the hot paths the event-horizon work optimizes — behavioral
//! and RTL cycle cost, and fast-forward vs dense stepping at 10 % / 50 %
//! / 95 % offered load — and emits the summary as `BENCH_core.json`.
//! `--gate` instead *reads* the committed `BENCH_core.json` as the
//! baseline and fails when the new numbers fall outside the tolerance
//! band. Absolute nanoseconds are machine-dependent, so the gate checks
//! only machine-portable quantities: the fast-forward speedup ratios
//! (each must stay within a wide band of the baseline, and the low-load
//! point must clear a hard 2.5× floor — backed off from the 3× number
//! the committed baseline demonstrates, to absorb CI-runner jitter),
//! the skipped-cycle fractions (deterministic given the seeds, so they
//! get a tight band), and the dense-path before/after ratios vs the
//! frozen scalar references (both legs run in-process, so the full-load
//! band gets a hard 1.5× floor and every band a no-regression floor).
//! All wall-clock numbers are best-of-N — shared-runner noise is
//! strictly additive, so the minimum estimates true cost.

use crate::e06;
use fabric::{topo, ElementKind, Fabric, Pattern, Workload};
use simkernel::SplitMix64;
use std::fmt::Write as _;
use std::time::Instant;
use switch_core::behavioral::BehavioralSwitch;
use switch_core::config::SwitchConfig;
use switch_core::reference::{BehavioralSwitchRef, PipelinedSwitchRef};
use switch_core::rtl::PipelinedSwitch;
use telemetry::{NullSink, ProbeHandle};
use traffic::{DestDist, PacketFeeder};

/// One fast-forward-vs-dense measurement point.
#[derive(Debug, Clone, Copy)]
pub struct FfPoint {
    /// Offered link load.
    pub load: f64,
    /// Dense per-cycle stepping (one `tick` per cycle, no idle
    /// batching), ns per simulated cycle.
    pub dense_ns: f64,
    /// Event-horizon fast-forwarding, ns per simulated cycle.
    pub ff_ns: f64,
    /// dense_ns / ff_ns.
    pub speedup: f64,
    /// Fraction of simulated cycles the kernel skipped.
    pub skipped_fraction: f64,
}

/// One low-load E6 row timed end to end: the full size grid at one
/// offered load, run once through `e06::measure_reference` (the pre-PR
/// per-cycle implementation) and once through the event-driven
/// `e06::measure`. Bit-exactness of the fast path is asserted against
/// `e06::measure_dense` (dense replay of the same schedule) alongside.
#[derive(Debug, Clone, Copy)]
pub struct E6Wall {
    /// Offered link load.
    pub load: f64,
    /// Wall seconds for the pre-PR per-cycle implementation across the
    /// size grid.
    pub dense_secs: f64,
    /// Wall seconds for the event-driven fast-forward implementation
    /// across the size grid.
    pub ff_secs: f64,
    /// dense_secs / ff_secs.
    pub speedup: f64,
}

/// Telemetry-overhead check: the same behavioral schedule run with no
/// probe attached vs with a [`NullSink`] probe. Baseline-free — both
/// sides run in the same process on the same machine, so the ratio is
/// machine-portable where absolute nanoseconds are not.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryCheck {
    /// ns per cycle, probe field `None` (the shipped hot path).
    pub plain_ns: f64,
    /// ns per cycle with a `NullSink` attached (every emission site
    /// constructs and discards its event).
    pub null_sink_ns: f64,
    /// null_sink_ns / plain_ns.
    pub ratio: f64,
    /// Departure counts were byte-identical between the two runs.
    pub departures_match: bool,
}

/// One dense-path before/after point: the frozen scalar reference
/// (`switch_core::reference`) vs the bit-parallel model, same schedule,
/// same process. The ratio is machine-portable where absolute
/// nanoseconds are not, so the gate can put a hard floor under it.
#[derive(Debug, Clone, Copy)]
pub struct DensePoint {
    /// Offered link load.
    pub load: f64,
    /// Frozen scalar reference, ns per simulated cycle.
    pub scalar_ref_ns: f64,
    /// Bit-parallel dense path, ns per simulated cycle.
    pub bitparallel_ns: f64,
    /// scalar_ref_ns / bitparallel_ns.
    pub speedup: f64,
}

/// One RTL twin comparison point, run switch-only (the wire schedule is
/// rendered outside the timed region, so feeder RNG cost — ~25 % of the
/// feeders-in-loop number — does not dilute the ratio). Measured at low
/// load, where the wave ring and lazy bank opening replace the old
/// O(stages)-every-cycle bookkeeping, and at high load, where per-word
/// bank accesses dominate and the rework must simply not regress.
#[derive(Debug, Clone, Copy)]
pub struct RtlCompare {
    /// Offered link load.
    pub load: f64,
    /// Frozen scalar reference RTL, ns per simulated cycle.
    pub scalar_ref_ns: f64,
    /// Reworked RTL (wave ring, occupancy words), ns per cycle.
    pub bitparallel_ns: f64,
    /// scalar_ref_ns / bitparallel_ns.
    pub speedup: f64,
}

/// Fabric-runtime scaling check: the 1024-endpoint omega of behavioral
/// pipelined-memory elements run sequentially and with four worker
/// shards, same workload. Both legs run in this process, so the speedup
/// ratio is machine-portable; absolute cell rates are recorded for the
/// EXPERIMENTS.md scaling table but not gated.
#[derive(Debug, Clone, Copy)]
pub struct FabricPerf {
    /// `available_parallelism()` on the measuring machine — the gate
    /// only demands real speedup where real cores exist.
    pub cores: usize,
    /// Million cells (offered + delivered) per wall second, `jobs = 1`.
    pub seq_mcells: f64,
    /// Million cells per wall second, `jobs = 4`.
    pub par_mcells: f64,
    /// seq wall / par wall.
    pub speedup: f64,
    /// The sharded run's content digest matched the sequential run's.
    pub bit_exact: bool,
}

/// The full measurement set behind `BENCH_core.json`.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Behavioral model, ns per cycle at 50 % load (dense).
    pub behavioral_cycle_ns: f64,
    /// Pipelined RTL, ns per cycle at 80 % load (feeders in loop — the
    /// historical end-to-end number).
    pub rtl_cycle_ns: f64,
    /// Dense-path before/after at 10 % / 50 % / 95 % load.
    pub dense: Vec<DensePoint>,
    /// RTL before/after at 10 % / 80 % load, switch-only.
    pub rtl: Vec<RtlCompare>,
    /// Fast-forward points at 10 % / 50 % / 95 % load.
    pub ff: Vec<FfPoint>,
    /// E6's low-load rows (≤ 25 % offered load) timed dense vs
    /// fast-forward — the EXPERIMENTS.md runtime-table numbers.
    pub e6: Vec<E6Wall>,
    /// Telemetry-off vs NullSink overhead on the behavioral hot path.
    pub telemetry: TelemetryCheck,
    /// Fabric-runtime sequential vs sharded scaling check.
    pub fabric: FabricPerf,
}

/// Simulated cycles per measurement (quick mode shrinks for CI smoke).
fn cycles(quick: bool) -> u64 {
    match std::env::var("BENCH_CYCLES")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(c) => c,
        None if quick => 120_000,
        None => 400_000,
    }
}

/// The e06-style arrival schedule at load `p`: per-input busy-counter
/// simulation replaying the exact RNG draw order of a dense drive loop.
fn schedule(n: usize, s: usize, p: f64, total: u64, seed: u64) -> Vec<(u64, usize, usize)> {
    let q = if p >= 1.0 {
        1.0
    } else {
        p / (p + s as f64 * (1.0 - p))
    };
    let mut rng = SplitMix64::new(seed);
    let mut busy = vec![0usize; n];
    let mut sched = Vec::new();
    for t in 0..total {
        for (i, b) in busy.iter_mut().enumerate() {
            if *b == 0 {
                if rng.chance(q) {
                    sched.push((t, i, rng.below_usize(n)));
                    *b = s - 1;
                }
            } else {
                *b -= 1;
            }
        }
    }
    sched
}

/// Dense replay: tick every cycle. Returns the departure count (a
/// black-box sink and a cross-check against the fast path).
pub fn behavioral_dense(n: usize, sched: &[(u64, usize, usize)], total: u64) -> u64 {
    behavioral_dense_probed(n, sched, total, None)
}

/// Dense replay with an optional probe attached — the telemetry-overhead
/// measurement point.
pub fn behavioral_dense_probed(
    n: usize,
    sched: &[(u64, usize, usize)],
    total: u64,
    probe: Option<ProbeHandle>,
) -> u64 {
    let mut sw = BehavioralSwitch::new(SwitchConfig::symmetric(n, 4 * n.max(8)));
    if let Some(p) = probe {
        sw.attach_probe(p);
    }
    let mut arr = vec![None; n];
    let mut k = 0;
    let mut t = 0u64;
    // Dense = execute every cycle (no horizon skipping), but idle-input
    // spans between scheduled arrivals go through the fused batch entry
    // — the bit-parallel dense path's multi-cycle kernel — instead of
    // per-cycle wrapper calls. Bit-exact by the `BatchTick` contract
    // (pinned by `tests/bitparallel_diff.rs` against the frozen scalar
    // reference).
    while t < total {
        if k < sched.len() && sched[k].0 == t {
            arr.fill(None);
            while k < sched.len() && sched[k].0 == t {
                arr[sched[k].1] = Some(sched[k].2);
                k += 1;
            }
            sw.tick(&arr);
            t += 1;
        } else {
            let next = if k < sched.len() { sched[k].0 } else { total };
            sw.tick_idle_batch(next - t);
            t = next;
        }
    }
    sw.departures().len() as u64
}

/// Fast-forward replay through the event-horizon kernel. Returns
/// (departures, cycles skipped).
pub fn behavioral_ff(n: usize, sched: &[(u64, usize, usize)], total: u64) -> (u64, u64) {
    let mut sw = BehavioralSwitch::new(SwitchConfig::symmetric(n, 4 * n.max(8)));
    let mut arr = vec![None; n];
    let mut k = 0;
    let before = simkernel::horizon::ff_skipped();
    while k < sched.len() {
        let t = sched[k].0;
        simkernel::horizon::advance_to_batched(&mut sw, t);
        arr.fill(None);
        while k < sched.len() && sched[k].0 == t {
            arr[sched[k].1] = Some(sched[k].2);
            k += 1;
        }
        sw.tick(&arr);
    }
    simkernel::horizon::advance_to_batched(&mut sw, total);
    let skipped = simkernel::horizon::ff_skipped() - before;
    (sw.departures().len() as u64, skipped)
}

/// Per-cycle dense replay of the bit-parallel model: one `tick` per
/// simulated cycle, no idle batching. This is the "dense stepping" leg
/// of the fast-forward comparison — the driver-level baseline the
/// horizon kernel is supposed to beat.
pub fn behavioral_dense_percycle(n: usize, sched: &[(u64, usize, usize)], total: u64) -> u64 {
    let mut sw = BehavioralSwitch::new(SwitchConfig::symmetric(n, 4 * n.max(8)));
    let mut arr = vec![None; n];
    let mut k = 0;
    for t in 0..total {
        arr.fill(None);
        while k < sched.len() && sched[k].0 == t {
            arr[sched[k].1] = Some(sched[k].2);
            k += 1;
        }
        sw.tick(&arr);
    }
    sw.departures().len() as u64
}

/// Scalar-reference dense replay: per-cycle ticks on the frozen pre-PR
/// model — the "before" leg of the dense-path comparison.
pub fn behavioral_dense_ref(n: usize, sched: &[(u64, usize, usize)], total: u64) -> u64 {
    let mut sw = BehavioralSwitchRef::new(SwitchConfig::symmetric(n, 4 * n.max(8)));
    let mut arr = vec![None; n];
    let mut k = 0;
    for t in 0..total {
        arr.fill(None);
        while k < sched.len() && sched[k].0 == t {
            arr[sched[k].1] = Some(sched[k].2);
            k += 1;
        }
        sw.tick(&arr);
    }
    sw.departures().len() as u64
}

/// Pre-render a feeder-driven wire schedule so the RTL comparison times
/// the switch, not the traffic generator.
fn render_wires(n: usize, s: usize, load: f64, total: u64, seed: u64) -> Vec<Vec<Option<u64>>> {
    let mut feeders: Vec<PacketFeeder> = (0..n)
        .map(|i| PacketFeeder::random(i, s, load, DestDist::uniform(n), seed, n as u64))
        .collect();
    (0..total)
        .map(|t| (0..n).map(|i| feeders[i].tick(t)).collect())
        .collect()
}

/// Replay a pre-rendered wire schedule on the reworked RTL switch.
pub fn rtl_dense(cfg: &SwitchConfig, wires: &[Vec<Option<u64>>]) -> u64 {
    let mut sw = PipelinedSwitch::new(cfg.clone());
    for w in wires {
        sw.tick(w);
    }
    sw.counters().departed
}

/// Same replay on the frozen scalar-reference RTL.
pub fn rtl_dense_ref(cfg: &SwitchConfig, wires: &[Vec<Option<u64>>]) -> u64 {
    let mut sw = PipelinedSwitchRef::new(cfg.clone());
    for w in wires {
        sw.tick(w);
    }
    sw.counters().departed
}

fn time<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = std::hint::black_box(f());
    (t0.elapsed().as_secs_f64(), r)
}

/// Best-of-`k` timing. Shared-runner noise is strictly additive
/// (scheduler preemption, cache eviction by neighbors), so the minimum
/// is the best estimator of the true cost. Also asserts the runs agree
/// on their result — the measured code must be deterministic.
fn min_of<R: PartialEq + std::fmt::Debug>(k: usize, mut f: impl FnMut() -> (f64, R)) -> (f64, R) {
    let (mut best, first) = f();
    for _ in 1..k {
        let (secs, r) = f();
        assert_eq!(r, first, "measured code was not deterministic across runs");
        best = best.min(secs);
    }
    (best, first)
}

/// Run every measurement.
pub fn measure(quick: bool) -> PerfReport {
    let n = 4;
    let s = SwitchConfig::symmetric(n, 4 * n).stages();
    let total = cycles(quick);
    let reps = if quick { 2 } else { 3 };

    let mid = schedule(n, s, 0.5, total, 0xBE7C);
    let (behavioral_secs, _) = min_of(reps, || time(|| behavioral_dense(n, &mid, total)));

    let rtl_total = total / 4;
    let (rtl_secs, _) = min_of(reps, || {
        time(|| {
            let cfg = SwitchConfig::symmetric(n, 4 * n);
            let sw_s = cfg.stages();
            let mut sw = PipelinedSwitch::new(cfg);
            let mut feeders: Vec<PacketFeeder> = (0..n)
                .map(|i| PacketFeeder::random(i, sw_s, 0.8, DestDist::uniform(n), 3, n as u64))
                .collect();
            let mut wire = vec![None; n];
            for _ in 0..rtl_total {
                for (i, f) in feeders.iter_mut().enumerate() {
                    wire[i] = f.tick(sw.now());
                }
                sw.tick(&wire);
            }
            sw.counters().departed
        })
    });

    // Dense-path before/after: frozen scalar reference vs bit-parallel
    // model on the same schedule, in this process. Departure equality is
    // asserted on every leg — the speedup only counts if the behavior is
    // identical.
    let dense: Vec<DensePoint> = [0.10, 0.50, 0.95]
        .iter()
        .map(|&p| {
            let sched = schedule(n, s, p, total, 0xD0 + (p * 100.0) as u64);
            let (ref_secs, ref_deps) =
                min_of(reps, || time(|| behavioral_dense_ref(n, &sched, total)));
            let (new_secs, new_deps) = min_of(reps, || time(|| behavioral_dense(n, &sched, total)));
            assert_eq!(
                ref_deps, new_deps,
                "bit-parallel path diverged from scalar reference at load {p}"
            );
            let scalar_ref_ns = ref_secs * 1e9 / total as f64;
            let bitparallel_ns = new_secs * 1e9 / total as f64;
            DensePoint {
                load: p,
                scalar_ref_ns,
                bitparallel_ns,
                speedup: scalar_ref_ns / bitparallel_ns.max(1e-12),
            }
        })
        .collect();

    // RTL twins, switch-only: the same pre-rendered wire schedule
    // through both models, at an idle-dominated and a busy load point.
    let rtl: Vec<RtlCompare> = [0.10, 0.80]
        .iter()
        .map(|&p| {
            let cfg = SwitchConfig::symmetric(n, 4 * n);
            let wires = render_wires(n, cfg.stages(), p, rtl_total, 3);
            let (ref_secs, ref_deps) = min_of(reps, || time(|| rtl_dense_ref(&cfg, &wires)));
            let (new_secs, new_deps) = min_of(reps, || time(|| rtl_dense(&cfg, &wires)));
            assert_eq!(
                ref_deps, new_deps,
                "RTL rework diverged from scalar reference at load {p}"
            );
            let scalar_ref_ns = ref_secs * 1e9 / rtl_total as f64;
            let bitparallel_ns = new_secs * 1e9 / rtl_total as f64;
            RtlCompare {
                load: p,
                scalar_ref_ns,
                bitparallel_ns,
                speedup: scalar_ref_ns / bitparallel_ns.max(1e-12),
            }
        })
        .collect();

    let ff = [0.10, 0.50, 0.95]
        .iter()
        .map(|&p| {
            let sched = schedule(n, s, p, total, 0xF0 + (p * 100.0) as u64);
            let (dense_secs, dense_deps) = min_of(reps, || {
                time(|| behavioral_dense_percycle(n, &sched, total))
            });
            // `skipped` is a delta of a process-global counter, so only
            // the departure count takes part in the determinism check.
            let (ff_secs, (ff_deps, skipped)) = {
                let (s0, (d0, k0)) = time(|| behavioral_ff(n, &sched, total));
                let mut best = s0;
                for _ in 1..reps {
                    let (s1, (d1, _)) = time(|| behavioral_ff(n, &sched, total));
                    assert_eq!(d1, d0, "fast-forward replay was not deterministic");
                    best = best.min(s1);
                }
                (best, (d0, k0))
            };
            assert_eq!(
                dense_deps, ff_deps,
                "fast-forward changed the departure count at load {p}"
            );
            let dense_ns = dense_secs * 1e9 / total as f64;
            let ff_ns = ff_secs * 1e9 / total as f64;
            FfPoint {
                load: p,
                dense_ns,
                ff_ns,
                speedup: dense_ns / ff_ns.max(1e-12),
                skipped_fraction: skipped as f64 / total as f64,
            }
        })
        .collect();

    // E6's low-load rows, wall-timed over the experiment's own size grid
    // (the acceptance measurement: ≤ 25 % offered load, before vs after).
    let sizes: &[usize] = if quick { &[4, 8] } else { &[2, 4, 8, 16] };
    let e6 = [0.10, 0.20]
        .iter()
        .map(|&p| {
            let (mut dense_secs, mut ff_secs) = (0.0, 0.0);
            for &sn in sizes {
                let (ds, reference) = time(|| e06::measure_reference(sn, p, total, 0xE6));
                let (fs, fast) = time(|| e06::measure(sn, p, total, 0xE6));
                // Bit-exactness holds against a dense replay of the same
                // schedule; the pre-PR fused loop draws from a different
                // stream, so it agrees only statistically.
                let oracle = e06::measure_dense(sn, p, total, 0xE6);
                assert_eq!(
                    oracle.to_bits(),
                    fast.to_bits(),
                    "e6 fast-forward diverged at n={sn} load {p}"
                );
                assert!(
                    (reference - fast).abs() < 0.1,
                    "e6 statistic drifted at n={sn} load {p}: {reference} vs {fast}"
                );
                dense_secs += ds;
                ff_secs += fs;
            }
            E6Wall {
                load: p,
                dense_secs,
                ff_secs,
                speedup: dense_secs / ff_secs.max(1e-12),
            }
        })
        .collect();

    // Telemetry overhead: the same mid-load schedule, probe off vs a
    // NullSink. Both legs run back to back so the ratio is comparable
    // even on a noisy shared runner.
    let (plain_secs, plain_deps) = min_of(reps, || time(|| behavioral_dense(n, &mid, total)));
    let (null_secs, null_deps) = min_of(reps, || {
        time(|| behavioral_dense_probed(n, &mid, total, Some(ProbeHandle::new(NullSink))))
    });
    let plain_ns = plain_secs * 1e9 / total as f64;
    let null_sink_ns = null_secs * 1e9 / total as f64;
    let telemetry = TelemetryCheck {
        plain_ns,
        null_sink_ns,
        ratio: null_sink_ns / plain_ns.max(1e-12),
        departures_match: plain_deps == null_deps,
    };

    // Fabric scaling: the 1024-endpoint omega of behavioral elements,
    // sequential vs four conservative-window worker shards, identical
    // workload. The digest comparison makes every gated run also a
    // bit-exactness check of the sharded executor.
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let fab_slots: u64 = if quick { 96 } else { 384 };
    let fab_wl = Workload {
        pattern: Pattern::Uniform,
        load: 0.6,
        seed: 0xFAB,
    };
    let fab_leg = |jobs: usize| {
        let mut fab = Fabric::new(topo::omega(4, 5), ElementKind::Behavioral { slots: 16 });
        let run = fab.run(fab_slots, 64, &fab_wl, jobs);
        (run.offered + run.delivered_total(), run.digest())
    };
    let (seq_secs, (seq_cells, seq_digest)) = min_of(reps, || time(|| fab_leg(1)));
    let (par_secs, (_, par_digest)) = min_of(reps, || time(|| fab_leg(4)));
    let fabric = FabricPerf {
        cores,
        seq_mcells: seq_cells as f64 / seq_secs.max(1e-12) / 1e6,
        par_mcells: seq_cells as f64 / par_secs.max(1e-12) / 1e6,
        speedup: seq_secs / par_secs.max(1e-12),
        bit_exact: seq_digest == par_digest,
    };

    PerfReport {
        behavioral_cycle_ns: behavioral_secs * 1e9 / total as f64,
        rtl_cycle_ns: rtl_secs * 1e9 / rtl_total as f64,
        dense,
        rtl,
        ff,
        e6,
        telemetry,
        fabric,
    }
}

/// Render `BENCH_core.json` (hand-rolled: the workspace builds offline,
/// without serde).
pub fn to_json(r: &PerfReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(
        s,
        "  \"behavioral_cycle_ns\": {:.1},",
        r.behavioral_cycle_ns
    );
    let _ = writeln!(s, "  \"rtl_cycle_ns\": {:.1},", r.rtl_cycle_ns);
    s.push_str("  \"dense_path\": [\n");
    for (k, p) in r.dense.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"dense_load\": {:.2}, \"scalar_ref_ns\": {:.1}, \
             \"bitparallel_ns\": {:.1}, \"dense_speedup\": {:.2}}}",
            p.load, p.scalar_ref_ns, p.bitparallel_ns, p.speedup
        );
        s.push_str(if k + 1 < r.dense.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"rtl_compare\": [\n");
    for (k, p) in r.rtl.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"rtl_load\": {:.2}, \"scalar_ref_ns\": {:.1}, \"bitparallel_ns\": {:.1}, \
             \"rtl_speedup\": {:.2}}}",
            p.load, p.scalar_ref_ns, p.bitparallel_ns, p.speedup
        );
        s.push_str(if k + 1 < r.rtl.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"fast_forward\": [\n");
    for (k, p) in r.ff.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"load\": {:.2}, \"dense_ns_per_cycle\": {:.1}, \"ff_ns_per_cycle\": {:.1}, \
             \"speedup\": {:.2}, \"skipped_fraction\": {:.4}}}",
            p.load, p.dense_ns, p.ff_ns, p.speedup, p.skipped_fraction
        );
        s.push_str(if k + 1 < r.ff.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"e6_low_load_wall\": [\n");
    for (k, w) in r.e6.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"e6_load\": {:.2}, \"dense_secs\": {:.3}, \"ff_secs\": {:.3}, \
             \"wall_speedup\": {:.2}}}",
            w.load, w.dense_secs, w.ff_secs, w.speedup
        );
        s.push_str(if k + 1 < r.e6.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"telemetry\": {{\"plain_ns\": {:.1}, \"null_sink_ns\": {:.1}, \
         \"overhead_ratio\": {:.3}, \"departures_match\": {}}},",
        r.telemetry.plain_ns,
        r.telemetry.null_sink_ns,
        r.telemetry.ratio,
        r.telemetry.departures_match
    );
    let _ = writeln!(
        s,
        "  \"fabric\": {{\"cores\": {}, \"fabric_seq_mcells\": {:.2}, \
         \"fabric_par_mcells\": {:.2}, \"fabric_speedup\": {:.2}, \"fabric_bit_exact\": {}}}",
        r.fabric.cores,
        r.fabric.seq_mcells,
        r.fabric.par_mcells,
        r.fabric.speedup,
        r.fabric.bit_exact
    );
    s.push_str("}\n");
    s
}

/// Human summary.
pub fn render(r: &PerfReport) -> String {
    let mut s = String::from("perf: core hot-path benchmarks\n");
    let _ = writeln!(
        s,
        "  behavioral cycle: {:7.1} ns   rtl cycle: {:7.1} ns",
        r.behavioral_cycle_ns, r.rtl_cycle_ns
    );
    for p in &r.dense {
        let _ = writeln!(
            s,
            "  dense path @ {:>3.0}%: scalar ref {:7.1} ns/cyc -> bit-parallel {:7.1} ns/cyc \
             ({:4.2}x)",
            p.load * 100.0,
            p.scalar_ref_ns,
            p.bitparallel_ns,
            p.speedup
        );
    }
    for p in &r.rtl {
        let _ = writeln!(
            s,
            "  rtl switch-only @ {:>3.0}%: scalar ref {:7.1} ns/cyc -> reworked {:7.1} ns/cyc \
             ({:4.2}x)",
            p.load * 100.0,
            p.scalar_ref_ns,
            p.bitparallel_ns,
            p.speedup
        );
    }
    for p in &r.ff {
        let _ = writeln!(
            s,
            "  load {:>4.0}%: dense {:7.1} ns/cyc, fast-forward {:7.1} ns/cyc — \
             {:5.1}x speedup, {:5.1}% cycles skipped",
            p.load * 100.0,
            p.dense_ns,
            p.ff_ns,
            p.speedup,
            p.skipped_fraction * 100.0
        );
    }
    for w in &r.e6 {
        let _ = writeln!(
            s,
            "  e6 size grid @ load {:>3.0}%: dense {:6.2} s, fast-forward {:6.2} s — {:5.1}x wall speedup",
            w.load * 100.0,
            w.dense_secs,
            w.ff_secs,
            w.speedup
        );
    }
    let _ = writeln!(
        s,
        "  telemetry off {:7.1} ns/cyc, NullSink {:7.1} ns/cyc — {:.3}x overhead, departures {}",
        r.telemetry.plain_ns,
        r.telemetry.null_sink_ns,
        r.telemetry.ratio,
        if r.telemetry.departures_match {
            "identical"
        } else {
            "DIVERGED"
        }
    );
    let _ = writeln!(
        s,
        "  fabric omega-1024 behavioral: seq {:.2} Mcells/s, 4-shard {:.2} Mcells/s — \
         {:.2}x on {} core(s), sharded run {}",
        r.fabric.seq_mcells,
        r.fabric.par_mcells,
        r.fabric.speedup,
        r.fabric.cores,
        if r.fabric.bit_exact {
            "bit-exact"
        } else {
            "DIVERGED"
        }
    );
    s
}

/// Pull `"key": <float>` out of a JSON line (the format `to_json` emits).
fn grab(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Baseline numbers parsed back out of a committed `BENCH_core.json`.
pub struct Baseline {
    /// (load, speedup, skipped_fraction) per fast-forward point.
    pub ff: Vec<(f64, f64, f64)>,
}

/// Parse the committed baseline.
pub fn parse_baseline(json: &str) -> Option<Baseline> {
    let ff: Vec<(f64, f64, f64)> = json
        .lines()
        .filter(|l| l.contains("\"load\""))
        .filter_map(|l| {
            Some((
                grab(l, "load")?,
                grab(l, "speedup")?,
                grab(l, "skipped_fraction")?,
            ))
        })
        .collect();
    (!ff.is_empty()).then_some(Baseline { ff })
}

/// Gate `fresh` against `baseline`. Returns every violation (empty =
/// pass). Bands: each speedup must reach 40 % of its baseline (wall
/// clock is noisy in CI), the 10 %-load point must additionally clear a
/// hard 2.5× floor (the committed baseline records 3.5×; the floor is
/// backed off from the 3× acceptance number only to absorb shared-runner
/// jitter), and skipped fractions — deterministic given the seeds —
/// must sit within ±0.05 of the baseline.
pub fn gate(fresh: &PerfReport, baseline: &Baseline) -> Vec<String> {
    let mut violations = Vec::new();
    // Telemetry checks are baseline-free (both legs ran in this very
    // process): with the probe off the hot path must stay the hot path,
    // and attaching a NullSink must not change behavior at all.
    if !fresh.telemetry.departures_match {
        violations.push(
            "attaching a NullSink probe changed the departure count — \
             telemetry is not behavior-neutral"
                .to_string(),
        );
    }
    if fresh.telemetry.ratio > 1.5 {
        violations.push(format!(
            "NullSink telemetry overhead {:.3}x exceeds the 1.5x bound",
            fresh.telemetry.ratio
        ));
    }
    // Dense-path floors are baseline-free too: both legs of each ratio
    // ran in this process, so the ratio is machine-portable. The full-
    // load point carries the PR's headline claim (≥ 2× measured on the
    // reference machine; the floor is backed off to absorb runner
    // jitter), the rest must simply never regress past noise.
    for p in &fresh.dense {
        let floor = if p.load > 0.9 { 1.5 } else { 0.9 };
        if p.speedup < floor {
            violations.push(format!(
                "dense path at load {:.0}%: {:.2}x vs scalar reference, below the {:.1}x floor",
                p.load * 100.0,
                p.speedup,
                floor
            ));
        }
    }
    // Fabric floors are baseline-free as well: both legs ran in this
    // process. Bit-exactness is absolute; the speedup floor scales with
    // the cores actually present — a four-shard run on a one-core box
    // only has to avoid catastrophic overhead, on four real cores it
    // must deliver genuine parallel speedup.
    if !fresh.fabric.bit_exact {
        violations.push(
            "sharded fabric run diverged from the sequential reference — \
             the conservative-window executor is not bit-exact"
                .to_string(),
        );
    }
    let fab_floor = if fresh.fabric.cores >= 4 {
        1.05
    } else if fresh.fabric.cores >= 2 {
        0.5
    } else {
        0.2
    };
    if fresh.fabric.speedup < fab_floor {
        violations.push(format!(
            "fabric 4-shard speedup {:.2}x on {} core(s), below the {:.2}x floor",
            fresh.fabric.speedup, fresh.fabric.cores, fab_floor
        ));
    }
    for p in &fresh.rtl {
        if p.speedup < 0.85 {
            violations.push(format!(
                "RTL rework at load {:.0}%: {:.2}x vs scalar reference — slower than the \
                 pre-rework model",
                p.load * 100.0,
                p.speedup
            ));
        }
    }
    for p in &fresh.ff {
        let Some(&(_, base_speedup, base_skip)) = baseline
            .ff
            .iter()
            .find(|(l, _, _)| (l - p.load).abs() < 1e-6)
        else {
            violations.push(format!("baseline has no point at load {:.2}", p.load));
            continue;
        };
        if p.load < 0.2 && p.speedup < 2.5 {
            violations.push(format!(
                "low-load fast-forward speedup {:.2}x below the 2.5x floor",
                p.speedup
            ));
        }
        if p.speedup < 0.4 * base_speedup {
            violations.push(format!(
                "load {:.0}%: speedup {:.2}x fell below 40% of baseline {:.2}x",
                p.load * 100.0,
                p.speedup,
                base_speedup
            ));
        }
        if (p.skipped_fraction - base_skip).abs() > 0.05 {
            violations.push(format!(
                "load {:.0}%: skipped fraction {:.4} drifted from baseline {:.4}",
                p.load * 100.0,
                p.skipped_fraction,
                base_skip
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fabric section that passes every gate floor (one core, so only
    /// the catastrophic floor applies).
    fn ok_fabric() -> FabricPerf {
        FabricPerf {
            cores: 1,
            seq_mcells: 1.0,
            par_mcells: 0.5,
            speedup: 0.5,
            bit_exact: true,
        }
    }

    #[test]
    fn dense_and_ff_replay_agree() {
        let n = 4;
        let s = SwitchConfig::symmetric(n, 4 * n.max(8)).stages();
        let sched = schedule(n, s, 0.2, 30_000, 7);
        let d = behavioral_dense(n, &sched, 30_000);
        let (f, skipped) = behavioral_ff(n, &sched, 30_000);
        assert_eq!(d, f, "departure counts must match");
        assert!(skipped > 0, "low load must skip cycles");
    }

    #[test]
    fn json_roundtrips_through_the_gate_parser() {
        let r = PerfReport {
            behavioral_cycle_ns: 120.0,
            rtl_cycle_ns: 450.0,
            dense: vec![
                DensePoint {
                    load: 0.95,
                    scalar_ref_ns: 148.0,
                    bitparallel_ns: 70.0,
                    speedup: 2.11,
                },
                DensePoint {
                    load: 0.10,
                    scalar_ref_ns: 40.0,
                    bitparallel_ns: 30.0,
                    speedup: 1.33,
                },
            ],
            rtl: vec![RtlCompare {
                load: 0.80,
                scalar_ref_ns: 400.0,
                bitparallel_ns: 360.0,
                speedup: 1.11,
            }],
            ff: vec![
                FfPoint {
                    load: 0.10,
                    dense_ns: 100.0,
                    ff_ns: 10.0,
                    speedup: 10.0,
                    skipped_fraction: 0.8123,
                },
                FfPoint {
                    load: 0.95,
                    dense_ns: 100.0,
                    ff_ns: 90.0,
                    speedup: 1.11,
                    skipped_fraction: 0.01,
                },
            ],
            e6: vec![E6Wall {
                load: 0.10,
                dense_secs: 2.0,
                ff_secs: 0.5,
                speedup: 4.0,
            }],
            telemetry: TelemetryCheck {
                plain_ns: 100.0,
                null_sink_ns: 110.0,
                ratio: 1.1,
                departures_match: true,
            },
            fabric: ok_fabric(),
        };
        let b = parse_baseline(&to_json(&r)).expect("parses");
        assert_eq!(b.ff.len(), 2);
        assert!((b.ff[0].1 - 10.0).abs() < 1e-6);
        assert!((b.ff[0].2 - 0.8123).abs() < 1e-6);
        assert!(gate(&r, &b).is_empty(), "self-gate must pass");
    }

    #[test]
    fn gate_catches_regressions() {
        let base = Baseline {
            ff: vec![(0.10, 10.0, 0.80)],
        };
        let bad = PerfReport {
            behavioral_cycle_ns: 0.0,
            rtl_cycle_ns: 0.0,
            dense: vec![],
            rtl: vec![RtlCompare {
                load: 0.80,
                scalar_ref_ns: 400.0,
                bitparallel_ns: 400.0,
                speedup: 1.0,
            }],
            ff: vec![FfPoint {
                load: 0.10,
                dense_ns: 100.0,
                ff_ns: 50.0,
                speedup: 2.0,
                skipped_fraction: 0.30,
            }],
            e6: vec![],
            telemetry: TelemetryCheck {
                plain_ns: 100.0,
                null_sink_ns: 100.0,
                ratio: 1.0,
                departures_match: true,
            },
            fabric: ok_fabric(),
        };
        let v = gate(&bad, &base);
        assert_eq!(v.len(), 3, "floor + band + skip drift: {v:?}");
    }

    #[test]
    fn gate_catches_telemetry_regressions() {
        let base = Baseline {
            ff: vec![(0.10, 10.0, 0.80)],
        };
        let bad = PerfReport {
            behavioral_cycle_ns: 0.0,
            rtl_cycle_ns: 0.0,
            dense: vec![],
            rtl: vec![RtlCompare {
                load: 0.80,
                scalar_ref_ns: 400.0,
                bitparallel_ns: 400.0,
                speedup: 1.0,
            }],
            ff: vec![],
            e6: vec![],
            telemetry: TelemetryCheck {
                plain_ns: 100.0,
                null_sink_ns: 200.0,
                ratio: 2.0,
                departures_match: false,
            },
            fabric: ok_fabric(),
        };
        let v = gate(&bad, &base);
        assert_eq!(v.len(), 2, "overhead bound + behavior drift: {v:?}");
        assert!(v.iter().any(|m| m.contains("1.5x")));
        assert!(v.iter().any(|m| m.contains("behavior-neutral")));
    }

    #[test]
    fn gate_holds_the_dense_path_floors() {
        let base = Baseline { ff: vec![] };
        let bad = PerfReport {
            behavioral_cycle_ns: 0.0,
            rtl_cycle_ns: 0.0,
            dense: vec![
                DensePoint {
                    load: 0.95,
                    scalar_ref_ns: 148.0,
                    bitparallel_ns: 120.0,
                    speedup: 1.23, // below the 1.5x full-load floor
                },
                DensePoint {
                    load: 0.50,
                    scalar_ref_ns: 100.0,
                    bitparallel_ns: 125.0,
                    speedup: 0.8, // a regression vs the scalar reference
                },
            ],
            rtl: vec![RtlCompare {
                load: 0.80,
                scalar_ref_ns: 400.0,
                bitparallel_ns: 500.0,
                speedup: 0.8, // below the 0.85x no-regression floor
            }],
            ff: vec![],
            e6: vec![],
            telemetry: TelemetryCheck {
                plain_ns: 100.0,
                null_sink_ns: 100.0,
                ratio: 1.0,
                departures_match: true,
            },
            fabric: ok_fabric(),
        };
        let v = gate(&bad, &base);
        assert_eq!(v.len(), 3, "two dense floors + rtl floor: {v:?}");
        assert!(v.iter().any(|m| m.contains("95%")));
        assert!(v.iter().any(|m| m.contains("50%")));
        assert!(v.iter().any(|m| m.contains("RTL")));
    }

    #[test]
    fn gate_holds_the_fabric_floors() {
        let base = Baseline { ff: vec![] };
        let mut r = PerfReport {
            behavioral_cycle_ns: 0.0,
            rtl_cycle_ns: 0.0,
            dense: vec![],
            rtl: vec![],
            ff: vec![],
            e6: vec![],
            telemetry: TelemetryCheck {
                plain_ns: 100.0,
                null_sink_ns: 100.0,
                ratio: 1.0,
                departures_match: true,
            },
            fabric: FabricPerf {
                cores: 4,
                seq_mcells: 1.0,
                par_mcells: 0.9,
                speedup: 0.9, // four real cores must beat 1.05x
                bit_exact: false,
            },
        };
        let v = gate(&r, &base);
        assert_eq!(v.len(), 2, "divergence + speedup floor: {v:?}");
        assert!(v.iter().any(|m| m.contains("bit-exact")));
        assert!(v.iter().any(|m| m.contains("1.05x floor")));
        // The same numbers on one core only trip the catastrophic floor.
        r.fabric.cores = 1;
        r.fabric.bit_exact = true;
        assert!(gate(&r, &base).is_empty(), "one-core box: 0.9x passes");
    }
}
