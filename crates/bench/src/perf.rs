//! Tracked perf-regression harness (`expt bench [--gate]`).
//!
//! Measures the hot paths the event-horizon work optimizes — behavioral
//! and RTL cycle cost, and fast-forward vs dense stepping at 10 % / 50 %
//! / 95 % offered load — and emits the summary as `BENCH_core.json`.
//! `--gate` instead *reads* the committed `BENCH_core.json` as the
//! baseline and fails when the new numbers fall outside the tolerance
//! band. Absolute nanoseconds are machine-dependent, so the gate checks
//! only machine-portable quantities: the fast-forward speedup ratios
//! (each must stay within a wide band of the baseline, and the low-load
//! point must clear a hard 2.5× floor — backed off from the 3× number
//! the committed baseline demonstrates, to absorb CI-runner jitter) and
//! the skipped-cycle fractions (deterministic given the seeds, so they
//! get a tight band).

use crate::e06;
use simkernel::SplitMix64;
use std::fmt::Write as _;
use std::time::Instant;
use switch_core::behavioral::BehavioralSwitch;
use switch_core::config::SwitchConfig;
use switch_core::rtl::PipelinedSwitch;
use telemetry::{NullSink, ProbeHandle};
use traffic::{DestDist, PacketFeeder};

/// One fast-forward-vs-dense measurement point.
#[derive(Debug, Clone, Copy)]
pub struct FfPoint {
    /// Offered link load.
    pub load: f64,
    /// Dense per-cycle stepping, ns per simulated cycle.
    pub dense_ns: f64,
    /// Event-horizon fast-forwarding, ns per simulated cycle.
    pub ff_ns: f64,
    /// dense_ns / ff_ns.
    pub speedup: f64,
    /// Fraction of simulated cycles the kernel skipped.
    pub skipped_fraction: f64,
}

/// One low-load E6 row timed end to end: the full size grid at one
/// offered load, run once through `e06::measure_reference` (the pre-PR
/// per-cycle implementation) and once through the event-driven
/// `e06::measure`. Bit-exactness of the fast path is asserted against
/// `e06::measure_dense` (dense replay of the same schedule) alongside.
#[derive(Debug, Clone, Copy)]
pub struct E6Wall {
    /// Offered link load.
    pub load: f64,
    /// Wall seconds for the pre-PR per-cycle implementation across the
    /// size grid.
    pub dense_secs: f64,
    /// Wall seconds for the event-driven fast-forward implementation
    /// across the size grid.
    pub ff_secs: f64,
    /// dense_secs / ff_secs.
    pub speedup: f64,
}

/// Telemetry-overhead check: the same behavioral schedule run with no
/// probe attached vs with a [`NullSink`] probe. Baseline-free — both
/// sides run in the same process on the same machine, so the ratio is
/// machine-portable where absolute nanoseconds are not.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryCheck {
    /// ns per cycle, probe field `None` (the shipped hot path).
    pub plain_ns: f64,
    /// ns per cycle with a `NullSink` attached (every emission site
    /// constructs and discards its event).
    pub null_sink_ns: f64,
    /// null_sink_ns / plain_ns.
    pub ratio: f64,
    /// Departure counts were byte-identical between the two runs.
    pub departures_match: bool,
}

/// The full measurement set behind `BENCH_core.json`.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Behavioral model, ns per cycle at 50 % load (dense).
    pub behavioral_cycle_ns: f64,
    /// Pipelined RTL, ns per cycle at 80 % load.
    pub rtl_cycle_ns: f64,
    /// Fast-forward points at 10 % / 50 % / 95 % load.
    pub ff: Vec<FfPoint>,
    /// E6's low-load rows (≤ 25 % offered load) timed dense vs
    /// fast-forward — the EXPERIMENTS.md runtime-table numbers.
    pub e6: Vec<E6Wall>,
    /// Telemetry-off vs NullSink overhead on the behavioral hot path.
    pub telemetry: TelemetryCheck,
}

/// Simulated cycles per measurement (quick mode shrinks for CI smoke).
fn cycles(quick: bool) -> u64 {
    match std::env::var("BENCH_CYCLES")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(c) => c,
        None if quick => 120_000,
        None => 400_000,
    }
}

/// The e06-style arrival schedule at load `p`: per-input busy-counter
/// simulation replaying the exact RNG draw order of a dense drive loop.
fn schedule(n: usize, s: usize, p: f64, total: u64, seed: u64) -> Vec<(u64, usize, usize)> {
    let q = if p >= 1.0 {
        1.0
    } else {
        p / (p + s as f64 * (1.0 - p))
    };
    let mut rng = SplitMix64::new(seed);
    let mut busy = vec![0usize; n];
    let mut sched = Vec::new();
    for t in 0..total {
        for (i, b) in busy.iter_mut().enumerate() {
            if *b == 0 {
                if rng.chance(q) {
                    sched.push((t, i, rng.below_usize(n)));
                    *b = s - 1;
                }
            } else {
                *b -= 1;
            }
        }
    }
    sched
}

/// Dense replay: tick every cycle. Returns the departure count (a
/// black-box sink and a cross-check against the fast path).
pub fn behavioral_dense(n: usize, sched: &[(u64, usize, usize)], total: u64) -> u64 {
    behavioral_dense_probed(n, sched, total, None)
}

/// Dense replay with an optional probe attached — the telemetry-overhead
/// measurement point.
pub fn behavioral_dense_probed(
    n: usize,
    sched: &[(u64, usize, usize)],
    total: u64,
    probe: Option<ProbeHandle>,
) -> u64 {
    let mut sw = BehavioralSwitch::new(SwitchConfig::symmetric(n, 4 * n.max(8)));
    if let Some(p) = probe {
        sw.attach_probe(p);
    }
    let mut arr = vec![None; n];
    let mut k = 0;
    for t in 0..total {
        arr.fill(None);
        while k < sched.len() && sched[k].0 == t {
            arr[sched[k].1] = Some(sched[k].2);
            k += 1;
        }
        sw.tick(&arr);
    }
    sw.departures().len() as u64
}

/// Fast-forward replay through the event-horizon kernel. Returns
/// (departures, cycles skipped).
pub fn behavioral_ff(n: usize, sched: &[(u64, usize, usize)], total: u64) -> (u64, u64) {
    let mut sw = BehavioralSwitch::new(SwitchConfig::symmetric(n, 4 * n.max(8)));
    let idle: Vec<Option<usize>> = vec![None; n];
    let mut arr = vec![None; n];
    let mut k = 0;
    let before = simkernel::horizon::ff_skipped();
    while k < sched.len() {
        let t = sched[k].0;
        simkernel::horizon::advance_to(&mut sw, t, |m| {
            m.tick(&idle);
        });
        arr.fill(None);
        while k < sched.len() && sched[k].0 == t {
            arr[sched[k].1] = Some(sched[k].2);
            k += 1;
        }
        sw.tick(&arr);
    }
    simkernel::horizon::advance_to(&mut sw, total, |m| {
        m.tick(&idle);
    });
    let skipped = simkernel::horizon::ff_skipped() - before;
    (sw.departures().len() as u64, skipped)
}

fn time<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = std::hint::black_box(f());
    (t0.elapsed().as_secs_f64(), r)
}

/// Run every measurement.
pub fn measure(quick: bool) -> PerfReport {
    let n = 4;
    let s = SwitchConfig::symmetric(n, 4 * n).stages();
    let total = cycles(quick);

    let mid = schedule(n, s, 0.5, total, 0xBE7C);
    let (behavioral_secs, _) = time(|| behavioral_dense(n, &mid, total));

    let rtl_total = total / 4;
    let (rtl_secs, _) = time(|| {
        let cfg = SwitchConfig::symmetric(n, 4 * n);
        let sw_s = cfg.stages();
        let mut sw = PipelinedSwitch::new(cfg);
        let mut feeders: Vec<PacketFeeder> = (0..n)
            .map(|i| PacketFeeder::random(i, sw_s, 0.8, DestDist::uniform(n), 3, n as u64))
            .collect();
        let mut wire = vec![None; n];
        for _ in 0..rtl_total {
            for (i, f) in feeders.iter_mut().enumerate() {
                wire[i] = f.tick(sw.now());
            }
            sw.tick(&wire);
        }
        sw.counters().departed
    });

    let ff = [0.10, 0.50, 0.95]
        .iter()
        .map(|&p| {
            let sched = schedule(n, s, p, total, 0xF0 + (p * 100.0) as u64);
            let (dense_secs, dense_deps) = time(|| behavioral_dense(n, &sched, total));
            let (ff_secs, (ff_deps, skipped)) = time(|| behavioral_ff(n, &sched, total));
            assert_eq!(
                dense_deps, ff_deps,
                "fast-forward changed the departure count at load {p}"
            );
            let dense_ns = dense_secs * 1e9 / total as f64;
            let ff_ns = ff_secs * 1e9 / total as f64;
            FfPoint {
                load: p,
                dense_ns,
                ff_ns,
                speedup: dense_ns / ff_ns.max(1e-12),
                skipped_fraction: skipped as f64 / total as f64,
            }
        })
        .collect();

    // E6's low-load rows, wall-timed over the experiment's own size grid
    // (the acceptance measurement: ≤ 25 % offered load, before vs after).
    let sizes: &[usize] = if quick { &[4, 8] } else { &[2, 4, 8, 16] };
    let e6 = [0.10, 0.20]
        .iter()
        .map(|&p| {
            let (mut dense_secs, mut ff_secs) = (0.0, 0.0);
            for &sn in sizes {
                let (ds, reference) = time(|| e06::measure_reference(sn, p, total, 0xE6));
                let (fs, fast) = time(|| e06::measure(sn, p, total, 0xE6));
                // Bit-exactness holds against a dense replay of the same
                // schedule; the pre-PR fused loop draws from a different
                // stream, so it agrees only statistically.
                let oracle = e06::measure_dense(sn, p, total, 0xE6);
                assert_eq!(
                    oracle.to_bits(),
                    fast.to_bits(),
                    "e6 fast-forward diverged at n={sn} load {p}"
                );
                assert!(
                    (reference - fast).abs() < 0.1,
                    "e6 statistic drifted at n={sn} load {p}: {reference} vs {fast}"
                );
                dense_secs += ds;
                ff_secs += fs;
            }
            E6Wall {
                load: p,
                dense_secs,
                ff_secs,
                speedup: dense_secs / ff_secs.max(1e-12),
            }
        })
        .collect();

    // Telemetry overhead: the same mid-load schedule, probe off vs a
    // NullSink. Both legs run back to back so the ratio is comparable
    // even on a noisy shared runner.
    let (plain_secs, plain_deps) = time(|| behavioral_dense(n, &mid, total));
    let (null_secs, null_deps) =
        time(|| behavioral_dense_probed(n, &mid, total, Some(ProbeHandle::new(NullSink))));
    let plain_ns = plain_secs * 1e9 / total as f64;
    let null_sink_ns = null_secs * 1e9 / total as f64;
    let telemetry = TelemetryCheck {
        plain_ns,
        null_sink_ns,
        ratio: null_sink_ns / plain_ns.max(1e-12),
        departures_match: plain_deps == null_deps,
    };

    PerfReport {
        behavioral_cycle_ns: behavioral_secs * 1e9 / total as f64,
        rtl_cycle_ns: rtl_secs * 1e9 / rtl_total as f64,
        ff,
        e6,
        telemetry,
    }
}

/// Render `BENCH_core.json` (hand-rolled: the workspace builds offline,
/// without serde).
pub fn to_json(r: &PerfReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(
        s,
        "  \"behavioral_cycle_ns\": {:.1},",
        r.behavioral_cycle_ns
    );
    let _ = writeln!(s, "  \"rtl_cycle_ns\": {:.1},", r.rtl_cycle_ns);
    s.push_str("  \"fast_forward\": [\n");
    for (k, p) in r.ff.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"load\": {:.2}, \"dense_ns_per_cycle\": {:.1}, \"ff_ns_per_cycle\": {:.1}, \
             \"speedup\": {:.2}, \"skipped_fraction\": {:.4}}}",
            p.load, p.dense_ns, p.ff_ns, p.speedup, p.skipped_fraction
        );
        s.push_str(if k + 1 < r.ff.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"e6_low_load_wall\": [\n");
    for (k, w) in r.e6.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"e6_load\": {:.2}, \"dense_secs\": {:.3}, \"ff_secs\": {:.3}, \
             \"wall_speedup\": {:.2}}}",
            w.load, w.dense_secs, w.ff_secs, w.speedup
        );
        s.push_str(if k + 1 < r.e6.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"telemetry\": {{\"plain_ns\": {:.1}, \"null_sink_ns\": {:.1}, \
         \"overhead_ratio\": {:.3}, \"departures_match\": {}}}",
        r.telemetry.plain_ns,
        r.telemetry.null_sink_ns,
        r.telemetry.ratio,
        r.telemetry.departures_match
    );
    s.push_str("}\n");
    s
}

/// Human summary.
pub fn render(r: &PerfReport) -> String {
    let mut s = String::from("perf: core hot-path benchmarks\n");
    let _ = writeln!(
        s,
        "  behavioral cycle: {:7.1} ns   rtl cycle: {:7.1} ns",
        r.behavioral_cycle_ns, r.rtl_cycle_ns
    );
    for p in &r.ff {
        let _ = writeln!(
            s,
            "  load {:>4.0}%: dense {:7.1} ns/cyc, fast-forward {:7.1} ns/cyc — \
             {:5.1}x speedup, {:5.1}% cycles skipped",
            p.load * 100.0,
            p.dense_ns,
            p.ff_ns,
            p.speedup,
            p.skipped_fraction * 100.0
        );
    }
    for w in &r.e6 {
        let _ = writeln!(
            s,
            "  e6 size grid @ load {:>3.0}%: dense {:6.2} s, fast-forward {:6.2} s — {:5.1}x wall speedup",
            w.load * 100.0,
            w.dense_secs,
            w.ff_secs,
            w.speedup
        );
    }
    let _ = writeln!(
        s,
        "  telemetry off {:7.1} ns/cyc, NullSink {:7.1} ns/cyc — {:.3}x overhead, departures {}",
        r.telemetry.plain_ns,
        r.telemetry.null_sink_ns,
        r.telemetry.ratio,
        if r.telemetry.departures_match {
            "identical"
        } else {
            "DIVERGED"
        }
    );
    s
}

/// Pull `"key": <float>` out of a JSON line (the format `to_json` emits).
fn grab(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Baseline numbers parsed back out of a committed `BENCH_core.json`.
pub struct Baseline {
    /// (load, speedup, skipped_fraction) per fast-forward point.
    pub ff: Vec<(f64, f64, f64)>,
}

/// Parse the committed baseline.
pub fn parse_baseline(json: &str) -> Option<Baseline> {
    let ff: Vec<(f64, f64, f64)> = json
        .lines()
        .filter(|l| l.contains("\"load\""))
        .filter_map(|l| {
            Some((
                grab(l, "load")?,
                grab(l, "speedup")?,
                grab(l, "skipped_fraction")?,
            ))
        })
        .collect();
    (!ff.is_empty()).then_some(Baseline { ff })
}

/// Gate `fresh` against `baseline`. Returns every violation (empty =
/// pass). Bands: each speedup must reach 40 % of its baseline (wall
/// clock is noisy in CI), the 10 %-load point must additionally clear a
/// hard 2.5× floor (the committed baseline records 3.5×; the floor is
/// backed off from the 3× acceptance number only to absorb shared-runner
/// jitter), and skipped fractions — deterministic given the seeds —
/// must sit within ±0.05 of the baseline.
pub fn gate(fresh: &PerfReport, baseline: &Baseline) -> Vec<String> {
    let mut violations = Vec::new();
    // Telemetry checks are baseline-free (both legs ran in this very
    // process): with the probe off the hot path must stay the hot path,
    // and attaching a NullSink must not change behavior at all.
    if !fresh.telemetry.departures_match {
        violations.push(
            "attaching a NullSink probe changed the departure count — \
             telemetry is not behavior-neutral"
                .to_string(),
        );
    }
    if fresh.telemetry.ratio > 1.5 {
        violations.push(format!(
            "NullSink telemetry overhead {:.3}x exceeds the 1.5x bound",
            fresh.telemetry.ratio
        ));
    }
    for p in &fresh.ff {
        let Some(&(_, base_speedup, base_skip)) = baseline
            .ff
            .iter()
            .find(|(l, _, _)| (l - p.load).abs() < 1e-6)
        else {
            violations.push(format!("baseline has no point at load {:.2}", p.load));
            continue;
        };
        if p.load < 0.2 && p.speedup < 2.5 {
            violations.push(format!(
                "low-load fast-forward speedup {:.2}x below the 2.5x floor",
                p.speedup
            ));
        }
        if p.speedup < 0.4 * base_speedup {
            violations.push(format!(
                "load {:.0}%: speedup {:.2}x fell below 40% of baseline {:.2}x",
                p.load * 100.0,
                p.speedup,
                base_speedup
            ));
        }
        if (p.skipped_fraction - base_skip).abs() > 0.05 {
            violations.push(format!(
                "load {:.0}%: skipped fraction {:.4} drifted from baseline {:.4}",
                p.load * 100.0,
                p.skipped_fraction,
                base_skip
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_and_ff_replay_agree() {
        let n = 4;
        let s = SwitchConfig::symmetric(n, 4 * n.max(8)).stages();
        let sched = schedule(n, s, 0.2, 30_000, 7);
        let d = behavioral_dense(n, &sched, 30_000);
        let (f, skipped) = behavioral_ff(n, &sched, 30_000);
        assert_eq!(d, f, "departure counts must match");
        assert!(skipped > 0, "low load must skip cycles");
    }

    #[test]
    fn json_roundtrips_through_the_gate_parser() {
        let r = PerfReport {
            behavioral_cycle_ns: 120.0,
            rtl_cycle_ns: 450.0,
            ff: vec![
                FfPoint {
                    load: 0.10,
                    dense_ns: 100.0,
                    ff_ns: 10.0,
                    speedup: 10.0,
                    skipped_fraction: 0.8123,
                },
                FfPoint {
                    load: 0.95,
                    dense_ns: 100.0,
                    ff_ns: 90.0,
                    speedup: 1.11,
                    skipped_fraction: 0.01,
                },
            ],
            e6: vec![E6Wall {
                load: 0.10,
                dense_secs: 2.0,
                ff_secs: 0.5,
                speedup: 4.0,
            }],
            telemetry: TelemetryCheck {
                plain_ns: 100.0,
                null_sink_ns: 110.0,
                ratio: 1.1,
                departures_match: true,
            },
        };
        let b = parse_baseline(&to_json(&r)).expect("parses");
        assert_eq!(b.ff.len(), 2);
        assert!((b.ff[0].1 - 10.0).abs() < 1e-6);
        assert!((b.ff[0].2 - 0.8123).abs() < 1e-6);
        assert!(gate(&r, &b).is_empty(), "self-gate must pass");
    }

    #[test]
    fn gate_catches_regressions() {
        let base = Baseline {
            ff: vec![(0.10, 10.0, 0.80)],
        };
        let bad = PerfReport {
            behavioral_cycle_ns: 0.0,
            rtl_cycle_ns: 0.0,
            ff: vec![FfPoint {
                load: 0.10,
                dense_ns: 100.0,
                ff_ns: 50.0,
                speedup: 2.0,
                skipped_fraction: 0.30,
            }],
            e6: vec![],
            telemetry: TelemetryCheck {
                plain_ns: 100.0,
                null_sink_ns: 100.0,
                ratio: 1.0,
                departures_match: true,
            },
        };
        let v = gate(&bad, &base);
        assert_eq!(v.len(), 3, "floor + band + skip drift: {v:?}");
    }

    #[test]
    fn gate_catches_telemetry_regressions() {
        let base = Baseline {
            ff: vec![(0.10, 10.0, 0.80)],
        };
        let bad = PerfReport {
            behavioral_cycle_ns: 0.0,
            rtl_cycle_ns: 0.0,
            ff: vec![],
            e6: vec![],
            telemetry: TelemetryCheck {
                plain_ns: 100.0,
                null_sink_ns: 200.0,
                ratio: 2.0,
                departures_match: false,
            },
        };
        let v = gate(&bad, &base);
        assert_eq!(v.len(), 2, "overhead bound + behavior drift: {v:?}");
        assert!(v.iter().any(|m| m.contains("1.5x")));
        assert!(v.iter().any(|m| m.contains("behavior-neutral")));
    }
}
