//! E2 — wormhole saturation with deep messages and shallow buffers
//! (§2.1, \[Dally90 fig. 8\]).
//!
//! "When the traffic is bursty and the bursts are larger than the buffers
//! — for example with multi-flit packets in wormhole routing — saturation
//! occurs sooner: with 20-flit messages and 16-flit buffers, simulation
//! showed saturation at about 25 % of link capacity (1 lane)." We sweep
//! injection rate on a 16-ary 2-D mesh at 1/2/4 lanes and report the
//! saturation throughput both as flits/node/cycle and normalized to the
//! dimension-order-routing capacity bound; the paper-relevant *shape* is
//! that one lane saturates far below capacity and extra lanes recover it.

use crate::{sweep as engine, table};
use netsim::wormhole::{MeshConfig, WormholeMesh};

/// One row: a (lanes, injection rate) operating point.
#[derive(Debug, Clone, Copy)]
pub struct E2Row {
    /// Virtual-channel lanes.
    pub lanes: usize,
    /// Offered load, flits/node/cycle.
    pub offered: f64,
    /// Carried throughput, flits/node/cycle.
    pub carried: f64,
    /// Carried / DOR capacity bound.
    pub capacity_fraction: f64,
    /// Mean message latency, cycles.
    pub latency: f64,
}

/// DOR capacity bound for a k×k mesh under uniform traffic:
/// the center bisection channels limit throughput to `4/k`
/// flits/node/cycle (k/2 columns × k rows of sources, half destined
/// across, k channels per direction).
pub fn dor_capacity(k: usize) -> f64 {
    4.0 / k as f64
}

/// Sweep injection rates at a lane count. Each operating point is an
/// independent mesh simulation, executed through the sweep engine.
pub fn sweep(k: usize, lanes: usize, cycles: u64, seed: u64) -> Vec<E2Row> {
    let msg_flits = 20.0;
    engine::map(&[0.1, 0.2, 0.4, 0.8, 1.2], |&frac: &f64| {
        // Offered as a fraction of DOR capacity.
        let rate = frac * dor_capacity(k) / msg_flits;
        let mut m = WormholeMesh::new(MeshConfig::dally(k, lanes, rate, seed));
        m.run(cycles);
        E2Row {
            lanes,
            offered: rate * msg_flits,
            carried: m.flits_per_node_cycle(),
            capacity_fraction: m.flits_per_node_cycle() / dor_capacity(k),
            latency: m.mean_latency(),
        }
    })
}

/// Saturation throughput (capacity fraction at the highest offered load).
pub fn saturation_fraction(k: usize, lanes: usize, cycles: u64, seed: u64) -> f64 {
    let rate = 1.5 * dor_capacity(k) / 20.0;
    let mut m = WormholeMesh::new(MeshConfig::dally(k, lanes, rate, seed));
    m.run(cycles);
    m.flits_per_node_cycle() / dor_capacity(k)
}

/// Same, on the k-ary 2-cube (torus) — Dally's actual topology. Capacity
/// bound doubles (wraparound doubles the bisection); `lanes` must be
/// even (dateline deadlock classes).
pub fn torus_saturation_fraction(k: usize, lanes: usize, cycles: u64, seed: u64) -> f64 {
    let cap = 2.0 * dor_capacity(k);
    let rate = 1.5 * cap / 20.0;
    let mut m = WormholeMesh::new(MeshConfig::dally_torus(k, lanes, rate, seed));
    m.run(cycles);
    m.flits_per_node_cycle() / cap
}

/// Run the experiment.
pub fn run(quick: bool) -> String {
    let (k, cycles) = if quick { (8, 8_000) } else { (16, 30_000) };
    let mut body = Vec::new();
    for lanes in [1usize, 2, 4] {
        for r in sweep(k, lanes, cycles, 0xE2) {
            body.push(vec![
                r.lanes.to_string(),
                table::f3(r.offered),
                table::f3(r.carried),
                table::f3(r.capacity_fraction),
                table::f1(r.latency),
            ]);
        }
    }
    let mut s = table::render(
        &format!(
            "E2: wormhole saturation, {k}x{k} mesh, 20-flit messages, 16-flit buffers (paper §2.1 / [Dally90 fig 8])"
        ),
        &["lanes", "offered f/n/c", "carried f/n/c", "cap frac", "latency"],
        &body,
    );
    // The four saturation points (mesh 1/4 lanes, torus 2/4 lanes) are
    // independent full-length runs — one sweep point each.
    let sat = engine::map(&[(false, 1usize), (false, 4), (true, 2), (true, 4)], {
        |&(torus, lanes)| {
            if torus {
                torus_saturation_fraction(k, lanes, cycles, 0xE2)
            } else {
                saturation_fraction(k, lanes, cycles, 0xE2)
            }
        }
    });
    let (s1, s4, t2, t4) = (sat[0], sat[1], sat[2], sat[3]);
    s.push_str(&format!(
        "\nMesh: 1-lane saturation {:.2} of DOR capacity; 4-lane {:.2} (+{:.0}%).\n\
         TORUS (Dally's k-ary 2-cube proper, dateline VC classes): baseline\n\
         2 lanes (= one usable lane + deadlock class) saturates at {:.2} of\n\
         capacity — the paper's 'about 25%' — and 4 lanes recover to {:.2}.\n\
         Shape and, on the torus, the absolute fraction both reproduce.\n",
        s1,
        s4,
        100.0 * (s4 - s1) / s1,
        t2,
        t4,
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_lane_saturates_below_capacity() {
        let s1 = saturation_fraction(8, 1, 6_000, 1);
        assert!(s1 < 0.85, "1 lane must saturate well below capacity: {s1}");
        assert!(s1 > 0.2, "but must carry real traffic: {s1}");
    }

    #[test]
    fn lanes_recover_throughput() {
        let s1 = saturation_fraction(8, 1, 6_000, 1);
        let s4 = saturation_fraction(8, 4, 6_000, 1);
        assert!(s4 > s1, "4 lanes {s4} must beat 1 lane {s1}");
    }

    #[test]
    fn below_saturation_carried_equals_offered() {
        let rows = sweep(8, 1, 6_000, 2);
        let light = rows[0];
        assert!(
            (light.carried - light.offered).abs() / light.offered < 0.15,
            "at 10% of capacity everything is carried: {light:?}"
        );
    }
}
