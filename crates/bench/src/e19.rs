//! E19 — fabric scaling campaign: component-graph networks of real
//! switch elements from 64 to 1024 endpoints (extension; not in the
//! paper).
//!
//! The paper's switches exist to be composed — "interconnection
//! networks for large-scale parallel computers" — and the [`fabric`]
//! crate is the composition runtime: every node of a topology graph is
//! a real element model (the scalar shared-buffer oracle, the
//! cell-level behavioral pipelined-memory switch, or one of the
//! word-clocked RTL organizations), every edge a fixed-latency link,
//! and the whole graph advances in conservative lookahead windows that
//! shard across worker threads bit-exactly for any `--jobs`.
//!
//! The campaign sweeps topology × size × element organization ×
//! traffic pattern at a fixed 0.6 offered load:
//!
//! - **topologies** — omega (4×4 elements, 3/4/5 stages = 64/256/1024
//!   endpoints), banyan (butterfly wiring, same element count), folded
//!   two-level Clos (64 and 1024 endpoints), fat-tree (128 and 1024);
//! - **organizations** — `scalar` everywhere; `behavioral` (cell-level
//!   pipelined memory) on every uniform-radix fabric up to 1024
//!   endpoints; the three word-clocked RTLs (`word-rtl`, `word-wide`,
//!   `word-ibank`) on the 64-endpoint omega, where every bank wave of
//!   every element is simulated;
//! - **patterns** — uniform, fixed permutation, 25 % hotspot.
//!
//! The traffic seed is a function of topology × pattern only, so every
//! organization on a given fabric faces the identical offered
//! schedule. Deterministic metrics per row: offered/delivered cells,
//! carried fraction, loss, residual (cells still queued when the run
//! stopped — hotspot fabrics hold standing queues by design), mean and
//! p99 terminal-to-terminal latency in element cycles. Wall-clock
//! cells/sec rates are printed *after* the table on `completed in`
//! lines, which the CI determinism diffs strip.
//!
//! Each point runs the fabric with `jobs = sweep::jobs()`, so the CI
//! `--jobs 1` vs `--jobs 4` cross-check exercises the sharded executor
//! itself: identical tables prove the conservative-window runtime is
//! bit-exact under real campaign traffic, not just unit fixtures.

use crate::{sweep, table};
use fabric::{topo, ElementKind, Fabric, Pattern, Topology, Workload};
use simkernel::rng::split_seed;

/// Offered load per terminal per slot, every point.
const LOAD: f64 = 0.6;

/// Post-injection drain slots. Deliberately finite: persistent hotspot
/// traffic keeps standing queues that would take thousands of slots to
/// empty through one egress link, so leftover cells are *reported* (the
/// `resid` column) rather than waited out.
const DRAIN: u64 = 256;

/// Per-port shared-pool budget (cells for the scalar element, packet
/// slots / banks for the others): 4 × radix, the paper's 4×4
/// buffer-sizing sweet spot (16 slots), scaled to each topology's
/// element radix so the big-radix Clos leaves are not starved.
const POOL_PER_PORT: usize = 4;

/// Topology coordinate of a campaign point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fab {
    /// Omega network of 4×4 elements, `stages` stages.
    Omega {
        /// Stage count (endpoints = 4^stages).
        stages: usize,
    },
    /// Banyan (butterfly) network of 4×4 elements.
    Banyan {
        /// Stage count (endpoints = 4^stages).
        stages: usize,
    },
    /// Folded two-level Clos.
    Clos {
        /// Leaf element count.
        leaves: usize,
        /// Terminals per leaf.
        down: usize,
    },
    /// Three-level fat-tree.
    FatTree {
        /// Pod radix (endpoints = k³/4).
        k: usize,
    },
}

impl Fab {
    /// The campaign ladder, 64 → 1024 endpoints.
    pub const ALL: [Fab; 8] = [
        Fab::Omega { stages: 3 },
        Fab::Banyan { stages: 3 },
        Fab::Clos {
            leaves: 16,
            down: 4,
        },
        Fab::FatTree { k: 8 },
        Fab::Omega { stages: 4 },
        Fab::Omega { stages: 5 },
        Fab::Clos {
            leaves: 32,
            down: 32,
        },
        Fab::FatTree { k: 16 },
    ];

    /// Build the topology graph.
    pub fn build(&self) -> Topology {
        match *self {
            Fab::Omega { stages } => topo::omega(4, stages),
            Fab::Banyan { stages } => topo::banyan(4, stages),
            Fab::Clos { leaves, down } => topo::clos2(leaves, down),
            Fab::FatTree { k } => topo::fat_tree(k),
        }
    }

    /// Stable report label.
    pub fn label(&self) -> &'static str {
        match *self {
            Fab::Omega { stages: 3 } => "omega-64",
            Fab::Omega { stages: 4 } => "omega-256",
            Fab::Omega { stages: 5 } => "omega-1024",
            Fab::Omega { .. } => "omega",
            Fab::Banyan { .. } => "banyan-64",
            Fab::Clos { down: 4, .. } => "clos-64",
            Fab::Clos { .. } => "clos-1024",
            Fab::FatTree { k: 8 } => "fattree-128",
            Fab::FatTree { .. } => "fattree-1024",
        }
    }

    /// True when every element has the same radix (the word-level and
    /// behavioral adapters require it; the two-level Clos mixes leaf
    /// and spine radices).
    pub fn uniform_radix(&self) -> bool {
        !matches!(self, Fab::Clos { .. })
    }

    /// Largest element radix in the topology.
    pub fn max_radix(&self) -> usize {
        match *self {
            Fab::Omega { .. } | Fab::Banyan { .. } => 4,
            Fab::Clos { leaves, down } => leaves.max(2 * down),
            Fab::FatTree { k } => k,
        }
    }

    /// Element organizations measured on this fabric.
    pub fn kinds(&self) -> Vec<ElementKind> {
        let pool = POOL_PER_PORT * self.max_radix();
        let mut kinds = vec![ElementKind::Scalar {
            capacity: Some(pool),
        }];
        if self.uniform_radix() && !matches!(self, Fab::FatTree { k: 16 }) {
            kinds.push(ElementKind::Behavioral { slots: pool });
        }
        if matches!(self, Fab::Omega { stages: 3 }) {
            kinds.push(ElementKind::WordRtl { slots: pool });
            kinds.push(ElementKind::WordWide { slots: pool });
            kinds.push(ElementKind::WordIbank { banks: pool });
        }
        kinds
    }
}

/// One campaign point.
#[derive(Debug, Clone, Copy)]
pub struct FabricSpec {
    /// Topology coordinate.
    pub fab: Fab,
    /// Element organization.
    pub kind: ElementKind,
    /// Traffic pattern.
    pub pattern: Pattern,
    /// Injection slots.
    pub slots: u64,
    /// Traffic seed — a function of topology × pattern only, so every
    /// organization faces the identical offered schedule.
    pub seed: u64,
}

/// Measured outcome of one campaign point.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricRow {
    /// Fabric label (topology + endpoint count).
    pub fabric: String,
    /// Endpoint count.
    pub endpoints: usize,
    /// Element count.
    pub elements: usize,
    /// Organization label.
    pub org: String,
    /// Pattern label.
    pub pattern: String,
    /// Cells offered at terminals.
    pub offered: u64,
    /// Cells delivered to terminals.
    pub delivered: u64,
    /// Cells dropped on full element pools.
    pub dropped: u64,
    /// Cells still inside the fabric at the horizon.
    pub residual: u64,
    /// Delivered fraction of offered.
    pub carried: f64,
    /// Mean terminal-to-terminal latency, element cycles.
    pub mean_latency: f64,
    /// 99th-percentile latency, element cycles.
    pub p99_latency: u64,
    /// Run content digest (the sharded-executor fingerprint).
    pub digest: u64,
    /// Wall-clock seconds this point took — timing-only, excluded from
    /// the table and from every determinism comparison.
    pub wall_secs: f64,
}

/// Run one campaign point on the fabric runtime at `sweep::jobs()`
/// worker shards.
pub fn run_point(spec: &FabricSpec) -> FabricRow {
    let topology = spec.fab.build();
    let endpoints = topology.endpoints;
    let elements = topology.elements();
    let mut fab = Fabric::new(topology, spec.kind);
    let wl = Workload {
        pattern: spec.pattern,
        load: LOAD,
        seed: spec.seed,
    };
    let t0 = std::time::Instant::now();
    let run = fab.run(spec.slots, DRAIN, &wl, sweep::jobs());
    let wall_secs = t0.elapsed().as_secs_f64();
    let delivered = run.delivered_total();
    FabricRow {
        fabric: spec.fab.label().to_string(),
        endpoints,
        elements,
        org: spec.kind.label().to_string(),
        pattern: spec.pattern.label().to_string(),
        offered: run.offered,
        delivered,
        dropped: run.dropped,
        residual: run.residual,
        carried: if run.offered == 0 {
            0.0
        } else {
            delivered as f64 / run.offered as f64
        },
        mean_latency: run.mean_latency(),
        p99_latency: run.p99_latency(),
        digest: run.digest(),
        wall_secs,
    }
}

/// The campaign grid: fabric × organization × pattern.
pub fn specs(quick: bool) -> Vec<FabricSpec> {
    let slots = if sweep::smoke() {
        256
    } else if quick {
        1_024
    } else {
        4_096
    };
    let mut specs = Vec::new();
    for (fab_ix, &fab) in Fab::ALL.iter().enumerate() {
        for kind in fab.kinds() {
            for (pat_ix, &pattern) in Pattern::ALL.iter().enumerate() {
                specs.push(FabricSpec {
                    fab,
                    kind,
                    pattern,
                    slots,
                    seed: split_seed(0xE19, (fab_ix as u64) << 8 | pat_ix as u64),
                });
            }
        }
    }
    specs
}

/// Run the whole campaign through the deterministic sweep engine.
pub fn rows(quick: bool) -> Vec<FabricRow> {
    sweep::map(&specs(quick), run_point)
}

/// Render the report.
pub fn run(quick: bool) -> String {
    let rows = rows(quick);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.fabric.clone(),
                r.endpoints.to_string(),
                r.elements.to_string(),
                r.org.clone(),
                r.pattern.clone(),
                r.offered.to_string(),
                r.delivered.to_string(),
                format!("{:.3}", r.carried),
                r.dropped.to_string(),
                r.residual.to_string(),
                format!("{:.1}", r.mean_latency),
                r.p99_latency.to_string(),
            ]
        })
        .collect();
    let mut s = table::render(
        "E19: fabric scaling (extension) — component-graph networks of real switch\n\
         elements, 64 to 1024 endpoints, conservative-window sharded runtime",
        &[
            "fabric", "n", "elems", "org", "traffic", "offered", "deliv", "carried", "drop",
            "resid", "mean", "p99",
        ],
        &body,
    );
    s.push_str(
        "\nEvery organization on a given fabric faces the identical offered schedule (the\n\
         traffic seed depends only on topology x pattern). 'carried' is delivered/offered\n\
         at the finite drain horizon; 'resid' counts cells still queued when it closed —\n\
         hotspot fabrics hold standing queues at the one hot egress link by design.\n\
         Latencies are element cycles (word-clocked organizations pay S = 2k cycles per\n\
         hop, the scalar oracle 1). Permutation traffic shows the blocking topologies'\n\
         internal-conflict latency; the fat-tree self-routes it cleanly.\n",
    );
    // Timing-only footer: aggregate wall rates per fabric x org, worded
    // so the CI `grep -v 'completed in'` determinism filter strips them.
    for &fab in &Fab::ALL {
        for kind in fab.kinds() {
            let (mut cells, mut secs) = (0u64, 0f64);
            for r in rows
                .iter()
                .filter(|r| r.fabric == fab.label() && r.org == kind.label())
            {
                cells += r.offered + r.delivered;
                secs += r.wall_secs;
            }
            if secs > 0.0 {
                s.push_str(&format!(
                    "[e19 {} {}: {:.2}M cells/s wall; completed in {:.2}s]\n",
                    fab.label(),
                    kind.label(),
                    cells as f64 / secs / 1e6,
                    secs
                ));
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_the_ladder() {
        let specs = specs(true);
        // 8 fabrics x 3 patterns scalar, 5 behavioral fabrics, 3 word
        // organizations on the 64-endpoint omega.
        assert_eq!(specs.len(), (8 + 5 + 3) * 3);
        for n in [64, 128, 256, 1024] {
            assert!(
                specs.iter().any(|s| s.fab.build().endpoints == n),
                "ladder must include {n} endpoints"
            );
        }
        // The 1024-endpoint behavioral fabric — real pipelined-memory
        // elements at full scale — is on the grid.
        assert!(specs
            .iter()
            .any(|s| matches!(s.fab, Fab::Omega { stages: 5 })
                && matches!(s.kind, ElementKind::Behavioral { .. })));
        // Identical offered schedule across organizations: seed is a
        // function of fabric x pattern only.
        for s in &specs {
            for t in &specs {
                if s.fab == t.fab && s.pattern.label() == t.pattern.label() {
                    assert_eq!(s.seed, t.seed);
                }
            }
        }
    }

    /// A grid point shrunk to test size (the global smoke flag is left
    /// alone so concurrently-running campaign tests keep their grids).
    fn small(spec: FabricSpec) -> FabricSpec {
        FabricSpec { slots: 160, ..spec }
    }

    #[test]
    fn campaign_accounting_is_conservative() {
        let row = run_point(&small(specs(true)[0]));
        assert!(row.offered > 0, "traffic must flow");
        assert_eq!(
            row.offered,
            row.delivered + row.dropped + row.residual,
            "every offered cell is delivered, dropped or still queued"
        );
    }

    #[test]
    fn points_are_bit_reproducible_at_any_jobs() {
        let spec = small(
            specs(true)
                .into_iter()
                .find(|s| {
                    matches!(s.kind, ElementKind::Behavioral { .. })
                        && matches!(s.fab, Fab::Omega { stages: 3 })
                })
                .expect("behavioral point on the grid"),
        );
        let run = |jobs| {
            let topology = spec.fab.build();
            let wl = Workload {
                pattern: spec.pattern,
                load: LOAD,
                seed: spec.seed,
            };
            Fabric::new(topology, spec.kind).run(spec.slots, DRAIN, &wl, jobs)
        };
        let seq = run(1);
        for jobs in [2, 4] {
            let par = run(jobs);
            assert_eq!(seq, par, "jobs={jobs} run must be bit-exact");
            assert_eq!(seq.digest(), par.digest());
        }
    }
}
