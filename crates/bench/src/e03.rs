//! E3 — buffer sizing for equal loss (§2.2, \[HlKa88\]).
//!
//! "According to \[HlKa88\], a 16×16 switch with incoming link load of 0.8
//! (uniformly distributed destinations) needs the following buffer sizes
//! in order to achieve packet loss probability of 0.001: (i) 86 packets
//! under shared buffering (5.4 per output); (ii) 178 packets under output
//! queueing (11.1 per output); and (iii) 1300 packets under input
//! smoothing (80 per input)."
//!
//! We binary-search the smallest buffer size achieving the target loss
//! for each architecture under the same workload.

use crate::{sweep, table};
use baselines::harness::run as harness_run;
use baselines::input_smoothing::InputSmoothingSwitch;
use baselines::model::CellSwitch;
use baselines::output_queued::OutputQueuedSwitch;
use baselines::shared::SharedBufferSwitch;
use traffic::{Bernoulli, DestDist};

/// One architecture's sizing result.
#[derive(Debug, Clone)]
pub struct E3Row {
    /// Architecture name.
    pub arch: &'static str,
    /// Smallest total buffer (cells) with loss ≤ target.
    pub total_buffer: usize,
    /// Paper's \[HlKa88\] value.
    pub paper: usize,
    /// Loss measured at that size.
    pub loss_at_size: f64,
}

fn loss_of(mut model: Box<dyn CellSwitch>, n: usize, load: f64, slots: u64, seed: u64) -> f64 {
    let mut src = Bernoulli::new(n, load, DestDist::uniform(n), seed);
    let stats = harness_run(model.as_mut(), &mut src, slots, slots / 10);
    stats.loss
}

/// Binary-search the smallest `size ∈ [lo, hi]` whose loss ≤ target.
/// `make` builds the model for a candidate size parameter.
#[allow(clippy::too_many_arguments)] // experiment parameters are explicit by design
pub fn size_for_loss(
    mut make: impl FnMut(usize) -> Box<dyn CellSwitch>,
    n: usize,
    load: f64,
    target: f64,
    mut lo: usize,
    mut hi: usize,
    slots: u64,
    seed: u64,
) -> (usize, f64) {
    assert!(
        loss_of(make(hi), n, load, slots, seed) <= target,
        "upper bracket {hi} still lossy"
    );
    let mut best_loss = f64::NAN;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let l = loss_of(make(mid), n, load, slots, seed);
        if l <= target {
            hi = mid;
            best_loss = l;
        } else {
            lo = mid + 1;
        }
    }
    if best_loss.is_nan() {
        best_loss = loss_of(make(hi), n, load, slots, seed);
    }
    (hi, best_loss)
}

/// Run all three sizings.
pub fn rows(quick: bool) -> Vec<E3Row> {
    let n = 16;
    let load = 0.8;
    // The full 10^-3 target needs long runs to resolve; quick mode uses
    // 10^-2 (the ordering and rough ratios already show at that target).
    let (target, slots) = if quick {
        (1e-2, 60_000)
    } else {
        (1e-3, 600_000)
    };
    let seed = 0xE3;

    // Each architecture's whole bisection is one (coarse) sweep point:
    // the three searches are independent and run in parallel.
    sweep::map(
        &["shared buffering", "output queueing", "input smoothing"],
        |&arch| match arch {
            "shared buffering" => {
                let (shared, loss) = size_for_loss(
                    |b| Box::new(SharedBufferSwitch::new(n, Some(b))),
                    n,
                    load,
                    target,
                    8,
                    512,
                    slots,
                    seed,
                );
                E3Row {
                    arch,
                    total_buffer: shared,
                    paper: 86,
                    loss_at_size: loss,
                }
            }
            "output queueing" => {
                let (per_out, loss) = size_for_loss(
                    |b| Box::new(OutputQueuedSwitch::new(n, Some(b))),
                    n,
                    load,
                    target,
                    1,
                    128,
                    slots,
                    seed,
                );
                E3Row {
                    arch,
                    total_buffer: per_out * n,
                    paper: 178,
                    loss_at_size: loss,
                }
            }
            _ => {
                let (frame, loss) = size_for_loss(
                    |b| Box::new(InputSmoothingSwitch::new(n, b, seed)),
                    n,
                    load,
                    target,
                    2,
                    256,
                    slots,
                    seed,
                );
                E3Row {
                    arch,
                    total_buffer: frame * n,
                    paper: 1300,
                    loss_at_size: loss,
                }
            }
        },
    )
}

/// Render the report.
pub fn run(quick: bool) -> String {
    let rows = rows(quick);
    let target = if quick { "1e-2 (quick)" } else { "1e-3" };
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.arch.to_string(),
                r.total_buffer.to_string(),
                r.paper.to_string(),
                format!("{:.1e}", r.loss_at_size),
            ]
        })
        .collect();
    let mut s = table::render(
        &format!(
            "E3: total buffer (cells) for loss <= {target} @ 16x16, load 0.8, uniform iid (paper §2.2 / [HlKa88])"
        ),
        &["architecture", "buffer", "paper(1e-3)", "loss@size"],
        &body,
    );
    s.push_str(
        "\nThe ordering shared << output-queued << input-smoothing, and the\n\
         roughly 2x / 15x blowups, are the paper's argument for shared buffering.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_ratios_hold_quick() {
        let r = rows(true);
        let shared = r[0].total_buffer;
        let output = r[1].total_buffer;
        let smoothing = r[2].total_buffer;
        assert!(
            shared < output,
            "shared ({shared}) must need less than output queueing ({output})"
        );
        assert!(
            output < smoothing,
            "output queueing ({output}) must need less than input smoothing ({smoothing})"
        );
        assert!(
            smoothing as f64 / shared as f64 > 4.0,
            "smoothing blowup too small: {smoothing}/{shared}"
        );
    }

    #[test]
    fn size_search_is_minimal() {
        // Verify minimality: one size smaller must violate the target.
        let n = 16;
        let (size, _) = size_for_loss(
            |b| Box::new(SharedBufferSwitch::new(n, Some(b))),
            n,
            0.8,
            1e-2,
            8,
            512,
            40_000,
            7,
        );
        let smaller = loss_of(
            Box::new(SharedBufferSwitch::new(n, Some(size - 1))),
            n,
            0.8,
            40_000,
            7,
        );
        assert!(smaller > 1e-2, "size {size} not minimal (loss {smaller})");
    }
}
