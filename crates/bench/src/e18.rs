//! E18 — buffer-sharing policy lab: admission policies under incast,
//! hotspot and on/off traffic (extension; not in the paper).
//!
//! The paper's shared buffer is a *static* pool: any arriving packet
//! that finds a free slot gets it, first come first served. Under
//! incast (many inputs converging on one output) that policy lets the
//! hot queue monopolize the whole buffer — cross traffic to idle
//! outputs is then dropped on "buffer full" even though its outputs
//! could have drained it immediately. This campaign measures what the
//! four non-static [`switch_core::policy`] disciplines buy back:
//!
//! - **dt** — Dynamic Thresholds: a queue may only grow while it is
//!   shorter than `α · free`, so the hot queue self-limits and the pool
//!   keeps headroom for cross traffic;
//! - **pushout** — an arrival into a full buffer evicts the rearmost
//!   packet of the *longest* queue instead of being dropped;
//! - **occamy** — preemptive drop above an occupancy watermark: over
//!   their fair share queues stop growing near the top of the pool;
//! - **bshare** — queueing-delay-driven: a queue whose last-read
//!   birth-to-read delay exceeds the bound admits no more packets.
//!
//! Every policy × organization pair sees the *same* offered schedule
//! (the traffic seed depends only on shape × load), so rows differ only
//! in what the switch did with the arrivals. Metrics per row: offered
//! and delivered packets, loss (every non-delivered arrival, policy
//! drops and preemptions included), mean head-to-tail delay of the
//! delivered packets, and *burst absorption* — the longest run of
//! consecutive launches that all made it out, i.e. how deep a burst the
//! buffer swallowed before the first loss.
//!
//! Points run through the conformance driver ([`conformance::run`]), so
//! the numbers come from exactly the machinery the differential oracle
//! certifies, and through [`sweep::map`], so the table is bit-identical
//! at any `--jobs`.

use crate::{sweep, table};
use conformance::{Offer, Org, PolicyKind, Scenario};
use simkernel::ids::Cycle;
use simkernel::rng::split_seed;
use simkernel::SplitMix64;
use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

/// Campaign geometry, mirroring E17: 4×4 (8 stages), 16 shared slots.
const N: usize = 4;
const SLOTS: usize = 16;

/// Traffic shapes that actually separate buffer-sharing policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// N-to-1: 80 % of all traffic converges on output 0.
    Incast,
    /// Steady hotspot: 50 % of all traffic on output 0.
    Hotspot,
    /// Uniform destinations in on/off bursts of 4·S cycles at twice the
    /// average intensity.
    OnOff,
}

impl Shape {
    /// All shapes, in reporting order.
    pub const ALL: [Shape; 3] = [Shape::Incast, Shape::Hotspot, Shape::OnOff];

    /// Stable report label.
    pub fn label(&self) -> &'static str {
        match self {
            Shape::Incast => "incast",
            Shape::Hotspot => "hotspot",
            Shape::OnOff => "on-off",
        }
    }
}

/// One campaign point.
#[derive(Debug, Clone, Copy)]
pub struct PolicySpec {
    /// Memory organization under test.
    pub org: Org,
    /// Buffer-sharing policy.
    pub policy: PolicyKind,
    /// Traffic shape.
    pub shape: Shape,
    /// Offered per-input load.
    pub load: f64,
    /// Active traffic cycles (drain on top).
    pub cycles: u64,
    /// Traffic seed — a function of shape × load only, so every policy
    /// and organization faces the identical offered schedule.
    pub seed: u64,
}

/// Measured outcome of one campaign point.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// Organization label.
    pub org: String,
    /// Policy token.
    pub policy: String,
    /// Shape label.
    pub shape: String,
    /// Offered per-input load.
    pub load: f64,
    /// Packets offered to the switch.
    pub offered: u64,
    /// Packets delivered intact.
    pub delivered: u64,
    /// Lost packets: buffer-full drops + policy drops + preemptions.
    pub lost: u64,
    /// Admission rejections declared by the policy.
    pub policy_drops: u64,
    /// Stored packets evicted by the policy.
    pub preempts: u64,
    /// Loss fraction of offered traffic (percent).
    pub loss_pct: f64,
    /// Mean launch-to-tail delay of delivered packets, cycles.
    pub mean_delay: Option<f64>,
    /// Longest run of consecutive launches all delivered — how deep a
    /// burst the buffer absorbed before its first loss.
    pub burst_absorbed: u64,
}

/// `--policy` filter: when set, [`specs`] keeps only that policy's
/// points (the seeds are coordinate-derived, so the surviving rows are
/// bit-identical to their counterparts in an unfiltered run).
static POLICY_FILTER: Mutex<Option<PolicyKind>> = Mutex::new(None);

/// Restrict the campaign to one policy (`None` restores the full grid).
pub fn set_policy_filter(policy: Option<PolicyKind>) {
    *POLICY_FILTER.lock().expect("filter lock") = policy;
}

/// Per-cycle header probability yielding busy-fraction `load` when each
/// start occupies the wire for S cycles.
fn header_chance(load: f64, s: usize) -> f64 {
    if load >= 1.0 {
        1.0
    } else {
        load / (load + s as f64 * (1.0 - load))
    }
}

/// Build the offered schedule for one (shape, load) cell. One generator
/// drives all inputs, so the schedule is a pure function of the seed.
fn build_offers(shape: Shape, load: f64, cycles: u64, seed: u64) -> Vec<Offer> {
    let s = 2 * N;
    let q = header_chance(load, s);
    let mut g = SplitMix64::stream(seed, 0);
    let mut offers = Vec::new();
    let mut next_free = [0 as Cycle; N];
    let burst = 4 * s as Cycle;
    for t in 0..cycles {
        for (i, nf) in next_free.iter_mut().enumerate() {
            if *nf > t {
                continue;
            }
            let start = match shape {
                Shape::OnOff => (t / burst).is_multiple_of(2) && g.chance((2.0 * q).min(1.0)),
                _ => g.chance(q),
            };
            if !start {
                continue;
            }
            let dst = match shape {
                Shape::Incast => {
                    if g.chance(0.8) {
                        0
                    } else {
                        g.below_usize(N)
                    }
                }
                Shape::Hotspot => {
                    if g.chance(0.5) {
                        0
                    } else {
                        g.below_usize(N)
                    }
                }
                Shape::OnOff => g.below_usize(N),
            };
            offers.push(Offer {
                at: t,
                input: i,
                dst,
                id: offers.len() as u64 + 1,
            });
            *nf = t + s as Cycle;
        }
    }
    offers
}

/// Run one campaign point through the conformance driver.
pub fn run_point(spec: &PolicySpec) -> PolicyRow {
    let offers = build_offers(spec.shape, spec.load, spec.cycles, spec.seed);
    let sc = Scenario {
        seed: spec.seed,
        n: N,
        slots: SLOTS,
        credited: false,
        load: spec.load,
        offers,
        horizon: spec.cycles,
        fault: None,
        recovery: false,
        policy: spec.policy,
    };
    let out = conformance::run(&sc, spec.org);
    let c = &out.counters;
    let offered = c.arrived;
    let delivered = c.departed;
    let lost = offered.saturating_sub(delivered);
    let delivered_ids: HashSet<u64> = out.deliveries.iter().map(|d| d.id).collect();
    let mut burst_absorbed = 0u64;
    let mut streak = 0u64;
    for l in &out.launches {
        if delivered_ids.contains(&l.id) {
            streak += 1;
            burst_absorbed = burst_absorbed.max(streak);
        } else {
            streak = 0;
        }
    }
    let launched_at: HashMap<u64, Cycle> = out.launches.iter().map(|l| (l.id, l.at)).collect();
    let delays: Vec<f64> = out
        .deliveries
        .iter()
        .filter_map(|d| launched_at.get(&d.id).map(|&at| (d.last - at) as f64))
        .collect();
    let mean_delay = (!delays.is_empty()).then(|| delays.iter().sum::<f64>() / delays.len() as f64);
    PolicyRow {
        org: spec.org.label().to_string(),
        policy: spec.policy.token().to_string(),
        shape: spec.shape.label().to_string(),
        load: spec.load,
        offered,
        delivered,
        lost,
        policy_drops: c.policy_drops,
        preempts: c.policy_preempts,
        loss_pct: if offered == 0 {
            0.0
        } else {
            100.0 * lost as f64 / offered as f64
        },
        mean_delay,
        burst_absorbed,
    }
}

/// The campaign grid: shape × organization × policy × load. The traffic
/// seed is derived from the point's *coordinates*, never its index, so
/// a `--policy` filter leaves the surviving rows bit-identical.
pub fn specs(quick: bool) -> Vec<PolicySpec> {
    let smoke = sweep::smoke();
    let cycles = if smoke {
        1_200
    } else if quick {
        4_000
    } else {
        24_000
    };
    let loads: &[f64] = if smoke || quick {
        &[0.9]
    } else {
        &[0.6, 0.9, 1.0]
    };
    let filter = *POLICY_FILTER.lock().expect("filter lock");
    let mut specs = Vec::new();
    for (shape_ix, &shape) in Shape::ALL.iter().enumerate() {
        for (load_ix, &load) in loads.iter().enumerate() {
            let seed = split_seed(0xE18, (shape_ix as u64) << 8 | load_ix as u64);
            for &org in &Org::ALL {
                for policy in PolicyKind::all_default() {
                    if filter.is_some_and(|f| f.token() != policy.token()) {
                        continue;
                    }
                    specs.push(PolicySpec {
                        org,
                        policy,
                        shape,
                        load,
                        cycles,
                        seed,
                    });
                }
            }
        }
    }
    specs
}

/// Run the whole campaign through the deterministic sweep engine.
pub fn rows(quick: bool) -> Vec<PolicyRow> {
    let points = specs(quick);
    sweep::map(&points, run_point)
}

/// Render the report.
pub fn run(quick: bool) -> String {
    let rows = rows(quick);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.shape.clone(),
                r.org.clone(),
                r.policy.clone(),
                format!("{:.1}", r.load),
                r.offered.to_string(),
                r.delivered.to_string(),
                r.lost.to_string(),
                r.policy_drops.to_string(),
                r.preempts.to_string(),
                format!("{:.1}", r.loss_pct),
                r.mean_delay.map_or("-".to_string(), |d| format!("{d:.1}")),
                r.burst_absorbed.to_string(),
            ]
        })
        .collect();
    let mut s = table::render(
        "E18: buffer-sharing policy lab (extension) — admission policies under\n\
         incast / hotspot / on-off traffic, all four memory organizations",
        &[
            "shape", "org", "policy", "load", "offered", "deliv", "lost", "p-drop", "preempt",
            "loss%", "delay", "burst",
        ],
        &body,
    );
    s.push_str(
        "\nEvery policy x organization pair faces the identical offered schedule (the traffic\n\
         seed depends only on shape x load), so rows differ only in admission decisions.\n\
         'lost' counts every non-delivered arrival: buffer-full drops plus the policy's own\n\
         'p-drop' rejections and 'preempt' evictions. 'delay' is the mean launch-to-tail\n\
         latency of delivered packets; 'burst' the longest run of consecutive launches all\n\
         delivered — how deep a burst the shared buffer absorbed before its first loss.\n\
         Under incast the static pool lets the hot queue monopolize the buffer and cross\n\
         traffic pays; dt / pushout / occamy keep headroom and deliver more of the same\n\
         offered schedule.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loss_of(rows: &[PolicyRow], org: &str, policy: &str, shape: &str) -> f64 {
        rows.iter()
            .find(|r| r.org == org && r.policy == policy && r.shape == shape)
            .unwrap_or_else(|| panic!("missing row {org}/{policy}/{shape}"))
            .loss_pct
    }

    #[test]
    fn sharing_policies_beat_static_on_incast() {
        // The tentpole claim: at 0.9 offered load under incast, Dynamic
        // Thresholds, push-out and Occamy each lose less of the same
        // offered schedule than the static pool, on every organization.
        let rows = rows(true);
        for org in Org::ALL {
            let st = loss_of(&rows, org.label(), "static", "incast");
            for policy in ["dt", "pushout", "occamy"] {
                let p = loss_of(&rows, org.label(), policy, "incast");
                assert!(
                    p < st,
                    "{org}: {policy} loss {p:.2}% must beat static {st:.2}%"
                );
            }
        }
    }

    #[test]
    fn campaign_accounting_is_conservative() {
        let rows = rows(true);
        assert_eq!(
            rows.len(),
            Shape::ALL.len() * Org::ALL.len() * PolicyKind::all_default().len(),
            "quick grid covers every shape x org x policy cell"
        );
        for r in &rows {
            assert!(
                r.delivered <= r.offered,
                "{}/{}: conservation",
                r.org,
                r.policy
            );
            assert!(
                r.policy_drops + r.preempts <= r.lost,
                "{}/{}: policy loss exceeds total loss",
                r.org,
                r.policy
            );
            if r.policy == "static" {
                assert_eq!(
                    r.policy_drops + r.preempts,
                    0,
                    "{}: static pool must never invoke the policy counters",
                    r.org
                );
            }
            assert!(r.offered > 0, "{}/{}: no traffic offered", r.org, r.policy);
        }
        // Identical offered schedule within each shape x load x org cell.
        for shape in Shape::ALL {
            for org in Org::ALL {
                let cell: Vec<&PolicyRow> = rows
                    .iter()
                    .filter(|r| r.shape == shape.label() && r.org == org.label())
                    .collect();
                assert!(cell.windows(2).all(|w| w[0].offered == w[1].offered));
            }
        }
    }

    #[test]
    fn points_are_bit_reproducible() {
        for spec in [specs(true)[0], *specs(true).last().expect("non-empty")] {
            let a = run_point(&spec);
            let b = run_point(&spec);
            assert_eq!(a.offered, b.offered);
            assert_eq!(a.delivered, b.delivered);
            assert_eq!(a.policy_drops, b.policy_drops);
            assert_eq!(a.preempts, b.preempts);
            assert_eq!(a.burst_absorbed, b.burst_absorbed);
        }
    }

    #[test]
    fn policy_filter_preserves_row_bits() {
        set_policy_filter(Some(PolicyKind::PushOut));
        let filtered = specs(true);
        set_policy_filter(None);
        let full = specs(true);
        assert!(filtered.len() < full.len());
        let spec = filtered[0];
        let twin = full
            .iter()
            .find(|s| {
                s.org == spec.org
                    && s.policy.token() == spec.policy.token()
                    && s.shape == spec.shape
                    && s.load == spec.load
            })
            .expect("filtered point exists in the full grid");
        assert_eq!(spec.seed, twin.seed, "seeds are coordinate-derived");
    }
}
