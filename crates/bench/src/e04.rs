//! E4 — latency: scheduled input buffering vs output/shared queueing
//! (§2.2, \[AOST93 fig. 3\]).
//!
//! "Concerning latency, the simulations in [AOST93, fig. 3] showed output
//! queueing (or equivalently shared buffering) to be about twice faster
//! than input buffering, under the particular scheduling algorithm that
//! that paper uses, for link loads between 0.6 and 0.9."

use crate::{sweep, table};
use baselines::harness::run as harness_run;
use baselines::output_queued::OutputQueuedSwitch;
use baselines::sched::PimScheduler;
use baselines::voq::VoqSwitch;
use traffic::{Bernoulli, DestDist};

/// One load point.
#[derive(Debug, Clone, Copy)]
pub struct E4Row {
    /// Offered load.
    pub load: f64,
    /// Mean latency, VOQ input buffering with PIM.
    pub voq_latency: f64,
    /// Mean latency, output queueing.
    pub oq_latency: f64,
    /// Ratio voq/oq.
    pub ratio: f64,
}

/// Measure both architectures at one load.
pub fn measure(n: usize, load: f64, slots: u64, seed: u64) -> E4Row {
    let voq = {
        // PIM with log2(n) iterations, as in [AOST93].
        let iters = (usize::BITS - n.leading_zeros()) as usize;
        let mut m = VoqSwitch::new(n, None, PimScheduler::new(iters, seed));
        let mut src = Bernoulli::new(n, load, DestDist::uniform(n), seed);
        harness_run(&mut m, &mut src, slots, slots / 5).mean_latency
    };
    let oq = {
        let mut m = OutputQueuedSwitch::new(n, None);
        let mut src = Bernoulli::new(n, load, DestDist::uniform(n), seed);
        harness_run(&mut m, &mut src, slots, slots / 5).mean_latency
    };
    E4Row {
        load,
        voq_latency: voq,
        oq_latency: oq,
        ratio: voq / oq,
    }
}

/// Sweep loads 0.5–0.9 through the parallel engine, one point per load.
pub fn rows(quick: bool) -> Vec<E4Row> {
    let slots = if quick { 30_000 } else { 200_000 };
    sweep::map(&[0.5, 0.6, 0.7, 0.8, 0.9], |&l| measure(16, l, slots, 0xE4))
}

/// Render the report.
pub fn run(quick: bool) -> String {
    let body: Vec<Vec<String>> = rows(quick)
        .iter()
        .map(|r| {
            vec![
                format!("{:.1}", r.load),
                format!("{:.2}", r.voq_latency),
                format!("{:.2}", r.oq_latency),
                format!("{:.2}x", r.ratio),
            ]
        })
        .collect();
    let mut s = table::render(
        "E4: mean cell latency, 16x16, uniform iid — scheduled input buffering (VOQ+PIM) vs output queueing (paper §2.2 / [AOST93 fig 3])",
        &["load", "VOQ+PIM", "output-q", "ratio"],
        &body,
    );
    s.push_str("\nPaper: output/shared queueing 'about twice faster' at loads 0.6-0.9.\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_buffering_slower_at_high_load() {
        let r = measure(16, 0.8, 30_000, 5);
        assert!(
            r.ratio > 1.3,
            "VOQ must be noticeably slower than OQ at load 0.8: {r:?}"
        );
        assert!(r.ratio < 10.0, "but in the same regime: {r:?}");
    }

    #[test]
    fn latencies_positive_and_finite() {
        let r = measure(16, 0.6, 20_000, 6);
        assert!(r.voq_latency > 0.0 && r.voq_latency.is_finite());
        assert!(r.oq_latency > 0.0 && r.oq_latency.is_finite());
    }
}
